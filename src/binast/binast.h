// Binary AST: the disassembled view of a MiraObject.
//
// Mirrors the paper's ROSE binary AST (Sec. III-A, Fig. 3): AsmFunction
// nodes contain AsmBlock nodes containing AsmInstruction nodes, each
// instruction annotated with the source line recovered from .debug_line.
// On top of the plain tree this module recovers the machine CFG and
// natural loops (back edges, induction steps, bound operands) — the
// binary-side loop structure Mira must match against source loops to
// model vectorized main/remainder loop pairs correctly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "isa/instruction.h"
#include "objfile/objfile.h"
#include "support/diagnostics.h"

namespace mira::binast {

struct AsmInstruction {
  isa::Instruction inst;   // address = function-relative byte offset
  std::uint32_t line = 0;  // from .debug_line (0 = unknown)
};

struct AsmBlock {
  std::uint32_t id = 0;
  std::uint64_t startAddress = 0;
  std::vector<std::uint32_t> instrIndices; // into AsmFunction::instructions
  std::vector<std::uint32_t> successors;   // block ids
};

/// A natural loop recovered from the machine CFG.
struct BinaryLoop {
  std::uint32_t headerBlock = 0;
  std::uint32_t latchBlock = 0;
  std::set<std::uint32_t> blocks;   // all blocks including header/latch
  std::int64_t step = 0;            // induction increment found in latch
  isa::Reg inductionReg = isa::Reg::NONE;
  std::uint32_t sourceLine = 0;     // line of the header's compare
  /// Instruction counts split the way static counting needs them:
  /// header executes trips+1 times, body+latch execute trips times.
  std::size_t headerInstrCount = 0;
  std::size_t bodyInstrCount = 0; // includes latch
  /// Per-line instruction counts of one body iteration (body + latch).
  std::map<std::uint32_t, std::size_t> bodyLineCounts;
};

struct AsmFunction {
  std::string name;
  int id = 0;
  std::uint64_t objectOffset = 0;
  std::vector<AsmInstruction> instructions;
  std::vector<AsmBlock> blocks;
  std::vector<BinaryLoop> loops;

  /// Per-line instruction counts across the whole function.
  std::map<std::uint32_t, std::size_t> lineCounts() const;
  /// Innermost loop containing `blockId` (most deeply nested), or -1.
  int innermostLoopOf(std::uint32_t blockId) const;
};

struct BinaryAst {
  std::vector<AsmFunction> functions;

  const AsmFunction *find(const std::string &name) const;
};

/// Disassemble the object into a binary AST (decoding .text through the
/// instruction decoder, attaching lines, building CFG and loops).
std::optional<BinaryAst> buildBinaryAst(const objfile::MiraObject &object,
                                        DiagnosticEngine &diags);

} // namespace mira::binast
