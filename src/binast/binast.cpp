#include "binast/binast.h"

#include <algorithm>

#include "isa/encoding.h"

namespace mira::binast {

using isa::Instruction;
using isa::Opcode;
using isa::OperandKind;

std::map<std::uint32_t, std::size_t> AsmFunction::lineCounts() const {
  std::map<std::uint32_t, std::size_t> out;
  for (const AsmInstruction &ai : instructions)
    ++out[ai.line];
  return out;
}

int AsmFunction::innermostLoopOf(std::uint32_t blockId) const {
  int best = -1;
  std::size_t bestSize = 0;
  for (std::size_t i = 0; i < loops.size(); ++i) {
    if (!loops[i].blocks.count(blockId))
      continue;
    if (best < 0 || loops[i].blocks.size() < bestSize) {
      best = static_cast<int>(i);
      bestSize = loops[i].blocks.size();
    }
  }
  return best;
}

const AsmFunction *BinaryAst::find(const std::string &name) const {
  for (const AsmFunction &fn : functions)
    if (fn.name == name)
      return &fn;
  return nullptr;
}

namespace {

/// Build basic blocks from a decoded instruction stream. Leaders: offset
/// 0, jump targets, instructions following control transfers.
void buildBlocks(AsmFunction &fn) {
  std::set<std::uint64_t> leaders;
  if (!fn.instructions.empty())
    leaders.insert(fn.instructions.front().inst.address);
  for (const AsmInstruction &ai : fn.instructions) {
    const Instruction &inst = ai.inst;
    if (isa::isConditionalJump(inst.opcode) ||
        isa::isUnconditionalJump(inst.opcode)) {
      if (!inst.operands.empty() &&
          inst.operands[0].kind == OperandKind::Imm)
        leaders.insert(static_cast<std::uint64_t>(inst.operands[0].imm));
    }
    if (isa::isControlTransfer(inst.opcode) && !isa::isCall(inst.opcode)) {
      std::uint64_t next = inst.address + inst.encodedSize();
      leaders.insert(next);
    }
  }

  std::map<std::uint64_t, std::uint32_t> blockAt; // startAddress -> id
  AsmBlock current;
  bool open = false;
  for (std::uint32_t i = 0; i < fn.instructions.size(); ++i) {
    const AsmInstruction &ai = fn.instructions[i];
    if (leaders.count(ai.inst.address)) {
      if (open)
        fn.blocks.push_back(std::move(current));
      current = AsmBlock{};
      current.id = static_cast<std::uint32_t>(fn.blocks.size());
      current.startAddress = ai.inst.address;
      open = true;
    }
    current.instrIndices.push_back(i);
  }
  if (open)
    fn.blocks.push_back(std::move(current));
  for (const AsmBlock &b : fn.blocks)
    blockAt[b.startAddress] = b.id;

  // Successors.
  for (AsmBlock &b : fn.blocks) {
    if (b.instrIndices.empty())
      continue;
    const Instruction &last =
        fn.instructions[b.instrIndices.back()].inst;
    auto addSucc = [&](std::uint64_t addr) {
      auto it = blockAt.find(addr);
      if (it != blockAt.end())
        b.successors.push_back(it->second);
    };
    std::uint64_t fallthrough = last.address + last.encodedSize();
    if (isa::isUnconditionalJump(last.opcode)) {
      if (!last.operands.empty() &&
          last.operands[0].kind == OperandKind::Imm)
        addSucc(static_cast<std::uint64_t>(last.operands[0].imm));
    } else if (isa::isConditionalJump(last.opcode)) {
      if (!last.operands.empty() &&
          last.operands[0].kind == OperandKind::Imm)
        addSucc(static_cast<std::uint64_t>(last.operands[0].imm));
      addSucc(fallthrough);
    } else if (isa::isReturn(last.opcode)) {
      // no successors
    } else {
      addSucc(fallthrough);
    }
  }
}

/// Iterative dominator computation (entry = block 0). Small functions, so
/// the simple set-intersection algorithm is fine.
std::vector<std::set<std::uint32_t>> computeDominators(const AsmFunction &fn) {
  std::size_t n = fn.blocks.size();
  std::map<std::uint32_t, std::vector<std::uint32_t>> preds;
  for (const AsmBlock &b : fn.blocks)
    for (std::uint32_t s : b.successors)
      preds[s].push_back(b.id);

  std::set<std::uint32_t> all;
  for (std::uint32_t i = 0; i < n; ++i)
    all.insert(i);
  std::vector<std::set<std::uint32_t>> dom(n, all);
  if (n > 0)
    dom[0] = {0};
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t i = 1; i < n; ++i) {
      std::set<std::uint32_t> next = all;
      bool hasPred = false;
      for (std::uint32_t p : preds[i]) {
        hasPred = true;
        std::set<std::uint32_t> inter;
        for (std::uint32_t d : next)
          if (dom[p].count(d))
            inter.insert(d);
        next = std::move(inter);
      }
      if (!hasPred)
        next.clear(); // unreachable
      next.insert(i);
      if (next != dom[i]) {
        dom[i] = std::move(next);
        changed = true;
      }
    }
  }
  return dom;
}

/// Natural-loop discovery: a back edge is u -> h where h dominates u;
/// the loop body is collected by walking predecessors from the latch
/// until the header.
void findLoops(AsmFunction &fn) {
  std::vector<std::set<std::uint32_t>> dom = computeDominators(fn);
  // Predecessor map.
  std::map<std::uint32_t, std::vector<std::uint32_t>> preds;
  for (const AsmBlock &b : fn.blocks)
    for (std::uint32_t s : b.successors)
      preds[s].push_back(b.id);

  for (const AsmBlock &b : fn.blocks) {
    for (std::uint32_t succ : b.successors) {
      if (!dom[b.id].count(succ))
        continue; // not a back edge (header must dominate the latch)
      // back edge b -> succ
      BinaryLoop loop;
      loop.headerBlock = succ;
      loop.latchBlock = b.id;
      loop.blocks.insert(succ);
      std::vector<std::uint32_t> work{b.id};
      while (!work.empty()) {
        std::uint32_t n = work.back();
        work.pop_back();
        if (loop.blocks.count(n))
          continue;
        loop.blocks.insert(n);
        for (std::uint32_t p : preds[n])
          work.push_back(p);
      }

      // Induction step: the latch's 'add reg, imm' closest to the jump.
      const AsmBlock &latch = fn.blocks[b.id];
      for (auto it = latch.instrIndices.rbegin();
           it != latch.instrIndices.rend(); ++it) {
        const Instruction &inst = fn.instructions[*it].inst;
        if (inst.opcode == Opcode::ADD && inst.operands.size() == 2 &&
            inst.operands[0].kind == OperandKind::Reg &&
            inst.operands[1].kind == OperandKind::Reg) {
          // add dst, stepReg — the step constant was loaded by a MOV just
          // before; find it.
          isa::Reg stepReg = inst.operands[1].reg;
          for (auto it2 = it; it2 != latch.instrIndices.rend(); ++it2) {
            const Instruction &prev = fn.instructions[*it2].inst;
            if (prev.opcode == Opcode::MOV && prev.operands.size() == 2 &&
                prev.operands[0].kind == OperandKind::Reg &&
                prev.operands[0].reg == stepReg &&
                prev.operands[1].kind == OperandKind::Imm) {
              loop.step = prev.operands[1].imm;
              loop.inductionReg = inst.operands[0].reg;
              break;
            }
          }
          if (loop.step)
            break;
        }
        if (inst.opcode == Opcode::ADD && inst.operands.size() == 2 &&
            inst.operands[0].kind == OperandKind::Reg &&
            inst.operands[1].kind == OperandKind::Imm) {
          loop.step = inst.operands[1].imm;
          loop.inductionReg = inst.operands[0].reg;
          break;
        }
      }

      // Instruction accounting and source line.
      const AsmBlock &header = fn.blocks[loop.headerBlock];
      loop.headerInstrCount = header.instrIndices.size();
      for (std::uint32_t idx : header.instrIndices)
        if (!loop.sourceLine && fn.instructions[idx].line)
          loop.sourceLine = fn.instructions[idx].line;
      for (std::uint32_t blk : loop.blocks) {
        if (blk == loop.headerBlock)
          continue;
        for (std::uint32_t idx : fn.blocks[blk].instrIndices) {
          ++loop.bodyInstrCount;
          ++loop.bodyLineCounts[fn.instructions[idx].line];
        }
      }
      fn.loops.push_back(std::move(loop));
    }
  }
}

} // namespace

std::optional<BinaryAst> buildBinaryAst(const objfile::MiraObject &object,
                                        DiagnosticEngine &diags) {
  BinaryAst ast;
  for (const objfile::FunctionSymbol &sym : object.symbols) {
    AsmFunction fn;
    fn.name = sym.name;
    fn.id = sym.id;
    fn.objectOffset = sym.offset;

    std::vector<std::uint8_t> bytes(
        object.text.begin() + static_cast<std::ptrdiff_t>(sym.offset),
        object.text.begin() + static_cast<std::ptrdiff_t>(sym.offset +
                                                          sym.size));
    auto decoded = isa::decodeFunction(bytes, 0, diags);
    if (!decoded) {
      diags.error({}, "failed to disassemble function '" + sym.name + "'");
      return std::nullopt;
    }
    fn.instructions.reserve(decoded->size());
    for (Instruction &inst : *decoded) {
      AsmInstruction ai;
      ai.line = object.lineForAddress(sym.offset + inst.address);
      ai.inst = std::move(inst);
      fn.instructions.push_back(std::move(ai));
    }
    buildBlocks(fn);
    findLoops(fn);
    ast.functions.push_back(std::move(fn));
  }
  return ast;
}

} // namespace mira::binast
