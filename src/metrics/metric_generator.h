// The Metric Generator (paper Sec. III-B): walks the source AST with
// polyhedral loop context, associates statements with the machine
// instructions they compiled to (through the line-table bridge), and
// produces the parametric performance model.
//
// Counting scheme (exact for the canonical machine-loop shape):
//   * a counted source loop with total iteration count A entered E times
//     has its machine header executed A + E times (sum over entries of
//     trips+1), body and latch executed A times;
//   * a vectorized source loop maps to TWO machine loops; with T
//     per-entry trips the main (step 2) loop runs floor(T/2) times per
//     entry and the scalar remainder T mod 2 times — recovered from the
//     binary loops' induction steps, which is why source-only analysis
//     gets optimized binaries wrong;
//   * statements under an if take the guard-constrained polyhedral count
//     (Fig. 4b), congruence guards use the complement rule (Fig. 4c);
//   * user annotations (lp_init / lp_cond / lp_iters / ratio / skip)
//     resolve what static analysis cannot (Listing 6).
#pragma once

#include "bridge/bridge.h"
#include "frontend/ast.h"
#include "model/model.h"
#include "sema/sema.h"
#include "support/diagnostics.h"
#include "support/thread_pool.h"

namespace mira::metrics {

struct MetricOptions {
  /// Treat data-dependent branches without a ratio annotation as always
  /// taken (conservative over-count) instead of failing.
  bool assumeBranchesTaken = true;
};

/// Generate the performance model for every function of the program.
/// `bridge` must come from the same compile as `unit`.
///
/// When `pool` is non-null (and has more than one thread), per-function
/// modeling fans out across it; each function gets a private
/// DiagnosticEngine and the results are merged back in declaration order,
/// so the returned model and the diagnostics appended to `diags` are
/// byte-identical to the serial walk regardless of thread count. The
/// pool may be shared with other concurrent analyses: this function
/// waits on per-task futures, never on pool idleness. It must NOT be the
/// pool the calling task itself runs on — if every worker of that pool
/// blocked here, the queued function tasks could never start
/// (driver::BatchAnalyzer therefore keeps a separate model pool).
model::PerformanceModel generateModel(const frontend::TranslationUnit &unit,
                                      const sema::CallGraph &callGraph,
                                      const bridge::ProgramBridge &bridge,
                                      const MetricOptions &options,
                                      DiagnosticEngine &diags,
                                      ThreadPool *pool = nullptr);

} // namespace mira::metrics
