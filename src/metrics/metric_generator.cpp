#include "metrics/metric_generator.h"

#include <algorithm>
#include <exception>
#include <functional>
#include <future>
#include <set>

#include "polyhedral/counting.h"
#include "sema/loop_analysis.h"
#include "support/string_utils.h"
#include "symbolic/interner.h"

namespace mira::metrics {

using bridge::FunctionBridge;
using bridge::LoopBinding;
using frontend::Annotation;
using frontend::BinaryOp;
using frontend::ExprKind;
using frontend::Expression;
using frontend::FunctionDecl;
using frontend::Statement;
using frontend::StmtKind;
using model::CallStep;
using model::CountStep;
using model::FunctionModel;
using polyhedral::AffineConstraint;
using polyhedral::AffineExpr;
using polyhedral::Congruence;
using polyhedral::CountResult;
using polyhedral::IterationDomain;
using polyhedral::LoopLevel;
using symbolic::Expr;

namespace {

/// Walking context. The absolute execution count of the current position
/// is count(domain) * extraMultiplier * ratioNum/ratioDen, unless
/// overrideCount is set (used for else-branches whose complement is not a
/// single convex domain).
struct Context {
  IterationDomain domain;
  Expr extraMultiplier = Expr::intConst(1);
  std::int64_t ratioNum = 1;
  std::int64_t ratioDen = 1;
  std::optional<Expr> overrideCount;
};

/// Pattern-match `expr % K == 0` / `expr % K != 0`.
std::optional<Congruence> matchCongruence(const Expression &cond) {
  if (cond.kind != ExprKind::Binary)
    return std::nullopt;
  if (cond.binaryOp != BinaryOp::Eq && cond.binaryOp != BinaryOp::Ne)
    return std::nullopt;
  const Expression *modExpr = cond.children[0].get();
  const Expression *zero = cond.children[1].get();
  if (modExpr->kind != ExprKind::Binary ||
      modExpr->binaryOp != BinaryOp::Mod)
    std::swap(modExpr, zero);
  if (modExpr->kind != ExprKind::Binary || modExpr->binaryOp != BinaryOp::Mod)
    return std::nullopt;
  if (zero->kind != ExprKind::IntLiteral || zero->intValue != 0)
    return std::nullopt;
  const Expression &lhs = *modExpr->children[0];
  const Expression &mod = *modExpr->children[1];
  if (mod.kind != ExprKind::IntLiteral || mod.intValue <= 0)
    return std::nullopt;
  auto affine = sema::exprToAffine(lhs);
  if (!affine)
    return std::nullopt;
  Congruence c;
  c.expr = *affine;
  c.modulus = mod.intValue;
  c.negated = cond.binaryOp == BinaryOp::Ne;
  return c;
}

/// Pattern-match an affine comparison into GE-normal constraints.
std::optional<std::vector<AffineConstraint>>
matchAffineGuard(const Expression &cond) {
  if (cond.kind != ExprKind::Binary)
    return std::nullopt;
  polyhedral::CmpRel rel;
  switch (cond.binaryOp) {
  case BinaryOp::Lt:
    rel = polyhedral::CmpRel::LT;
    break;
  case BinaryOp::Le:
    rel = polyhedral::CmpRel::LE;
    break;
  case BinaryOp::Gt:
    rel = polyhedral::CmpRel::GT;
    break;
  case BinaryOp::Ge:
    rel = polyhedral::CmpRel::GE;
    break;
  case BinaryOp::Eq:
    rel = polyhedral::CmpRel::EQ;
    break;
  default:
    return std::nullopt;
  }
  auto lhs = sema::exprToAffine(*cond.children[0]);
  auto rhs = sema::exprToAffine(*cond.children[1]);
  if (!lhs || !rhs)
    return std::nullopt;
  auto constraints = AffineConstraint::make(*lhs, rel, *rhs);
  if (constraints.empty())
    return std::nullopt;
  return constraints;
}

class FunctionModeler {
public:
  FunctionModeler(const frontend::TranslationUnit &unit,
                  const FunctionDecl &decl, const FunctionBridge *bridge,
                  const MetricOptions &options, DiagnosticEngine &diags)
      : unit_(unit), decl_(decl), bridge_(bridge), options_(options),
        diags_(diags) {}

  FunctionModel run() {
    model_.sourceName = decl_.qualifiedName();
    model_.modelName = decl_.modelName();
    for (const auto &p : decl_.params)
      model_.paramNames.push_back(p.name);

    if (!bridge_) {
      model_.exact = false;
      model_.notes.push_back("no binary code found for this function");
      return std::move(model_);
    }

    addOpcodeStep(bridge_->prologueOpcodes(), Expr::intConst(1),
                  "function prologue");

    Context ctx;
    walkStmt(*decl_.bodyStmt, ctx);
    return std::move(model_);
  }

private:
  void note(const std::string &message) {
    model_.exact = false;
    model_.notes.push_back(message);
  }

  Expr applyRatio(const Context &ctx, Expr value) const {
    if (ctx.ratioNum == ctx.ratioDen)
      return value;
    return Expr::floorDiv(value * Expr::intConst(ctx.ratioNum),
                          Expr::intConst(ctx.ratioDen));
  }

  /// Absolute execution count at the current context.
  Expr totalCount(const Context &ctx) {
    if (ctx.overrideCount)
      return *ctx.overrideCount;
    CountResult res = polyhedral::countIterations(ctx.domain);
    return applyRatio(ctx, res.count * ctx.extraMultiplier);
  }

  void addOpcodeStep(const std::map<isa::Opcode, std::size_t> &opcodes,
                     const Expr &multiplier, std::string comment) {
    if (opcodes.empty() || multiplier.isIntConst(0))
      return;
    CountStep step;
    step.multiplier = multiplier;
    step.comment = std::move(comment);
    for (const auto &[op, n] : opcodes)
      step.opcodes[op] = static_cast<std::int64_t>(n);
    model_.counts.push_back(std::move(step));
  }

  void countStatementLines(const Statement &stmt, const Expr &multiplier,
                           const char *what) {
    if (!stmt.range.isValid())
      return;
    for (std::uint32_t line = stmt.range.begin.line;
         line <= stmt.range.end.line; ++line) {
      auto opcodes = bridge_->opcodesAtLine(line, currentBinaryLoop_);
      if (opcodes.empty())
        continue;
      addOpcodeStep(opcodes, multiplier,
                    std::string(what) + " line " + std::to_string(line));
    }
  }

  void collectCalls(const Expression &expr, const Expr &multiplier) {
    if (expr.kind == ExprKind::Call && !expr.isBuiltin && !expr.isExtern &&
        !expr.resolvedCallee.empty()) {
      CallStep step;
      step.multiplier = multiplier;
      step.callee = expr.resolvedCallee;
      step.line = expr.range.begin.line;
      const FunctionDecl *callee = unit_.findFunction(expr.resolvedCallee);
      if (callee) {
        std::size_t argBase = 0; // receiver is not a model parameter
        for (std::size_t i = 0;
             i < callee->params.size() && i + argBase < expr.children.size();
             ++i) {
          if (!callee->params[i].type.isInteger())
            continue;
          auto affine = sema::exprToAffine(*expr.children[i + argBase]);
          if (affine) {
            step.argBindings[callee->params[i].name] = affine->toExpr();
          } else {
            std::string paramName = callee->params[i].name + "_" +
                                    std::to_string(step.line);
            step.argBindings[callee->params[i].name] =
                Expr::param(paramName);
            note("argument '" + callee->params[i].name + "' of call to " +
                 expr.resolvedCallee + " at line " +
                 std::to_string(step.line) +
                 " is not statically resolvable; supply model parameter '" +
                 paramName + "'");
          }
        }
      }
      model_.calls.push_back(std::move(step));
    }
    if (expr.isExtern) {
      model_.exact = false;
      model_.notes.push_back(
          "external function '" + expr.name + "' called at line " +
          std::to_string(expr.range.begin.line) +
          " is opaque to static analysis; its instructions are not modeled");
    }
    for (const auto &child : expr.children)
      collectCalls(*child, multiplier);
    if (expr.receiver)
      collectCalls(*expr.receiver, multiplier);
  }

  void walkStmt(const Statement &stmt, Context &ctx) {
    if (stmt.annotation && stmt.annotation->skip()) {
      model_.notes.push_back("statement at line " +
                             std::to_string(stmt.range.begin.line) +
                             " skipped by annotation");
      return;
    }
    switch (stmt.kind) {
    case StmtKind::Compound:
      for (const auto &s : stmt.body)
        walkStmt(*s, ctx);
      break;
    case StmtKind::Decl: {
      Expr mult = totalCount(ctx);
      countStatementLines(stmt, mult, "decl");
      if (stmt.declInit)
        collectCalls(*stmt.declInit, mult);
      for (const auto &dim : stmt.arrayDims)
        collectCalls(*dim, mult);
      break;
    }
    case StmtKind::ExprStmt:
    case StmtKind::Return: {
      Expr mult = totalCount(ctx);
      countStatementLines(stmt, mult,
                          stmt.kind == StmtKind::Return ? "return" : "stmt");
      if (stmt.expr)
        collectCalls(*stmt.expr, mult);
      break;
    }
    case StmtKind::If:
      walkIf(stmt, ctx);
      break;
    case StmtKind::For:
      walkFor(stmt, ctx);
      break;
    case StmtKind::While:
      walkWhile(stmt, ctx);
      break;
    case StmtKind::Empty:
      break;
    }
  }

  void walkIf(const Statement &stmt, Context &ctx) {
    std::uint32_t line = stmt.range.begin.line;
    Expr total = totalCount(ctx);
    addOpcodeStep(bridge_->opcodesAtLine(line, currentBinaryLoop_), total,
                  "if condition line " + std::to_string(line));
    if (stmt.expr)
      collectCalls(*stmt.expr, total);

    Context thenCtx = ctx;
    Context elseCtx = ctx;
    bool modeled = false;

    if (auto cong = matchCongruence(*stmt.expr)) {
      // Congruence guards: exact on both sides via the complement rule
      // (paper Fig. 4c).
      thenCtx.domain = ctx.domain.withCongruence(*cong);
      Congruence inverted = *cong;
      inverted.negated = !inverted.negated;
      elseCtx.domain = ctx.domain.withCongruence(inverted);
      CountResult thenRes = polyhedral::countIterations(thenCtx.domain);
      if (!thenRes.requiresAnnotation) {
        modeled = true;
        if (!thenRes.note.empty())
          model_.notes.push_back(thenRes.note);
      }
    }
    if (!modeled && stmt.expr) {
      if (auto guards = matchAffineGuard(*stmt.expr)) {
        thenCtx.domain = ctx.domain;
        for (const AffineConstraint &g : *guards)
          thenCtx.domain = thenCtx.domain.withGuard(g);
        CountResult thenRes = polyhedral::countIterations(thenCtx.domain);
        if (!thenRes.requiresAnnotation) {
          modeled = true;
          if (!thenRes.exact)
            note(thenRes.note);
          // Else branch: single-constraint guards invert exactly; the
          // complement of a conjunction (from ==) is counted by
          // subtraction.
          if (guards->size() == 1) {
            AffineConstraint inverted{-(*guards)[0].expr - AffineExpr(1)};
            elseCtx.domain = ctx.domain.withGuard(inverted);
          } else {
            Expr thenCount = applyRatio(
                ctx, thenRes.count * ctx.extraMultiplier);
            elseCtx.overrideCount = total - thenCount;
          }
        }
      }
    }
    if (!modeled) {
      std::optional<std::string> ratio =
          stmt.annotation ? stmt.annotation->get("ratio") : std::nullopt;
      std::int64_t percent = 0;
      if (ratio && parseInt64(*ratio, percent) && percent >= 0 &&
          percent <= 100) {
        thenCtx.ratioNum = ctx.ratioNum * percent;
        thenCtx.ratioDen = ctx.ratioDen * 100;
        elseCtx.ratioNum = ctx.ratioNum * (100 - percent);
        elseCtx.ratioDen = ctx.ratioDen * 100;
        modeled = true;
        model_.notes.push_back("branch at line " + std::to_string(line) +
                               " modeled with annotated ratio " + *ratio +
                               "%");
      } else if (ratio) {
        diags_.warning(stmt.range.begin,
                       "invalid ratio annotation '" + *ratio + "'");
      }
    }
    if (!modeled) {
      // Data-dependent branch without annotation: conservatively count
      // both paths as always executed (or skip, per options).
      note("branch at line " + std::to_string(line) +
           " is not statically analyzable; " +
           (options_.assumeBranchesTaken
                ? "both paths counted as always taken"
                : "both paths skipped") +
           " (annotate with {ratio:..} to refine)");
      if (!options_.assumeBranchesTaken) {
        thenCtx.overrideCount = Expr::intConst(0);
        elseCtx.overrideCount = Expr::intConst(0);
      }
    }

    if (stmt.thenBranch)
      walkStmt(*stmt.thenBranch, thenCtx);
    if (stmt.elseBranch)
      walkStmt(*stmt.elseBranch, elseCtx);
  }

  AffineExpr affineFromAnnotation(const std::string &value) {
    std::int64_t n = 0;
    if (parseInt64(value, n))
      return AffineExpr(n);
    return AffineExpr::variable(value);
  }

  void walkFor(const Statement &stmt, Context &ctx) {
    std::uint32_t line = stmt.range.begin.line;
    sema::LoopInfo info = sema::analyzeForLoop(stmt);

    const std::optional<Annotation> &ann = stmt.annotation;
    if (!info.recognized && ann && ann->get("lp_init") &&
        ann->get("lp_cond")) {
      // Annotated bounds complete the polyhedral model (Listing 6). The
      // lp_cond value is the loop-condition bound; the relation comes
      // from the source ('<' is exclusive, '<=' inclusive).
      info.recognized = true;
      info.lowerBound = affineFromAnnotation(*ann->get("lp_init"));
      info.upperBound = affineFromAnnotation(*ann->get("lp_cond"));
      if (stmt.forCond && stmt.forCond->kind == ExprKind::Binary &&
          (stmt.forCond->binaryOp == BinaryOp::Lt ||
           stmt.forCond->binaryOp == BinaryOp::Gt))
        info.upperBound = info.upperBound - AffineExpr(1);
      info.step = 1;
      if (info.var.empty())
        info.var = "loopvar_" + std::to_string(line);
      model_.notes.push_back("loop at line " + std::to_string(line) +
                             " uses annotated bounds lp_init/lp_cond");
    }

    Expr entries = totalCount(ctx);
    Expr bodyAbs;
    Context bodyCtx = ctx;

    if (ann && ann->get("lp_iters")) {
      std::string value = *ann->get("lp_iters");
      std::int64_t n = 0;
      Expr perEntry =
          parseInt64(value, n) ? Expr::intConst(n) : Expr::param(value);
      bodyAbs = entries * perEntry;
      bodyCtx.extraMultiplier = ctx.extraMultiplier * perEntry;
      model_.notes.push_back("loop at line " + std::to_string(line) +
                             " uses annotated iteration count lp_iters=" +
                             value);
      emitLoopMachineCounts(stmt, line, bodyAbs, entries, bodyCtx, nullptr);
      return;
    }

    if (!info.recognized) {
      note("loop at line " + std::to_string(line) +
           " has no static control part (" + info.failReason +
           "); supply lp_iters / lp_init / lp_cond annotations");
      Expr perEntry = Expr::param("iters_" + std::to_string(line));
      bodyAbs = entries * perEntry;
      bodyCtx.extraMultiplier = ctx.extraMultiplier * perEntry;
      emitLoopMachineCounts(stmt, line, bodyAbs, entries, bodyCtx, nullptr);
      return;
    }

    LoopLevel level;
    level.var = info.var;
    level.lowerBounds.push_back(info.lowerBound);
    level.upperBounds.push_back(info.upperBound);
    level.step = info.step;

    if (ctx.overrideCount) {
      // Under a non-convex else branch: count the level in isolation and
      // multiply (exact for bounds not depending on that branch).
      IterationDomain alone;
      alone.levels.push_back(level);
      CountResult res = polyhedral::countIterations(alone);
      bodyAbs = *ctx.overrideCount * res.count;
      bodyCtx.overrideCount = bodyAbs;
      emitLoopMachineCounts(stmt, line, bodyAbs, entries, bodyCtx, &info);
      return;
    }

    bodyCtx.domain.levels.push_back(level);
    CountResult res = polyhedral::countIterations(bodyCtx.domain);
    if (res.requiresAnnotation) {
      note("loop at line " + std::to_string(line) +
           " cannot be counted statically (" + res.note +
           "); annotate with lp_iters");
      Expr perEntry = Expr::param("iters_" + std::to_string(line));
      bodyAbs = entries * perEntry;
      bodyCtx.domain = ctx.domain;
      bodyCtx.extraMultiplier = ctx.extraMultiplier * perEntry;
      emitLoopMachineCounts(stmt, line, bodyAbs, entries, bodyCtx, nullptr);
      return;
    }
    if (!res.exact)
      note(res.note);
    else if (!res.note.empty())
      model_.notes.push_back(res.note);
    bodyAbs = applyRatio(ctx, res.count * ctx.extraMultiplier);
    emitLoopMachineCounts(stmt, line, bodyAbs, entries, bodyCtx, &info);
  }

  void walkWhile(const Statement &stmt, Context &ctx) {
    std::uint32_t line = stmt.range.begin.line;
    Expr entries = totalCount(ctx);
    Expr perEntry;
    if (stmt.annotation && stmt.annotation->get("lp_iters")) {
      std::string value = *stmt.annotation->get("lp_iters");
      std::int64_t n = 0;
      perEntry =
          parseInt64(value, n) ? Expr::intConst(n) : Expr::param(value);
      model_.notes.push_back("while loop at line " + std::to_string(line) +
                             " uses annotated lp_iters=" + value);
    } else {
      perEntry = Expr::param("iters_" + std::to_string(line));
      note("while loop at line " + std::to_string(line) +
           " cannot be counted statically; supply {lp_iters:..}");
    }
    Expr bodyAbs = entries * perEntry;
    Context bodyCtx = ctx;
    bodyCtx.extraMultiplier = ctx.extraMultiplier * perEntry;
    emitLoopMachineCounts(stmt, line, bodyAbs, entries, bodyCtx, nullptr);
  }

  /// Lines covered by skip-annotated statements under `stmt`.
  static void collectSkippedLines(const Statement *stmt,
                                  std::set<std::uint32_t> &out) {
    if (!stmt)
      return;
    if (stmt->annotation && stmt->annotation->skip()) {
      for (std::uint32_t l = stmt->range.begin.line;
           l <= stmt->range.end.line; ++l)
        out.insert(l);
      return;
    }
    for (const auto &s : stmt->body)
      collectSkippedLines(s.get(), out);
    if (stmt->loopBody)
      collectSkippedLines(stmt->loopBody.get(), out);
    if (stmt->thenBranch)
      collectSkippedLines(stmt->thenBranch.get(), out);
    if (stmt->elseBranch)
      collectSkippedLines(stmt->elseBranch.get(), out);
  }

  void emitLoopMachineCounts(const Statement &stmt, std::uint32_t line,
                             const Expr &bodyAbs, const Expr &entries,
                             Context &bodyCtx, const sema::LoopInfo *info) {
    LoopBinding binding = bridge_->loopsAtLine(line);

    // Loop prologue (init, hoisted bound, vectorizer setup) lives at the
    // for line but inside the *enclosing* binary loop (or outside all
    // loops at the top level), executed once per entry.
    addOpcodeStep(bridge_->opcodesAtLine(line, currentBinaryLoop_), entries,
                  "loop prologue line " + std::to_string(line));

    if (binding.loops.empty()) {
      model_.notes.push_back(
          "no machine loop found for source loop at line " +
          std::to_string(line));
      return;
    }

    if (binding.isVectorized() && info) {
      const binast::BinaryLoop *main = binding.mainLoop();
      const binast::BinaryLoop *rem = binding.remainderLoop();
      std::int64_t w = main->step;

      AffineExpr span = info->upperBound - info->lowerBound + AffineExpr(1);
      bool uniform = true;
      for (std::size_t d = 0; d + 1 < bodyCtx.domain.levels.size(); ++d)
        if (span.involves(bodyCtx.domain.levels[d].var))
          uniform = false;

      Expr mainAbs;
      if (uniform) {
        Expr mainPer = Expr::floorDiv(span.toExpr(), Expr::intConst(w));
        mainAbs = entries * mainPer;
      } else {
        Expr mainPer = Expr::floorDiv(span.toExpr(), Expr::intConst(w));
        Expr acc = mainPer;
        for (std::size_t d = bodyCtx.domain.levels.size() - 1; d-- > 0;) {
          const LoopLevel &l = bodyCtx.domain.levels[d];
          acc = Expr::sum(l.var, l.lowerBounds[0].toExpr(),
                          l.upperBounds[0].toExpr(), acc);
        }
        mainAbs = applyRatio(bodyCtx, acc * bodyCtx.extraMultiplier);
      }
      Expr remAbs = bodyAbs - mainAbs * Expr::intConst(w);

      addOpcodeStep(bridge_->headerOpcodes(*main), mainAbs + entries,
                    "vectorized main loop header line " +
                        std::to_string(line));
      addOpcodeStep(bridge_->headerOpcodes(*rem), remAbs + entries,
                    "remainder loop header line " + std::to_string(line));
      // Honor skip annotations on body statements even though the body is
      // counted by line rather than by statement walk.
      std::set<std::uint32_t> skippedLines;
      collectSkippedLines(stmt.loopBody.get(), skippedLines);
      for (std::uint32_t l = stmt.range.begin.line; l <= stmt.range.end.line;
           ++l) {
        if (skippedLines.count(l)) {
          model_.notes.push_back("line " + std::to_string(l) +
                                 " skipped by annotation");
          continue;
        }
        addOpcodeStep(bridge_->opcodesAtLine(l, main), mainAbs,
                      "vectorized body line " + std::to_string(l));
        addOpcodeStep(bridge_->opcodesAtLine(l, rem), remAbs,
                      "remainder body line " + std::to_string(l));
      }
      return;
    }

    const binast::BinaryLoop *loop = binding.mainLoop();
    addOpcodeStep(bridge_->headerOpcodes(*loop), bodyAbs + entries,
                  "loop header line " + std::to_string(line));
    addOpcodeStep(bridge_->opcodesAtLine(line, loop), bodyAbs,
                  "loop latch line " + std::to_string(line));

    const binast::BinaryLoop *saved = currentBinaryLoop_;
    currentBinaryLoop_ = loop;
    if (stmt.loopBody)
      walkStmt(*stmt.loopBody, bodyCtx);
    currentBinaryLoop_ = saved;
  }

  const frontend::TranslationUnit &unit_;
  const FunctionDecl &decl_;
  const FunctionBridge *bridge_;
  MetricOptions options_;
  DiagnosticEngine &diags_;
  FunctionModel model_;
  const binast::BinaryLoop *currentBinaryLoop_ = nullptr;
};

} // namespace

model::PerformanceModel generateModel(const frontend::TranslationUnit &unit,
                                      const sema::CallGraph &callGraph,
                                      const bridge::ProgramBridge &bridge,
                                      const MetricOptions &options,
                                      DiagnosticEngine &diags,
                                      ThreadPool *pool) {
  model::PerformanceModel model;
  model.sourceFile = unit.fileName;

  bool hasCycle = false;
  std::vector<std::string> order = callGraph.topologicalOrder(hasCycle);
  std::vector<const FunctionDecl *> decls;
  for (const std::string &name : order)
    if (const FunctionDecl *fn = unit.findFunction(name))
      decls.push_back(fn);
  for (const FunctionDecl *fn : unit.allFunctions())
    if (std::find(decls.begin(), decls.end(), fn) == decls.end())
      decls.push_back(fn);

  if (pool && pool->threadCount() > 1 && decls.size() > 1) {
    // Fan one task per function across the pool. Each task writes only
    // its own slot (model + private DiagnosticEngine); the merge below
    // walks slots in declaration order, so the output is byte-identical
    // to the serial walk no matter how the tasks interleave.
    std::vector<DiagnosticEngine> functionDiags(decls.size());
    std::vector<std::promise<FunctionModel>> promises(decls.size());
    std::vector<std::future<FunctionModel>> futures;
    futures.reserve(decls.size());
    for (auto &promise : promises)
      futures.push_back(promise.get_future());
    std::size_t submitted = 0;
    // Pool workers have their own thread-local interner state; re-enter
    // this compile's expression arena inside each task so all functions
    // of one analysis hash-cons into the same table (intern() is
    // internally synchronized).
    symbolic::ExprInterner &interner = symbolic::ExprInterner::current();
    try {
      for (; submitted < decls.size(); ++submitted) {
        const std::size_t i = submitted;
        pool->submit([&unit, &bridge, &options, &functionDiags, &promises,
                      &decls, &interner, i] {
          symbolic::ExprInterner::Scope scope(interner);
          try {
            FunctionModeler modeler(unit, *decls[i],
                                    bridge.of(decls[i]->qualifiedName()),
                                    options, functionDiags[i]);
            promises[i].set_value(modeler.run());
          } catch (...) {
            promises[i].set_exception(std::current_exception());
          }
        });
      }
    } catch (...) {
      // submit() itself failed (e.g. bad_alloc queueing the task). The
      // un-submitted tasks can never fulfill their promises, so fail
      // them now and fall through to the drain: unwinding here would
      // destroy the frame the already-running tasks still reference.
      for (std::size_t i = submitted; i < decls.size(); ++i)
        promises[i].set_exception(std::current_exception());
    }
    // Drain every future before letting any exception escape: the tasks
    // reference our stack frame, so an early rethrow would be a
    // use-after-free for the tasks still running.
    std::vector<FunctionModel> results;
    results.reserve(decls.size());
    std::exception_ptr firstError;
    for (auto &future : futures) {
      try {
        results.push_back(future.get());
      } catch (...) {
        if (!firstError)
          firstError = std::current_exception();
        results.emplace_back();
      }
    }
    if (firstError)
      std::rethrow_exception(firstError);
    for (std::size_t i = 0; i < decls.size(); ++i) {
      model.functions.push_back(std::move(results[i]));
      diags.append(functionDiags[i]);
    }
    return model;
  }

  for (const FunctionDecl *fn : decls) {
    FunctionModeler modeler(unit, *fn, bridge.of(fn->qualifiedName()),
                            options, diags);
    model.functions.push_back(modeler.run());
  }
  return model;
}

} // namespace mira::metrics
