#include "sema/loop_analysis.h"

namespace mira::sema {

using frontend::AssignOp;
using frontend::BinaryOp;
using frontend::ExprKind;
using frontend::Expression;
using frontend::Statement;
using frontend::StmtKind;
using frontend::UnaryOp;
using polyhedral::AffineExpr;

std::optional<AffineExpr> exprToAffine(const Expression &expr) {
  switch (expr.kind) {
  case ExprKind::IntLiteral:
    return AffineExpr(expr.intValue);
  case ExprKind::VarRef:
    return AffineExpr::variable(expr.name);
  case ExprKind::Unary:
    if (expr.unaryOp == UnaryOp::Neg) {
      auto inner = exprToAffine(*expr.children[0]);
      if (inner)
        return -*inner;
    }
    return std::nullopt;
  case ExprKind::Binary: {
    auto lhs = exprToAffine(*expr.children[0]);
    auto rhs = exprToAffine(*expr.children[1]);
    if (!lhs || !rhs)
      return std::nullopt;
    switch (expr.binaryOp) {
    case BinaryOp::Add:
      return *lhs + *rhs;
    case BinaryOp::Sub:
      return *lhs - *rhs;
    case BinaryOp::Mul:
      if (lhs->isConstant())
        return rhs->scaled(lhs->constant());
      if (rhs->isConstant())
        return lhs->scaled(rhs->constant());
      return std::nullopt; // nonlinear
    case BinaryOp::Div:
      // Exact division by a constant only when every coefficient divides:
      if (rhs->isConstant() && rhs->constant() != 0) {
        std::int64_t d = rhs->constant();
        if (lhs->constant() % d != 0)
          return std::nullopt;
        AffineExpr out(lhs->constant() / d);
        for (const auto &[v, c] : lhs->coeffs()) {
          if (c % d != 0)
            return std::nullopt;
          out += AffineExpr::variable(v, c / d);
        }
        return out;
      }
      return std::nullopt;
    default:
      return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

namespace {

LoopInfo fail(std::string reason) {
  LoopInfo info;
  info.failReason = std::move(reason);
  return info;
}

} // namespace

LoopInfo analyzeForLoop(const Statement &forStmt) {
  if (forStmt.kind != StmtKind::For)
    return fail("not a for statement");

  LoopInfo info;

  // ---- init: 'type var = expr' or 'var = expr' ----
  const Statement *init = forStmt.forInit.get();
  const Expression *initValue = nullptr;
  if (!init)
    return fail("missing loop initialization");
  if (init->kind == StmtKind::Decl) {
    info.var = init->declName;
    initValue = init->declInit.get();
  } else if (init->kind == StmtKind::ExprStmt && init->expr &&
             init->expr->kind == ExprKind::Assign &&
             init->expr->assignOp == AssignOp::Assign &&
             init->expr->children[0]->kind == ExprKind::VarRef) {
    info.var = init->expr->children[0]->name;
    initValue = init->expr->children[1].get();
  } else {
    return fail("loop initialization is not a simple assignment");
  }
  if (!initValue)
    return fail("loop variable has no initial value");

  // ---- condition: 'var < expr' | 'var <= expr' | reversed forms ----
  const Expression *cond = forStmt.forCond.get();
  if (!cond)
    return fail("missing loop condition");
  if (cond->kind != ExprKind::Binary)
    return fail("loop condition is not a comparison");
  const Expression *condLhs = cond->children[0].get();
  const Expression *condRhs = cond->children[1].get();
  BinaryOp rel = cond->binaryOp;
  // Normalize to 'var REL bound'.
  if (!(condLhs->kind == ExprKind::VarRef && condLhs->name == info.var)) {
    if (condRhs->kind == ExprKind::VarRef && condRhs->name == info.var) {
      std::swap(condLhs, condRhs);
      switch (rel) { // mirror the relation
      case BinaryOp::Lt:
        rel = BinaryOp::Gt;
        break;
      case BinaryOp::Le:
        rel = BinaryOp::Ge;
        break;
      case BinaryOp::Gt:
        rel = BinaryOp::Lt;
        break;
      case BinaryOp::Ge:
        rel = BinaryOp::Le;
        break;
      default:
        break;
      }
    } else {
      return fail("loop condition does not test the loop variable");
    }
  }
  auto bound = exprToAffine(*condRhs);
  if (!bound)
    return fail("loop bound is not affine: " + condRhs->str());
  if (bound->involves(info.var))
    return fail("loop bound references the loop variable itself");

  // ---- increment: var++ / ++var / var += c / var = var + c ----
  const Expression *inc = forStmt.forInc.get();
  if (!inc)
    return fail("missing loop increment");
  std::int64_t step = 0;
  if (inc->kind == ExprKind::Unary &&
      (inc->unaryOp == UnaryOp::PostInc || inc->unaryOp == UnaryOp::PreInc) &&
      inc->children[0]->kind == ExprKind::VarRef &&
      inc->children[0]->name == info.var) {
    step = 1;
  } else if (inc->kind == ExprKind::Assign &&
             inc->assignOp == AssignOp::AddAssign &&
             inc->children[0]->kind == ExprKind::VarRef &&
             inc->children[0]->name == info.var &&
             inc->children[1]->kind == ExprKind::IntLiteral) {
    step = inc->children[1]->intValue;
  } else if (inc->kind == ExprKind::Assign &&
             inc->assignOp == AssignOp::Assign &&
             inc->children[0]->kind == ExprKind::VarRef &&
             inc->children[0]->name == info.var &&
             inc->children[1]->kind == ExprKind::Binary &&
             inc->children[1]->binaryOp == BinaryOp::Add) {
    const Expression *a = inc->children[1]->children[0].get();
    const Expression *b = inc->children[1]->children[1].get();
    if (a->kind == ExprKind::VarRef && a->name == info.var &&
        b->kind == ExprKind::IntLiteral)
      step = b->intValue;
    else if (b->kind == ExprKind::VarRef && b->name == info.var &&
             a->kind == ExprKind::IntLiteral)
      step = a->intValue;
  }
  if (step <= 0)
    return fail("loop increment is not a positive constant step");
  info.step = step;

  // Only upward-counting loops with < / <= are recognized (the paper's
  // kernels are all of this shape; downward loops would mirror this code).
  auto lb = exprToAffine(*initValue);
  if (!lb)
    return fail("loop initial value is not affine: " + initValue->str());
  switch (rel) {
  case BinaryOp::Lt:
    info.upperBound = *bound - AffineExpr(1);
    break;
  case BinaryOp::Le:
    info.upperBound = *bound;
    break;
  default:
    return fail("loop condition relation must be '<' or '<='");
  }
  info.lowerBound = *lb;
  info.recognized = true;
  return info;
}

} // namespace mira::sema
