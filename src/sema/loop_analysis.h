// Static control part (SCoP) extraction from for-loops.
//
// Recognizes counted loops of the form
//   for (var = init; var < / <= bound; var++ / var += c)
// and converts init/bound to affine expressions over other variables
// (which become model parameters if not resolvable — paper Sec. III-B2).
// Loops that do not fit report a reason; Mira then requires a user
// annotation (paper Listing 3/6) or falls back to while-loop handling.
#pragma once

#include <optional>
#include <string>

#include "frontend/ast.h"
#include "polyhedral/affine.h"

namespace mira::sema {

struct LoopInfo {
  bool recognized = false; // structured counted loop with affine SCoP
  std::string var;
  polyhedral::AffineExpr lowerBound; // var >= lowerBound
  polyhedral::AffineExpr upperBound; // var <= upperBound (normalized)
  std::int64_t step = 1;
  std::string failReason; // set when !recognized
};

/// Convert a MiniC expression to an affine expression: literals, variable
/// references (as symbols), +, -, unary minus, and multiplication by
/// integer constants. nullopt for anything else (calls, indexing, floats,
/// min/max — the paper's Listing 3 exceptions).
std::optional<polyhedral::AffineExpr>
exprToAffine(const frontend::Expression &expr);

/// Analyze a StmtKind::For statement.
LoopInfo analyzeForLoop(const frontend::Statement &forStmt);

} // namespace mira::sema
