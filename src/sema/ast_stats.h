// Source statistics: loop coverage analysis (paper Table I).
//
// Counts loops, executable statements, and statements covered by loop
// scope — the survey metric (Bastoul et al.) the paper reproduces to
// motivate loop-centric modeling: in HPC codes, 77-100% of statements
// live inside loops.
#pragma once

#include "frontend/ast.h"

namespace mira::sema {

struct LoopCoverage {
  std::size_t loops = 0;
  std::size_t statements = 0;       // executable statements
  std::size_t inLoopStatements = 0; // statements inside >=1 loop body

  double percent() const {
    return statements == 0
               ? 0.0
               : 100.0 * static_cast<double>(inLoopStatements) /
                     static_cast<double>(statements);
  }
};

/// Counting rules: every Decl/ExprStmt/Return/If/For/While node is one
/// statement (Compound and Empty are structure, not statements); a
/// statement is "in loop" when located inside the body of any For/While.
LoopCoverage computeLoopCoverage(const frontend::TranslationUnit &unit);

} // namespace mira::sema
