#include "sema/sema.h"

#include <cassert>
#include <functional>

namespace mira::sema {

using frontend::ClassDecl;
using frontend::ExprKind;
using frontend::Expression;
using frontend::ScalarType;
using frontend::Statement;
using frontend::StmtKind;

namespace {

Type makeType(ScalarType s, int ptr = 0) {
  Type t;
  t.scalar = s;
  t.pointerDepth = ptr;
  return t;
}

/// Usual arithmetic conversions, simplified.
Type promote(const Type &a, const Type &b) {
  if (a.isPointer())
    return a;
  if (b.isPointer())
    return b;
  auto rank = [](ScalarType s) {
    switch (s) {
    case ScalarType::Bool:
      return 0;
    case ScalarType::Int:
      return 1;
    case ScalarType::Long:
      return 2;
    case ScalarType::Float:
      return 3;
    case ScalarType::Double:
      return 4;
    default:
      return 1;
    }
  };
  return rank(a.scalar) >= rank(b.scalar) ? a : b;
}

struct Scope {
  std::map<std::string, Type> vars;
};

class FunctionChecker {
public:
  FunctionChecker(TranslationUnit &unit, FunctionDecl &fn,
                  DiagnosticEngine &diags, CallGraph &graph)
      : unit_(unit), fn_(fn), diags_(diags), graph_(graph) {}

  void run() {
    scopes_.emplace_back();
    for (const auto &p : fn_.params)
      declare(p.name, p.type, p.location);
    checkStmt(*fn_.bodyStmt);
    scopes_.pop_back();
  }

private:
  void declare(const std::string &name, const Type &type,
               SourceLocation loc) {
    if (scopes_.back().vars.count(name))
      diags_.error(loc, "redeclaration of '" + name + "'");
    scopes_.back().vars[name] = type;
  }

  const Type *lookup(const std::string &name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->vars.find(name);
      if (found != it->vars.end())
        return &found->second;
    }
    // class fields of the enclosing class
    if (!fn_.className.empty()) {
      if (const ClassDecl *cls = unit_.findClass(fn_.className)) {
        for (const auto &f : cls->fields)
          if (f.name == name)
            return &f.type;
      }
    }
    return nullptr;
  }

  void checkStmt(Statement &stmt) {
    switch (stmt.kind) {
    case StmtKind::Compound:
      scopes_.emplace_back();
      for (auto &s : stmt.body)
        checkStmt(*s);
      scopes_.pop_back();
      break;
    case StmtKind::Decl: {
      for (auto &dim : stmt.arrayDims)
        checkExpr(*dim);
      Type varType = stmt.declType;
      // Local arrays decay to pointers for typing purposes.
      varType.pointerDepth += static_cast<int>(stmt.arrayDims.size());
      if (stmt.declInit) {
        checkExpr(*stmt.declInit);
        if (varType.scalar == ScalarType::Class && !varType.isPointer())
          diags_.error(stmt.range.begin,
                       "class-typed variables cannot have initializers");
      }
      declare(stmt.declName, varType, stmt.range.begin);
      break;
    }
    case StmtKind::ExprStmt:
      if (stmt.expr)
        checkExpr(*stmt.expr);
      break;
    case StmtKind::For:
      scopes_.emplace_back();
      if (stmt.forInit)
        checkStmt(*stmt.forInit);
      if (stmt.forCond)
        checkExpr(*stmt.forCond);
      if (stmt.forInc)
        checkExpr(*stmt.forInc);
      if (stmt.loopBody)
        checkStmt(*stmt.loopBody);
      scopes_.pop_back();
      break;
    case StmtKind::While:
      if (stmt.forCond)
        checkExpr(*stmt.forCond);
      if (stmt.loopBody)
        checkStmt(*stmt.loopBody);
      break;
    case StmtKind::If:
      if (stmt.expr)
        checkExpr(*stmt.expr);
      if (stmt.thenBranch)
        checkStmt(*stmt.thenBranch);
      if (stmt.elseBranch)
        checkStmt(*stmt.elseBranch);
      break;
    case StmtKind::Return:
      if (stmt.expr) {
        checkExpr(*stmt.expr);
        if (fn_.returnType.isVoid())
          diags_.error(stmt.range.begin,
                       "void function '" + fn_.qualifiedName() +
                           "' returns a value");
      } else if (!fn_.returnType.isVoid()) {
        diags_.error(stmt.range.begin,
                     "non-void function '" + fn_.qualifiedName() +
                         "' returns nothing");
      }
      break;
    case StmtKind::Empty:
      break;
    }
  }

  void checkExpr(Expression &expr) {
    switch (expr.kind) {
    case ExprKind::IntLiteral:
      expr.type = makeType(ScalarType::Int);
      break;
    case ExprKind::FloatLiteral:
      expr.type = makeType(ScalarType::Double);
      break;
    case ExprKind::BoolLiteral:
      expr.type = makeType(ScalarType::Bool);
      break;
    case ExprKind::VarRef: {
      const Type *t = lookup(expr.name);
      if (!t) {
        diags_.error(expr.range.begin,
                     "use of undeclared identifier '" + expr.name + "'");
        expr.type = makeType(ScalarType::Int);
      } else {
        expr.type = *t;
      }
      break;
    }
    case ExprKind::Binary: {
      checkExpr(*expr.children[0]);
      checkExpr(*expr.children[1]);
      using frontend::BinaryOp;
      switch (expr.binaryOp) {
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
      case BinaryOp::Eq:
      case BinaryOp::Ne:
      case BinaryOp::LAnd:
      case BinaryOp::LOr:
        expr.type = makeType(ScalarType::Bool);
        break;
      case BinaryOp::Mod: {
        Type t = promote(expr.children[0]->type, expr.children[1]->type);
        if (t.isFloatingPoint())
          diags_.error(expr.range.begin, "'%' requires integer operands");
        expr.type = t;
        break;
      }
      default:
        expr.type = promote(expr.children[0]->type, expr.children[1]->type);
        break;
      }
      break;
    }
    case ExprKind::Unary:
      checkExpr(*expr.children[0]);
      expr.type = expr.unaryOp == frontend::UnaryOp::Not
                      ? makeType(ScalarType::Bool)
                      : expr.children[0]->type;
      break;
    case ExprKind::Assign: {
      Expression &target = *expr.children[0];
      checkExpr(target);
      checkExpr(*expr.children[1]);
      if (target.kind != ExprKind::VarRef && target.kind != ExprKind::Index &&
          target.kind != ExprKind::Member)
        diags_.error(expr.range.begin, "assignment target is not an lvalue");
      expr.type = target.type;
      break;
    }
    case ExprKind::Index: {
      checkExpr(*expr.children[0]);
      checkExpr(*expr.children[1]);
      Type base = expr.children[0]->type;
      if (!base.isPointer()) {
        diags_.error(expr.range.begin,
                     "subscripted value is not a pointer/array");
        expr.type = makeType(ScalarType::Int);
      } else {
        expr.type = base;
        --expr.type.pointerDepth;
      }
      if (!expr.children[1]->type.isInteger())
        diags_.error(expr.range.begin, "array subscript is not an integer");
      break;
    }
    case ExprKind::Member: {
      checkExpr(*expr.children[0]);
      const Type &base = expr.children[0]->type;
      if (base.scalar != ScalarType::Class) {
        diags_.error(expr.range.begin,
                     "member access on non-class value");
        expr.type = makeType(ScalarType::Int);
        break;
      }
      const ClassDecl *cls = unit_.findClass(base.className);
      const frontend::FieldDecl *field = nullptr;
      if (cls)
        for (const auto &f : cls->fields)
          if (f.name == expr.name)
            field = &f;
      if (!field) {
        diags_.error(expr.range.begin, "no field '" + expr.name +
                                           "' in class '" + base.className +
                                           "'");
        expr.type = makeType(ScalarType::Int);
      } else {
        expr.type = field->type;
      }
      break;
    }
    case ExprKind::Call:
      checkCall(expr);
      break;
    }
  }

  void checkCall(Expression &expr) {
    // `x(args)` where x is a class-typed variable is an operator() call.
    if (!expr.receiver && !expr.name.empty()) {
      if (const Type *t = lookup(expr.name)) {
        if (t->scalar == ScalarType::Class && !t->isPointer()) {
          expr.receiver =
              Expression::varRef(expr.name, expr.range);
          expr.receiver->type = *t;
          expr.name = "operator()";
        }
      }
    }

    for (auto &arg : expr.children)
      checkExpr(*arg);

    if (expr.receiver) {
      checkExpr(*expr.receiver);
      const Type &recvType = expr.receiver->type;
      if (recvType.scalar != ScalarType::Class) {
        diags_.error(expr.range.begin, "method call on non-class value");
        expr.type = makeType(ScalarType::Int);
        return;
      }
      std::string qualified = recvType.className + "::" + expr.name;
      const FunctionDecl *callee = unit_.findFunction(qualified);
      if (!callee) {
        diags_.error(expr.range.begin,
                     "no method '" + expr.name + "' in class '" +
                         recvType.className + "'");
        expr.type = makeType(ScalarType::Int);
        return;
      }
      if (callee->params.size() != expr.children.size())
        diags_.error(expr.range.begin,
                     "call to '" + qualified + "' with " +
                         std::to_string(expr.children.size()) +
                         " arguments; expected " +
                         std::to_string(callee->params.size()));
      expr.resolvedCallee = qualified;
      expr.type = callee->returnType;
      graph_.edges[fn_.qualifiedName()].insert(qualified);
      return;
    }

    // Free function: user-defined first, then builtins/externals.
    if (const FunctionDecl *callee = unit_.findFunction(expr.name)) {
      if (callee->params.size() != expr.children.size())
        diags_.error(expr.range.begin,
                     "call to '" + expr.name + "' with " +
                         std::to_string(expr.children.size()) +
                         " arguments; expected " +
                         std::to_string(callee->params.size()));
      expr.resolvedCallee = expr.name;
      expr.type = callee->returnType;
      graph_.edges[fn_.qualifiedName()].insert(expr.name);
      return;
    }
    for (const KnownFunction &kf : SemanticAnalyzer::knownFunctions()) {
      if (kf.name != expr.name)
        continue;
      if (kf.paramTypes.size() != expr.children.size()) {
        diags_.error(expr.range.begin,
                     "call to '" + expr.name + "' with wrong arity");
      }
      expr.resolvedCallee = expr.name;
      expr.isBuiltin = !kf.isExtern;
      expr.isExtern = kf.isExtern;
      expr.type = kf.returnType;
      graph_.externCalls[fn_.qualifiedName()].insert(expr.name);
      return;
    }
    diags_.error(expr.range.begin,
                 "call to undeclared function '" + expr.name + "'");
    expr.type = makeType(ScalarType::Int);
  }

  TranslationUnit &unit_;
  FunctionDecl &fn_;
  DiagnosticEngine &diags_;
  CallGraph &graph_;
  std::vector<Scope> scopes_;
};

} // namespace

SemanticAnalyzer::SemanticAnalyzer(DiagnosticEngine &diags) : diags_(diags) {}

const std::vector<KnownFunction> &SemanticAnalyzer::knownFunctions() {
  static const std::vector<KnownFunction> table = [] {
    Type d = makeType(ScalarType::Double);
    Type i = makeType(ScalarType::Int);
    Type v = makeType(ScalarType::Void);
    std::vector<KnownFunction> fns;
    // Builtins lowered to machine instructions:
    fns.push_back({"sqrt", d, {d}, false});
    fns.push_back({"fabs", d, {d}, false});
    fns.push_back({"fmin", d, {d, d}, false});
    fns.push_back({"fmax", d, {d, d}, false});
    fns.push_back({"min", i, {i, i}, false});
    fns.push_back({"max", i, {i, i}, false});
    // Externals: opaque library calls, the paper's residual error source.
    fns.push_back({"mc_clock", d, {}, true});
    fns.push_back({"mc_print", v, {d}, true});
    fns.push_back({"mc_print_int", v, {i}, true});
    fns.push_back({"mc_rand", d, {}, true});
    return fns;
  }();
  return table;
}

std::vector<std::string> CallGraph::topologicalOrder(bool &hasCycle) const {
  hasCycle = false;
  std::vector<std::string> order;
  std::map<std::string, int> state; // 0=unseen 1=visiting 2=done
  std::function<void(const std::string &)> visit =
      [&](const std::string &node) {
        int &s = state[node];
        if (s == 2)
          return;
        if (s == 1) {
          hasCycle = true;
          return;
        }
        s = 1;
        auto it = edges.find(node);
        if (it != edges.end())
          for (const std::string &callee : it->second)
            visit(callee);
        s = 2;
        order.push_back(node);
      };
  for (const auto &[caller, callees] : edges)
    visit(caller);
  return order;
}

SemaResult SemanticAnalyzer::analyze(TranslationUnit &unit) {
  SemaResult result;
  // Pre-populate call-graph nodes so leaf functions appear too.
  for (const FunctionDecl *fn : unit.allFunctions())
    result.callGraph.edges[fn->qualifiedName()];

  // Duplicate detection.
  {
    std::set<std::string> seen;
    for (const FunctionDecl *fn : unit.allFunctions()) {
      if (!seen.insert(fn->qualifiedName()).second)
        diags_.error(fn->range.begin,
                     "redefinition of function '" + fn->qualifiedName() +
                         "'");
    }
  }

  for (const auto &cls : unit.classes)
    for (const auto &method : cls->methods)
      FunctionChecker(unit, *method, diags_, result.callGraph).run();
  for (const auto &fn : unit.functions)
    FunctionChecker(unit, *fn, diags_, result.callGraph).run();

  bool hasCycle = false;
  result.callGraph.topologicalOrder(hasCycle);
  if (hasCycle)
    diags_.error({}, "recursive call cycle detected; MiniC models are "
                     "non-recursive");

  result.success = !diags_.hasErrors();
  return result;
}

} // namespace mira::sema
