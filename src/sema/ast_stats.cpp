#include "sema/ast_stats.h"

#include <functional>

namespace mira::sema {

using frontend::Statement;
using frontend::StmtKind;

LoopCoverage computeLoopCoverage(const frontend::TranslationUnit &unit) {
  LoopCoverage cov;
  std::function<void(const Statement &, bool)> walk =
      [&](const Statement &stmt, bool inLoop) {
        switch (stmt.kind) {
        case StmtKind::Compound:
          for (const auto &s : stmt.body)
            walk(*s, inLoop);
          return;
        case StmtKind::Empty:
          return;
        case StmtKind::For:
        case StmtKind::While:
          ++cov.loops;
          ++cov.statements;
          if (inLoop)
            ++cov.inLoopStatements;
          if (stmt.forInit)
            walk(*stmt.forInit, true);
          if (stmt.loopBody)
            walk(*stmt.loopBody, true);
          return;
        case StmtKind::If:
          ++cov.statements;
          if (inLoop)
            ++cov.inLoopStatements;
          if (stmt.thenBranch)
            walk(*stmt.thenBranch, inLoop);
          if (stmt.elseBranch)
            walk(*stmt.elseBranch, inLoop);
          return;
        default:
          ++cov.statements;
          if (inLoop)
            ++cov.inLoopStatements;
          return;
        }
      };
  for (const frontend::FunctionDecl *fn : unit.allFunctions())
    walk(*fn->bodyStmt, false);
  return cov;
}

} // namespace mira::sema
