// Semantic analysis for MiniC: scopes, types, call resolution, call graph.
//
// Fills Expression::type and Expression::resolvedCallee in place, rewrites
// `obj(args)` into operator() method calls, and builds the call graph the
// metric generator walks when combining per-function models (paper
// Sec. III-B5: handle_function_call).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "frontend/ast.h"
#include "support/diagnostics.h"

namespace mira::sema {

using frontend::FunctionDecl;
using frontend::TranslationUnit;
using frontend::Type;

/// Signature of a builtin or external function known to the analyzer.
struct KnownFunction {
  std::string name;
  Type returnType;
  std::vector<Type> paramTypes;
  bool isExtern = false; // externals are opaque to static analysis
};

/// Callees of each function, split by kind.
struct CallGraph {
  /// qualified caller -> qualified callees (user functions only)
  std::map<std::string, std::set<std::string>> edges;
  /// qualified caller -> extern/builtin callees
  std::map<std::string, std::set<std::string>> externCalls;

  /// Topological order (callees before callers); empty + error flag when
  /// recursion is present (MiniC models are non-recursive, like the
  /// paper's evaluation codes).
  std::vector<std::string> topologicalOrder(bool &hasCycle) const;
};

struct SemaResult {
  bool success = false;
  CallGraph callGraph;
};

class SemanticAnalyzer {
public:
  explicit SemanticAnalyzer(DiagnosticEngine &diags);

  /// Analyze and annotate the unit in place.
  SemaResult analyze(TranslationUnit &unit);

  /// The table of builtin functions MiniC programs may call. Builtins are
  /// modeled as machine instructions (sqrt -> SQRTSD etc.); externals
  /// (mc_print, mc_clock, mc_rand) are opaque calls with runtime cost the
  /// static model cannot see.
  static const std::vector<KnownFunction> &knownFunctions();

private:
  DiagnosticEngine &diags_;
};

} // namespace mira::sema
