#include "workloads/workloads.h"

namespace mira::workloads {

// NOTE: MiniC workloads follow a one-statement-per-line convention so the
// line-table bridge attributes machine instructions unambiguously (the
// same convention the paper's examples follow).

const std::string &streamSource() {
  static const std::string source = R"MC(
void stream_init(double* a, double* b, double* c, int n) {
  #pragma @Simulate {ff:yes}
  for (int j = 0; j < n; j++) {
    a[j] = 1.0;
    b[j] = 2.0;
    c[j] = 0.0;
  }
}

void copy_kernel(double* c, double* a, int n) {
  #pragma @Simulate {ff:yes}
  for (int j = 0; j < n; j++) {
    c[j] = a[j];
  }
}

void scale_kernel(double* b, double* c, double s, int n) {
  #pragma @Simulate {ff:yes}
  for (int j = 0; j < n; j++) {
    b[j] = s * c[j];
  }
}

void add_kernel(double* c, double* a, double* b, int n) {
  #pragma @Simulate {ff:yes}
  for (int j = 0; j < n; j++) {
    c[j] = a[j] + b[j];
  }
}

void triad_kernel(double* a, double* b, double* c, double s, int n) {
  #pragma @Simulate {ff:yes}
  for (int j = 0; j < n; j++) {
    a[j] = b[j] + s * c[j];
  }
}

double checksum(double* a, int n) {
  double total = 0.0;
  #pragma @Simulate {ff:yes}
  for (int j = 0; j < n; j++) {
    total = total + a[j];
  }
  return total;
}

int stream_main(int n, int ntimes) {
  double a[n];
  double b[n];
  double c[n];
  stream_init(a, b, c, n);
  for (int k = 0; k < ntimes; k++) {
    copy_kernel(c, a, n);
    scale_kernel(b, c, 3.0, n);
    add_kernel(c, a, b, n);
    triad_kernel(a, b, c, 3.0, n);
  }
  double s = checksum(a, n);
  mc_print(s);
  return 0;
}
)MC";
  return source;
}

const std::string &dgemmSource() {
  static const std::string source = R"MC(
void dgemm_init(double* a, double* b, double* c, int n) {
  int total = n * n;
  #pragma @Simulate {ff:yes}
  for (int i = 0; i < total; i++) {
    a[i] = 0.5;
    b[i] = 0.25;
    c[i] = 0.0;
  }
}

void dgemm_kernel(double* c, double* a, double* b, int n) {
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      #pragma @Simulate {ff:yes}
      for (int k = 0; k < n; k++) {
        c[i * n + j] = c[i * n + j] + a[i * n + k] * b[k * n + j];
      }
    }
  }
}

double dgemm_checksum(double* c, int n) {
  int total = n * n;
  double s = 0.0;
  #pragma @Simulate {ff:yes}
  for (int i = 0; i < total; i++) {
    s = s + c[i];
  }
  return s;
}

int dgemm_main(int n) {
  int total = n * n;
  double a[total];
  double b[total];
  double c[total];
  dgemm_init(a, b, c, n);
  dgemm_kernel(c, a, b, n);
  double s = dgemm_checksum(c, n);
  mc_print(s);
  return 0;
}
)MC";
  return source;
}

const std::string &minifeSource() {
  static const std::string source = R"MC(
class MatVec {
public:
  int nrows;
  int* row_ptr;
  int* cols;
  double* vals;
  void operator()(double* y, double* x) {
    for (int i = 0; i < nrows; i++) {
      double sum = 0.0;
      int jbeg = row_ptr[i];
      int jend = row_ptr[i + 1];
      #pragma @Annotation {lp_iters:nnz_row}
      #pragma @Simulate {ff:yes}
      for (int jj = jbeg; jj < jend; jj++) {
        sum = sum + vals[jj] * x[cols[jj]];
      }
      y[i] = sum;
    }
  }
};

double dot(double* x, double* y, int n) {
  double result = 0.0;
  #pragma @Simulate {ff:yes}
  for (int i = 0; i < n; i++) {
    result = result + x[i] * y[i];
  }
  return result;
}

void waxpby(double alpha, double* x, double beta, double* y, double* w, int n) {
  #pragma @Simulate {ff:yes}
  for (int i = 0; i < n; i++) {
    w[i] = alpha * x[i] + beta * y[i];
  }
}

int build_matrix(int* row_ptr, int* cols, double* vals, int nx, int ny, int nz) {
  int nnz = 0;
  row_ptr[0] = 0;
  for (int iz = 0; iz < nz; iz++) {
    for (int iy = 0; iy < ny; iy++) {
      for (int ix = 0; ix < nx; ix++) {
        int row = ix + nx * iy + nx * ny * iz;
        if (iz > 0) {
          cols[nnz] = row - nx * ny;
          vals[nnz] = 0.0 - 1.0;
          nnz = nnz + 1;
        }
        if (iy > 0) {
          cols[nnz] = row - nx;
          vals[nnz] = 0.0 - 1.0;
          nnz = nnz + 1;
        }
        if (ix > 0) {
          cols[nnz] = row - 1;
          vals[nnz] = 0.0 - 1.0;
          nnz = nnz + 1;
        }
        cols[nnz] = row;
        vals[nnz] = 7.0;
        nnz = nnz + 1;
        if (ix < nx - 1) {
          cols[nnz] = row + 1;
          vals[nnz] = 0.0 - 1.0;
          nnz = nnz + 1;
        }
        if (iy < ny - 1) {
          cols[nnz] = row + nx;
          vals[nnz] = 0.0 - 1.0;
          nnz = nnz + 1;
        }
        if (iz < nz - 1) {
          cols[nnz] = row + nx * ny;
          vals[nnz] = 0.0 - 1.0;
          nnz = nnz + 1;
        }
        row_ptr[row + 1] = nnz;
      }
    }
  }
  return nnz;
}

double cg_solve(int nx, int ny, int nz, int max_iters) {
  int nrows = nx * ny * nz;
  int maxnnz = nrows * 7;
  double x[nrows];
  double b[nrows];
  double r[nrows];
  double p[nrows];
  double ap[nrows];
  int row_ptr[nrows + 1];
  int cols[maxnnz];
  double vals[maxnnz];
  MatVec a;
  int nnz = build_matrix(row_ptr, cols, vals, nx, ny, nz);
  a.nrows = nrows;
  a.row_ptr = row_ptr;
  a.cols = cols;
  a.vals = vals;
  #pragma @Simulate {ff:yes}
  for (int i = 0; i < nrows; i++) {
    x[i] = 0.0;
    b[i] = 1.0;
    r[i] = 1.0;
    p[i] = 1.0;
  }
  double rtrans = dot(r, r, nrows);
  for (int iter = 0; iter < max_iters; iter++) {
    a(ap, p);
    double pap = dot(p, ap, nrows);
    double alpha = rtrans / pap;
    waxpby(1.0, x, alpha, p, x, nrows);
    waxpby(1.0, r, 0.0 - alpha, ap, r, nrows);
    double new_rtrans = dot(r, r, nrows);
    double beta = new_rtrans / rtrans;
    rtrans = new_rtrans;
    waxpby(1.0, r, beta, p, p, nrows);
  }
  double norm = sqrt(rtrans);
  return norm;
}

int minife_main(int nx, int ny, int nz, int max_iters) {
  double norm = cg_solve(nx, ny, nz, max_iters);
  mc_print(norm);
  return 0;
}
)MC";
  return source;
}

const std::string &fig5Source() {
  static const std::string source = R"MC(
class A {
public:
  void foo(double* a, int* len) {
    for (int i = 0; i < 16; i++) {
      #pragma @Annotation {lp_init:0, lp_cond:y}
      for (int j = 0; j < len[i]; j++) {
        a[j] = a[j] * 2.0 + 1.0;
      }
    }
  }
};

int fig5_main(int total) {
  double buf[total];
  int len[16];
  #pragma @Simulate {ff:yes}
  for (int i = 0; i < total; i++) {
    buf[i] = 1.0;
  }
  for (int i = 0; i < 16; i++) {
    len[i] = 8;
  }
  A obj;
  obj.foo(buf, len);
  return 0;
}
)MC";
  return source;
}

const std::string &listingsSource() {
  static const std::string source = R"MC(
int listing1() {
  int s = 0;
  for (int i = 0; i < 10; i++) {
    s = s + 1;
  }
  return s;
}

int listing2() {
  int s = 0;
  for (int i = 1; i <= 4; i++) {
    for (int j = i + 1; j <= 6; j++) {
      s = s + 1;
    }
  }
  return s;
}

int listing4() {
  int s = 0;
  for (int i = 1; i <= 4; i++) {
    for (int j = i + 1; j <= 6; j++) {
      if (j > 4) {
        s = s + 1;
      }
    }
  }
  return s;
}

int listing5() {
  int s = 0;
  for (int i = 1; i <= 4; i++) {
    for (int j = i + 1; j <= 6; j++) {
      if (j % 4 != 0) {
        s = s + 1;
      }
    }
  }
  return s;
}

int listing3(int* bounds) {
  int s = 0;
  for (int i = 1; i <= 5; i++) {
    #pragma @Annotation {lp_init:jlo, lp_cond:jhi}
    for (int j = min(6 - i, 3); j <= max(8 - i, i); j++) {
      s = s + 1;
    }
  }
  return s;
}

int listings_main() {
  int buf[4];
  buf[0] = 0;
  int total = listing1() + listing2() + listing4() + listing5() + listing3(buf);
  mc_print_int(total);
  return total;
}
)MC";
  return source;
}

const std::vector<NamedSource> &figSeriesWorkloads() {
  static const std::vector<NamedSource> series = {
      {"stream", &streamSource()},
      {"dgemm", &dgemmSource()},
      {"minife", &minifeSource()},
      {"fig5", &fig5Source()},
      {"listings", &listingsSource()},
  };
  return series;
}

} // namespace mira::workloads
