#include "workloads/coverage_suite.h"

namespace mira::workloads {

namespace {

// Small MiniC kernels whose statement/loop profile approximates the
// corresponding Table I application: mostly-in-loop numeric code with a
// few out-of-loop scalar setups.

const char *kApplu = R"MC(
void applu_rhs(double* u, double* rsd, int nx, int ny, int nz) {
  double c1 = 1.4;
  double c2 = 0.4;
  int n = nx * ny * nz;
  for (int k = 0; k < nz; k++) {
    for (int j = 0; j < ny; j++) {
      for (int i = 0; i < nx; i++) {
        int idx = i + nx * j + nx * ny * k;
        double t = u[idx];
        rsd[idx] = c1 * t - c2 * t * t;
        rsd[idx] = rsd[idx] + 0.5 * t;
      }
    }
  }
  for (int i = 0; i < n; i++) {
    u[i] = u[i] + rsd[i];
  }
}
)MC";

const char *kApsi = R"MC(
void apsi_smooth(double* w, double* t, int nx, int ny) {
  double dtdx = 0.25;
  double eps = 0.0001;
  int n = nx * ny;
  for (int j = 1; j < ny - 1; j++) {
    for (int i = 1; i < nx - 1; i++) {
      int idx = i + nx * j;
      double lap = t[idx - 1] + t[idx + 1] + t[idx - nx] + t[idx + nx];
      w[idx] = t[idx] + dtdx * (lap - 4.0 * t[idx]);
      if (w[idx] < eps) {
        w[idx] = eps;
      }
    }
  }
  for (int i = 0; i < n; i++) {
    t[i] = w[i];
  }
}
)MC";

const char *kMdg = R"MC(
void mdg_forces(double* x, double* f, int n) {
  double cutoff = 2.5;
  for (int i = 0; i < n; i++) {
    f[i] = 0.0;
  }
  for (int i = 0; i < n; i++) {
    for (int j = i + 1; j < n; j++) {
      double d = x[j] - x[i];
      double d2 = d * d;
      if (d2 < cutoff) {
        double inv = 1.0 / (d2 + 0.001);
        double s = inv * inv * inv;
        f[i] = f[i] + s * d;
        f[j] = f[j] - s * d;
      }
    }
  }
}
)MC";

const char *kLucas = R"MC(
void lucas_fft_pass(double* re, double* im, int n) {
  for (int s = 1; s < n; s = s + s) {
    for (int k = 0; k < n; k++) {
      double wr = 1.0 - 0.5 * s;
      double wi = 0.5 * s;
      double tr = wr * re[k] - wi * im[k];
      double ti = wr * im[k] + wi * re[k];
      re[k] = re[k] + tr;
      im[k] = im[k] + ti;
      re[k] = re[k] * 0.5;
      im[k] = im[k] * 0.5;
    }
  }
}
)MC";

const char *kMgrid = R"MC(
void mgrid_resid(double* u, double* v, double* r, int n) {
  for (int i = 1; i < n - 1; i++) {
    r[i] = v[i] - 2.0 * u[i] + u[i - 1] + u[i + 1];
  }
  for (int i = 1; i < n - 1; i++) {
    u[i] = u[i] + 0.66 * r[i];
  }
  for (int i = 0; i < n; i++) {
    v[i] = u[i];
  }
}
)MC";

const char *kQuake = R"MC(
void quake_step(double* disp, double* vel, double* m, int n, int steps) {
  double dt = 0.0024;
  double duration = dt * steps;
  double damping = 0.1;
  int checks = 0;
  mc_print(duration);
  for (int t = 0; t < steps; t++) {
    for (int i = 0; i < n; i++) {
      double dv = damping * vel[i] * dt;
      vel[i] = vel[i] - dv;
      double accel = vel[i] / m[i];
      disp[i] = disp[i] + accel * dt;
      if (disp[i] > 100.0) {
        disp[i] = 100.0;
      }
    }
    for (int i = 1; i < n - 1; i++) {
      double smooth = 0.5 * (disp[i - 1] + disp[i + 1]);
      disp[i] = 0.75 * disp[i] + 0.25 * smooth;
    }
  }
  checks = checks + 1;
  mc_print_int(checks);
}
)MC";

const char *kSwim = R"MC(
void swim_calc(double* p, double* u, double* v, int nx, int ny) {
  for (int j = 0; j < ny; j++) {
    for (int i = 0; i < nx; i++) {
      int idx = i + nx * j;
      double flux = u[idx] * p[idx];
      v[idx] = v[idx] + 0.5 * flux;
      p[idx] = p[idx] - 0.25 * flux;
    }
  }
}
)MC";

const char *kAdm = R"MC(
void adm_pressure(double* pr, double* div, int nx, int ny, int iters) {
  double omega = 1.78;
  double tol = 0.001;
  int n = nx * ny;
  for (int it = 0; it < iters; it++) {
    for (int j = 1; j < ny - 1; j++) {
      for (int i = 1; i < nx - 1; i++) {
        int idx = i + nx * j;
        double nb = pr[idx - 1] + pr[idx + 1] + pr[idx - nx] + pr[idx + nx];
        double upd = 0.25 * (nb - div[idx]);
        pr[idx] = pr[idx] + omega * (upd - pr[idx]);
        if (upd < tol) {
          pr[idx] = pr[idx] + tol;
        }
      }
    }
  }
  for (int i = 0; i < n; i++) {
    div[i] = 0.0;
  }
}
)MC";

const char *kDyfesm = R"MC(
void dyfesm_elem(double* stiff, double* disp, double* force, int nelem) {
  double ym = 30000000.0;
  double area = 1.5;
  for (int e = 0; e < nelem; e++) {
    double k = ym * area * stiff[e];
    double d = disp[e + 1] - disp[e];
    force[e] = force[e] + k * d;
    force[e + 1] = force[e + 1] - k * d;
    if (force[e] > ym) {
      force[e] = ym;
    }
  }
  for (int e = 0; e < nelem; e++) {
    disp[e] = disp[e] + force[e] / (ym * area);
  }
}
)MC";

const char *kMg3d = R"MC(
void mg3d_relax(double* u, double* rhs, int nx, int ny, int nz) {
  double w = 0.9;
  for (int k = 1; k < nz - 1; k++) {
    for (int j = 1; j < ny - 1; j++) {
      for (int i = 1; i < nx - 1; i++) {
        int idx = i + nx * j + nx * ny * k;
        double nb = u[idx - 1] + u[idx + 1] + u[idx - nx] + u[idx + nx];
        double nb2 = u[idx - nx * ny] + u[idx + nx * ny];
        double upd = (nb + nb2 - rhs[idx]) / 6.0;
        u[idx] = u[idx] + w * (upd - u[idx]);
      }
    }
  }
}
)MC";

} // namespace

const std::vector<CoverageKernel> &coverageSuite() {
  static const std::vector<CoverageKernel> suite = {
      {"applu", kApplu, 19, 757, 633, 84},
      {"apsi", kApsi, 80, 2192, 1839, 84},
      {"mdg", kMdg, 17, 530, 464, 88},
      {"lucas", kLucas, 4, 2070, 2050, 99},
      {"mgrid", kMgrid, 12, 369, 369, 100},
      {"quake", kQuake, 20, 639, 489, 77},
      {"swim", kSwim, 6, 123, 123, 100},
      {"adm", kAdm, 80, 2260, 1899, 84},
      {"dyfesm", kDyfesm, 75, 1497, 1280, 86},
      {"mg3d", kMg3d, 39, 1442, 1242, 86},
  };
  return suite;
}

} // namespace mira::workloads
