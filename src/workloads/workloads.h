// Embedded MiniC workloads: the paper's evaluation programs
// (Sec. IV-B/C) ported to MiniC, plus the polyhedral listings of Sec. III
// and the Fig. 5 model-generation example.
//
// '#pragma @Simulate {ff:yes}' marks loops whose skipped memory side
// effects cannot change later control flow, enabling simulator
// fast-forward at large problem sizes (validated against exact execution
// in tests at small sizes).
#pragma once

#include <string>
#include <vector>

namespace mira::workloads {

/// STREAM (McCalpin): init + copy/scale/add/triad kernels repeated
/// `ntimes`, checksum, print. Entry: stream_main(n, ntimes).
/// FPI per rep per element: scale 1, add 1, triad 2.
const std::string &streamSource();

/// DGEMM (HPCC-style triple loop): C += A*B on n x n matrices.
/// Entry: dgemm_main(n). FPI = 2*n^3 (+ O(n^2) checksum).
const std::string &dgemmSource();

/// miniFE-like conjugate gradient: 7-point Laplacian assembled in CSR,
/// fixed-iteration CG with waxpby / dot / MatVec::operator() call chain.
/// Entry: cg_solve(nx, ny, nz, max_iters); also run via minife_main.
const std::string &minifeSource();

/// Paper Fig. 5(a): class A member function with an annotated inner loop
/// bound (the y_16 parameter pattern), called from a driver.
const std::string &fig5Source();

/// Paper listings 1 / 2 / 4 / 5 wrapped in functions (listing 3 is the
/// min/max exception that requires annotation).
const std::string &listingsSource();

/// A named workload source, as consumed by the batch driver.
struct NamedSource {
  std::string name;
  const std::string *source; // points at the embedded static string
};

/// All fig-series workloads above (stream, dgemm, minife, fig5,
/// listings) in stable order — the standard batch-driver sweep.
const std::vector<NamedSource> &figSeriesWorkloads();

} // namespace mira::workloads
