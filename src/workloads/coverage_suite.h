// Loop-coverage suite (paper Table I).
//
// Table I surveys loop coverage in ten HPC applications (applu, apsi,
// mdg, lucas, mgrid, quake, swim, adm, dyfesm, mg3d — SPEC/Perfect
// codes we cannot redistribute). The suite substitutes ten MiniC kernels
// whose loop/statement structure mirrors each application's profile; the
// bench runs Mira's coverage analyzer over them and prints our numbers
// next to the paper's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mira::workloads {

struct CoverageKernel {
  std::string name;           // paper application name
  std::string source;         // MiniC stand-in
  std::size_t paperLoops;     // Table I column 1
  std::size_t paperStatements;    // column 2
  std::size_t paperInLoop;        // column 3
  int paperPercent;               // column 4
};

const std::vector<CoverageKernel> &coverageSuite();

} // namespace mira::workloads
