/// \file
/// C++ client for the analysis daemon (`mira-cli serve`).
///
/// Client wraps one connection to a daemon socket and exposes each
/// protocol request (server/protocol.h) as a blocking call returning
/// decoded results. The connection is persistent: many requests may be
/// issued over one Client, which is exactly the amortization the daemon
/// exists for. Errors — connect failures, protocol violations, Error
/// replies from the daemon — surface as a false return plus a
/// human-readable lastError(); nothing throws. `mira-cli client` is a
/// thin shell around this class, and tests/server_test.cpp drives both
/// ends in one process.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/mira.h"
#include "driver/batch.h"
#include "server/protocol.h"
#include "support/socket.h"

namespace mira::server {

/// A decoded analysis result from the daemon: the wire AnalyzeReply with
/// its result payload unpacked into usable parts.
struct ClientOutcome {
  std::string name;        ///< producer name from the payload
  bool ok = false;         ///< analysis produced a model
  bool cacheHit = false;   ///< daemon served it without recomputation
  std::uint64_t micros = 0;    ///< server-side wall time
  std::string diagnostics;     ///< rendered warnings/errors
  std::string payload;         ///< raw result payload (byte-comparable)
  /// Deserialized model; null when !ok. Shares no state with the daemon.
  std::shared_ptr<const core::AnalysisResult> analysis;
  /// Loop-coverage summary riding along in v2 payloads (absent over
  /// protocol v1 and for entries restored from v1 disk blobs).
  std::optional<sema::LoopCoverage> coverage;
};

/// One blocking connection to an AnalysisServer socket.
class Client {
public:
  Client() = default;

  /// Coarse classification of the most recent failure, so callers (the
  /// CLI in particular) can distinguish "no daemon there" from "the
  /// daemon vanished mid-conversation" without parsing lastError() text.
  enum class ErrorKind {
    none,      ///< no failure recorded
    connect,   ///< could not establish (or never had) a connection
    transport, ///< the connection died mid-conversation (EOF, send/recv)
    protocol,  ///< the peer spoke the protocol wrong (or a frame-cap hit)
    daemon,    ///< the daemon answered with an Error reply
    busy,      ///< gave up after the configured Busy retries
  };

  /// Wire dialect to speak: kProtocolVersion (default) or, for
  /// compatibility testing against older daemons and the v1-client CI
  /// check, kProtocolVersionMin. Version 1 cannot issue coverage() or
  /// simulate(). Must be set before the first request.
  void setProtocolVersion(std::uint32_t version) { version_ = version; }
  std::uint32_t protocolVersion() const { return version_; }

  /// How many times a request refused with Busy is retried (after
  /// sleeping for the daemon's retry hint) before giving up with an
  /// error. 0 = fail on the first Busy.
  void setBusyRetries(std::size_t retries) { busy_retries_ = retries; }
  std::size_t busyRetries() const { return busy_retries_; }

  /// Bound on establishing a TCP connection, milliseconds (<= 0 waits
  /// indefinitely). Unix-domain connects are immediate and unaffected.
  void setConnectTimeoutMillis(int millis) { connect_timeout_ = millis; }

  /// Bound on waiting for any single reply frame, milliseconds (<= 0
  /// waits indefinitely, the default). A stalled daemon then surfaces
  /// as a transport failure instead of a hang. Applies to connections
  /// opened after the call, on either transport.
  void setReadTimeoutMillis(int millis) { read_timeout_ = millis; }

  /// Shared secret for daemons started with one: connect()/connectTcp()
  /// then sends a Hello frame as the session's first request and fails
  /// (ErrorKind::connect) unless the daemon answers helloReply. Empty
  /// (default) skips the handshake. Requires protocol v2.
  void setSecret(const std::string &secret) { secret_ = secret; }

  /// Connect to the daemon socket at `path`. False (see lastError()) if
  /// no daemon is listening.
  bool connect(const std::string &path);

  /// Connect to a daemon's TCP endpoint at `host:port`, honoring the
  /// connect timeout. False (see lastError()) when unreachable or the
  /// handshake is rejected.
  bool connectTcp(const std::string &host, std::uint16_t port);

  bool connected() const { return socket_.valid(); }

  /// Close the connection; the client can connect() again afterwards.
  void disconnect();

  /// Round-trip a ping. True when the daemon answered pong.
  bool ping();

  /// Analyze one named source under `options` (only the wire-visible
  /// option bits travel; see protocol OptionFlags).
  bool analyze(const std::string &name, const std::string &source,
               const core::MiraOptions &options, ClientOutcome &outcome);

  /// Analyze many sources in one request; outcomes arrive in input
  /// order. False on transport/protocol failure (partial results are
  /// discarded).
  bool analyzeBatch(const std::vector<SourceItem> &items,
                    const core::MiraOptions &options,
                    std::vector<ClientOutcome> &outcomes);

  /// Analyze many sources as individual pipelined requests on this one
  /// connection: all frames are written up front and the replies —
  /// which the daemon guarantees arrive in request order — are read
  /// back in sequence. Unlike analyzeBatch the daemon treats each item
  /// as its own request, so items refused with Busy are retried in
  /// follow-up rounds (honoring the retry hint) while accepted items'
  /// results are kept. Outcomes arrive in input order; payload bytes
  /// are identical to one-shot analyze() calls of the same items.
  bool analyzePipelined(const std::vector<SourceItem> &items,
                        const core::MiraOptions &options,
                        std::vector<ClientOutcome> &outcomes);

  /// Loop-coverage summary of one source (protocol v2). Served from the
  /// daemon's cached coverage summary when warm — no recompilation.
  bool coverage(const std::string &name, const std::string &source,
                const core::MiraOptions &options, CoverageReply &reply);

  /// Run the simulator on one source (protocol v2). A warm daemon
  /// reuses the cached analysis and at most recompiles the binary
  /// (reply.recompiled); the model stage never re-runs.
  bool simulate(const std::string &name, const std::string &source,
                const core::MiraOptions &options,
                const core::SimulationArgs &sim, SimulateReply &reply);

  /// Diff two serialized corpus manifests (corpus::serializeManifest
  /// bytes) on the daemon (protocol v2). The daemon validates both
  /// blobs and answers the added/changed/removed entry lists that an
  /// incremental `batch --manifest --since` run would act on.
  bool manifestDiff(const std::string &oldManifestBytes,
                    const std::string &newManifestBytes,
                    ManifestDiffReply &reply);

  /// Called for each BatchProgress frame a manifestBatch() streams back
  /// (cumulative counts; the daemon sends one per executed chunk).
  using ProgressFn = std::function<void(const BatchProgress &)>;

  /// Execute a whole corpus manifest on the daemon (protocol v2): the
  /// daemon diffs against `sinceBytes` (when non-empty), keeps shard
  /// `shard` of the result, analyzes on its compute pool, and answers
  /// one serialized BatchReport (driver::deserializeBatchReport bytes)
  /// that is byte-identical to a local `mira-cli batch --manifest` over
  /// the same manifest, options, and cache. `root` overrides the
  /// manifest's recorded source root; empty keeps it. With `onProgress`
  /// set the request asks for streaming progress frames and invokes the
  /// callback as they arrive. A Busy refusal is retried like every
  /// other request (the daemon has not started the batch).
  bool manifestBatch(const std::string &manifestBytes,
                     const std::string &sinceBytes, const std::string &root,
                     const driver::ShardSpec &shard,
                     const core::MiraOptions &options,
                     const ProgressFn &onProgress, std::string &reportBytes);

  /// Fetch the daemon's counter block.
  bool cacheStats(ServerStats &stats);

  /// Fetch the daemon's full metrics registry (protocol v2): every
  /// named counter and gauge, name-sorted — the same numbers the
  /// --metrics-file dump renders.
  bool metrics(std::vector<MetricSample> &samples);

  /// Ask the daemon to shut down cleanly. True once the daemon
  /// acknowledged (it drains in-flight work and exits afterwards).
  bool shutdownServer();

  /// Description of the most recent failure (connect, send, receive,
  /// decode, or an Error reply's message).
  const std::string &lastError() const { return error_; }

  /// Classification of the most recent failure; ErrorKind::none after a
  /// success.
  ErrorKind lastErrorKind() const { return kind_; }

private:
  /// Send `request`, receive one reply frame, validate its header and
  /// check for Error replies. A Busy refusal is retried up to
  /// busyRetries() times after sleeping for the daemon's hint. On
  /// success `reply` holds the body of a reply of type `expected`.
  bool roundTrip(const std::string &request, MessageType expected,
                 std::string &reply);
  /// Receive one reply frame, validate the header, surface Error
  /// replies as failures; `reply` is left holding the body only.
  bool receiveReply(MessageType &type, std::string &reply);
  bool decodeOutcome(const AnalyzeReply &wire, ClientOutcome &outcome);
  bool fail(ErrorKind kind, const std::string &message);
  /// Shared tail of connect()/connectTcp(): arm the read timeout and
  /// run the Hello handshake when a secret is configured. On handshake
  /// failure the socket is closed and ErrorKind::connect recorded (the
  /// session was never usable).
  bool finishConnect(const std::string &where);

  net::Socket socket_;
  std::string error_;
  ErrorKind kind_ = ErrorKind::none;
  std::uint32_t version_ = kProtocolVersion;
  std::size_t busy_retries_ = 8;
  int connect_timeout_ = 0;
  int read_timeout_ = 0;
  std::string secret_;
};

} // namespace mira::server
