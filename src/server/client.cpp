#include "server/client.h"

#include <chrono>
#include <thread>

#include "driver/batch.h"

namespace mira::server {

bool Client::fail(ErrorKind kind, const std::string &message) {
  kind_ = kind;
  error_ = message;
  return false;
}

bool Client::connect(const std::string &path) {
  disconnect();
  std::string error;
  socket_ = net::connectUnix(path, error);
  if (!socket_.valid())
    return fail(ErrorKind::connect, error);
  return finishConnect("'" + path + "'");
}

bool Client::connectTcp(const std::string &host, std::uint16_t port) {
  disconnect();
  std::string error;
  socket_ = net::connectTcp(host, port, connect_timeout_, error);
  if (!socket_.valid())
    return fail(ErrorKind::connect, error);
  return finishConnect(host + ":" + std::to_string(port));
}

bool Client::finishConnect(const std::string &where) {
  if (read_timeout_ > 0)
    net::setReadTimeout(socket_.fd(), read_timeout_);
  if (!secret_.empty()) {
    // The handshake is this session's first frame; any failure means
    // the connection never became usable, so it classifies as connect.
    std::string reply;
    if (!roundTrip(encodeHelloRequest(secret_), MessageType::helloReply,
                   reply)) {
      disconnect();
      return fail(ErrorKind::connect,
                  "handshake with " + where + " failed: " + error_);
    }
  }
  kind_ = ErrorKind::none;
  return true;
}

void Client::disconnect() { socket_.close(); }

bool Client::receiveReply(MessageType &type, std::string &reply) {
  net::FrameStatus status =
      net::readFrame(socket_.fd(), reply, kMaxFrameBytes);
  if (status != net::FrameStatus::ok) {
    disconnect();
    switch (status) {
    case net::FrameStatus::closed:
      return fail(ErrorKind::transport, "daemon closed the connection");
    case net::FrameStatus::truncated:
      return fail(ErrorKind::transport,
                  "daemon closed the connection mid-reply");
    case net::FrameStatus::oversized:
      return fail(ErrorKind::protocol, "reply frame exceeds the frame cap");
    default:
      return fail(ErrorKind::transport, "receive failed");
    }
  }
  bio::Reader r{reply, 0};
  std::string headerError;
  if (!readHeader(r, type, headerError)) {
    disconnect();
    return fail(ErrorKind::protocol, "malformed reply: " + headerError);
  }
  if (type == MessageType::error) {
    std::string message;
    // The daemon closes the connection after an Error reply.
    disconnect();
    if (decodeErrorReply(r, message))
      return fail(ErrorKind::daemon, "daemon error: " + message);
    return fail(ErrorKind::protocol, "daemon error (unreadable message)");
  }
  // Strip the consumed header so callers decode the body only.
  reply.erase(0, r.offset);
  return true;
}

bool Client::roundTrip(const std::string &request, MessageType expected,
                       std::string &reply) {
  if (!socket_.valid())
    return fail(ErrorKind::connect, "not connected");
  // The frame cap is a protocol MUST for both peers: refuse to send an
  // over-cap request up front, with the actionable message the daemon
  // could never deliver (it would close the connection mid-send).
  if (request.size() > kMaxFrameBytes)
    return fail(ErrorKind::protocol,
                "request of " + std::to_string(request.size()) +
                    " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                    "-byte frame cap; split the request");
  for (std::size_t attempt = 0;; ++attempt) {
    if (!net::writeFrame(socket_.fd(), request)) {
      disconnect();
      return fail(ErrorKind::transport, "send failed (daemon gone?)");
    }
    MessageType type{};
    if (!receiveReply(type, reply))
      return false;
    if (type == MessageType::busyReply) {
      // The daemon refused without queueing and left the connection
      // open: back off for the server-supplied hint and resend.
      bio::Reader r{reply, 0};
      BusyReply busy;
      if (!decodeBusyReply(r, busy)) {
        disconnect();
        return fail(ErrorKind::protocol, "malformed busy reply");
      }
      if (attempt >= busy_retries_)
        return fail(ErrorKind::busy,
                    "daemon at capacity (gave up after " +
                        std::to_string(busy_retries_) + " retries)");
      std::this_thread::sleep_for(std::chrono::milliseconds(
          busy.retryAfterMillis ? busy.retryAfterMillis : 10));
      continue;
    }
    if (type != expected) {
      disconnect();
      return fail(ErrorKind::protocol,
                  "unexpected reply type " +
                      std::to_string(static_cast<unsigned>(type)));
    }
    return true;
  }
}

bool Client::ping() {
  std::string reply;
  return roundTrip(encodeEmptyMessage(MessageType::ping, version_),
                   MessageType::pong, reply);
}

bool Client::decodeOutcome(const AnalyzeReply &wire, ClientOutcome &outcome) {
  outcome = ClientOutcome();
  outcome.cacheHit = wire.cacheHit;
  outcome.micros = wire.micros;
  outcome.payload = wire.payload;
  std::shared_ptr<const core::AnalysisResult> analysis;
  // The payload dialect follows the protocol version this client spoke
  // (the daemon replies in kind).
  const bool parsed =
      version_ >= 2
          ? driver::deserializeArtifactPayload(wire.payload, analysis,
                                               outcome.coverage,
                                               outcome.diagnostics,
                                               outcome.name)
          : driver::deserializeOutcomePayloadV1(wire.payload, analysis,
                                                outcome.diagnostics,
                                                outcome.name);
  if (!parsed)
    return fail(ErrorKind::protocol, "malformed result payload in reply");
  outcome.analysis = std::move(analysis);
  outcome.ok = outcome.analysis != nullptr;
  return true;
}

bool Client::analyze(const std::string &name, const std::string &source,
                     const core::MiraOptions &options,
                     ClientOutcome &outcome) {
  SourceItem item{name, source};
  std::string reply;
  if (!roundTrip(encodeAnalyzeRequest(item, packOptions(options), version_),
                 MessageType::analyzeReply, reply))
    return false;
  bio::Reader r{reply, 0};
  AnalyzeReply wire;
  if (!decodeAnalyzeReply(r, wire)) {
    disconnect();
    return fail(ErrorKind::protocol, "malformed analyze reply");
  }
  return decodeOutcome(wire, outcome);
}

bool Client::analyzeBatch(const std::vector<SourceItem> &items,
                          const core::MiraOptions &options,
                          std::vector<ClientOutcome> &outcomes) {
  std::string reply;
  if (!roundTrip(encodeBatchRequest(items, packOptions(options), version_),
                 MessageType::batchReply, reply))
    return false;
  bio::Reader r{reply, 0};
  std::vector<AnalyzeReply> wires;
  if (!decodeBatchReply(r, wires)) {
    disconnect();
    return fail(ErrorKind::protocol, "malformed batch reply");
  }
  if (wires.size() != items.size())
    return fail(ErrorKind::protocol, "batch reply count mismatch");
  // Decode into a local vector so a mid-loop failure leaves the
  // caller's outcomes untouched (the documented all-or-nothing
  // contract).
  std::vector<ClientOutcome> decoded;
  decoded.reserve(wires.size());
  for (const AnalyzeReply &wire : wires) {
    ClientOutcome outcome;
    if (!decodeOutcome(wire, outcome))
      return false;
    decoded.push_back(std::move(outcome));
  }
  outcomes = std::move(decoded);
  return true;
}

bool Client::analyzePipelined(const std::vector<SourceItem> &items,
                              const core::MiraOptions &options,
                              std::vector<ClientOutcome> &outcomes) {
  if (!socket_.valid())
    return fail(ErrorKind::connect, "not connected");
  std::vector<ClientOutcome> decoded(items.size());
  std::vector<std::size_t> pending(items.size());
  for (std::size_t i = 0; i < items.size(); ++i)
    pending[i] = i;
  std::uint32_t retryHintMillis = 0;

  for (std::size_t round = 0; !pending.empty(); ++round) {
    if (round > 0) {
      if (round > busy_retries_)
        return fail(ErrorKind::busy, "daemon at capacity (gave up after " +
                    std::to_string(busy_retries_) + " retries)");
      std::this_thread::sleep_for(std::chrono::milliseconds(
          retryHintMillis ? retryHintMillis : 10));
    }
    // Write every outstanding request up front, then read the replies
    // back: the daemon answers strictly in request order, so the i-th
    // reply frame belongs to the i-th frame of this round.
    for (std::size_t idx : pending) {
      const std::string request =
          encodeAnalyzeRequest(items[idx], packOptions(options), version_);
      if (request.size() > kMaxFrameBytes)
        return fail(ErrorKind::protocol, "request of " + std::to_string(request.size()) +
                    " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                    "-byte frame cap; split the request");
      if (!net::writeFrame(socket_.fd(), request)) {
        disconnect();
        return fail(ErrorKind::transport, "send failed (daemon gone?)");
      }
    }
    std::vector<std::size_t> refused;
    for (std::size_t idx : pending) {
      std::string reply;
      MessageType type{};
      if (!receiveReply(type, reply))
        return false;
      if (type == MessageType::busyReply) {
        // Refused without queueing; the connection stays open and the
        // item goes into the next round.
        bio::Reader r{reply, 0};
        BusyReply busy;
        if (!decodeBusyReply(r, busy)) {
          disconnect();
          return fail(ErrorKind::protocol, "malformed busy reply");
        }
        retryHintMillis = busy.retryAfterMillis;
        refused.push_back(idx);
        continue;
      }
      if (type != MessageType::analyzeReply) {
        disconnect();
        return fail(ErrorKind::protocol, "unexpected reply type " +
                    std::to_string(static_cast<unsigned>(type)));
      }
      bio::Reader r{reply, 0};
      AnalyzeReply wire;
      if (!decodeAnalyzeReply(r, wire)) {
        disconnect();
        return fail(ErrorKind::protocol, "malformed analyze reply");
      }
      if (!decodeOutcome(wire, decoded[idx]))
        return false;
    }
    pending = std::move(refused);
  }
  outcomes = std::move(decoded);
  return true;
}

bool Client::coverage(const std::string &name, const std::string &source,
                      const core::MiraOptions &options,
                      CoverageReply &reply) {
  if (version_ < 2)
    return fail(ErrorKind::protocol, "coverage requires protocol version 2");
  SourceItem item{name, source};
  std::string wire;
  if (!roundTrip(encodeCoverageRequest(item, packOptions(options)),
                 MessageType::coverageReply, wire))
    return false;
  bio::Reader r{wire, 0};
  if (!decodeCoverageReply(r, reply)) {
    disconnect();
    return fail(ErrorKind::protocol, "malformed coverage reply");
  }
  return true;
}

bool Client::simulate(const std::string &name, const std::string &source,
                      const core::MiraOptions &options,
                      const core::SimulationArgs &sim, SimulateReply &reply) {
  if (version_ < 2)
    return fail(ErrorKind::protocol, "simulate requires protocol version 2");
  SourceItem item{name, source};
  std::string wire;
  if (!roundTrip(encodeSimulateRequest(item, packOptions(options), sim),
                 MessageType::simulateReply, wire))
    return false;
  bio::Reader r{wire, 0};
  if (!decodeSimulateReply(r, reply)) {
    disconnect();
    return fail(ErrorKind::protocol, "malformed simulate reply");
  }
  return true;
}

bool Client::manifestDiff(const std::string &oldManifestBytes,
                          const std::string &newManifestBytes,
                          ManifestDiffReply &reply) {
  if (version_ < 2)
    return fail(ErrorKind::protocol, "manifest-diff requires protocol version 2");
  std::string wire;
  if (!roundTrip(encodeManifestDiffRequest(oldManifestBytes, newManifestBytes),
                 MessageType::manifestDiffReply, wire))
    return false;
  bio::Reader r{wire, 0};
  if (!decodeManifestDiffReply(r, reply)) {
    disconnect();
    return fail(ErrorKind::protocol, "malformed manifest-diff reply");
  }
  return true;
}

bool Client::manifestBatch(const std::string &manifestBytes,
                           const std::string &sinceBytes,
                           const std::string &root,
                           const driver::ShardSpec &shard,
                           const core::MiraOptions &options,
                           const ProgressFn &onProgress,
                           std::string &reportBytes) {
  if (version_ < 2)
    return fail(ErrorKind::protocol,
                "manifest-batch requires protocol version 2");
  if (!socket_.valid())
    return fail(ErrorKind::connect, "not connected");
  ManifestBatchRequest request;
  request.flags = packOptions(options);
  request.progress = onProgress != nullptr;
  request.shardIndex = static_cast<std::uint32_t>(shard.index);
  request.shardCount = static_cast<std::uint32_t>(shard.count);
  request.root = root;
  request.manifestBytes = manifestBytes;
  request.sinceBytes = sinceBytes;
  const std::string wire = encodeManifestBatchRequest(request);
  if (wire.size() > kMaxFrameBytes)
    return fail(ErrorKind::protocol,
                "request of " + std::to_string(wire.size()) +
                    " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                    "-byte frame cap; split the request");
  // Not roundTrip: the final reply may be preceded by any number of
  // batchProgress frames, the second reply type (after Busy) that does
  // not end the conversation.
  for (std::size_t attempt = 0;; ++attempt) {
    if (!net::writeFrame(socket_.fd(), wire)) {
      disconnect();
      return fail(ErrorKind::transport, "send failed (daemon gone?)");
    }
    bool resend = false;
    for (;;) {
      MessageType type{};
      std::string reply;
      if (!receiveReply(type, reply))
        return false;
      if (type == MessageType::busyReply) {
        // Refused without queueing: nothing ran, resending is safe.
        bio::Reader r{reply, 0};
        BusyReply busy;
        if (!decodeBusyReply(r, busy)) {
          disconnect();
          return fail(ErrorKind::protocol, "malformed busy reply");
        }
        if (attempt >= busy_retries_)
          return fail(ErrorKind::busy,
                      "daemon at capacity (gave up after " +
                          std::to_string(busy_retries_) + " retries)");
        std::this_thread::sleep_for(std::chrono::milliseconds(
            busy.retryAfterMillis ? busy.retryAfterMillis : 10));
        resend = true;
        break;
      }
      if (type == MessageType::batchProgress) {
        bio::Reader r{reply, 0};
        BatchProgress progress;
        if (!decodeBatchProgress(r, progress)) {
          disconnect();
          return fail(ErrorKind::protocol, "malformed progress frame");
        }
        if (onProgress)
          onProgress(progress);
        continue;
      }
      if (type != MessageType::manifestBatchReply) {
        disconnect();
        return fail(ErrorKind::protocol,
                    "unexpected reply type " +
                        std::to_string(static_cast<unsigned>(type)));
      }
      bio::Reader r{reply, 0};
      ManifestBatchReply decoded;
      if (!decodeManifestBatchReply(r, decoded)) {
        disconnect();
        return fail(ErrorKind::protocol, "malformed manifest-batch reply");
      }
      reportBytes = std::move(decoded.reportBytes);
      return true;
    }
    if (!resend)
      return false; // unreachable; inner loop always returns or resends
  }
}

bool Client::cacheStats(ServerStats &stats) {
  std::string reply;
  if (!roundTrip(encodeEmptyMessage(MessageType::cacheStats, version_),
                 MessageType::cacheStatsReply, reply))
    return false;
  bio::Reader r{reply, 0};
  if (!decodeCacheStatsReply(r, stats, version_)) {
    disconnect();
    return fail(ErrorKind::protocol, "malformed cache-stats reply");
  }
  return true;
}

bool Client::metrics(std::vector<MetricSample> &samples) {
  if (version_ < 2)
    return fail(ErrorKind::protocol, "metrics requires protocol version 2");
  std::string reply;
  if (!roundTrip(encodeMetricsRequest(), MessageType::metricsReply, reply))
    return false;
  bio::Reader r{reply, 0};
  if (!decodeMetricsReply(r, samples)) {
    disconnect();
    return fail(ErrorKind::protocol, "malformed metrics reply");
  }
  return true;
}

bool Client::shutdownServer() {
  std::string reply;
  if (!roundTrip(encodeEmptyMessage(MessageType::shutdown, version_),
                 MessageType::shutdownReply, reply))
    return false;
  // The daemon stops reading afterwards; this connection is done.
  disconnect();
  return true;
}

} // namespace mira::server
