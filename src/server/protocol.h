/// \file
/// Wire protocol of the analysis daemon: message types and codecs.
///
/// `mira-cli serve` and its clients exchange length-prefixed frames
/// (support/socket.h) whose payload is one protocol message: a fixed
/// header — magic `"MirP"`, protocol version, one-byte message type —
/// followed by a type-specific body encoded with the same little-endian
/// primitives as every other Mira byte format (support/binary_io.h).
/// This header is the single in-tree source of those encodings: the
/// daemon (server/server.h), the client library (server/client.h), and
/// the protocol tests all go through these functions, and
/// docs/PROTOCOL.md specifies the byte layout normatively so non-C++
/// clients can speak it too.
///
/// Versioning: the current protocol is version 2, which adds the
/// Coverage and Simulate requests of the artifact API
/// (core/artifacts.h) and embeds the schema-v2 artifact payload in
/// analyze replies. The daemon still serves version-1 peers: every
/// message carries its version, requests are accepted from
/// kProtocolVersionMin up, and replies are encoded in the requester's
/// version (v1 clients get v1 payload bytes, and never see v2-only
/// message types or stats fields). The ManifestDiff and ManifestBatch
/// requests and the Metrics/Busy/BatchProgress/Hello messages are
/// additive late-v2 extensions (new message types, no layout changes);
/// older v2 daemons answer them with Error-and-close like any unknown
/// type, which clients must treat as "not supported". Busy and
/// BatchProgress are the two replies that do NOT close the connection:
/// Busy reports the in-flight cap was hit and carries a retry-after
/// hint; BatchProgress precedes a manifestBatchReply on the same
/// request. Hello is the optional shared-secret handshake used on TCP
/// endpoints: a daemon started with a secret answers every other
/// request with Error-and-close until the session's first frame is a
/// Hello carrying the matching secret. See docs/PROTOCOL.md,
/// "Compatibility".
///
/// Analysis results travel as the canonical artifact payload of
/// driver::serializeArtifactPayload — the same bytes the disk cache
/// stores — so a daemon-served model is byte-identical to a one-shot
/// `mira-cli analyze` of the same (source, options) by construction.
/// Decoders never trust the wire: every read is bounds-checked and any
/// structural problem yields `false`, which peers answer with an Error
/// message and a closed connection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/artifacts.h"
#include "core/mira.h"
#include "corpus/manifest.h"
#include "support/binary_io.h"

namespace mira::server {

/// Message magic: the bytes `"MirP"` on the wire, read as a
/// little-endian u32. First field of every message.
inline constexpr std::uint32_t kProtocolMagic = 0x5072694du;

/// Current protocol version, sent by default. Bump on any change to the
/// message layouts below or to the artifact payload they embed (i.e.
/// whenever kCacheSchemaVersion bumps, bump this too).
inline constexpr std::uint32_t kProtocolVersion = 2;

/// Oldest version peers still accept. v1 lacks coverage/simulate and
/// embeds the v1 outcome payload in analyze replies.
inline constexpr std::uint32_t kProtocolVersionMin = 1;

/// Default cap on one frame's payload, enforced by both sides. A
/// declared length beyond the cap is answered with Error and the
/// connection is closed (the body is never read).
inline constexpr std::uint32_t kMaxFrameBytes = 64u * 1024 * 1024;

/// One-byte message type. Requests are < 100; replies are >= 100.
/// Types marked (v2) are rejected in version-1 messages.
enum class MessageType : std::uint8_t {
  // Requests (client -> server).
  ping = 1,       ///< liveness probe; empty body
  analyze = 2,    ///< one source: [flags u8][name str][source str]
  batch = 3,      ///< many sources: [flags u8][count u32][count x item]
  cacheStats = 4, ///< server/cache counters; empty body
  shutdown = 5,   ///< stop accepting, drain, exit; empty body
  coverage = 6,   ///< (v2) loop coverage: same body as analyze
  simulate = 7,   ///< (v2) run the simulator: analyze body + sim args
  manifestDiff = 8, ///< (v2) diff two corpus manifests: [old str][new str]
  metrics = 9,    ///< (v2) named counter/gauge snapshot; empty body
  manifestBatch = 10, ///< (v2) run a whole manifest (ManifestBatchRequest)
  hello = 11,     ///< (v2) shared-secret handshake: [secret str]

  // Replies (server -> client).
  error = 100,           ///< [message str]; connection closes after
  pong = 101,            ///< empty body
  analyzeReply = 102,    ///< one result (see AnalyzeReply)
  batchReply = 103,      ///< [count u32][count x result]
  cacheStatsReply = 104, ///< fixed u64 counter block (see ServerStats)
  shutdownReply = 105,   ///< empty body; sent before the daemon drains
  coverageReply = 106,   ///< (v2) one coverage summary (see CoverageReply)
  simulateReply = 107,   ///< (v2) one simulation result (see SimulateReply)
  manifestDiffReply = 108, ///< (v2) added/changed/removed entry lists
  busyReply = 109,       ///< (v2) over the in-flight cap; [retryMillis u32]
  metricsReply = 110,    ///< (v2) [count u32][count x (name str, value u64)]
  manifestBatchReply = 111, ///< (v2) one merged report: [report str]
  batchProgress = 112,   ///< (v2) streamed before manifestBatchReply; the
                         ///< second reply type that does NOT close the
                         ///< connection (see BatchProgress)
  helloReply = 113,      ///< (v2) handshake accepted; empty body, the
                         ///< connection stays open for requests
};

/// Model-affecting option bits carried by analyze/batch requests —
/// exactly the options driver::requestKey hashes, so equal flags mean
/// equal cache keys for equal sources.
enum OptionFlags : std::uint8_t {
  kOptionOptimize = 1 << 0,
  kOptionVectorize = 1 << 1,
  kOptionAssumeBranchesTaken = 1 << 2,
};

/// Pack the wire-visible subset of MiraOptions into OptionFlags bits.
std::uint8_t packOptions(const core::MiraOptions &options);

/// Expand OptionFlags into a MiraOptions (all other fields default).
core::MiraOptions unpackOptions(std::uint8_t flags);

/// One named source, the unit of analyze/batch/coverage/simulate
/// requests.
struct SourceItem {
  std::string name;   ///< display name; echoed as the payload's producer
  std::string source; ///< MiniC source text
};

/// One analysis result as served to a client.
struct AnalyzeReply {
  /// Served without recomputation (daemon memory cache or disk cache).
  bool cacheHit = false;
  /// Server-side wall time of this request, microseconds.
  std::uint64_t micros = 0;
  /// The canonical result payload, in the requester's schema:
  /// driver::serializeArtifactPayload bytes for v2 peers,
  /// driver::serializeOutcomePayloadV1 bytes for v1 peers.
  std::string payload;
};

/// One loop-coverage summary as served to a client (v2).
/// Body: [cacheHit u8][recompiled u8][micros u64][ok u8]
/// [diagnostics str] then, when ok, [loops u64][stmts u64][inLoop u64].
struct CoverageReply {
  bool cacheHit = false;   ///< served without running the full pipeline
  bool recompiled = false; ///< a recompile-on-demand materialized for this
  std::uint64_t micros = 0;
  bool ok = false;
  std::string diagnostics;
  sema::LoopCoverage coverage; ///< meaningful when ok
};

/// One simulation result as served to a client (v2).
/// Body: [cacheHit u8][recompiled u8][micros u64][ok u8]
/// [diagnostics str] then, when ok, the SimResult block (putSimResult).
struct SimulateReply {
  bool cacheHit = false;
  bool recompiled = false; ///< program came back via recompile-on-demand
  std::uint64_t micros = 0;
  bool ok = false;         ///< analysis ok and the simulator ran
  std::string diagnostics;
  sim::SimResult result;   ///< meaningful when ok (its own ok/error
                           ///< report simulator-level failures)
};

/// The decoded answer to a manifestDiff request (v2): what changed
/// between the two corpus manifests the client sent, so a daemon can
/// plan incremental re-analysis for callers that never read the
/// workload tree themselves.
/// Body: [added u32][added x (path str, hash u64, size u64)]
/// [changed u32][changed x (path str, hash u64, size u64)]
/// [removed u32][removed x path str].
struct ManifestDiffReply {
  std::vector<corpus::ManifestEntry> added;   ///< entries only in `new`
  std::vector<corpus::ManifestEntry> changed; ///< new-side entries whose
                                              ///< content hash differs
  std::vector<std::string> removed;           ///< paths only in `old`
};

/// A manifestBatch request (v2, additive late extension): run a whole
/// corpus manifest on the daemon's compute pool — the serving-side
/// equivalent of local `mira-cli batch --manifest`, with the same
/// incremental (`--since`) and sharding (`--shard I/N`) planning, and a
/// reply whose report bytes are identical to the local run's by
/// construction.
/// Body: [flags u8][progress u8][shardIndex u32][shardCount u32]
/// [root str][manifest str][since str]. `manifest` and `since` are raw
/// corpus::serializeManifest blobs (`since` empty = no baseline; the
/// daemon validates both and answers Error on malformed bytes). Empty
/// `root` resolves entries against the manifest's recorded root. When
/// `progress` is 1 the daemon streams cumulative BatchProgress frames
/// before the final manifestBatchReply.
struct ManifestBatchRequest {
  std::uint8_t flags = 0;       ///< OptionFlags for every entry
  bool progress = false;        ///< stream batchProgress frames
  std::uint32_t shardIndex = 0; ///< 0-based; < shardCount
  std::uint32_t shardCount = 1; ///< 1 = unsharded
  std::string root;             ///< resolve base override; empty = manifest's
  std::string manifestBytes;    ///< corpus::serializeManifest bytes
  std::string sinceBytes;       ///< optional baseline manifest; empty = full
};

/// One cumulative progress frame of a manifestBatch execution (v2).
/// Streamed after each chunk when the request asked for progress; like
/// Busy, it does NOT close the connection — the final reply follows.
/// Body: [done u32][total u32][failures u32][cacheHits u32].
struct BatchProgress {
  std::uint32_t done = 0;      ///< entries finished so far
  std::uint32_t total = 0;     ///< entries selected for this request
  std::uint32_t failures = 0;  ///< failed entries so far
  std::uint32_t cacheHits = 0; ///< cache-served entries so far
};

/// The final answer to a manifestBatch request (v2): one merged,
/// byte-stable batch report. Body: [report str] — raw
/// driver::serializeBatchReport bytes, so a client can write them to a
/// `--report` file that compares byte-identical to a local run's.
struct ManifestBatchReply {
  std::string reportBytes; ///< driver::serializeBatchReport bytes
};

/// The daemon's answer when a request would exceed its `--max-inflight`
/// cap (v2, additive): the request was NOT queued or executed; retry it
/// after the hinted delay. Unlike Error, a Busy reply does NOT close the
/// connection — the session keeps reading. v1 peers cannot decode this
/// type, so at capacity they receive Error-and-close instead.
/// Body: [retryAfterMillis u32].
struct BusyReply {
  std::uint32_t retryAfterMillis = 0; ///< server-suggested backoff hint
};

/// One (name, value) pair of a metricsReply (v2, additive): a
/// core::MetricsRegistry sample. Names are Prometheus-idiom lowercase
/// (`server_requests_served_total`); the list is name-sorted.
struct MetricSample {
  std::string name;
  std::uint64_t value = 0;
};

/// Counter block answered to cacheStats, all u64, in this wire order.
/// Lifetime counters cover everything since the daemon started. The
/// last three fields are v2-only: v1 peers receive the block truncated
/// after `threads` (the v1 layout, unchanged).
struct ServerStats {
  std::uint64_t uptimeMicros = 0;        ///< since the daemon started
  std::uint64_t connectionsAccepted = 0; ///< client sessions opened
  std::uint64_t requestsServed = 0;      ///< frames answered (errors too)
  std::uint64_t analyzeRequests = 0;     ///< analyze messages
  std::uint64_t batchRequests = 0;       ///< batch messages
  std::uint64_t sourcesAnalyzed = 0;     ///< items across request kinds
  std::uint64_t cacheHits = 0;           ///< items served without recompute
  std::uint64_t computed = 0;            ///< items that ran the pipeline
  std::uint64_t failures = 0;            ///< items whose analysis failed
  std::uint64_t protocolErrors = 0;      ///< error replies + bad frames
  std::uint64_t memoryEntries = 0;       ///< in-memory cache entries now
  std::uint64_t diskHits = 0;            ///< disk-cache loads that hit
  std::uint64_t diskMisses = 0;          ///< disk-cache loads that missed
  std::uint64_t diskStores = 0;          ///< disk-cache entries written
  std::uint64_t diskEntries = 0;         ///< disk entries on disk now
  std::uint64_t diskBytes = 0;           ///< disk bytes on disk now
  std::uint64_t threads = 0;             ///< concurrent session workers
  std::uint64_t coverageRequests = 0;    ///< (v2) coverage messages
  std::uint64_t simulateRequests = 0;    ///< (v2) simulate messages
  std::uint64_t recompiles = 0;          ///< (v2) recompile-on-demand runs
};

/// Append the message header (magic, `version`, type) to `out`.
void beginMessage(std::string &out, MessageType type,
                  std::uint32_t version = kProtocolVersion);

/// Read and validate a message header, accepting any supported version
/// (kProtocolVersionMin..kProtocolVersion) and reporting which one the
/// peer spoke. On failure sets `error` and returns false; `type` and
/// `version` are only meaningful on success.
bool readHeader(bio::Reader &r, MessageType &type, std::uint32_t &version,
                std::string &error);

/// Convenience overload for callers that do not branch on the version.
bool readHeader(bio::Reader &r, MessageType &type, std::string &error);

// Encoders. `version` selects the wire dialect; v2-only messages
// (coverage, simulate and their replies) ignore it and always stamp v2.

/// Build a complete header-only message (ping, pong, cacheStats,
/// shutdown, shutdownReply).
std::string encodeEmptyMessage(MessageType type,
                               std::uint32_t version = kProtocolVersion);
/// Build an analyze request for one source under OptionFlags `flags`.
std::string encodeAnalyzeRequest(const SourceItem &item, std::uint8_t flags,
                                 std::uint32_t version = kProtocolVersion);
/// Build a batch request; every item shares one OptionFlags byte.
std::string encodeBatchRequest(const std::vector<SourceItem> &items,
                               std::uint8_t flags,
                               std::uint32_t version = kProtocolVersion);
/// Build a coverage request (v2): same body as analyze.
std::string encodeCoverageRequest(const SourceItem &item, std::uint8_t flags);
/// Build a simulate request (v2): analyze body + the per-call
/// simulation arguments ([function str][fastForward u8]
/// [maxInstructions u64][argc u32][argc x (i i64, f f64, f2 f64)]).
std::string encodeSimulateRequest(const SourceItem &item, std::uint8_t flags,
                                  const core::SimulationArgs &sim);
/// Build a manifestDiff request (v2) carrying two serialized manifests
/// (corpus::serializeManifest bytes): [old str][new str].
std::string encodeManifestDiffRequest(const std::string &oldManifestBytes,
                                      const std::string &newManifestBytes);
/// Build a metrics request (v2): header only, like ping.
std::string encodeMetricsRequest();
/// Build a hello handshake request (v2) carrying the shared secret:
/// [secret str]. Sent as a session's first frame on authenticated
/// endpoints; answered with helloReply (empty) or Error-and-close.
std::string encodeHelloRequest(const std::string &secret);
/// Build a manifestBatch request (v2).
std::string encodeManifestBatchRequest(const ManifestBatchRequest &request);
/// Build a batchProgress frame (v2).
std::string encodeBatchProgress(const BatchProgress &progress);
/// Build a manifestBatchReply (v2) carrying the merged report bytes.
std::string encodeManifestBatchReply(const ManifestBatchReply &reply);
/// Build a busyReply (v2) carrying the retry-after hint.
std::string encodeBusyReply(const BusyReply &reply);
/// Build a metricsReply (v2) from a name-sorted sample list.
std::string encodeMetricsReply(const std::vector<MetricSample> &samples);
/// Build an Error reply carrying a human-readable description.
std::string encodeErrorReply(const std::string &message,
                             std::uint32_t version = kProtocolVersion);
/// Build an analyzeReply carrying one result.
std::string encodeAnalyzeReply(const AnalyzeReply &reply,
                               std::uint32_t version = kProtocolVersion);
/// Build a batchReply carrying results in request order.
std::string encodeBatchReply(const std::vector<AnalyzeReply> &replies,
                             std::uint32_t version = kProtocolVersion);
/// Build a coverageReply (v2).
std::string encodeCoverageReply(const CoverageReply &reply);
/// Build a simulateReply (v2).
std::string encodeSimulateReply(const SimulateReply &reply);
/// Build a manifestDiffReply (v2).
std::string encodeManifestDiffReply(const ManifestDiffReply &reply);
/// Build a cacheStatsReply from a counter snapshot; v1 peers get the
/// 17-field v1 block, v2 peers the full 20-field block.
std::string encodeCacheStatsReply(const ServerStats &stats,
                                  std::uint32_t version = kProtocolVersion);

// Body decoders take a Reader positioned just past the header. Each
// returns false on any structural problem, including a body that does
// not end exactly where the message does (trailing garbage).

/// Decode an analyze request body.
bool decodeAnalyzeRequest(bio::Reader &r, SourceItem &item,
                          std::uint8_t &flags);
/// Decode a batch request body.
bool decodeBatchRequest(bio::Reader &r, std::vector<SourceItem> &items,
                        std::uint8_t &flags);
/// Decode a coverage request body (identical layout to analyze).
bool decodeCoverageRequest(bio::Reader &r, SourceItem &item,
                           std::uint8_t &flags);
/// Decode a simulate request body.
bool decodeSimulateRequest(bio::Reader &r, SourceItem &item,
                           std::uint8_t &flags, core::SimulationArgs &sim);
/// Decode a manifestDiff request body into the two raw manifest blobs
/// (the caller runs corpus::deserializeManifest on each, answering
/// Error on blobs that fail validation there).
bool decodeManifestDiffRequest(bio::Reader &r, std::string &oldManifestBytes,
                               std::string &newManifestBytes);
/// Decode a hello handshake request body into the presented secret.
bool decodeHelloRequest(bio::Reader &r, std::string &secret);
/// Decode a manifestBatch request body. Validates the scalar fields
/// (progress byte <= 1, shardCount >= 1, shardIndex < shardCount) but
/// not the manifest blobs — the caller runs corpus::deserializeManifest
/// on each, answering Error on blobs that fail validation there.
bool decodeManifestBatchRequest(bio::Reader &r, ManifestBatchRequest &request);
/// Decode a batchProgress frame body.
bool decodeBatchProgress(bio::Reader &r, BatchProgress &progress);
/// Decode a manifestBatchReply body.
bool decodeManifestBatchReply(bio::Reader &r, ManifestBatchReply &reply);
/// Decode an Error reply body.
bool decodeErrorReply(bio::Reader &r, std::string &message);
/// Decode an analyzeReply body.
bool decodeAnalyzeReply(bio::Reader &r, AnalyzeReply &reply);
/// Decode a batchReply body.
bool decodeBatchReply(bio::Reader &r, std::vector<AnalyzeReply> &replies);
/// Decode a coverageReply body.
bool decodeCoverageReply(bio::Reader &r, CoverageReply &reply);
/// Decode a simulateReply body.
bool decodeSimulateReply(bio::Reader &r, SimulateReply &reply);
/// Decode a manifestDiffReply body.
bool decodeManifestDiffReply(bio::Reader &r, ManifestDiffReply &reply);
/// Decode a busyReply body.
bool decodeBusyReply(bio::Reader &r, BusyReply &reply);
/// Decode a metricsReply body.
bool decodeMetricsReply(bio::Reader &r, std::vector<MetricSample> &samples);
/// Decode a cacheStatsReply body of the given dialect (v1 bodies leave
/// the v2-only fields zero).
bool decodeCacheStatsReply(bio::Reader &r, ServerStats &stats,
                           std::uint32_t version);
bool decodeCacheStatsReply(bio::Reader &r, ServerStats &stats);

/// Canonical byte encoding of a full sim::SimResult (ok, error, return
/// value, total counters with a sparse category block, per-function
/// inclusive profiles, printed values). Used by simulateReply and by
/// tests comparing daemon-served counters against one-shot runs
/// byte-for-byte.
void putSimResult(std::string &out, const sim::SimResult &result);
bool readSimResult(bio::Reader &r, sim::SimResult &result);

} // namespace mira::server
