/// \file
/// Wire protocol of the analysis daemon: message types and codecs.
///
/// `mira-cli serve` and its clients exchange length-prefixed frames
/// (support/socket.h) whose payload is one protocol message: a fixed
/// header — magic `"MirP"`, protocol version, one-byte message type —
/// followed by a type-specific body encoded with the same little-endian
/// primitives as every other Mira byte format (support/binary_io.h).
/// This header is the single in-tree source of those encodings: the
/// daemon (server/server.h), the client library (server/client.h), and
/// the protocol tests all go through these functions, and
/// docs/PROTOCOL.md specifies the byte layout normatively so non-C++
/// clients can speak it too.
///
/// Analysis results travel as the canonical outcome payload of
/// driver::serializeOutcomePayload — the same bytes the disk cache
/// stores — so a daemon-served model is byte-identical to a one-shot
/// `mira-cli analyze` of the same (source, options) by construction.
/// Decoders never trust the wire: every read is bounds-checked and any
/// structural problem yields `false`, which peers answer with an Error
/// message and a closed connection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mira.h"
#include "support/binary_io.h"

namespace mira::server {

/// Message magic: the bytes `"MirP"` on the wire, read as a
/// little-endian u32. First field of every message.
inline constexpr std::uint32_t kProtocolMagic = 0x5072694du;

/// Protocol version; peers reject any other value. Bump on any change
/// to the message layouts below or to the outcome payload they embed
/// (i.e. whenever kCacheSchemaVersion bumps, bump this too).
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Default cap on one frame's payload, enforced by both sides. A
/// declared length beyond the cap is answered with Error and the
/// connection is closed (the body is never read).
inline constexpr std::uint32_t kMaxFrameBytes = 64u * 1024 * 1024;

/// One-byte message type. Requests are < 100; replies are >= 100.
enum class MessageType : std::uint8_t {
  // Requests (client -> server).
  ping = 1,       ///< liveness probe; empty body
  analyze = 2,    ///< one source: [flags u8][name str][source str]
  batch = 3,      ///< many sources: [flags u8][count u32][count x item]
  cacheStats = 4, ///< server/cache counters; empty body
  shutdown = 5,   ///< stop accepting, drain, exit; empty body

  // Replies (server -> client).
  error = 100,           ///< [message str]; connection closes after
  pong = 101,            ///< empty body
  analyzeReply = 102,    ///< one result (see AnalyzeReply)
  batchReply = 103,      ///< [count u32][count x result]
  cacheStatsReply = 104, ///< fixed u64 counter block (see ServerStats)
  shutdownReply = 105,   ///< empty body; sent before the daemon drains
};

/// Model-affecting option bits carried by analyze/batch requests —
/// exactly the options driver::requestKey hashes, so equal flags mean
/// equal cache keys for equal sources.
enum OptionFlags : std::uint8_t {
  kOptionOptimize = 1 << 0,
  kOptionVectorize = 1 << 1,
  kOptionAssumeBranchesTaken = 1 << 2,
};

/// Pack the wire-visible subset of MiraOptions into OptionFlags bits.
std::uint8_t packOptions(const core::MiraOptions &options);

/// Expand OptionFlags into a MiraOptions (all other fields default).
core::MiraOptions unpackOptions(std::uint8_t flags);

/// One named source, the unit of analyze/batch requests.
struct SourceItem {
  std::string name;   ///< display name; echoed as the payload's producer
  std::string source; ///< MiniC source text
};

/// One analysis result as served to a client.
struct AnalyzeReply {
  /// Served without recomputation (daemon memory cache or disk cache).
  bool cacheHit = false;
  /// Server-side wall time of this request, microseconds.
  std::uint64_t micros = 0;
  /// driver::serializeOutcomePayload bytes:
  /// `[ok u8][producerName str][diagnostics str][model bytes when ok]`.
  std::string payload;
};

/// Counter block answered to cacheStats, all u64, in this wire order.
/// Lifetime counters cover everything since the daemon started.
struct ServerStats {
  std::uint64_t uptimeMicros = 0;        ///< since the daemon started
  std::uint64_t connectionsAccepted = 0; ///< client sessions opened
  std::uint64_t requestsServed = 0;      ///< frames answered (errors too)
  std::uint64_t analyzeRequests = 0;     ///< analyze messages
  std::uint64_t batchRequests = 0;       ///< batch messages
  std::uint64_t sourcesAnalyzed = 0;     ///< items across both kinds
  std::uint64_t cacheHits = 0;           ///< items served without recompute
  std::uint64_t computed = 0;            ///< items that ran the pipeline
  std::uint64_t failures = 0;            ///< items whose analysis failed
  std::uint64_t protocolErrors = 0;      ///< error replies + bad frames
  std::uint64_t memoryEntries = 0;       ///< in-memory cache entries now
  std::uint64_t diskHits = 0;            ///< disk-cache loads that hit
  std::uint64_t diskMisses = 0;          ///< disk-cache loads that missed
  std::uint64_t diskStores = 0;          ///< disk-cache entries written
  std::uint64_t diskEntries = 0;         ///< disk entries on disk now
  std::uint64_t diskBytes = 0;           ///< disk bytes on disk now
  std::uint64_t threads = 0;             ///< concurrent session workers
};

/// Append the message header (magic, version, type) to `out`.
void beginMessage(std::string &out, MessageType type);

/// Read and validate a message header. On failure sets `error` and
/// returns false; `type` is only meaningful on success.
bool readHeader(bio::Reader &r, MessageType &type, std::string &error);

/// Build a complete header-only message (ping, pong, cacheStats,
/// shutdown, shutdownReply).
std::string encodeEmptyMessage(MessageType type);
/// Build an analyze request for one source under OptionFlags `flags`.
std::string encodeAnalyzeRequest(const SourceItem &item, std::uint8_t flags);
/// Build a batch request; every item shares one OptionFlags byte.
std::string encodeBatchRequest(const std::vector<SourceItem> &items,
                               std::uint8_t flags);
/// Build an Error reply carrying a human-readable description.
std::string encodeErrorReply(const std::string &message);
/// Build an analyzeReply carrying one result.
std::string encodeAnalyzeReply(const AnalyzeReply &reply);
/// Build a batchReply carrying results in request order.
std::string encodeBatchReply(const std::vector<AnalyzeReply> &replies);
/// Build a cacheStatsReply from a counter snapshot.
std::string encodeCacheStatsReply(const ServerStats &stats);

// Body decoders take a Reader positioned just past the header. Each
// returns false on any structural problem, including a body that does
// not end exactly where the message does (trailing garbage).

/// Decode an analyze request body.
bool decodeAnalyzeRequest(bio::Reader &r, SourceItem &item,
                          std::uint8_t &flags);
/// Decode a batch request body.
bool decodeBatchRequest(bio::Reader &r, std::vector<SourceItem> &items,
                        std::uint8_t &flags);
/// Decode an Error reply body.
bool decodeErrorReply(bio::Reader &r, std::string &message);
/// Decode an analyzeReply body.
bool decodeAnalyzeReply(bio::Reader &r, AnalyzeReply &reply);
/// Decode a batchReply body.
bool decodeBatchReply(bio::Reader &r, std::vector<AnalyzeReply> &replies);
/// Decode a cacheStatsReply body.
bool decodeCacheStatsReply(bio::Reader &r, ServerStats &stats);

} // namespace mira::server
