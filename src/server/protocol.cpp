#include "server/protocol.h"

#include <cstring>

namespace mira::server {

namespace {

// Doubles travel as their IEEE-754 bit pattern in the usual
// little-endian u64 slot; bit-exact round trip by construction.
void putF64(std::string &out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  bio::putU64(out, bits);
}

bool readF64(bio::Reader &r, double &v) {
  std::uint64_t bits = 0;
  if (!r.u64(bits))
    return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

void putValue(std::string &out, const sim::Value &value) {
  bio::putI64(out, value.i);
  putF64(out, value.f);
  putF64(out, value.f2);
}

bool readValue(bio::Reader &r, sim::Value &value) {
  return r.i64(value.i) && readF64(r, value.f) && readF64(r, value.f2);
}

// Category counts are sparse in practice (a kernel touches a handful of
// the 64 categories), so they travel as [count u32][(index u8, count
// u64) x count] with indices strictly increasing — a canonical form, so
// equal counters encode to equal bytes.
void putCounters(std::string &out, const sim::Counters &counters) {
  std::uint32_t nonZero = 0;
  for (std::size_t i = 0; i < isa::kNumCategories; ++i)
    if (counters.categories[i] != 0)
      ++nonZero;
  bio::putU32(out, nonZero);
  for (std::size_t i = 0; i < isa::kNumCategories; ++i) {
    if (counters.categories[i] == 0)
      continue;
    bio::putU8(out, static_cast<std::uint8_t>(i));
    bio::putU64(out, counters.categories[i]);
  }
  bio::putU64(out, counters.totalInstructions);
  bio::putU64(out, counters.fpInstructions);
  bio::putU64(out, counters.flops);
}

bool readCounters(bio::Reader &r, sim::Counters &counters) {
  counters = sim::Counters{};
  std::uint32_t nonZero = 0;
  if (!r.u32(nonZero))
    return false;
  int lastIndex = -1;
  for (std::uint32_t i = 0; i < nonZero; ++i) {
    std::uint8_t index = 0;
    std::uint64_t count = 0;
    if (!r.u8(index) || !r.u64(count))
      return false;
    if (index >= isa::kNumCategories || static_cast<int>(index) <= lastIndex ||
        count == 0)
      return false; // non-canonical or out-of-range: treat as corrupt
    lastIndex = index;
    counters.categories[index] = count;
  }
  return r.u64(counters.totalInstructions) &&
         r.u64(counters.fpInstructions) && r.u64(counters.flops);
}

} // namespace

void putSimResult(std::string &out, const sim::SimResult &result) {
  bio::putU8(out, result.ok ? 1 : 0);
  bio::putString(out, result.error);
  putValue(out, result.returnValue);
  putCounters(out, result.total);
  bio::putU32(out, static_cast<std::uint32_t>(result.functions.size()));
  for (const auto &entry : result.functions) { // std::map: sorted, canonical
    bio::putString(out, entry.first);
    bio::putU64(out, entry.second.calls);
    putCounters(out, entry.second.inclusive);
  }
  bio::putU32(out, static_cast<std::uint32_t>(result.printed.size()));
  for (double value : result.printed)
    putF64(out, value);
}

bool readSimResult(bio::Reader &r, sim::SimResult &result) {
  result = sim::SimResult{};
  std::uint8_t ok = 0;
  if (!r.u8(ok) || ok > 1)
    return false;
  result.ok = ok == 1;
  if (!r.str(result.error) || !readValue(r, result.returnValue) ||
      !readCounters(r, result.total))
    return false;
  std::uint32_t functionCount = 0;
  if (!r.u32(functionCount))
    return false;
  for (std::uint32_t i = 0; i < functionCount; ++i) {
    std::string name;
    sim::FunctionProfile profile;
    if (!r.str(name) || !r.u64(profile.calls) ||
        !readCounters(r, profile.inclusive))
      return false;
    result.functions.emplace(std::move(name), std::move(profile));
  }
  std::uint32_t printedCount = 0;
  if (!r.u32(printedCount))
    return false;
  for (std::uint32_t i = 0; i < printedCount; ++i) {
    double value = 0;
    if (!readF64(r, value))
      return false;
    result.printed.push_back(value);
  }
  return true;
}

std::uint8_t packOptions(const core::MiraOptions &options) {
  std::uint8_t flags = 0;
  if (options.compile.compiler.optimize)
    flags |= kOptionOptimize;
  if (options.compile.compiler.vectorize)
    flags |= kOptionVectorize;
  if (options.metrics.assumeBranchesTaken)
    flags |= kOptionAssumeBranchesTaken;
  return flags;
}

core::MiraOptions unpackOptions(std::uint8_t flags) {
  core::MiraOptions options;
  options.compile.compiler.optimize = (flags & kOptionOptimize) != 0;
  options.compile.compiler.vectorize = (flags & kOptionVectorize) != 0;
  options.metrics.assumeBranchesTaken =
      (flags & kOptionAssumeBranchesTaken) != 0;
  return options;
}

void beginMessage(std::string &out, MessageType type, std::uint32_t version) {
  bio::putU32(out, kProtocolMagic);
  bio::putU32(out, version);
  bio::putU8(out, static_cast<std::uint8_t>(type));
}

bool readHeader(bio::Reader &r, MessageType &type, std::uint32_t &version,
                std::string &error) {
  std::uint32_t magic = 0;
  std::uint8_t rawType = 0;
  if (!r.u32(magic) || !r.u32(version) || !r.u8(rawType)) {
    error = "short message header";
    return false;
  }
  if (magic != kProtocolMagic) {
    error = "bad magic (not a Mira protocol message)";
    return false;
  }
  if (version < kProtocolVersionMin || version > kProtocolVersion) {
    error = "unsupported protocol version " + std::to_string(version) +
            " (this peer speaks " + std::to_string(kProtocolVersionMin) +
            ".." + std::to_string(kProtocolVersion) + ")";
    return false;
  }
  type = static_cast<MessageType>(rawType);
  return true;
}

bool readHeader(bio::Reader &r, MessageType &type, std::string &error) {
  std::uint32_t version = 0;
  return readHeader(r, type, version, error);
}

std::string encodeEmptyMessage(MessageType type, std::uint32_t version) {
  std::string out;
  beginMessage(out, type, version);
  return out;
}

namespace {

std::string encodeSourceRequest(MessageType type, const SourceItem &item,
                                std::uint8_t flags, std::uint32_t version) {
  std::string out;
  beginMessage(out, type, version);
  bio::putU8(out, flags);
  bio::putString(out, item.name);
  bio::putString(out, item.source);
  return out;
}

bool decodeSourceRequestBody(bio::Reader &r, SourceItem &item,
                             std::uint8_t &flags) {
  return r.u8(flags) && r.str(item.name) && r.str(item.source);
}

} // namespace

std::string encodeAnalyzeRequest(const SourceItem &item, std::uint8_t flags,
                                 std::uint32_t version) {
  return encodeSourceRequest(MessageType::analyze, item, flags, version);
}

std::string encodeBatchRequest(const std::vector<SourceItem> &items,
                               std::uint8_t flags, std::uint32_t version) {
  std::string out;
  beginMessage(out, MessageType::batch, version);
  bio::putU8(out, flags);
  bio::putU32(out, static_cast<std::uint32_t>(items.size()));
  for (const SourceItem &item : items) {
    bio::putString(out, item.name);
    bio::putString(out, item.source);
  }
  return out;
}

std::string encodeCoverageRequest(const SourceItem &item, std::uint8_t flags) {
  return encodeSourceRequest(MessageType::coverage, item, flags,
                             kProtocolVersion);
}

std::string encodeSimulateRequest(const SourceItem &item, std::uint8_t flags,
                                  const core::SimulationArgs &sim) {
  std::string out = encodeSourceRequest(MessageType::simulate, item, flags,
                                        kProtocolVersion);
  bio::putString(out, sim.function);
  bio::putU8(out, sim.options.fastForward ? 1 : 0);
  bio::putU64(out, sim.options.maxInstructions);
  bio::putU32(out, static_cast<std::uint32_t>(sim.args.size()));
  for (const sim::Value &value : sim.args)
    putValue(out, value);
  return out;
}

std::string encodeManifestDiffRequest(const std::string &oldManifestBytes,
                                      const std::string &newManifestBytes) {
  std::string out;
  beginMessage(out, MessageType::manifestDiff, kProtocolVersion);
  bio::putString(out, oldManifestBytes);
  bio::putString(out, newManifestBytes);
  return out;
}

std::string encodeMetricsRequest() {
  return encodeEmptyMessage(MessageType::metrics, kProtocolVersion);
}

std::string encodeHelloRequest(const std::string &secret) {
  std::string out;
  beginMessage(out, MessageType::hello, kProtocolVersion);
  bio::putString(out, secret);
  return out;
}

std::string encodeManifestBatchRequest(const ManifestBatchRequest &request) {
  std::string out;
  beginMessage(out, MessageType::manifestBatch, kProtocolVersion);
  bio::putU8(out, request.flags);
  bio::putU8(out, request.progress ? 1 : 0);
  bio::putU32(out, request.shardIndex);
  bio::putU32(out, request.shardCount);
  bio::putString(out, request.root);
  bio::putString(out, request.manifestBytes);
  bio::putString(out, request.sinceBytes);
  return out;
}

std::string encodeBatchProgress(const BatchProgress &progress) {
  std::string out;
  beginMessage(out, MessageType::batchProgress, kProtocolVersion);
  bio::putU32(out, progress.done);
  bio::putU32(out, progress.total);
  bio::putU32(out, progress.failures);
  bio::putU32(out, progress.cacheHits);
  return out;
}

std::string encodeManifestBatchReply(const ManifestBatchReply &reply) {
  std::string out;
  beginMessage(out, MessageType::manifestBatchReply, kProtocolVersion);
  bio::putString(out, reply.reportBytes);
  return out;
}

std::string encodeBusyReply(const BusyReply &reply) {
  std::string out;
  beginMessage(out, MessageType::busyReply, kProtocolVersion);
  bio::putU32(out, reply.retryAfterMillis);
  return out;
}

std::string encodeMetricsReply(const std::vector<MetricSample> &samples) {
  std::string out;
  beginMessage(out, MessageType::metricsReply, kProtocolVersion);
  bio::putU32(out, static_cast<std::uint32_t>(samples.size()));
  for (const MetricSample &sample : samples) {
    bio::putString(out, sample.name);
    bio::putU64(out, sample.value);
  }
  return out;
}

std::string encodeErrorReply(const std::string &message,
                             std::uint32_t version) {
  std::string out;
  beginMessage(out, MessageType::error, version);
  bio::putString(out, message);
  return out;
}

namespace {

void putAnalyzeReplyBody(std::string &out, const AnalyzeReply &reply) {
  bio::putU8(out, reply.cacheHit ? 1 : 0);
  bio::putU64(out, reply.micros);
  bio::putString(out, reply.payload);
}

bool readAnalyzeReplyBody(bio::Reader &r, AnalyzeReply &reply) {
  std::uint8_t hit = 0;
  if (!r.u8(hit) || hit > 1)
    return false;
  reply.cacheHit = hit == 1;
  return r.u64(reply.micros) && r.str(reply.payload);
}

/// Shared [cacheHit u8][recompiled u8][micros u64][ok u8][diagnostics]
/// prefix of the coverage and simulate replies.
void putServedReplyPrefix(std::string &out, bool cacheHit, bool recompiled,
                          std::uint64_t micros, bool ok,
                          const std::string &diagnostics) {
  bio::putU8(out, cacheHit ? 1 : 0);
  bio::putU8(out, recompiled ? 1 : 0);
  bio::putU64(out, micros);
  bio::putU8(out, ok ? 1 : 0);
  bio::putString(out, diagnostics);
}

bool readServedReplyPrefix(bio::Reader &r, bool &cacheHit, bool &recompiled,
                           std::uint64_t &micros, bool &ok,
                           std::string &diagnostics) {
  std::uint8_t hit = 0, rec = 0, okByte = 0;
  if (!r.u8(hit) || hit > 1 || !r.u8(rec) || rec > 1 || !r.u64(micros) ||
      !r.u8(okByte) || okByte > 1 || !r.str(diagnostics))
    return false;
  cacheHit = hit == 1;
  recompiled = rec == 1;
  ok = okByte == 1;
  return true;
}

} // namespace

std::string encodeAnalyzeReply(const AnalyzeReply &reply,
                               std::uint32_t version) {
  std::string out;
  beginMessage(out, MessageType::analyzeReply, version);
  putAnalyzeReplyBody(out, reply);
  return out;
}

std::string encodeBatchReply(const std::vector<AnalyzeReply> &replies,
                             std::uint32_t version) {
  std::string out;
  beginMessage(out, MessageType::batchReply, version);
  bio::putU32(out, static_cast<std::uint32_t>(replies.size()));
  for (const AnalyzeReply &reply : replies)
    putAnalyzeReplyBody(out, reply);
  return out;
}

std::string encodeCoverageReply(const CoverageReply &reply) {
  std::string out;
  beginMessage(out, MessageType::coverageReply, kProtocolVersion);
  putServedReplyPrefix(out, reply.cacheHit, reply.recompiled, reply.micros,
                       reply.ok, reply.diagnostics);
  if (reply.ok) {
    bio::putU64(out, reply.coverage.loops);
    bio::putU64(out, reply.coverage.statements);
    bio::putU64(out, reply.coverage.inLoopStatements);
  }
  return out;
}

std::string encodeSimulateReply(const SimulateReply &reply) {
  std::string out;
  beginMessage(out, MessageType::simulateReply, kProtocolVersion);
  putServedReplyPrefix(out, reply.cacheHit, reply.recompiled, reply.micros,
                       reply.ok, reply.diagnostics);
  if (reply.ok)
    putSimResult(out, reply.result);
  return out;
}

namespace {

void putManifestEntries(std::string &out,
                        const std::vector<corpus::ManifestEntry> &entries) {
  bio::putU32(out, static_cast<std::uint32_t>(entries.size()));
  for (const corpus::ManifestEntry &entry : entries) {
    bio::putString(out, entry.path);
    bio::putU64(out, entry.contentHash);
    bio::putU64(out, entry.size);
  }
}

bool readManifestEntries(bio::Reader &r,
                         std::vector<corpus::ManifestEntry> &entries) {
  std::uint32_t count = 0;
  if (!r.u32(count))
    return false;
  entries.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    corpus::ManifestEntry entry;
    if (!r.str(entry.path) || !r.u64(entry.contentHash) || !r.u64(entry.size))
      return false;
    entries.push_back(std::move(entry));
  }
  return true;
}

} // namespace

std::string encodeManifestDiffReply(const ManifestDiffReply &reply) {
  std::string out;
  beginMessage(out, MessageType::manifestDiffReply, kProtocolVersion);
  putManifestEntries(out, reply.added);
  putManifestEntries(out, reply.changed);
  bio::putU32(out, static_cast<std::uint32_t>(reply.removed.size()));
  for (const std::string &path : reply.removed)
    bio::putString(out, path);
  return out;
}

std::string encodeCacheStatsReply(const ServerStats &stats,
                                  std::uint32_t version) {
  std::string out;
  beginMessage(out, MessageType::cacheStatsReply, version);
  bio::putU64(out, stats.uptimeMicros);
  bio::putU64(out, stats.connectionsAccepted);
  bio::putU64(out, stats.requestsServed);
  bio::putU64(out, stats.analyzeRequests);
  bio::putU64(out, stats.batchRequests);
  bio::putU64(out, stats.sourcesAnalyzed);
  bio::putU64(out, stats.cacheHits);
  bio::putU64(out, stats.computed);
  bio::putU64(out, stats.failures);
  bio::putU64(out, stats.protocolErrors);
  bio::putU64(out, stats.memoryEntries);
  bio::putU64(out, stats.diskHits);
  bio::putU64(out, stats.diskMisses);
  bio::putU64(out, stats.diskStores);
  bio::putU64(out, stats.diskEntries);
  bio::putU64(out, stats.diskBytes);
  bio::putU64(out, stats.threads);
  if (version >= 2) {
    bio::putU64(out, stats.coverageRequests);
    bio::putU64(out, stats.simulateRequests);
    bio::putU64(out, stats.recompiles);
  }
  return out;
}

bool decodeAnalyzeRequest(bio::Reader &r, SourceItem &item,
                          std::uint8_t &flags) {
  return decodeSourceRequestBody(r, item, flags) && r.remaining() == 0;
}

bool decodeBatchRequest(bio::Reader &r, std::vector<SourceItem> &items,
                        std::uint8_t &flags) {
  std::uint32_t count = 0;
  if (!r.u8(flags) || !r.u32(count))
    return false;
  items.clear();
  // No reserve(count): the count is attacker-controlled; per-item reads
  // below fail naturally when the body runs out.
  for (std::uint32_t i = 0; i < count; ++i) {
    SourceItem item;
    if (!r.str(item.name) || !r.str(item.source))
      return false;
    items.push_back(std::move(item));
  }
  return r.remaining() == 0;
}

bool decodeCoverageRequest(bio::Reader &r, SourceItem &item,
                           std::uint8_t &flags) {
  return decodeSourceRequestBody(r, item, flags) && r.remaining() == 0;
}

bool decodeSimulateRequest(bio::Reader &r, SourceItem &item,
                           std::uint8_t &flags, core::SimulationArgs &sim) {
  sim = core::SimulationArgs{};
  if (!decodeSourceRequestBody(r, item, flags))
    return false;
  std::uint8_t fastForward = 0;
  std::uint32_t argCount = 0;
  if (!r.str(sim.function) || !r.u8(fastForward) || fastForward > 1 ||
      !r.u64(sim.options.maxInstructions) || !r.u32(argCount))
    return false;
  sim.options.fastForward = fastForward == 1;
  for (std::uint32_t i = 0; i < argCount; ++i) {
    sim::Value value;
    if (!readValue(r, value))
      return false;
    sim.args.push_back(value);
  }
  return r.remaining() == 0;
}

bool decodeManifestDiffRequest(bio::Reader &r, std::string &oldManifestBytes,
                               std::string &newManifestBytes) {
  return r.str(oldManifestBytes) && r.str(newManifestBytes) &&
         r.remaining() == 0;
}

bool decodeHelloRequest(bio::Reader &r, std::string &secret) {
  return r.str(secret) && r.remaining() == 0;
}

bool decodeManifestBatchRequest(bio::Reader &r,
                                ManifestBatchRequest &request) {
  request = ManifestBatchRequest{};
  std::uint8_t progress = 0;
  if (!r.u8(request.flags) || !r.u8(progress) || progress > 1 ||
      !r.u32(request.shardIndex) || !r.u32(request.shardCount) ||
      !r.str(request.root) || !r.str(request.manifestBytes) ||
      !r.str(request.sinceBytes))
    return false;
  request.progress = progress == 1;
  // A zero shard count divides by zero downstream; an out-of-range index
  // would silently select nothing. Both are structural errors.
  if (request.shardCount < 1 || request.shardIndex >= request.shardCount)
    return false;
  return r.remaining() == 0;
}

bool decodeBatchProgress(bio::Reader &r, BatchProgress &progress) {
  progress = BatchProgress{};
  return r.u32(progress.done) && r.u32(progress.total) &&
         r.u32(progress.failures) && r.u32(progress.cacheHits) &&
         r.remaining() == 0;
}

bool decodeManifestBatchReply(bio::Reader &r, ManifestBatchReply &reply) {
  reply = ManifestBatchReply{};
  return r.str(reply.reportBytes) && r.remaining() == 0;
}

bool decodeErrorReply(bio::Reader &r, std::string &message) {
  return r.str(message) && r.remaining() == 0;
}

bool decodeAnalyzeReply(bio::Reader &r, AnalyzeReply &reply) {
  return readAnalyzeReplyBody(r, reply) && r.remaining() == 0;
}

bool decodeBatchReply(bio::Reader &r, std::vector<AnalyzeReply> &replies) {
  std::uint32_t count = 0;
  if (!r.u32(count))
    return false;
  replies.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    AnalyzeReply reply;
    if (!readAnalyzeReplyBody(r, reply))
      return false;
    replies.push_back(std::move(reply));
  }
  return r.remaining() == 0;
}

bool decodeCoverageReply(bio::Reader &r, CoverageReply &reply) {
  reply = CoverageReply{};
  if (!readServedReplyPrefix(r, reply.cacheHit, reply.recompiled,
                             reply.micros, reply.ok, reply.diagnostics))
    return false;
  if (!reply.ok)
    return r.remaining() == 0;
  std::uint64_t loops = 0, statements = 0, inLoop = 0;
  if (!r.u64(loops) || !r.u64(statements) || !r.u64(inLoop))
    return false;
  reply.coverage.loops = static_cast<std::size_t>(loops);
  reply.coverage.statements = static_cast<std::size_t>(statements);
  reply.coverage.inLoopStatements = static_cast<std::size_t>(inLoop);
  return r.remaining() == 0;
}

bool decodeSimulateReply(bio::Reader &r, SimulateReply &reply) {
  reply = SimulateReply{};
  if (!readServedReplyPrefix(r, reply.cacheHit, reply.recompiled,
                             reply.micros, reply.ok, reply.diagnostics))
    return false;
  if (!reply.ok)
    return r.remaining() == 0;
  return readSimResult(r, reply.result) && r.remaining() == 0;
}

bool decodeManifestDiffReply(bio::Reader &r, ManifestDiffReply &reply) {
  reply = ManifestDiffReply{};
  std::uint32_t removedCount = 0;
  if (!readManifestEntries(r, reply.added) ||
      !readManifestEntries(r, reply.changed) || !r.u32(removedCount))
    return false;
  for (std::uint32_t i = 0; i < removedCount; ++i) {
    std::string path;
    if (!r.str(path))
      return false;
    reply.removed.push_back(std::move(path));
  }
  return r.remaining() == 0;
}

bool decodeBusyReply(bio::Reader &r, BusyReply &reply) {
  reply = BusyReply{};
  return r.u32(reply.retryAfterMillis) && r.remaining() == 0;
}

bool decodeMetricsReply(bio::Reader &r, std::vector<MetricSample> &samples) {
  std::uint32_t count = 0;
  if (!r.u32(count))
    return false;
  samples.clear();
  // No reserve(count): the count is attacker-controlled; per-sample
  // reads fail naturally when the body runs out.
  for (std::uint32_t i = 0; i < count; ++i) {
    MetricSample sample;
    if (!r.str(sample.name) || !r.u64(sample.value))
      return false;
    samples.push_back(std::move(sample));
  }
  return r.remaining() == 0;
}

bool decodeCacheStatsReply(bio::Reader &r, ServerStats &stats,
                           std::uint32_t version) {
  if (!(r.u64(stats.uptimeMicros) && r.u64(stats.connectionsAccepted) &&
        r.u64(stats.requestsServed) && r.u64(stats.analyzeRequests) &&
        r.u64(stats.batchRequests) && r.u64(stats.sourcesAnalyzed) &&
        r.u64(stats.cacheHits) && r.u64(stats.computed) &&
        r.u64(stats.failures) && r.u64(stats.protocolErrors) &&
        r.u64(stats.memoryEntries) && r.u64(stats.diskHits) &&
        r.u64(stats.diskMisses) && r.u64(stats.diskStores) &&
        r.u64(stats.diskEntries) && r.u64(stats.diskBytes) &&
        r.u64(stats.threads)))
    return false;
  if (version >= 2 &&
      !(r.u64(stats.coverageRequests) && r.u64(stats.simulateRequests) &&
        r.u64(stats.recompiles)))
    return false;
  return r.remaining() == 0;
}

bool decodeCacheStatsReply(bio::Reader &r, ServerStats &stats) {
  return decodeCacheStatsReply(r, stats, kProtocolVersion);
}

} // namespace mira::server
