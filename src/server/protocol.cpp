#include "server/protocol.h"

namespace mira::server {

std::uint8_t packOptions(const core::MiraOptions &options) {
  std::uint8_t flags = 0;
  if (options.compile.compiler.optimize)
    flags |= kOptionOptimize;
  if (options.compile.compiler.vectorize)
    flags |= kOptionVectorize;
  if (options.metrics.assumeBranchesTaken)
    flags |= kOptionAssumeBranchesTaken;
  return flags;
}

core::MiraOptions unpackOptions(std::uint8_t flags) {
  core::MiraOptions options;
  options.compile.compiler.optimize = (flags & kOptionOptimize) != 0;
  options.compile.compiler.vectorize = (flags & kOptionVectorize) != 0;
  options.metrics.assumeBranchesTaken =
      (flags & kOptionAssumeBranchesTaken) != 0;
  return options;
}

void beginMessage(std::string &out, MessageType type) {
  bio::putU32(out, kProtocolMagic);
  bio::putU32(out, kProtocolVersion);
  bio::putU8(out, static_cast<std::uint8_t>(type));
}

bool readHeader(bio::Reader &r, MessageType &type, std::string &error) {
  std::uint32_t magic = 0, version = 0;
  std::uint8_t rawType = 0;
  if (!r.u32(magic) || !r.u32(version) || !r.u8(rawType)) {
    error = "short message header";
    return false;
  }
  if (magic != kProtocolMagic) {
    error = "bad magic (not a Mira protocol message)";
    return false;
  }
  if (version != kProtocolVersion) {
    error = "unsupported protocol version " + std::to_string(version) +
            " (this peer speaks " + std::to_string(kProtocolVersion) + ")";
    return false;
  }
  type = static_cast<MessageType>(rawType);
  return true;
}

std::string encodeEmptyMessage(MessageType type) {
  std::string out;
  beginMessage(out, type);
  return out;
}

std::string encodeAnalyzeRequest(const SourceItem &item, std::uint8_t flags) {
  std::string out;
  beginMessage(out, MessageType::analyze);
  bio::putU8(out, flags);
  bio::putString(out, item.name);
  bio::putString(out, item.source);
  return out;
}

std::string encodeBatchRequest(const std::vector<SourceItem> &items,
                               std::uint8_t flags) {
  std::string out;
  beginMessage(out, MessageType::batch);
  bio::putU8(out, flags);
  bio::putU32(out, static_cast<std::uint32_t>(items.size()));
  for (const SourceItem &item : items) {
    bio::putString(out, item.name);
    bio::putString(out, item.source);
  }
  return out;
}

std::string encodeErrorReply(const std::string &message) {
  std::string out;
  beginMessage(out, MessageType::error);
  bio::putString(out, message);
  return out;
}

namespace {

void putAnalyzeReplyBody(std::string &out, const AnalyzeReply &reply) {
  bio::putU8(out, reply.cacheHit ? 1 : 0);
  bio::putU64(out, reply.micros);
  bio::putString(out, reply.payload);
}

bool readAnalyzeReplyBody(bio::Reader &r, AnalyzeReply &reply) {
  std::uint8_t hit = 0;
  if (!r.u8(hit) || hit > 1)
    return false;
  reply.cacheHit = hit == 1;
  return r.u64(reply.micros) && r.str(reply.payload);
}

} // namespace

std::string encodeAnalyzeReply(const AnalyzeReply &reply) {
  std::string out;
  beginMessage(out, MessageType::analyzeReply);
  putAnalyzeReplyBody(out, reply);
  return out;
}

std::string encodeBatchReply(const std::vector<AnalyzeReply> &replies) {
  std::string out;
  beginMessage(out, MessageType::batchReply);
  bio::putU32(out, static_cast<std::uint32_t>(replies.size()));
  for (const AnalyzeReply &reply : replies)
    putAnalyzeReplyBody(out, reply);
  return out;
}

std::string encodeCacheStatsReply(const ServerStats &stats) {
  std::string out;
  beginMessage(out, MessageType::cacheStatsReply);
  bio::putU64(out, stats.uptimeMicros);
  bio::putU64(out, stats.connectionsAccepted);
  bio::putU64(out, stats.requestsServed);
  bio::putU64(out, stats.analyzeRequests);
  bio::putU64(out, stats.batchRequests);
  bio::putU64(out, stats.sourcesAnalyzed);
  bio::putU64(out, stats.cacheHits);
  bio::putU64(out, stats.computed);
  bio::putU64(out, stats.failures);
  bio::putU64(out, stats.protocolErrors);
  bio::putU64(out, stats.memoryEntries);
  bio::putU64(out, stats.diskHits);
  bio::putU64(out, stats.diskMisses);
  bio::putU64(out, stats.diskStores);
  bio::putU64(out, stats.diskEntries);
  bio::putU64(out, stats.diskBytes);
  bio::putU64(out, stats.threads);
  return out;
}

bool decodeAnalyzeRequest(bio::Reader &r, SourceItem &item,
                          std::uint8_t &flags) {
  return r.u8(flags) && r.str(item.name) && r.str(item.source) &&
         r.remaining() == 0;
}

bool decodeBatchRequest(bio::Reader &r, std::vector<SourceItem> &items,
                        std::uint8_t &flags) {
  std::uint32_t count = 0;
  if (!r.u8(flags) || !r.u32(count))
    return false;
  items.clear();
  // No reserve(count): the count is attacker-controlled; per-item reads
  // below fail naturally when the body runs out.
  for (std::uint32_t i = 0; i < count; ++i) {
    SourceItem item;
    if (!r.str(item.name) || !r.str(item.source))
      return false;
    items.push_back(std::move(item));
  }
  return r.remaining() == 0;
}

bool decodeErrorReply(bio::Reader &r, std::string &message) {
  return r.str(message) && r.remaining() == 0;
}

bool decodeAnalyzeReply(bio::Reader &r, AnalyzeReply &reply) {
  return readAnalyzeReplyBody(r, reply) && r.remaining() == 0;
}

bool decodeBatchReply(bio::Reader &r, std::vector<AnalyzeReply> &replies) {
  std::uint32_t count = 0;
  if (!r.u32(count))
    return false;
  replies.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    AnalyzeReply reply;
    if (!readAnalyzeReplyBody(r, reply))
      return false;
    replies.push_back(std::move(reply));
  }
  return r.remaining() == 0;
}

bool decodeCacheStatsReply(bio::Reader &r, ServerStats &stats) {
  return r.u64(stats.uptimeMicros) && r.u64(stats.connectionsAccepted) &&
         r.u64(stats.requestsServed) && r.u64(stats.analyzeRequests) &&
         r.u64(stats.batchRequests) && r.u64(stats.sourcesAnalyzed) &&
         r.u64(stats.cacheHits) && r.u64(stats.computed) &&
         r.u64(stats.failures) && r.u64(stats.protocolErrors) &&
         r.u64(stats.memoryEntries) && r.u64(stats.diskHits) &&
         r.u64(stats.diskMisses) && r.u64(stats.diskStores) &&
         r.u64(stats.diskEntries) && r.u64(stats.diskBytes) &&
         r.u64(stats.threads) && r.remaining() == 0;
}

} // namespace mira::server
