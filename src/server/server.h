/// \file
/// The long-lived analysis daemon behind `mira-cli serve`.
///
/// AnalysisServer listens on a Unix-domain socket, fans client sessions
/// across a ThreadPool, and answers protocol requests (server/protocol.h)
/// from one shared BatchAnalyzer — so the in-memory analysis cache stays
/// hot across requests and processes stop paying startup plus cold-cache
/// cost per invocation. With a cache directory configured the daemon
/// also reads and feeds the persistent disk level, making it a warm
/// front-end to the same cache a batch run would use.
///
/// Life cycle: construct -> start() binds the socket -> serve() accepts
/// and dispatches until a shutdown request (protocol message or
/// requestStop()) -> in-flight requests finish, idle connections close,
/// serve() returns, the socket file is removed. docs/SERVING.md is the
/// operator guide; tests/server_test.cpp pins the concurrency and
/// malformed-input behavior.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "driver/batch.h"
#include "server/protocol.h"
#include "support/socket.h"

namespace mira::server {

/// Daemon configuration. Analysis-affecting options arrive per request
/// over the wire; everything here is placement and execution strategy.
struct ServerOptions {
  /// Filesystem path of the Unix-domain listening socket. The daemon
  /// creates it (mode 0600) and unlinks it on clean shutdown.
  std::string socketPath;
  /// Concurrent client sessions (worker threads). Additional accepted
  /// connections wait in the pool queue until a worker frees up.
  std::size_t threads = 4;
  /// Threads for within-request per-function model generation.
  std::size_t modelThreads = 1;
  /// Persistent cache directory shared with batch runs; empty = memory
  /// cache only.
  std::string cacheDir;
  /// LRU byte cap for the disk level (0 = unlimited).
  std::uint64_t cacheBytesLimit = 0;
  /// Per-frame payload cap; larger declared lengths are rejected with an
  /// Error reply and a closed connection.
  std::uint32_t maxFrameBytes = kMaxFrameBytes;
};

/// Unix-socket analysis daemon serving the wire protocol of
/// server/protocol.h from a shared two-level analysis cache.
class AnalysisServer {
public:
  explicit AnalysisServer(ServerOptions options);
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer &) = delete;
  AnalysisServer &operator=(const AnalysisServer &) = delete;

  /// Bind the listening socket and the internal stop event. Returns
  /// false (with a description in `error`) when the path is unusable or
  /// another daemon already listens there.
  bool start(std::string &error);

  /// Accept and dispatch until shutdown; blocks the calling thread.
  /// Returns after every in-flight request finished and the socket file
  /// was removed. Must be preceded by a successful start().
  void serve();

  /// Ask serve() to stop: no new connections are accepted, idle
  /// connections see EOF, in-flight requests complete. Callable from any
  /// thread. Also reachable from signal handlers via stopEventFd().
  void requestStop();

  /// Write end of the stop event pipe: writing one byte is equivalent to
  /// requestStop() and is async-signal-safe (the CLI's SIGINT/SIGTERM
  /// handlers use exactly this).
  int stopEventFd() const { return stop_write_.fd(); }

  /// Lifetime counters plus current cache occupancy — the cacheStats
  /// wire reply. Safe to call concurrently with serving.
  ServerStats snapshotStats() const;

  const ServerOptions &options() const { return options_; }

private:
  void handleConnection(net::Socket sock);
  /// Serve one decoded message; returns false when the connection must
  /// close (shutdown request, protocol error, unexpected type). Replies
  /// are encoded in the dialect the message's header declared, so v1
  /// peers keep receiving v1 frames from a v2 daemon.
  bool handleMessage(int fd, const std::string &message);
  /// Record a served result in the counters (cache hit vs computed,
  /// failures, recompiles).
  void recordServed(const core::Artifacts &artifacts);
  AnalyzeReply analyzeItem(const SourceItem &item, std::uint8_t flags,
                           std::uint32_t version);
  /// Record artifacts in the counters and wrap them as a wire reply in
  /// the peer's payload dialect.
  AnalyzeReply replyFor(const core::Artifacts &artifacts,
                        std::uint32_t version);
  CoverageReply coverageItem(const SourceItem &item, std::uint8_t flags);
  SimulateReply simulateItem(const SourceItem &item, std::uint8_t flags,
                             const core::SimulationArgs &sim);
  /// Send a reply frame, enforcing the frame cap on the daemon's own
  /// output (an over-cap reply degrades to an Error). False when the
  /// connection must close.
  bool sendReply(int fd, const std::string &message, std::uint32_t version);
  /// Send an Error reply and count it; the caller closes the connection.
  void sendError(int fd, const std::string &text, std::uint32_t version);

  ServerOptions options_;
  std::unique_ptr<driver::BatchAnalyzer> analyzer_;
  std::unique_ptr<ThreadPool> sessions_;
  net::Socket listener_;
  net::Socket stop_read_, stop_write_; // self-pipe: poll()-able stop event
  std::chrono::steady_clock::time_point started_;
  bool bound_ = false;

  /// Guards connections_ and stopping_ (fds are shutdownRead() under the
  /// lock so a handler can never close an fd mid-iteration).
  std::mutex connections_mutex_;
  std::set<int> connections_;
  bool stopping_ = false;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> analyze_requests_{0};
  std::atomic<std::uint64_t> batch_requests_{0};
  std::atomic<std::uint64_t> coverage_requests_{0};
  std::atomic<std::uint64_t> simulate_requests_{0};
  std::atomic<std::uint64_t> sources_analyzed_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> computed_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> recompiles_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
};

} // namespace mira::server
