/// \file
/// The long-lived analysis daemon behind `mira-cli serve`.
///
/// AnalysisServer listens on a Unix-domain socket and/or a TCP
/// endpoint, fans client sessions
/// across a ThreadPool, and answers protocol requests (server/protocol.h)
/// from one shared BatchAnalyzer — so the in-memory analysis cache stays
/// hot across requests and processes stop paying startup plus cold-cache
/// cost per invocation. With a cache directory configured the daemon
/// also reads and feeds the persistent disk level, making it a warm
/// front-end to the same cache a batch run would use.
///
/// Connections are pipelined: a session keeps reading frames while
/// earlier requests still compute, and replies go out strictly in
/// request order (a per-connection sequencer buffers out-of-order
/// completions). Admission is bounded: at most `maxInflight` analysis
/// requests run at once daemon-wide; one more is answered with a Busy
/// reply carrying a retry hint instead of queueing without bound.
///
/// Life cycle: construct -> start() binds the socket -> serve() accepts
/// and dispatches until a shutdown request (protocol message or
/// requestStop()) -> graceful drain: accepting stops, in-flight requests
/// get up to `drainTimeoutMillis` to finish, stragglers are cut, the
/// socket file is removed and the metrics file (if any) gets a final
/// write. docs/SERVING.md is the operator guide; tests/server_test.cpp
/// pins the pipelining, backpressure, and malformed-input behavior.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/metrics_registry.h"
#include "driver/batch.h"
#include "server/protocol.h"
#include "support/socket.h"

namespace mira::server {

/// Daemon configuration. Analysis-affecting options arrive per request
/// over the wire; everything here is placement and execution strategy.
struct ServerOptions {
  /// Filesystem path of the Unix-domain listening socket. The daemon
  /// creates it (mode 0600) and unlinks it on clean shutdown. Empty =
  /// no Unix endpoint (TCP-only daemon; at least one endpoint must be
  /// configured).
  std::string socketPath;
  /// When true, also (or only) listen on TCP at tcpHost:tcpPort. Port 0
  /// asks the kernel for an ephemeral port — read it back with
  /// tcpPort() after start().
  bool tcpListen = false;
  std::string tcpHost = "127.0.0.1"; ///< TCP bind address
  std::uint16_t tcpPortRequested = 0; ///< TCP bind port; 0 = ephemeral
  /// Optional shared secret. When set, every session's first frame must
  /// be a Hello carrying exactly this string; anything else (including
  /// a stray port-scan probe) is answered Error-and-close before any
  /// request dispatch or compute. Applies to both endpoints so a
  /// daemon's auth story does not depend on which transport a client
  /// picked.
  std::string secret;
  /// Concurrent client sessions (reader threads) and, independently,
  /// compute workers. Additional accepted connections wait in the pool
  /// queue until a reader frees up.
  std::size_t threads = 4;
  /// Threads for within-request per-function model generation.
  std::size_t modelThreads = 1;
  /// Persistent cache directory shared with batch runs; empty = memory
  /// cache only.
  std::string cacheDir;
  /// LRU byte cap for the disk level (0 = unlimited).
  std::uint64_t cacheBytesLimit = 0;
  /// Per-frame payload cap; larger declared lengths are rejected with an
  /// Error reply and a closed connection.
  std::uint32_t maxFrameBytes = kMaxFrameBytes;
  /// Daemon-wide cap on concurrently running analysis requests (analyze,
  /// batch, coverage, simulate, manifest-diff — a batch counts as one).
  /// A request over the cap is refused with Busy (v2) or Error (v1)
  /// instead of queueing unboundedly. 0 = unlimited.
  std::size_t maxInflight = 0;
  /// How long a graceful shutdown waits for in-flight requests before
  /// force-closing the remaining connections.
  std::uint32_t drainTimeoutMillis = 5000;
  /// Retry-after hint (milliseconds) carried in Busy replies.
  std::uint32_t busyRetryMillis = 50;
  /// When non-empty, the daemon rewrites this file about once a second
  /// (and once at startup and shutdown) with the Prometheus-style text
  /// dump of the metrics registry, via write-temp-then-rename so
  /// scrapers never see a torn file.
  std::string metricsFile;
};

/// Analysis daemon serving the wire protocol of server/protocol.h from
/// a shared two-level analysis cache, over a Unix-domain socket, a TCP
/// endpoint, or both — sessions behave identically on either transport.
class AnalysisServer {
public:
  explicit AnalysisServer(ServerOptions options);
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer &) = delete;
  AnalysisServer &operator=(const AnalysisServer &) = delete;

  /// Bind the listening socket and the internal stop event. Returns
  /// false (with a description in `error`) when the path is unusable or
  /// another daemon already listens there.
  bool start(std::string &error);

  /// Accept and dispatch until shutdown; blocks the calling thread.
  /// Returns after the drain completed and the socket file was removed.
  /// Must be preceded by a successful start().
  void serve();

  /// Ask serve() to stop: no new connections are accepted, idle
  /// connections see EOF, in-flight requests get the drain window to
  /// complete. Callable from any thread. Also reachable from signal
  /// handlers via stopEventFd().
  void requestStop();

  /// Write end of the stop event pipe: writing one byte is equivalent to
  /// requestStop() and is async-signal-safe (the CLI's SIGINT/SIGTERM
  /// handlers use exactly this).
  int stopEventFd() const { return stop_write_.fd(); }

  /// Lifetime counters plus current cache occupancy — the cacheStats
  /// wire reply, assembled from the metrics registry. Safe to call
  /// concurrently with serving.
  ServerStats snapshotStats() const;

  /// The full registry contents as wire samples — the Metrics reply.
  /// Gauges (uptime, in-flight, cache occupancy) are refreshed first.
  std::vector<MetricSample> metricsSamples() const;

  /// Prometheus-style text dump of the registry (the --metrics-file
  /// format, also what `mira-cli client metrics` prints).
  std::string renderMetricsText() const;

  const ServerOptions &options() const { return options_; }

  /// The TCP port actually bound (resolves a requested port of 0 to the
  /// kernel-assigned one). 0 when the daemon has no TCP endpoint or
  /// start() has not succeeded yet.
  std::uint16_t tcpPort() const { return net::boundPort(tcp_listener_); }

private:
  /// Per-connection state: the socket, the reader's sequence numbers,
  /// and the reply sequencer that restores request order.
  struct Session;

  void handleConnection(std::shared_ptr<Session> session);
  /// Decode one frame and either answer it inline (cheap requests) or
  /// dispatch it to the compute pool. Returns false when the reader must
  /// stop (shutdown, protocol error, v1 peer refused at capacity).
  bool handleFrame(const std::shared_ptr<Session> &session,
                   std::uint64_t seq, const std::string &message);
  /// Hand the reply for `seq` to the connection's sequencer; consecutive
  /// ready replies are flushed in order. With `closeAfter` the reply is
  /// the connection's last frame: once it is flushed the socket is cut.
  void enqueueReply(const std::shared_ptr<Session> &session,
                    std::uint64_t seq, std::string frame, bool closeAfter);
  /// Enqueue a reply produced by a compute worker, degrading an over-cap
  /// frame to an Error (the frame cap binds the daemon's own output too).
  void sendReplyAt(const std::shared_ptr<Session> &session,
                   std::uint64_t seq, std::string frame,
                   std::uint32_t version);
  /// Enqueue an Error reply and count it; closes after flushing.
  void sendErrorAt(const std::shared_ptr<Session> &session,
                   std::uint64_t seq, const std::string &text,
                   std::uint32_t version);
  /// Write (or buffer) a batchProgress frame for request `seq`. The
  /// sequencer keeps the stream legal: progress frames go out after the
  /// reply to seq-1 and before the final reply to seq, in emission
  /// order. Progress frames are not replies — they do not count toward
  /// requests_served.
  void sendProgressAt(const std::shared_ptr<Session> &session,
                      std::uint64_t seq, std::string frame);
  /// True when a manifest batch on this session should abandon its
  /// remaining work: the peer disconnected (and the daemon is not
  /// draining — during a drain in-flight requests finish and answer) or
  /// the write side already aborted.
  bool batchCancelled(const std::shared_ptr<Session> &session);
  /// Execute one admitted manifestBatch request on a compute worker:
  /// chunked fan-out over the analyzer, optional progress frames,
  /// cancellation between chunks, one merged byte-stable report.
  void runManifestBatch(const std::shared_ptr<Session> &session,
                        std::uint64_t seq, std::uint32_t version,
                        const ManifestBatchRequest &request,
                        const corpus::Manifest &manifest,
                        const corpus::Manifest *since);
  /// Try to reserve an in-flight slot. At capacity the request is
  /// answered Busy (v2, connection keeps going) or Error (v1, which
  /// cannot decode Busy; the connection closes) and false is returned.
  bool admitOrRefuse(const std::shared_ptr<Session> &session,
                     std::uint64_t seq, std::uint32_t version);
  void releaseInflight();
  /// Refresh the point-in-time gauges before a registry snapshot.
  void refreshGauges() const;
  /// Atomically (re)write options_.metricsFile; no-op when unset.
  void writeMetricsFile() const;

  /// Record a served result in the counters (cache hit vs computed,
  /// failures, recompiles).
  void recordServed(const core::Artifacts &artifacts);
  AnalyzeReply analyzeItem(const SourceItem &item, std::uint8_t flags,
                           std::uint32_t version);
  /// Record artifacts in the counters and wrap them as a wire reply in
  /// the peer's payload dialect.
  AnalyzeReply replyFor(const core::Artifacts &artifacts,
                        std::uint32_t version);
  CoverageReply coverageItem(const SourceItem &item, std::uint8_t flags);
  SimulateReply simulateItem(const SourceItem &item, std::uint8_t flags,
                             const core::SimulationArgs &sim);

  ServerOptions options_;
  /// The one registry behind every surface: the analyzer registers its
  /// lifetime counters here too, so cacheStats, the Metrics reply, and
  /// --metrics-file all render the same numbers. Mutable because gauge
  /// refreshes are logically const snapshot preparation.
  mutable core::MetricsRegistry metrics_;
  std::unique_ptr<driver::BatchAnalyzer> analyzer_;
  /// Readers: one task per live connection, blocked on frame I/O.
  std::unique_ptr<ThreadPool> sessions_;
  /// Compute workers: analysis requests run here so a slow-reading
  /// client never starves computation (and vice versa), and so one
  /// connection can have several requests genuinely in flight.
  std::unique_ptr<ThreadPool> compute_;
  net::Socket listener_;     // Unix endpoint (invalid when socketPath empty)
  net::Socket tcp_listener_; // TCP endpoint (invalid when !tcpListen)
  net::Socket stop_read_, stop_write_; // self-pipe: poll()-able stop event
  std::chrono::steady_clock::time_point started_;
  bool bound_ = false;

  /// Guards connections_ and stopping_ (sockets are shut down under the
  /// lock; the fds stay open until each Session is destroyed, so the
  /// stop broadcast can never race a close).
  std::mutex connections_mutex_;
  std::set<Session *> connections_;
  bool stopping_ = false;

  /// Admission state for --max-inflight; the cv wakes the drain waiter.
  mutable std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::uint64_t inflight_ = 0;

  core::MetricsRegistry::Counter &connections_accepted_;
  core::MetricsRegistry::Counter &requests_served_;
  core::MetricsRegistry::Counter &analyze_requests_;
  core::MetricsRegistry::Counter &batch_requests_;
  core::MetricsRegistry::Counter &coverage_requests_;
  core::MetricsRegistry::Counter &simulate_requests_;
  core::MetricsRegistry::Counter &sources_analyzed_;
  core::MetricsRegistry::Counter &cache_hits_;
  core::MetricsRegistry::Counter &computed_;
  core::MetricsRegistry::Counter &failures_;
  core::MetricsRegistry::Counter &recompiles_;
  core::MetricsRegistry::Counter &protocol_errors_;
  core::MetricsRegistry::Counter &busy_rejections_;
  // ManifestBatch counters live in the registry only (Metrics reply and
  // --metrics-file): the cacheStatsReply wire block is frozen — its
  // decoder rejects trailing bytes, so growing it would break deployed
  // v2 clients.
  core::MetricsRegistry::Counter &manifest_batch_requests_;
  core::MetricsRegistry::Counter &manifest_batch_cancelled_;
};

} // namespace mira::server
