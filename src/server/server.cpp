#include "server/server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

namespace mira::server {

namespace {

std::uint64_t microsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// Sentinel for "no close-after reply enqueued yet".
constexpr std::uint64_t kNoCloseSeq = ~static_cast<std::uint64_t>(0);

} // namespace

/// One live connection. The reader assigns ascending sequence numbers
/// to frames as they arrive; replies (computed on any thread) park in
/// `pending` until every earlier reply has been written, which is what
/// makes pipelined replies come out strictly in request order.
struct AnalysisServer::Session {
  Session(AnalysisServer &server, net::Socket sock)
      : server(server), sock(std::move(sock)) {}
  ~Session() {
    std::lock_guard<std::mutex> lock(server.connections_mutex_);
    server.connections_.erase(this);
  }

  AnalysisServer &server;
  net::Socket sock;

  std::mutex mutex;
  /// Next sequence number the reader will assign.
  std::uint64_t nextSeq = 0;
  /// Next sequence number the sequencer will write.
  std::uint64_t nextToWrite = 0;
  /// Replies that finished out of order, keyed by sequence number.
  std::map<std::uint64_t, std::string> pending;
  /// Progress frames that arrived before their request reached the head
  /// of the sequencer, keyed by sequence number; flushed (in emission
  /// order) just before the final reply to that request.
  std::map<std::uint64_t, std::vector<std::string>> progress;
  /// Once the reply at this seq is flushed the connection is cut
  /// (protocol errors, shutdown acks, and v1 capacity refusals must be
  /// the last frame the peer sees).
  std::uint64_t closeAfterSeq = kNoCloseSeq;
  /// A write failed or closeAfterSeq was flushed: stop writing.
  bool aborted = false;
  /// The session passed the shared-secret handshake (or none is
  /// configured). Only the reader thread consults and sets this, so no
  /// synchronization is needed.
  bool authed = false;
  /// The reader loop exited: the peer closed, vanished, or the daemon is
  /// draining. Long-running manifest batches poll this between chunks so
  /// a disconnected client's work is abandoned instead of computed into
  /// the void.
  std::atomic<bool> peerGone{false};
};

AnalysisServer::AnalysisServer(ServerOptions options)
    : options_(std::move(options)), started_(std::chrono::steady_clock::now()),
      connections_accepted_(metrics_.counter("server_connections_accepted_total")),
      requests_served_(metrics_.counter("server_requests_served_total")),
      analyze_requests_(metrics_.counter("server_analyze_requests_total")),
      batch_requests_(metrics_.counter("server_batch_requests_total")),
      coverage_requests_(metrics_.counter("server_coverage_requests_total")),
      simulate_requests_(metrics_.counter("server_simulate_requests_total")),
      sources_analyzed_(metrics_.counter("server_sources_analyzed_total")),
      cache_hits_(metrics_.counter("server_cache_hits_total")),
      computed_(metrics_.counter("server_computed_total")),
      failures_(metrics_.counter("server_failures_total")),
      recompiles_(metrics_.counter("server_recompiles_total")),
      protocol_errors_(metrics_.counter("server_protocol_errors_total")),
      busy_rejections_(metrics_.counter("server_busy_rejections_total")),
      manifest_batch_requests_(
          metrics_.counter("server_manifest_batch_requests_total")),
      manifest_batch_cancelled_(
          metrics_.counter("server_manifest_batch_cancelled_total")) {
  driver::BatchOptions batchOptions;
  // Batch requests fan their items across the analyzer's own pool
  // (analyzeMany), so size it like the compute pool. modelThreads
  // additionally fans out per-function model generation inside one
  // request. The analyzer registers its lifetime counters in the
  // daemon's registry so one scrape covers both layers.
  batchOptions.threads = options_.threads;
  batchOptions.useCache = true;
  batchOptions.cacheDir = options_.cacheDir;
  batchOptions.cacheBytesLimit = options_.cacheBytesLimit;
  batchOptions.modelThreads = options_.modelThreads;
  batchOptions.metrics = &metrics_;
  analyzer_ = std::make_unique<driver::BatchAnalyzer>(batchOptions);
  sessions_ = std::make_unique<ThreadPool>(options_.threads);
  compute_ = std::make_unique<ThreadPool>(options_.threads);
  // Session/compute tasks catch at their own boundaries; if one still
  // throws, the pool contains it (instead of std::terminate taking the
  // daemon down) and the registry records that it happened.
  core::MetricsRegistry::Counter &poolExceptions =
      metrics_.counter("pool_task_exceptions_total");
  sessions_->setExceptionHandler(
      [&poolExceptions] { poolExceptions.increment(); });
  compute_->setExceptionHandler(
      [&poolExceptions] { poolExceptions.increment(); });
}

AnalysisServer::~AnalysisServer() {
  if (bound_ && !options_.socketPath.empty()) {
    // serve() normally unlinks; cover start()-without-serve() too.
    ::unlink(options_.socketPath.c_str());
  }
}

bool AnalysisServer::start(std::string &error) {
  int pipeFds[2];
  if (::pipe(pipeFds) != 0) {
    error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  stop_read_ = net::Socket(pipeFds[0]);
  stop_write_ = net::Socket(pipeFds[1]);

  if (options_.socketPath.empty() && !options_.tcpListen) {
    error = "no endpoint configured: set a socket path or a TCP listen "
            "address";
    return false;
  }
  if (!options_.socketPath.empty()) {
    // Owner-only from the first instant: bind() creates the inode with
    // 0777&~umask, so a chmod afterwards would leave a connectable
    // window under a permissive umask. umask is process-global; start()
    // runs before the daemon spawns request threads (docs/SERVING.md).
    const mode_t oldMask = ::umask(0177);
    listener_ = net::listenUnix(options_.socketPath, error);
    ::umask(oldMask);
    if (!listener_.valid())
      return false;
    ::chmod(options_.socketPath.c_str(), 0600);
  }
  if (options_.tcpListen) {
    tcp_listener_ =
        net::listenTcp(options_.tcpHost, options_.tcpPortRequested, error);
    if (!tcp_listener_.valid()) {
      if (!options_.socketPath.empty()) {
        listener_.close();
        ::unlink(options_.socketPath.c_str());
      }
      return false;
    }
  }
  bound_ = true;
  return true;
}

void AnalysisServer::requestStop() {
  if (stop_write_.valid()) {
    // A single byte on the self-pipe; extra bytes from repeated calls or
    // signal handlers are harmless (serve() drains on its way out).
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(stop_write_.fd(), &byte, 1);
  }
}

void AnalysisServer::serve() {
  writeMetricsFile();
  // With a metrics file configured, wake up about once a second to
  // refresh it; otherwise block in poll indefinitely.
  const int pollTimeoutMillis = options_.metricsFile.empty() ? -1 : 1000;
  for (;;) {
    // Endpoint fds first, the stop pipe last; either listener may be
    // absent (fd -1 entries are ignored by poll).
    pollfd fds[3] = {{listener_.fd(), POLLIN, 0},
                     {tcp_listener_.fd(), POLLIN, 0},
                     {stop_read_.fd(), POLLIN, 0}};
    const int ready = ::poll(fds, 3, pollTimeoutMillis);
    if (ready < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (ready == 0) {
      writeMetricsFile();
      continue;
    }
    if (fds[2].revents != 0)
      break; // stop requested
    for (int i = 0; i < 2; ++i) {
      if ((fds[i].revents & POLLIN) == 0)
        continue;
      net::Socket conn =
          net::acceptConnection(i == 0 ? listener_ : tcp_listener_);
      if (!conn.valid())
        continue; // transient (EMFILE, aborted handshake): keep serving
      connections_accepted_.increment();
      auto session = std::make_shared<Session>(*this, std::move(conn));
      sessions_->submit([this, session] { handleConnection(session); });
    }
  }

  // Graceful drain. Step 1: stop accepting and wake idle readers —
  // blocked readFrames see EOF, replies in flight still go out.
  listener_.close();
  tcp_listener_.close();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    stopping_ = true;
    for (Session *session : connections_)
      session->sock.shutdownRead();
  }
  // Step 2: give in-flight requests the drain window to finish and
  // answer. Step 3: cut the stragglers' sockets — their computations
  // still run to completion (the pool has no preemption) but their
  // replies are discarded and any blocked writes unblock.
  bool drained;
  {
    std::unique_lock<std::mutex> lock(inflight_mutex_);
    drained = inflight_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drainTimeoutMillis),
        [&] { return inflight_ == 0; });
  }
  if (!drained) {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (Session *session : connections_)
      session->sock.shutdownBoth();
  }
  sessions_->waitIdle();
  compute_->waitIdle();
  if (!options_.socketPath.empty())
    ::unlink(options_.socketPath.c_str());
  bound_ = false;
  writeMetricsFile();
}

void AnalysisServer::handleConnection(std::shared_ptr<Session> session) {
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.insert(session.get());
    if (stopping_)
      session->sock.shutdownRead(); // accepted before stop, dispatched
                                    // after: close without serving
  }

  std::string message;
  for (;;) {
    net::FrameStatus status =
        net::readFrame(session->sock.fd(), message, options_.maxFrameBytes);
    if (status == net::FrameStatus::closed)
      break; // client finished cleanly
    if (status == net::FrameStatus::oversized) {
      // The frame was never parsed, so the peer's dialect is unknown:
      // answer in v1, which every client version decodes.
      std::uint64_t seq;
      {
        std::lock_guard<std::mutex> lock(session->mutex);
        seq = session->nextSeq++;
      }
      sendErrorAt(session, seq,
                  "frame exceeds " + std::to_string(options_.maxFrameBytes) +
                      " bytes",
                  kProtocolVersionMin);
      break;
    }
    if (status != net::FrameStatus::ok) { // truncated or I/O error
      protocol_errors_.increment();
      break;
    }
    std::uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(session->mutex);
      seq = session->nextSeq++;
    }
    if (!handleFrame(session, seq, message))
      break;
  }
  session->peerGone.store(true, std::memory_order_release);
  // The socket stays open until the last reply flushes: compute workers
  // hold their own reference to the Session, and the fd closes when the
  // final reference (reader or worker) drops.
}

bool AnalysisServer::handleFrame(const std::shared_ptr<Session> &session,
                                 std::uint64_t seq,
                                 const std::string &message) {
  bio::Reader r{message, 0};
  MessageType type{};
  std::uint32_t version = 0;
  std::string headerError;
  if (!readHeader(r, type, version, headerError)) {
    // The peer's dialect is unknown; v1 error frames are the common
    // denominator every client version can decode.
    sendErrorAt(session, seq, headerError, kProtocolVersionMin);
    return false;
  }

  // The shared-secret handshake is resolved before any dispatch: on a
  // secret-bearing daemon nothing past this point runs (and no compute
  // is ever scheduled) until the session's first frame is a Hello with
  // the matching secret. A stray port scan gets one Error frame and a
  // closed connection.
  if (type == MessageType::hello) {
    std::string presented;
    if (version < 2 || !decodeHelloRequest(r, presented)) {
      sendErrorAt(session, seq, "malformed hello request", version);
      return false;
    }
    if (!options_.secret.empty() && presented != options_.secret) {
      sendErrorAt(session, seq, "handshake rejected", version);
      return false;
    }
    // A hello on a secretless daemon is accepted too, so clients can
    // always send one without knowing the daemon's configuration.
    session->authed = true;
    enqueueReply(session, seq,
                 encodeEmptyMessage(MessageType::helloReply, version), false);
    return true;
  }
  if (!options_.secret.empty() && !session->authed) {
    sendErrorAt(session, seq, "handshake required", version);
    return false;
  }

  switch (type) {
  case MessageType::ping:
    enqueueReply(session, seq, encodeEmptyMessage(MessageType::pong, version),
                 false);
    return true;

  case MessageType::analyze: {
    SourceItem item;
    std::uint8_t flags = 0;
    if (!decodeAnalyzeRequest(r, item, flags)) {
      sendErrorAt(session, seq, "malformed analyze request", version);
      return false;
    }
    analyze_requests_.increment();
    if (!admitOrRefuse(session, seq, version))
      return version >= 2;
    compute_->submit([this, session, seq, version, item = std::move(item),
                      flags] {
      AnalyzeReply reply = analyzeItem(item, flags, version);
      releaseInflight();
      sendReplyAt(session, seq, encodeAnalyzeReply(reply, version), version);
    });
    return true;
  }

  case MessageType::batch: {
    std::vector<SourceItem> items;
    std::uint8_t flags = 0;
    if (!decodeBatchRequest(r, items, flags)) {
      sendErrorAt(session, seq, "malformed batch request", version);
      return false;
    }
    batch_requests_.increment();
    // A batch holds a single in-flight slot: its items fan across the
    // analyzer's pool (same intra-request parallelism as `mira-cli
    // batch --threads N`), so admitting it per item would double-count.
    if (!admitOrRefuse(session, seq, version))
      return version >= 2;
    compute_->submit([this, session, seq, version, items = std::move(items),
                      flags]() mutable {
      std::vector<core::AnalysisSpec> specs;
      specs.reserve(items.size());
      const core::MiraOptions options = unpackOptions(flags);
      for (SourceItem &item : items) {
        core::AnalysisSpec spec;
        spec.name = std::move(item.name);
        spec.source = std::move(item.source);
        spec.options = options;
        spec.artifacts = core::kArtifactDefault;
        specs.push_back(std::move(spec));
      }
      std::vector<core::Artifacts> results =
          analyzer_->analyzeArtifactsMany(specs);
      std::vector<AnalyzeReply> replies;
      replies.reserve(results.size());
      for (const core::Artifacts &artifacts : results)
        replies.push_back(replyFor(artifacts, version));
      releaseInflight();
      sendReplyAt(session, seq, encodeBatchReply(replies, version), version);
    });
    return true;
  }

  case MessageType::coverage: {
    SourceItem item;
    std::uint8_t flags = 0;
    if (version < 2) {
      sendErrorAt(session, seq, "coverage requires protocol version 2",
                  version);
      return false;
    }
    if (!decodeCoverageRequest(r, item, flags)) {
      sendErrorAt(session, seq, "malformed coverage request", version);
      return false;
    }
    coverage_requests_.increment();
    if (!admitOrRefuse(session, seq, version))
      return true;
    compute_->submit([this, session, seq, version, item = std::move(item),
                      flags] {
      CoverageReply reply = coverageItem(item, flags);
      releaseInflight();
      sendReplyAt(session, seq, encodeCoverageReply(reply), version);
    });
    return true;
  }

  case MessageType::simulate: {
    SourceItem item;
    std::uint8_t flags = 0;
    core::SimulationArgs sim;
    if (version < 2) {
      sendErrorAt(session, seq, "simulate requires protocol version 2",
                  version);
      return false;
    }
    if (!decodeSimulateRequest(r, item, flags, sim)) {
      sendErrorAt(session, seq, "malformed simulate request", version);
      return false;
    }
    simulate_requests_.increment();
    if (!admitOrRefuse(session, seq, version))
      return true;
    compute_->submit([this, session, seq, version, item = std::move(item),
                      flags, sim = std::move(sim)] {
      SimulateReply reply = simulateItem(item, flags, sim);
      releaseInflight();
      sendReplyAt(session, seq, encodeSimulateReply(reply), version);
    });
    return true;
  }

  case MessageType::manifestDiff: {
    std::string oldBytes, newBytes;
    if (version < 2) {
      sendErrorAt(session, seq, "manifest-diff requires protocol version 2",
                  version);
      return false;
    }
    if (!decodeManifestDiffRequest(r, oldBytes, newBytes)) {
      sendErrorAt(session, seq, "malformed manifest-diff request", version);
      return false;
    }
    // The blobs are validated application payloads, not framing: a bad
    // manifest still gets the Error-then-close treatment so clients
    // can't mistake a refusal for an empty diff. Validation runs on the
    // reader (it is cheap parsing); only the diff is dispatched.
    corpus::Manifest oldManifest, newManifest;
    std::string manifestError;
    if (!corpus::deserializeManifest(oldBytes, oldManifest, manifestError) ||
        !corpus::deserializeManifest(newBytes, newManifest, manifestError)) {
      sendErrorAt(session, seq, "malformed manifest: " + manifestError,
                  version);
      return false;
    }
    if (!admitOrRefuse(session, seq, version))
      return true;
    compute_->submit([this, session, seq, version,
                      oldManifest = std::move(oldManifest),
                      newManifest = std::move(newManifest)] {
      corpus::ManifestDiff diff = corpus::diffManifests(oldManifest,
                                                        newManifest);
      ManifestDiffReply reply;
      reply.added = std::move(diff.added);
      reply.changed = std::move(diff.changed);
      reply.removed = std::move(diff.removed);
      releaseInflight();
      sendReplyAt(session, seq, encodeManifestDiffReply(reply), version);
    });
    return true;
  }

  case MessageType::manifestBatch: {
    if (version < 2) {
      sendErrorAt(session, seq, "manifest-batch requires protocol version 2",
                  version);
      return false;
    }
    ManifestBatchRequest request;
    if (!decodeManifestBatchRequest(r, request)) {
      sendErrorAt(session, seq, "malformed manifest-batch request", version);
      return false;
    }
    // Same contract as manifestDiff: the manifest blobs are validated
    // application payloads, and a bad one gets Error-then-close so a
    // refusal can never look like an empty corpus. Parsing is cheap and
    // runs on the reader; only the analysis is dispatched.
    corpus::Manifest manifest, since;
    std::string manifestError;
    if (!corpus::deserializeManifest(request.manifestBytes, manifest,
                                     manifestError)) {
      sendErrorAt(session, seq, "malformed manifest: " + manifestError,
                  version);
      return false;
    }
    const bool haveSince = !request.sinceBytes.empty();
    if (haveSince &&
        !corpus::deserializeManifest(request.sinceBytes, since,
                                     manifestError)) {
      sendErrorAt(session, seq, "malformed manifest: " + manifestError,
                  version);
      return false;
    }
    manifest_batch_requests_.increment();
    // One in-flight slot for the whole corpus, like batch: the entries
    // fan across the analyzer's own pool chunk by chunk.
    if (!admitOrRefuse(session, seq, version))
      return true;
    compute_->submit([this, session, seq, version,
                      request = std::move(request),
                      manifest = std::move(manifest), since = std::move(since),
                      haveSince] {
      runManifestBatch(session, seq, version, request, manifest,
                       haveSince ? &since : nullptr);
    });
    return true;
  }

  case MessageType::cacheStats:
    enqueueReply(session, seq, encodeCacheStatsReply(snapshotStats(), version),
                 false);
    return true;

  case MessageType::metrics:
    if (version < 2) {
      sendErrorAt(session, seq, "metrics requires protocol version 2",
                  version);
      return false;
    }
    enqueueReply(session, seq, encodeMetricsReply(metricsSamples()), false);
    return true;

  case MessageType::shutdown: {
    // Acknowledge, sequenced after every earlier reply on this
    // connection: the requester must learn the shutdown was accepted
    // even though the daemon stops reading from everyone next.
    enqueueReply(session, seq,
                 encodeEmptyMessage(MessageType::shutdownReply, version),
                 true);
    requestStop();
    return false;
  }

  default:
    sendErrorAt(session, seq,
                "unexpected message type " +
                    std::to_string(static_cast<unsigned>(type)),
                version);
    return false;
  }
}

void AnalysisServer::enqueueReply(const std::shared_ptr<Session> &session,
                                  std::uint64_t seq, std::string frame,
                                  bool closeAfter) {
  // Every frame gets exactly one reply (errors and Busy included), so
  // this is the one place "requests served" is counted.
  requests_served_.increment();
  Session &s = *session;
  std::lock_guard<std::mutex> lock(s.mutex);
  if (closeAfter && seq < s.closeAfterSeq)
    s.closeAfterSeq = seq;
  s.pending.emplace(seq, std::move(frame));
  // Flush the consecutive run of ready replies. Writing under the
  // session mutex serializes frames per connection only; other
  // connections' workers are unaffected.
  while (!s.aborted) {
    // Buffered progress frames for the head request precede its final
    // reply (and follow the reply to seq-1 by construction).
    auto pit = s.progress.find(s.nextToWrite);
    if (pit != s.progress.end()) {
      for (std::string &frame : pit->second) {
        if (!net::writeFrame(s.sock.fd(), frame)) {
          s.aborted = true;
          break;
        }
      }
      s.progress.erase(pit);
      if (s.aborted)
        break;
    }
    auto it = s.pending.find(s.nextToWrite);
    if (it == s.pending.end())
      break;
    std::string out = std::move(it->second);
    s.pending.erase(it);
    const std::uint64_t written = s.nextToWrite++;
    if (!net::writeFrame(s.sock.fd(), out)) {
      s.aborted = true;
      break;
    }
    if (written >= s.closeAfterSeq) {
      // The reply that must be the connection's last frame went out:
      // cut both directions so the reader unblocks and later-seq
      // replies (already computing) are dropped on the floor.
      s.aborted = true;
      s.sock.shutdownBoth();
      break;
    }
  }
}

void AnalysisServer::sendReplyAt(const std::shared_ptr<Session> &session,
                                 std::uint64_t seq, std::string frame,
                                 std::uint32_t version) {
  // The frame cap binds both directions: a reply the daemon itself
  // cannot legally frame (a huge batch's aggregated payloads) becomes
  // an Error, not a protocol violation the client chokes on.
  if (frame.size() > options_.maxFrameBytes) {
    sendErrorAt(session, seq,
                "reply of " + std::to_string(frame.size()) +
                    " bytes exceeds the " +
                    std::to_string(options_.maxFrameBytes) +
                    "-byte frame cap; split the request",
                version);
    return;
  }
  enqueueReply(session, seq, std::move(frame), false);
}

void AnalysisServer::sendErrorAt(const std::shared_ptr<Session> &session,
                                 std::uint64_t seq, const std::string &text,
                                 std::uint32_t version) {
  protocol_errors_.increment();
  enqueueReply(session, seq, encodeErrorReply(text, version), true);
}

void AnalysisServer::sendProgressAt(const std::shared_ptr<Session> &session,
                                    std::uint64_t seq, std::string frame) {
  Session &s = *session;
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.aborted)
    return;
  if (seq == s.nextToWrite) {
    // This request is at the head of the sequencer: the frame can go
    // straight out without reordering anything.
    if (!net::writeFrame(s.sock.fd(), frame))
      s.aborted = true;
  } else {
    s.progress[seq].push_back(std::move(frame));
  }
}

bool AnalysisServer::batchCancelled(
    const std::shared_ptr<Session> &session) {
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    if (session->aborted)
      return true; // write side is dead; no one can receive the reply
  }
  if (!session->peerGone.load(std::memory_order_acquire))
    return false;
  // The reader also exits when a graceful drain shuts the read side
  // down; in-flight requests are promised the drain window, so only a
  // genuine peer departure cancels.
  std::lock_guard<std::mutex> lock(connections_mutex_);
  return !stopping_;
}

bool AnalysisServer::admitOrRefuse(const std::shared_ptr<Session> &session,
                                   std::uint64_t seq, std::uint32_t version) {
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    if (options_.maxInflight == 0 || inflight_ < options_.maxInflight) {
      ++inflight_;
      return true;
    }
  }
  busy_rejections_.increment();
  if (version >= 2) {
    // Busy is the one reply that does not end the conversation: the
    // request was not queued, the connection stays open, and the peer
    // should retry after the hint.
    BusyReply busy;
    busy.retryAfterMillis = options_.busyRetryMillis;
    enqueueReply(session, seq, encodeBusyReply(busy), false);
  } else {
    // v1 peers cannot decode Busy: refuse with the error-and-close
    // contract they already understand.
    enqueueReply(session, seq,
                 encodeErrorReply("daemon is at capacity; retry later",
                                  version),
                 true);
  }
  return false;
}

void AnalysisServer::releaseInflight() {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  --inflight_;
  inflight_cv_.notify_all();
}

void AnalysisServer::recordServed(const core::Artifacts &artifacts) {
  sources_analyzed_.increment();
  if (artifacts.cacheHit)
    cache_hits_.increment();
  else
    computed_.increment();
  if (!artifacts.ok)
    failures_.increment();
  if (artifacts.recompiled)
    recompiles_.increment();
}

AnalyzeReply AnalysisServer::analyzeItem(const SourceItem &item,
                                         std::uint8_t flags,
                                         std::uint32_t version) {
  core::AnalysisSpec spec;
  spec.name = item.name;
  spec.source = item.source;
  spec.options = unpackOptions(flags);
  spec.artifacts = core::kArtifactDefault;
  return replyFor(analyzer_->analyzeArtifacts(spec), version);
}

AnalyzeReply AnalysisServer::replyFor(const core::Artifacts &artifacts,
                                      std::uint32_t version) {
  recordServed(artifacts);

  AnalyzeReply reply;
  reply.cacheHit = artifacts.cacheHit;
  reply.micros = static_cast<std::uint64_t>(artifacts.seconds * 1e6);
  // The canonical result payload (docs/CACHING.md format) in the peer's
  // dialect, named after this request: byte-identical to a one-shot
  // analyze of the same (source, options), whether served cold, from
  // memory, or from disk. v2 payloads carry the coverage summary when
  // the cache has one (always, except entries restored from v1 disk
  // blobs).
  if (version >= 2)
    reply.payload = driver::serializeArtifactPayload(
        artifacts.model.get(),
        artifacts.coverage ? &*artifacts.coverage : nullptr,
        artifacts.diagnostics, artifacts.name);
  else
    reply.payload = driver::serializeOutcomePayloadV1(
        artifacts.resultV1.get(), artifacts.diagnostics, artifacts.name);
  return reply;
}

CoverageReply AnalysisServer::coverageItem(const SourceItem &item,
                                           std::uint8_t flags) {
  core::AnalysisSpec spec;
  spec.name = item.name;
  spec.source = item.source;
  spec.options = unpackOptions(flags);
  spec.artifacts = core::kArtifactCoverage | core::kArtifactDiagnostics;
  core::Artifacts artifacts = analyzer_->analyzeArtifacts(spec);
  recordServed(artifacts);

  CoverageReply reply;
  reply.cacheHit = artifacts.cacheHit;
  reply.recompiled = artifacts.recompiled;
  reply.micros = static_cast<std::uint64_t>(artifacts.seconds * 1e6);
  reply.ok = artifacts.ok && artifacts.coverage.has_value();
  reply.diagnostics = artifacts.diagnostics;
  if (reply.ok)
    reply.coverage = *artifacts.coverage;
  return reply;
}

SimulateReply AnalysisServer::simulateItem(const SourceItem &item,
                                           std::uint8_t flags,
                                           const core::SimulationArgs &sim) {
  core::AnalysisSpec spec;
  spec.name = item.name;
  spec.source = item.source;
  spec.options = unpackOptions(flags);
  spec.artifacts = core::kArtifactSimulation | core::kArtifactDiagnostics;
  spec.simulation = sim;
  core::Artifacts artifacts = analyzer_->analyzeArtifacts(spec);
  recordServed(artifacts);

  SimulateReply reply;
  reply.cacheHit = artifacts.cacheHit;
  reply.recompiled = artifacts.recompiled;
  reply.micros = static_cast<std::uint64_t>(artifacts.seconds * 1e6);
  reply.ok = artifacts.ok && artifacts.simulation != nullptr;
  reply.diagnostics = artifacts.diagnostics;
  if (reply.ok)
    reply.result = *artifacts.simulation;
  return reply;
}

namespace {

bool readSourceFile(const std::string &path, std::string &out) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof())
    return false;
  out = buffer.str();
  return true;
}

} // namespace

void AnalysisServer::runManifestBatch(const std::shared_ptr<Session> &session,
                                      std::uint64_t seq, std::uint32_t version,
                                      const ManifestBatchRequest &request,
                                      const corpus::Manifest &manifest,
                                      const corpus::Manifest *since) {
  const core::MiraOptions options = unpackOptions(request.flags);
  driver::ShardSpec shard;
  shard.index = request.shardIndex;
  shard.count = request.shardCount;
  // Same selection the local driver uses: diff against `since` when
  // given, then keep this shard's keys, in manifest (path) order — the
  // order the report's entries must come out in for byte-identity with
  // `mira-cli batch --manifest`.
  const driver::ManifestSelection selection =
      driver::selectManifestEntries(manifest, since, options, shard);

  // Resolve sources against the request's root override or the root the
  // manifest was built from. All-or-nothing, like the local driver: a
  // report over a partial corpus would be misleading, not degraded.
  const std::filesystem::path root =
      request.root.empty() ? manifest.root : request.root;
  std::vector<std::string> sources(selection.entries.size());
  for (std::size_t i = 0; i < selection.entries.size(); ++i) {
    const std::string path = (root / selection.entries[i].path).string();
    if (!readSourceFile(path, sources[i])) {
      releaseInflight();
      sendErrorAt(session, seq, "cannot read source '" + path + "'", version);
      return;
    }
  }

  // Chunked execution: each chunk fans across the analyzer's pool, and
  // chunk boundaries are where progress goes out and cancellation is
  // honored. Chunks of 2x the pool keep every worker busy while still
  // bounding how much work a vanished client can waste.
  const std::size_t total = selection.entries.size();
  const std::size_t chunkSize =
      std::max<std::size_t>(std::size_t{1}, options_.threads * 2);
  std::vector<core::Artifacts> results;
  results.reserve(total);
  std::uint32_t failures = 0, cacheHits = 0;
  for (std::size_t begin = 0; begin < total; begin += chunkSize) {
    if (batchCancelled(session)) {
      manifest_batch_cancelled_.increment();
      releaseInflight();
      return; // the peer is gone; there is no one to answer
    }
    const std::size_t end = std::min(total, begin + chunkSize);
    std::vector<core::AnalysisSpec> specs;
    specs.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      core::AnalysisSpec spec;
      spec.name = selection.entries[i].path;
      spec.source = std::move(sources[i]);
      spec.options = options;
      spec.artifacts = core::kArtifactDefault;
      specs.push_back(std::move(spec));
    }
    std::vector<core::Artifacts> chunkResults =
        analyzer_->analyzeArtifactsMany(specs);
    for (core::Artifacts &artifacts : chunkResults) {
      recordServed(artifacts);
      if (!artifacts.ok)
        ++failures;
      if (artifacts.cacheHit)
        ++cacheHits;
      results.push_back(std::move(artifacts));
    }
    if (request.progress) {
      BatchProgress progress;
      progress.done = static_cast<std::uint32_t>(results.size());
      progress.total = static_cast<std::uint32_t>(total);
      progress.failures = failures;
      progress.cacheHits = cacheHits;
      sendProgressAt(session, seq, encodeBatchProgress(progress));
    }
  }

  // The report a local `mira-cli batch --manifest` over the same
  // manifest, options, and cache would write: entries in selection
  // order, keys from the manifest's content hashes, stats tallied from
  // per-result provenance flags (immune to concurrent registry
  // traffic from other sessions).
  driver::BatchReport report;
  report.stats = driver::tallyBatchStats(results, /*useCache=*/true);
  report.entries.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    driver::BatchReportEntry entry;
    entry.name = selection.entries[i].path;
    entry.key =
        driver::requestKeyFromContentHash(selection.entries[i].contentHash,
                                          options);
    entry.ok = results[i].ok;
    report.entries.push_back(std::move(entry));
  }
  ManifestBatchReply reply;
  reply.reportBytes = driver::serializeBatchReport(report);
  releaseInflight();
  sendReplyAt(session, seq, encodeManifestBatchReply(reply), version);
}

void AnalysisServer::refreshGauges() const {
  metrics_.gauge("server_uptime_micros").set(microsSince(started_));
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    metrics_.gauge("server_inflight_requests").set(inflight_);
  }
  metrics_.gauge("server_threads").set(options_.threads);
  metrics_.gauge("server_cache_memory_entries").set(analyzer_->cacheSize());
  driver::publishInternGauges(metrics_);
  if (CacheStore *disk = analyzer_->diskCache()) {
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
    disk->usage(entries, bytes); // one scan for both numbers
    metrics_.gauge("server_disk_entries").set(entries);
    metrics_.gauge("server_disk_bytes").set(bytes);
  }
}

std::vector<MetricSample> AnalysisServer::metricsSamples() const {
  refreshGauges();
  std::vector<MetricSample> samples;
  for (const core::MetricsRegistry::Sample &s : metrics_.snapshot())
    samples.push_back(MetricSample{s.name, s.value});
  return samples;
}

std::string AnalysisServer::renderMetricsText() const {
  refreshGauges();
  return metrics_.renderText();
}

void AnalysisServer::writeMetricsFile() const {
  if (options_.metricsFile.empty())
    return;
  const std::string tmp = options_.metricsFile + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      return;
    out << renderMetricsText();
    if (!out)
      return;
  }
  ::rename(tmp.c_str(), options_.metricsFile.c_str());
}

ServerStats AnalysisServer::snapshotStats() const {
  ServerStats stats;
  stats.uptimeMicros = microsSince(started_);
  stats.connectionsAccepted = connections_accepted_.value();
  stats.requestsServed = requests_served_.value();
  stats.analyzeRequests = analyze_requests_.value();
  stats.batchRequests = batch_requests_.value();
  stats.sourcesAnalyzed = sources_analyzed_.value();
  stats.cacheHits = cache_hits_.value();
  stats.computed = computed_.value();
  stats.failures = failures_.value();
  stats.protocolErrors = protocol_errors_.value();
  stats.coverageRequests = coverage_requests_.value();
  stats.simulateRequests = simulate_requests_.value();
  stats.recompiles = recompiles_.value();
  stats.memoryEntries = analyzer_->cacheSize();
  if (CacheStore *disk = analyzer_->diskCache()) {
    const CacheStoreStats diskStats = disk->statsSnapshot();
    stats.diskHits = diskStats.hits;
    stats.diskMisses = diskStats.misses;
    stats.diskStores = diskStats.stores;
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
    disk->usage(entries, bytes); // one scan for both numbers
    stats.diskEntries = entries;
    stats.diskBytes = bytes;
  }
  stats.threads = sessions_->threadCount();
  return stats;
}

} // namespace mira::server
