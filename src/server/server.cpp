#include "server/server.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

namespace mira::server {

namespace {

std::uint64_t microsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

} // namespace

AnalysisServer::AnalysisServer(ServerOptions options)
    : options_(std::move(options)), started_(std::chrono::steady_clock::now()) {
  driver::BatchOptions batchOptions;
  // Single analyzes run inline on the session worker; batch requests
  // fan their items across the analyzer's own pool (analyzeMany), so
  // size it like the session pool. modelThreads additionally fans out
  // per-function model generation inside one request.
  batchOptions.threads = options_.threads;
  batchOptions.useCache = true;
  batchOptions.cacheDir = options_.cacheDir;
  batchOptions.cacheBytesLimit = options_.cacheBytesLimit;
  batchOptions.modelThreads = options_.modelThreads;
  analyzer_ = std::make_unique<driver::BatchAnalyzer>(batchOptions);
  sessions_ = std::make_unique<ThreadPool>(options_.threads);
}

AnalysisServer::~AnalysisServer() {
  if (bound_) {
    // serve() normally unlinks; cover start()-without-serve() too.
    ::unlink(options_.socketPath.c_str());
  }
}

bool AnalysisServer::start(std::string &error) {
  int pipeFds[2];
  if (::pipe(pipeFds) != 0) {
    error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  stop_read_ = net::Socket(pipeFds[0]);
  stop_write_ = net::Socket(pipeFds[1]);

  // Owner-only from the first instant: bind() creates the inode with
  // 0777&~umask, so a chmod afterwards would leave a connectable
  // window under a permissive umask. umask is process-global; start()
  // runs before the daemon spawns request threads (docs/SERVING.md).
  const mode_t oldMask = ::umask(0177);
  listener_ = net::listenUnix(options_.socketPath, error);
  ::umask(oldMask);
  if (!listener_.valid())
    return false;
  ::chmod(options_.socketPath.c_str(), 0600);
  bound_ = true;
  return true;
}

void AnalysisServer::requestStop() {
  if (stop_write_.valid()) {
    // A single byte on the self-pipe; extra bytes from repeated calls or
    // signal handlers are harmless (serve() drains on its way out).
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(stop_write_.fd(), &byte, 1);
  }
}

void AnalysisServer::serve() {
  for (;;) {
    pollfd fds[2] = {{listener_.fd(), POLLIN, 0}, {stop_read_.fd(), POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (fds[1].revents != 0)
      break; // stop requested
    if ((fds[0].revents & POLLIN) == 0)
      continue;
    net::Socket conn = net::acceptConnection(listener_);
    if (!conn.valid())
      continue; // transient (EMFILE, aborted handshake): keep serving
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto shared = std::make_shared<net::Socket>(std::move(conn));
    sessions_->submit([this, shared] {
      handleConnection(std::move(*shared));
    });
  }

  // Shutdown: stop accepting, wake idle readers, finish in-flight work.
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    stopping_ = true;
    for (int fd : connections_)
      ::shutdown(fd, SHUT_RD); // blocked readFrames see EOF; replies
                               // in flight still go out
  }
  sessions_->waitIdle();
  ::unlink(options_.socketPath.c_str());
  bound_ = false;
}

void AnalysisServer::handleConnection(net::Socket sock) {
  const int fd = sock.fd();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.insert(fd);
    if (stopping_)
      sock.shutdownRead(); // accepted before stop, dispatched after:
                           // close without serving
  }

  std::string message;
  for (;;) {
    net::FrameStatus status =
        net::readFrame(fd, message, options_.maxFrameBytes);
    if (status == net::FrameStatus::closed)
      break; // client finished cleanly
    if (status == net::FrameStatus::oversized) {
      // The frame was never parsed, so the peer's dialect is unknown:
      // answer in v1, which every client version decodes.
      sendError(fd, "frame exceeds " + std::to_string(options_.maxFrameBytes) +
                        " bytes",
                kProtocolVersionMin);
      break;
    }
    if (status != net::FrameStatus::ok) { // truncated or I/O error
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (!handleMessage(fd, message))
      break;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
  }

  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.erase(fd);
  }
  // sock closes on scope exit.
}

bool AnalysisServer::handleMessage(int fd, const std::string &message) {
  bio::Reader r{message, 0};
  MessageType type{};
  std::uint32_t version = 0;
  std::string headerError;
  if (!readHeader(r, type, version, headerError)) {
    // The peer's dialect is unknown; v1 error frames are the common
    // denominator every client version can decode.
    sendError(fd, headerError, kProtocolVersionMin);
    return false;
  }

  switch (type) {
  case MessageType::ping:
    return sendReply(fd, encodeEmptyMessage(MessageType::pong, version),
                     version);

  case MessageType::analyze: {
    SourceItem item;
    std::uint8_t flags = 0;
    if (!decodeAnalyzeRequest(r, item, flags)) {
      sendError(fd, "malformed analyze request", version);
      return false;
    }
    analyze_requests_.fetch_add(1, std::memory_order_relaxed);
    AnalyzeReply reply = analyzeItem(item, flags, version);
    return sendReply(fd, encodeAnalyzeReply(reply, version), version);
  }

  case MessageType::batch: {
    std::vector<SourceItem> items;
    std::uint8_t flags = 0;
    if (!decodeBatchRequest(r, items, flags)) {
      sendError(fd, "malformed batch request", version);
      return false;
    }
    batch_requests_.fetch_add(1, std::memory_order_relaxed);
    // Items fan across the analyzer's pool: a cold batch gets the same
    // intra-request parallelism as `mira-cli batch --threads N`.
    std::vector<core::AnalysisSpec> specs;
    specs.reserve(items.size());
    const core::MiraOptions options = unpackOptions(flags);
    for (SourceItem &item : items) {
      core::AnalysisSpec spec;
      spec.name = std::move(item.name);
      spec.source = std::move(item.source);
      spec.options = options;
      spec.artifacts = core::kArtifactDefault;
      specs.push_back(std::move(spec));
    }
    std::vector<core::Artifacts> results =
        analyzer_->analyzeArtifactsMany(specs);
    std::vector<AnalyzeReply> replies;
    replies.reserve(results.size());
    for (const core::Artifacts &artifacts : results)
      replies.push_back(replyFor(artifacts, version));
    return sendReply(fd, encodeBatchReply(replies, version), version);
  }

  case MessageType::coverage: {
    SourceItem item;
    std::uint8_t flags = 0;
    if (version < 2) {
      sendError(fd, "coverage requires protocol version 2", version);
      return false;
    }
    if (!decodeCoverageRequest(r, item, flags)) {
      sendError(fd, "malformed coverage request", version);
      return false;
    }
    coverage_requests_.fetch_add(1, std::memory_order_relaxed);
    return sendReply(fd, encodeCoverageReply(coverageItem(item, flags)),
                     version);
  }

  case MessageType::simulate: {
    SourceItem item;
    std::uint8_t flags = 0;
    core::SimulationArgs sim;
    if (version < 2) {
      sendError(fd, "simulate requires protocol version 2", version);
      return false;
    }
    if (!decodeSimulateRequest(r, item, flags, sim)) {
      sendError(fd, "malformed simulate request", version);
      return false;
    }
    simulate_requests_.fetch_add(1, std::memory_order_relaxed);
    return sendReply(fd, encodeSimulateReply(simulateItem(item, flags, sim)),
                     version);
  }

  case MessageType::manifestDiff: {
    std::string oldBytes, newBytes;
    if (version < 2) {
      sendError(fd, "manifest-diff requires protocol version 2", version);
      return false;
    }
    if (!decodeManifestDiffRequest(r, oldBytes, newBytes)) {
      sendError(fd, "malformed manifest-diff request", version);
      return false;
    }
    corpus::Manifest oldManifest, newManifest;
    std::string manifestError;
    // The blobs are validated application payloads, not framing: a bad
    // manifest still gets the Error-then-close treatment so clients
    // can't mistake a refusal for an empty diff.
    if (!corpus::deserializeManifest(oldBytes, oldManifest, manifestError) ||
        !corpus::deserializeManifest(newBytes, newManifest, manifestError)) {
      sendError(fd, "malformed manifest: " + manifestError, version);
      return false;
    }
    corpus::ManifestDiff diff =
        corpus::diffManifests(oldManifest, newManifest);
    ManifestDiffReply reply;
    reply.added = std::move(diff.added);
    reply.changed = std::move(diff.changed);
    reply.removed = std::move(diff.removed);
    return sendReply(fd, encodeManifestDiffReply(reply), version);
  }

  case MessageType::cacheStats:
    return sendReply(fd, encodeCacheStatsReply(snapshotStats(), version),
                     version);

  case MessageType::shutdown: {
    // Acknowledge first: the requester must learn the shutdown was
    // accepted even though the daemon stops reading from everyone next.
    bool sent = net::writeFrame(
        fd, encodeEmptyMessage(MessageType::shutdownReply, version));
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    requestStop();
    (void)sent;
    return false;
  }

  default:
    sendError(fd, "unexpected message type " +
                      std::to_string(static_cast<unsigned>(type)),
              version);
    return false;
  }
}

void AnalysisServer::recordServed(const core::Artifacts &artifacts) {
  sources_analyzed_.fetch_add(1, std::memory_order_relaxed);
  if (artifacts.cacheHit)
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  else
    computed_.fetch_add(1, std::memory_order_relaxed);
  if (!artifacts.ok)
    failures_.fetch_add(1, std::memory_order_relaxed);
  if (artifacts.recompiled)
    recompiles_.fetch_add(1, std::memory_order_relaxed);
}

AnalyzeReply AnalysisServer::analyzeItem(const SourceItem &item,
                                         std::uint8_t flags,
                                         std::uint32_t version) {
  core::AnalysisSpec spec;
  spec.name = item.name;
  spec.source = item.source;
  spec.options = unpackOptions(flags);
  spec.artifacts = core::kArtifactDefault;
  return replyFor(analyzer_->analyzeArtifacts(spec), version);
}

AnalyzeReply AnalysisServer::replyFor(const core::Artifacts &artifacts,
                                      std::uint32_t version) {
  recordServed(artifacts);

  AnalyzeReply reply;
  reply.cacheHit = artifacts.cacheHit;
  reply.micros = static_cast<std::uint64_t>(artifacts.seconds * 1e6);
  // The canonical result payload (docs/CACHING.md format) in the peer's
  // dialect, named after this request: byte-identical to a one-shot
  // analyze of the same (source, options), whether served cold, from
  // memory, or from disk. v2 payloads carry the coverage summary when
  // the cache has one (always, except entries restored from v1 disk
  // blobs).
  if (version >= 2)
    reply.payload = driver::serializeArtifactPayload(
        artifacts.model.get(),
        artifacts.coverage ? &*artifacts.coverage : nullptr,
        artifacts.diagnostics, artifacts.name);
  else
    reply.payload = driver::serializeOutcomePayloadV1(
        artifacts.resultV1.get(), artifacts.diagnostics, artifacts.name);
  return reply;
}

CoverageReply AnalysisServer::coverageItem(const SourceItem &item,
                                           std::uint8_t flags) {
  core::AnalysisSpec spec;
  spec.name = item.name;
  spec.source = item.source;
  spec.options = unpackOptions(flags);
  spec.artifacts = core::kArtifactCoverage | core::kArtifactDiagnostics;
  core::Artifacts artifacts = analyzer_->analyzeArtifacts(spec);
  recordServed(artifacts);

  CoverageReply reply;
  reply.cacheHit = artifacts.cacheHit;
  reply.recompiled = artifacts.recompiled;
  reply.micros = static_cast<std::uint64_t>(artifacts.seconds * 1e6);
  reply.ok = artifacts.ok && artifacts.coverage.has_value();
  reply.diagnostics = artifacts.diagnostics;
  if (reply.ok)
    reply.coverage = *artifacts.coverage;
  return reply;
}

SimulateReply AnalysisServer::simulateItem(const SourceItem &item,
                                           std::uint8_t flags,
                                           const core::SimulationArgs &sim) {
  core::AnalysisSpec spec;
  spec.name = item.name;
  spec.source = item.source;
  spec.options = unpackOptions(flags);
  spec.artifacts = core::kArtifactSimulation | core::kArtifactDiagnostics;
  spec.simulation = sim;
  core::Artifacts artifacts = analyzer_->analyzeArtifacts(spec);
  recordServed(artifacts);

  SimulateReply reply;
  reply.cacheHit = artifacts.cacheHit;
  reply.recompiled = artifacts.recompiled;
  reply.micros = static_cast<std::uint64_t>(artifacts.seconds * 1e6);
  reply.ok = artifacts.ok && artifacts.simulation != nullptr;
  reply.diagnostics = artifacts.diagnostics;
  if (reply.ok)
    reply.result = *artifacts.simulation;
  return reply;
}

bool AnalysisServer::sendReply(int fd, const std::string &message,
                               std::uint32_t version) {
  // The frame cap binds both directions: a reply the daemon itself
  // cannot legally frame (a huge batch's aggregated payloads) becomes
  // an Error, not a protocol violation the client chokes on.
  if (message.size() > options_.maxFrameBytes) {
    sendError(fd, "reply of " + std::to_string(message.size()) +
                      " bytes exceeds the " +
                      std::to_string(options_.maxFrameBytes) +
                      "-byte frame cap; split the request",
              version);
    return false;
  }
  return net::writeFrame(fd, message);
}

void AnalysisServer::sendError(int fd, const std::string &text,
                               std::uint32_t version) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  net::writeFrame(fd, encodeErrorReply(text, version));
}

ServerStats AnalysisServer::snapshotStats() const {
  ServerStats stats;
  stats.uptimeMicros = microsSince(started_);
  stats.connectionsAccepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.requestsServed = requests_served_.load(std::memory_order_relaxed);
  stats.analyzeRequests = analyze_requests_.load(std::memory_order_relaxed);
  stats.batchRequests = batch_requests_.load(std::memory_order_relaxed);
  stats.sourcesAnalyzed = sources_analyzed_.load(std::memory_order_relaxed);
  stats.cacheHits = cache_hits_.load(std::memory_order_relaxed);
  stats.computed = computed_.load(std::memory_order_relaxed);
  stats.failures = failures_.load(std::memory_order_relaxed);
  stats.protocolErrors = protocol_errors_.load(std::memory_order_relaxed);
  stats.coverageRequests = coverage_requests_.load(std::memory_order_relaxed);
  stats.simulateRequests = simulate_requests_.load(std::memory_order_relaxed);
  stats.recompiles = recompiles_.load(std::memory_order_relaxed);
  stats.memoryEntries = analyzer_->cacheSize();
  if (CacheStore *disk = analyzer_->diskCache()) {
    const CacheStoreStats diskStats = disk->statsSnapshot();
    stats.diskHits = diskStats.hits;
    stats.diskMisses = diskStats.misses;
    stats.diskStores = diskStats.stores;
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
    disk->usage(entries, bytes); // one scan for both numbers
    stats.diskEntries = entries;
    stats.diskBytes = bytes;
  }
  stats.threads = sessions_->threadCount();
  return stats;
}

} // namespace mira::server
