#include "server/server.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

namespace mira::server {

namespace {

std::uint64_t microsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

} // namespace

AnalysisServer::AnalysisServer(ServerOptions options)
    : options_(std::move(options)), started_(std::chrono::steady_clock::now()) {
  driver::BatchOptions batchOptions;
  // Single analyzes run inline on the session worker; batch requests
  // fan their items across the analyzer's own pool (analyzeMany), so
  // size it like the session pool. modelThreads additionally fans out
  // per-function model generation inside one request.
  batchOptions.threads = options_.threads;
  batchOptions.useCache = true;
  batchOptions.cacheDir = options_.cacheDir;
  batchOptions.cacheBytesLimit = options_.cacheBytesLimit;
  batchOptions.modelThreads = options_.modelThreads;
  analyzer_ = std::make_unique<driver::BatchAnalyzer>(batchOptions);
  sessions_ = std::make_unique<ThreadPool>(options_.threads);
}

AnalysisServer::~AnalysisServer() {
  if (bound_) {
    // serve() normally unlinks; cover start()-without-serve() too.
    ::unlink(options_.socketPath.c_str());
  }
}

bool AnalysisServer::start(std::string &error) {
  int pipeFds[2];
  if (::pipe(pipeFds) != 0) {
    error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  stop_read_ = net::Socket(pipeFds[0]);
  stop_write_ = net::Socket(pipeFds[1]);

  // Owner-only from the first instant: bind() creates the inode with
  // 0777&~umask, so a chmod afterwards would leave a connectable
  // window under a permissive umask. umask is process-global; start()
  // runs before the daemon spawns request threads (docs/SERVING.md).
  const mode_t oldMask = ::umask(0177);
  listener_ = net::listenUnix(options_.socketPath, error);
  ::umask(oldMask);
  if (!listener_.valid())
    return false;
  ::chmod(options_.socketPath.c_str(), 0600);
  bound_ = true;
  return true;
}

void AnalysisServer::requestStop() {
  if (stop_write_.valid()) {
    // A single byte on the self-pipe; extra bytes from repeated calls or
    // signal handlers are harmless (serve() drains on its way out).
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(stop_write_.fd(), &byte, 1);
  }
}

void AnalysisServer::serve() {
  for (;;) {
    pollfd fds[2] = {{listener_.fd(), POLLIN, 0}, {stop_read_.fd(), POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (fds[1].revents != 0)
      break; // stop requested
    if ((fds[0].revents & POLLIN) == 0)
      continue;
    net::Socket conn = net::acceptConnection(listener_);
    if (!conn.valid())
      continue; // transient (EMFILE, aborted handshake): keep serving
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto shared = std::make_shared<net::Socket>(std::move(conn));
    sessions_->submit([this, shared] {
      handleConnection(std::move(*shared));
    });
  }

  // Shutdown: stop accepting, wake idle readers, finish in-flight work.
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    stopping_ = true;
    for (int fd : connections_)
      ::shutdown(fd, SHUT_RD); // blocked readFrames see EOF; replies
                               // in flight still go out
  }
  sessions_->waitIdle();
  ::unlink(options_.socketPath.c_str());
  bound_ = false;
}

void AnalysisServer::handleConnection(net::Socket sock) {
  const int fd = sock.fd();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.insert(fd);
    if (stopping_)
      sock.shutdownRead(); // accepted before stop, dispatched after:
                           // close without serving
  }

  std::string message;
  for (;;) {
    net::FrameStatus status =
        net::readFrame(fd, message, options_.maxFrameBytes);
    if (status == net::FrameStatus::closed)
      break; // client finished cleanly
    if (status == net::FrameStatus::oversized) {
      sendError(fd, "frame exceeds " + std::to_string(options_.maxFrameBytes) +
                        " bytes");
      break;
    }
    if (status != net::FrameStatus::ok) { // truncated or I/O error
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (!handleMessage(fd, message))
      break;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
  }

  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.erase(fd);
  }
  // sock closes on scope exit.
}

bool AnalysisServer::handleMessage(int fd, const std::string &message) {
  bio::Reader r{message, 0};
  MessageType type{};
  std::string headerError;
  if (!readHeader(r, type, headerError)) {
    sendError(fd, headerError);
    return false;
  }

  switch (type) {
  case MessageType::ping:
    return sendReply(fd, encodeEmptyMessage(MessageType::pong));

  case MessageType::analyze: {
    SourceItem item;
    std::uint8_t flags = 0;
    if (!decodeAnalyzeRequest(r, item, flags)) {
      sendError(fd, "malformed analyze request");
      return false;
    }
    analyze_requests_.fetch_add(1, std::memory_order_relaxed);
    AnalyzeReply reply = analyzeItem(item, flags);
    return sendReply(fd, encodeAnalyzeReply(reply));
  }

  case MessageType::batch: {
    std::vector<SourceItem> items;
    std::uint8_t flags = 0;
    if (!decodeBatchRequest(r, items, flags)) {
      sendError(fd, "malformed batch request");
      return false;
    }
    batch_requests_.fetch_add(1, std::memory_order_relaxed);
    // Items fan across the analyzer's pool: a cold batch gets the same
    // intra-request parallelism as `mira-cli batch --threads N`.
    std::vector<driver::AnalysisRequest> requests;
    requests.reserve(items.size());
    const core::MiraOptions options = unpackOptions(flags);
    for (SourceItem &item : items) {
      driver::AnalysisRequest request;
      request.name = std::move(item.name);
      request.source = std::move(item.source);
      request.options = options;
      requests.push_back(std::move(request));
    }
    std::vector<driver::AnalysisOutcome> outcomes =
        analyzer_->analyzeMany(requests);
    std::vector<AnalyzeReply> replies;
    replies.reserve(outcomes.size());
    for (const driver::AnalysisOutcome &outcome : outcomes)
      replies.push_back(replyFor(outcome));
    return sendReply(fd, encodeBatchReply(replies));
  }

  case MessageType::cacheStats:
    return sendReply(fd, encodeCacheStatsReply(snapshotStats()));

  case MessageType::shutdown: {
    // Acknowledge first: the requester must learn the shutdown was
    // accepted even though the daemon stops reading from everyone next.
    bool sent = net::writeFrame(fd, encodeEmptyMessage(MessageType::shutdownReply));
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    requestStop();
    (void)sent;
    return false;
  }

  default:
    sendError(fd, "unexpected message type " +
                      std::to_string(static_cast<unsigned>(type)));
    return false;
  }
}

AnalyzeReply AnalysisServer::analyzeItem(const SourceItem &item,
                                         std::uint8_t flags) {
  driver::AnalysisRequest request;
  request.name = item.name;
  request.source = item.source;
  request.options = unpackOptions(flags);
  return replyFor(analyzer_->analyzeSingle(request));
}

AnalyzeReply
AnalysisServer::replyFor(const driver::AnalysisOutcome &outcome) {
  sources_analyzed_.fetch_add(1, std::memory_order_relaxed);
  if (outcome.cacheHit)
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  else
    computed_.fetch_add(1, std::memory_order_relaxed);
  if (!outcome.ok)
    failures_.fetch_add(1, std::memory_order_relaxed);

  AnalyzeReply reply;
  reply.cacheHit = outcome.cacheHit;
  reply.micros = static_cast<std::uint64_t>(outcome.seconds * 1e6);
  // The canonical outcome payload (docs/CACHING.md format), named after
  // this request: byte-identical to a one-shot analyze of the same
  // (source, options), whether served cold, from memory, or from disk.
  reply.payload = driver::serializeOutcomePayload(
      outcome.analysis.get(), outcome.diagnostics, outcome.name);
  return reply;
}

bool AnalysisServer::sendReply(int fd, const std::string &message) {
  // The frame cap binds both directions: a reply the daemon itself
  // cannot legally frame (a huge batch's aggregated payloads) becomes
  // an Error, not a protocol violation the client chokes on.
  if (message.size() > options_.maxFrameBytes) {
    sendError(fd, "reply of " + std::to_string(message.size()) +
                      " bytes exceeds the " +
                      std::to_string(options_.maxFrameBytes) +
                      "-byte frame cap; split the request");
    return false;
  }
  return net::writeFrame(fd, message);
}

void AnalysisServer::sendError(int fd, const std::string &text) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  net::writeFrame(fd, encodeErrorReply(text));
}

ServerStats AnalysisServer::snapshotStats() const {
  ServerStats stats;
  stats.uptimeMicros = microsSince(started_);
  stats.connectionsAccepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.requestsServed = requests_served_.load(std::memory_order_relaxed);
  stats.analyzeRequests = analyze_requests_.load(std::memory_order_relaxed);
  stats.batchRequests = batch_requests_.load(std::memory_order_relaxed);
  stats.sourcesAnalyzed = sources_analyzed_.load(std::memory_order_relaxed);
  stats.cacheHits = cache_hits_.load(std::memory_order_relaxed);
  stats.computed = computed_.load(std::memory_order_relaxed);
  stats.failures = failures_.load(std::memory_order_relaxed);
  stats.protocolErrors = protocol_errors_.load(std::memory_order_relaxed);
  stats.memoryEntries = analyzer_->cacheSize();
  if (CacheStore *disk = analyzer_->diskCache()) {
    const CacheStoreStats diskStats = disk->statsSnapshot();
    stats.diskHits = diskStats.hits;
    stats.diskMisses = diskStats.misses;
    stats.diskStores = diskStats.stores;
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
    disk->usage(entries, bytes); // one scan for both numbers
    stats.diskEntries = entries;
    stats.diskBytes = bytes;
  }
  stats.threads = sessions_->threadCount();
  return stats;
}

} // namespace mira::server
