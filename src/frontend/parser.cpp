#include "frontend/parser.h"

#include "support/string_utils.h"

namespace mira::frontend {

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine &diags)
    : tokens_(std::move(tokens)), diags_(diags) {}

const Token &Parser::peek(std::size_t offset) const {
  std::size_t i = pos_ + offset;
  if (i >= tokens_.size())
    i = tokens_.size() - 1; // Eof
  return tokens_[i];
}

Token Parser::advance() {
  Token t = current();
  if (pos_ + 1 < tokens_.size())
    ++pos_;
  lastEnd_ = t.location;
  return t;
}

bool Parser::match(TokenKind kind) {
  if (!check(kind))
    return false;
  advance();
  return true;
}

Token Parser::expect(TokenKind kind, const char *context) {
  if (check(kind))
    return advance();
  diags_.error(current().location,
               std::string("expected ") + toString(kind) + " " + context +
                   ", found " + current().str());
  return current();
}

SourceRange Parser::rangeFrom(SourceLocation begin) const {
  return SourceRange{begin, lastEnd_};
}

void Parser::synchronizeToStatement() {
  while (!atEnd()) {
    if (match(TokenKind::Semicolon))
      return;
    if (check(TokenKind::RBrace) || check(TokenKind::KwFor) ||
        check(TokenKind::KwWhile) || check(TokenKind::KwIf) ||
        check(TokenKind::KwReturn))
      return;
    advance();
  }
}

bool Parser::looksLikeType() const {
  switch (current().kind) {
  case TokenKind::KwInt:
  case TokenKind::KwLong:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
  case TokenKind::KwBool:
  case TokenKind::KwVoid:
  case TokenKind::KwConst:
    return true;
  case TokenKind::Identifier:
    // 'A a;' pattern: identifier followed by identifier is a class-typed
    // declaration.
    return peek(1).kind == TokenKind::Identifier;
  default:
    return false;
  }
}

bool Parser::parseTypeSpec(Type &out) {
  match(TokenKind::KwConst); // 'const' accepted and ignored
  switch (current().kind) {
  case TokenKind::KwInt:
    out.scalar = ScalarType::Int;
    break;
  case TokenKind::KwLong:
    out.scalar = ScalarType::Long;
    break;
  case TokenKind::KwFloat:
    out.scalar = ScalarType::Float;
    break;
  case TokenKind::KwDouble:
    out.scalar = ScalarType::Double;
    break;
  case TokenKind::KwBool:
    out.scalar = ScalarType::Bool;
    break;
  case TokenKind::KwVoid:
    out.scalar = ScalarType::Void;
    break;
  case TokenKind::Identifier:
    out.scalar = ScalarType::Class;
    out.className = current().text;
    break;
  default:
    return false;
  }
  advance();
  match(TokenKind::KwConst);
  out.pointerDepth = 0;
  while (match(TokenKind::Star))
    ++out.pointerDepth;
  return true;
}

std::unique_ptr<TranslationUnit>
Parser::parseTranslationUnit(std::string fileName) {
  auto unit = std::make_unique<TranslationUnit>();
  unit->fileName = std::move(fileName);
  while (!atEnd()) {
    if (check(TokenKind::Pragma)) {
      diags_.warning(current().location,
                     "pragma at file scope ignored (annotations attach to "
                     "statements)");
      advance();
      continue;
    }
    if (check(TokenKind::KwClass)) {
      if (auto c = parseClass())
        unit->classes.push_back(std::move(c));
      continue;
    }
    Type type;
    SourceLocation begin = current().location;
    if (!parseTypeSpec(type)) {
      diags_.error(current().location,
                   "expected declaration, found " + current().str());
      advance();
      continue;
    }
    Token nameTok = expect(TokenKind::Identifier, "in function declaration");
    if (auto f = parseFunction(type, nameTok.text, "")) {
      f->range.begin = begin;
      unit->functions.push_back(std::move(f));
    }
  }
  return unit;
}

std::unique_ptr<ClassDecl> Parser::parseClass() {
  SourceLocation begin = current().location;
  expect(TokenKind::KwClass, "at class declaration");
  Token nameTok = expect(TokenKind::Identifier, "after 'class'");
  auto cls = std::make_unique<ClassDecl>();
  cls->name = nameTok.text;
  expect(TokenKind::LBrace, "to open class body");
  while (!check(TokenKind::RBrace) && !atEnd()) {
    if (match(TokenKind::KwPublic)) {
      expect(TokenKind::Colon, "after 'public'");
      continue;
    }
    Type type;
    if (!parseTypeSpec(type)) {
      diags_.error(current().location,
                   "expected member declaration, found " + current().str());
      advance();
      continue;
    }
    std::string memberName;
    if (check(TokenKind::KwOperator)) {
      advance();
      expect(TokenKind::LParen, "after 'operator'");
      expect(TokenKind::RParen, "to complete 'operator()'");
      memberName = "operator()";
    } else {
      memberName = expect(TokenKind::Identifier, "in member declaration").text;
    }
    if (check(TokenKind::LParen)) {
      if (auto m = parseFunction(type, memberName, cls->name))
        cls->methods.push_back(std::move(m));
    } else {
      // field (no array fields in MiniC; use pointers for buffers)
      FieldDecl field;
      field.type = type;
      field.name = memberName;
      field.location = lastEnd_;
      cls->fields.push_back(field);
      expect(TokenKind::Semicolon, "after field declaration");
    }
  }
  expect(TokenKind::RBrace, "to close class body");
  expect(TokenKind::Semicolon, "after class declaration");
  cls->range = rangeFrom(begin);
  return cls;
}

std::vector<ParamDecl> Parser::parseParams() {
  std::vector<ParamDecl> params;
  expect(TokenKind::LParen, "to open parameter list");
  if (!check(TokenKind::RParen)) {
    do {
      ParamDecl p;
      p.location = current().location;
      if (!parseTypeSpec(p.type)) {
        diags_.error(current().location,
                     "expected parameter type, found " + current().str());
        break;
      }
      p.name = expect(TokenKind::Identifier, "in parameter").text;
      params.push_back(std::move(p));
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close parameter list");
  return params;
}

std::unique_ptr<FunctionDecl> Parser::parseFunction(Type returnType,
                                                    std::string name,
                                                    std::string className) {
  auto fn = std::make_unique<FunctionDecl>();
  fn->returnType = returnType;
  fn->name = std::move(name);
  fn->className = std::move(className);
  SourceLocation begin = current().location;
  fn->params = parseParams();
  if (!check(TokenKind::LBrace)) {
    diags_.error(current().location, "expected function body");
    return nullptr;
  }
  fn->bodyStmt = parseCompound();
  fn->range = rangeFrom(begin);
  return fn;
}

std::optional<Annotation> Parser::parsePragma() {
  // Pragma text: "pragma @Annotation {key:value, key:value}"
  Token tok = advance();
  std::string_view body = trim(tok.text);
  if (!startsWith(body, "pragma"))
    return std::nullopt;
  body = trim(body.substr(6));
  // '@Annotation {..}' carries model hints (paper Sec. III-B4);
  // '@Simulate {..}' carries simulator hints (ff/hoist), stored with a
  // 'sim_' key prefix so the two namespaces cannot collide.
  std::string keyPrefix;
  if (startsWith(body, "@Annotation")) {
    body = trim(body.substr(11));
  } else if (startsWith(body, "@Simulate")) {
    keyPrefix = "sim_";
    body = trim(body.substr(9));
  } else {
    diags_.warning(tok.location, "unrecognized pragma ignored: " + tok.text);
    return std::nullopt;
  }
  Annotation ann;
  ann.location = tok.location;
  if (body.empty() || body.front() != '{' || body.back() != '}') {
    diags_.error(tok.location,
                 "malformed @Annotation payload (expected {key:value,...}): " +
                     tok.text);
    return std::nullopt;
  }
  body = body.substr(1, body.size() - 2);
  for (const std::string &pair : splitString(body, ',')) {
    std::string_view kv = trim(pair);
    if (kv.empty())
      continue;
    std::size_t colon = kv.find(':');
    if (colon == std::string_view::npos) {
      diags_.error(tok.location,
                   "annotation entry missing ':': " + std::string(kv));
      continue;
    }
    std::string key{trim(kv.substr(0, colon))};
    std::string value{trim(kv.substr(colon + 1))};
    if (key.empty() || value.empty()) {
      diags_.error(tok.location,
                   "annotation entry has empty key or value: " +
                       std::string(kv));
      continue;
    }
    ann.entries[keyPrefix + key] = value;
  }
  return ann;
}

StmtPtr Parser::parseStatement() {
  std::optional<Annotation> annotation;
  while (check(TokenKind::Pragma)) {
    auto ann = parsePragma();
    if (ann) {
      if (annotation)
        diags_.warning(ann->location,
                       "multiple annotations on one statement; merging");
      if (!annotation)
        annotation = ann;
      else
        for (const auto &[k, v] : ann->entries)
          annotation->entries[k] = v;
    }
  }

  StmtPtr stmt;
  switch (current().kind) {
  case TokenKind::LBrace:
    stmt = parseCompound();
    break;
  case TokenKind::KwFor:
    stmt = parseFor();
    break;
  case TokenKind::KwWhile:
    stmt = parseWhile();
    break;
  case TokenKind::KwIf:
    stmt = parseIf();
    break;
  case TokenKind::KwReturn:
    stmt = parseReturn();
    break;
  case TokenKind::Semicolon: {
    SourceLocation loc = current().location;
    advance();
    stmt = Statement::empty({loc, loc});
    break;
  }
  default:
    if (looksLikeType()) {
      stmt = parseDeclStatement();
    } else {
      SourceLocation begin = current().location;
      auto s = std::make_unique<Statement>(StmtKind::ExprStmt);
      s->expr = parseExpression();
      expect(TokenKind::Semicolon, "after expression statement");
      s->range = rangeFrom(begin);
      stmt = std::move(s);
    }
    break;
  }
  if (stmt && annotation)
    stmt->annotation = std::move(annotation);
  return stmt;
}

StmtPtr Parser::parseCompound() {
  SourceLocation begin = current().location;
  expect(TokenKind::LBrace, "to open block");
  std::vector<StmtPtr> stmts;
  while (!check(TokenKind::RBrace) && !atEnd()) {
    std::size_t before = pos_;
    if (auto s = parseStatement())
      stmts.push_back(std::move(s));
    if (pos_ == before) { // no progress: recover
      synchronizeToStatement();
      if (pos_ == before)
        advance();
    }
  }
  expect(TokenKind::RBrace, "to close block");
  return Statement::compound(std::move(stmts), rangeFrom(begin));
}

StmtPtr Parser::parseDeclStatement() {
  SourceLocation begin = current().location;
  auto s = std::make_unique<Statement>(StmtKind::Decl);
  if (!parseTypeSpec(s->declType)) {
    diags_.error(current().location, "expected type in declaration");
    synchronizeToStatement();
    return Statement::empty(rangeFrom(begin));
  }
  s->declName = expect(TokenKind::Identifier, "in declaration").text;
  while (match(TokenKind::LBracket)) {
    s->arrayDims.push_back(parseExpression());
    expect(TokenKind::RBracket, "to close array dimension");
  }
  if (match(TokenKind::Assign))
    s->declInit = parseExpression();
  expect(TokenKind::Semicolon, "after declaration");
  s->range = rangeFrom(begin);
  return s;
}

StmtPtr Parser::parseFor() {
  SourceLocation begin = current().location;
  auto s = std::make_unique<Statement>(StmtKind::For);
  expect(TokenKind::KwFor, "at for loop");
  expect(TokenKind::LParen, "after 'for'");

  // init: declaration, expression, or empty
  if (check(TokenKind::Semicolon)) {
    advance();
    s->forInit = Statement::empty({begin, begin});
  } else if (looksLikeType()) {
    s->forInit = parseDeclStatement(); // consumes ';'
  } else {
    SourceLocation initBegin = current().location;
    auto init = std::make_unique<Statement>(StmtKind::ExprStmt);
    init->expr = parseExpression();
    expect(TokenKind::Semicolon, "after for-init");
    init->range = rangeFrom(initBegin);
    s->forInit = std::move(init);
  }

  if (!check(TokenKind::Semicolon))
    s->forCond = parseExpression();
  expect(TokenKind::Semicolon, "after for-condition");
  if (!check(TokenKind::RParen))
    s->forInc = parseExpression();
  expect(TokenKind::RParen, "to close for header");
  s->loopBody = parseStatement();
  s->range = rangeFrom(begin);
  return s;
}

StmtPtr Parser::parseWhile() {
  SourceLocation begin = current().location;
  auto s = std::make_unique<Statement>(StmtKind::While);
  expect(TokenKind::KwWhile, "at while loop");
  expect(TokenKind::LParen, "after 'while'");
  s->forCond = parseExpression();
  expect(TokenKind::RParen, "to close while condition");
  s->loopBody = parseStatement();
  s->range = rangeFrom(begin);
  return s;
}

StmtPtr Parser::parseIf() {
  SourceLocation begin = current().location;
  auto s = std::make_unique<Statement>(StmtKind::If);
  expect(TokenKind::KwIf, "at if statement");
  expect(TokenKind::LParen, "after 'if'");
  s->expr = parseExpression();
  expect(TokenKind::RParen, "to close if condition");
  s->thenBranch = parseStatement();
  if (match(TokenKind::KwElse))
    s->elseBranch = parseStatement();
  s->range = rangeFrom(begin);
  return s;
}

StmtPtr Parser::parseReturn() {
  SourceLocation begin = current().location;
  auto s = std::make_unique<Statement>(StmtKind::Return);
  expect(TokenKind::KwReturn, "at return");
  if (!check(TokenKind::Semicolon))
    s->expr = parseExpression();
  expect(TokenKind::Semicolon, "after return");
  s->range = rangeFrom(begin);
  return s;
}

// ------------------------------------------------------------- expressions

ExprPtr Parser::parseExpression() { return parseAssignment(); }

ExprPtr Parser::parseAssignment() {
  SourceLocation begin = current().location;
  ExprPtr lhs = parseLogicalOr();
  AssignOp op;
  switch (current().kind) {
  case TokenKind::Assign:
    op = AssignOp::Assign;
    break;
  case TokenKind::PlusAssign:
    op = AssignOp::AddAssign;
    break;
  case TokenKind::MinusAssign:
    op = AssignOp::SubAssign;
    break;
  case TokenKind::StarAssign:
    op = AssignOp::MulAssign;
    break;
  case TokenKind::SlashAssign:
    op = AssignOp::DivAssign;
    break;
  default:
    return lhs;
  }
  advance();
  ExprPtr rhs = parseAssignment(); // right-associative
  return Expression::assign(op, std::move(lhs), std::move(rhs),
                            rangeFrom(begin));
}

ExprPtr Parser::parseLogicalOr() {
  SourceLocation begin = current().location;
  ExprPtr lhs = parseLogicalAnd();
  while (match(TokenKind::PipePipe))
    lhs = Expression::binary(BinaryOp::LOr, std::move(lhs), parseLogicalAnd(),
                             rangeFrom(begin));
  return lhs;
}

ExprPtr Parser::parseLogicalAnd() {
  SourceLocation begin = current().location;
  ExprPtr lhs = parseEquality();
  while (match(TokenKind::AmpAmp))
    lhs = Expression::binary(BinaryOp::LAnd, std::move(lhs), parseEquality(),
                             rangeFrom(begin));
  return lhs;
}

ExprPtr Parser::parseEquality() {
  SourceLocation begin = current().location;
  ExprPtr lhs = parseRelational();
  while (true) {
    BinaryOp op;
    if (check(TokenKind::EqualEqual))
      op = BinaryOp::Eq;
    else if (check(TokenKind::NotEqual))
      op = BinaryOp::Ne;
    else
      break;
    advance();
    lhs = Expression::binary(op, std::move(lhs), parseRelational(),
                             rangeFrom(begin));
  }
  return lhs;
}

ExprPtr Parser::parseRelational() {
  SourceLocation begin = current().location;
  ExprPtr lhs = parseAdditive();
  while (true) {
    BinaryOp op;
    if (check(TokenKind::Less))
      op = BinaryOp::Lt;
    else if (check(TokenKind::LessEqual))
      op = BinaryOp::Le;
    else if (check(TokenKind::Greater))
      op = BinaryOp::Gt;
    else if (check(TokenKind::GreaterEqual))
      op = BinaryOp::Ge;
    else
      break;
    advance();
    lhs = Expression::binary(op, std::move(lhs), parseAdditive(),
                             rangeFrom(begin));
  }
  return lhs;
}

ExprPtr Parser::parseAdditive() {
  SourceLocation begin = current().location;
  ExprPtr lhs = parseMultiplicative();
  while (true) {
    BinaryOp op;
    if (check(TokenKind::Plus))
      op = BinaryOp::Add;
    else if (check(TokenKind::Minus))
      op = BinaryOp::Sub;
    else
      break;
    advance();
    lhs = Expression::binary(op, std::move(lhs), parseMultiplicative(),
                             rangeFrom(begin));
  }
  return lhs;
}

ExprPtr Parser::parseMultiplicative() {
  SourceLocation begin = current().location;
  ExprPtr lhs = parseUnary();
  while (true) {
    BinaryOp op;
    if (check(TokenKind::Star))
      op = BinaryOp::Mul;
    else if (check(TokenKind::Slash))
      op = BinaryOp::Div;
    else if (check(TokenKind::Percent))
      op = BinaryOp::Mod;
    else
      break;
    advance();
    lhs = Expression::binary(op, std::move(lhs), parseUnary(),
                             rangeFrom(begin));
  }
  return lhs;
}

ExprPtr Parser::parseUnary() {
  SourceLocation begin = current().location;
  if (match(TokenKind::Minus))
    return Expression::unary(UnaryOp::Neg, parseUnary(), rangeFrom(begin));
  if (match(TokenKind::Not))
    return Expression::unary(UnaryOp::Not, parseUnary(), rangeFrom(begin));
  if (match(TokenKind::PlusPlus))
    return Expression::unary(UnaryOp::PreInc, parseUnary(), rangeFrom(begin));
  if (match(TokenKind::MinusMinus))
    return Expression::unary(UnaryOp::PreDec, parseUnary(), rangeFrom(begin));
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  SourceLocation begin = current().location;
  ExprPtr expr = parsePrimary();
  while (true) {
    if (match(TokenKind::LBracket)) {
      ExprPtr idx = parseExpression();
      expect(TokenKind::RBracket, "to close subscript");
      expr = Expression::index(std::move(expr), std::move(idx),
                               rangeFrom(begin));
    } else if (match(TokenKind::LParen)) {
      // call on the expression so far: either a free-function call (VarRef
      // callee), a method call (Member callee), or operator() on an
      // object (anything else — sema resolves).
      std::vector<ExprPtr> args;
      if (!check(TokenKind::RParen)) {
        do {
          args.push_back(parseExpression());
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "to close call");
      if (expr->kind == ExprKind::VarRef) {
        std::string callee = expr->name;
        expr = Expression::call(callee, nullptr, std::move(args),
                                rangeFrom(begin));
      } else if (expr->kind == ExprKind::Member) {
        std::string callee = expr->name;
        ExprPtr receiver = std::move(expr->children[0]);
        expr = Expression::call(callee, std::move(receiver), std::move(args),
                                rangeFrom(begin));
      } else {
        // operator() call on an arbitrary object expression
        expr = Expression::call("operator()", std::move(expr),
                                std::move(args), rangeFrom(begin));
      }
    } else if (check(TokenKind::Dot) || check(TokenKind::Arrow)) {
      advance();
      std::string field;
      if (check(TokenKind::KwOperator)) {
        advance();
        expect(TokenKind::LParen, "after 'operator'");
        expect(TokenKind::RParen, "to complete 'operator()'");
        field = "operator()";
      } else {
        field = expect(TokenKind::Identifier, "after '.'").text;
      }
      expr = Expression::member(std::move(expr), field, rangeFrom(begin));
    } else if (match(TokenKind::PlusPlus)) {
      expr = Expression::unary(UnaryOp::PostInc, std::move(expr),
                               rangeFrom(begin));
    } else if (match(TokenKind::MinusMinus)) {
      expr = Expression::unary(UnaryOp::PostDec, std::move(expr),
                               rangeFrom(begin));
    } else {
      break;
    }
  }
  return expr;
}

ExprPtr Parser::parsePrimary() {
  SourceLocation begin = current().location;
  switch (current().kind) {
  case TokenKind::IntLiteral: {
    Token t = advance();
    return Expression::intLiteral(t.intValue, rangeFrom(begin));
  }
  case TokenKind::FloatLiteral: {
    Token t = advance();
    return Expression::floatLiteral(t.floatValue, rangeFrom(begin));
  }
  case TokenKind::KwTrue:
    advance();
    return Expression::boolLiteral(true, rangeFrom(begin));
  case TokenKind::KwFalse:
    advance();
    return Expression::boolLiteral(false, rangeFrom(begin));
  case TokenKind::Identifier: {
    Token t = advance();
    return Expression::varRef(t.text, rangeFrom(begin));
  }
  case TokenKind::LParen: {
    advance();
    ExprPtr inner = parseExpression();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return inner;
  }
  default:
    diags_.error(current().location,
                 "expected expression, found " + current().str());
    advance();
    return Expression::intLiteral(0, rangeFrom(begin));
  }
}

std::unique_ptr<TranslationUnit>
Parser::parse(const std::string &source, const std::string &fileName,
              DiagnosticEngine &diags) {
  Lexer lexer(source, diags);
  Parser parser(lexer.tokenize(), diags);
  return parser.parseTranslationUnit(fileName);
}

} // namespace mira::frontend
