// Token definitions for the MiniC front-end.
//
// MiniC is the C/C++ subset Mira analyzes in this reproduction (DESIGN.md
// substitution table: it stands in for the ROSE/EDG front-end). It covers
// functions, classes with member functions (including operator()), for /
// while / if, arrays, calls, and '#pragma @Annotation' directives.
#pragma once

#include <cstdint>
#include <string>

#include "support/source_location.h"

namespace mira::frontend {

enum class TokenKind {
  // literals & identifiers
  Identifier,
  IntLiteral,
  FloatLiteral,

  // keywords
  KwInt,
  KwLong,
  KwFloat,
  KwDouble,
  KwBool,
  KwVoid,
  KwClass,
  KwPublic,
  KwFor,
  KwWhile,
  KwIf,
  KwElse,
  KwReturn,
  KwTrue,
  KwFalse,
  KwConst,
  KwOperator,

  // punctuation
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Colon,
  Dot,
  Arrow,

  // operators
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  PlusPlus,
  MinusMinus,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  EqualEqual,
  NotEqual,
  AmpAmp,
  PipePipe,
  Not,
  Amp,

  // '#pragma ...' directive captured as one token; text() holds the body
  Pragma,

  Eof,
  Invalid,
};

const char *toString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::Invalid;
  std::string text;          // spelling (or pragma body for Pragma)
  std::int64_t intValue = 0; // IntLiteral
  double floatValue = 0;     // FloatLiteral
  SourceLocation location;

  bool is(TokenKind k) const { return kind == k; }
  std::string str() const;
};

} // namespace mira::frontend
