// Recursive-descent parser for MiniC producing the source AST.
//
// Pragma tokens ('#pragma @Annotation {...}') are attached as annotations
// to the statement that follows them, mirroring the paper's Listing 6
// placement rules. Errors are reported through DiagnosticEngine and the
// parser recovers at statement boundaries, so a malformed input yields
// diagnostics rather than a crash.
#pragma once

#include <memory>
#include <vector>

#include "frontend/ast.h"
#include "frontend/lexer.h"
#include "support/diagnostics.h"

namespace mira::frontend {

class Parser {
public:
  Parser(std::vector<Token> tokens, DiagnosticEngine &diags);

  /// Parse a whole translation unit. Returns a (possibly partial) unit;
  /// check diags.hasErrors() for success.
  std::unique_ptr<TranslationUnit> parseTranslationUnit(std::string fileName);

  /// Convenience: lex + parse in one step.
  static std::unique_ptr<TranslationUnit>
  parse(const std::string &source, const std::string &fileName,
        DiagnosticEngine &diags);

private:
  // token stream helpers
  const Token &peek(std::size_t offset = 0) const;
  const Token &current() const { return peek(0); }
  Token advance();
  bool check(TokenKind kind) const { return current().kind == kind; }
  bool match(TokenKind kind);
  Token expect(TokenKind kind, const char *context);
  bool atEnd() const { return current().kind == TokenKind::Eof; }
  void synchronizeToStatement();

  // grammar productions
  std::unique_ptr<ClassDecl> parseClass();
  std::unique_ptr<FunctionDecl> parseFunction(Type returnType,
                                              std::string name,
                                              std::string className);
  bool parseTypeSpec(Type &out); // returns false if current token ≠ type
  bool looksLikeType() const;
  std::vector<ParamDecl> parseParams();

  StmtPtr parseStatement();
  StmtPtr parseCompound();
  StmtPtr parseDeclStatement();
  StmtPtr parseFor();
  StmtPtr parseWhile();
  StmtPtr parseIf();
  StmtPtr parseReturn();
  std::optional<Annotation> parsePragma();

  ExprPtr parseExpression();
  ExprPtr parseAssignment();
  ExprPtr parseLogicalOr();
  ExprPtr parseLogicalAnd();
  ExprPtr parseEquality();
  ExprPtr parseRelational();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  SourceRange rangeFrom(SourceLocation begin) const;

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  DiagnosticEngine &diags_;
  SourceLocation lastEnd_;
};

} // namespace mira::frontend
