#include "frontend/ast.h"

namespace mira::frontend {

std::string Type::str() const {
  std::string base;
  switch (scalar) {
  case ScalarType::Void:
    base = "void";
    break;
  case ScalarType::Bool:
    base = "bool";
    break;
  case ScalarType::Int:
    base = "int";
    break;
  case ScalarType::Long:
    base = "long";
    break;
  case ScalarType::Float:
    base = "float";
    break;
  case ScalarType::Double:
    base = "double";
    break;
  case ScalarType::Class:
    base = className;
    break;
  }
  base.append(static_cast<std::size_t>(pointerDepth), '*');
  return base;
}

const char *toString(BinaryOp op) {
  switch (op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::LAnd:
    return "&&";
  case BinaryOp::LOr:
    return "||";
  }
  return "?";
}

const char *toString(UnaryOp op) {
  switch (op) {
  case UnaryOp::Neg:
    return "-";
  case UnaryOp::Not:
    return "!";
  case UnaryOp::PreInc:
  case UnaryOp::PostInc:
    return "++";
  case UnaryOp::PreDec:
  case UnaryOp::PostDec:
    return "--";
  }
  return "?";
}

const char *toString(AssignOp op) {
  switch (op) {
  case AssignOp::Assign:
    return "=";
  case AssignOp::AddAssign:
    return "+=";
  case AssignOp::SubAssign:
    return "-=";
  case AssignOp::MulAssign:
    return "*=";
  case AssignOp::DivAssign:
    return "/=";
  }
  return "?";
}

ExprPtr Expression::intLiteral(std::int64_t value, SourceRange range) {
  auto e = std::make_unique<Expression>(ExprKind::IntLiteral);
  e->intValue = value;
  e->range = range;
  return e;
}

ExprPtr Expression::floatLiteral(double value, SourceRange range) {
  auto e = std::make_unique<Expression>(ExprKind::FloatLiteral);
  e->floatValue = value;
  e->range = range;
  return e;
}

ExprPtr Expression::boolLiteral(bool value, SourceRange range) {
  auto e = std::make_unique<Expression>(ExprKind::BoolLiteral);
  e->boolValue = value;
  e->range = range;
  return e;
}

ExprPtr Expression::varRef(std::string name, SourceRange range) {
  auto e = std::make_unique<Expression>(ExprKind::VarRef);
  e->name = std::move(name);
  e->range = range;
  return e;
}

ExprPtr Expression::binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs,
                           SourceRange range) {
  auto e = std::make_unique<Expression>(ExprKind::Binary);
  e->binaryOp = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  e->range = range;
  return e;
}

ExprPtr Expression::unary(UnaryOp op, ExprPtr operand, SourceRange range) {
  auto e = std::make_unique<Expression>(ExprKind::Unary);
  e->unaryOp = op;
  e->children.push_back(std::move(operand));
  e->range = range;
  return e;
}

ExprPtr Expression::assign(AssignOp op, ExprPtr target, ExprPtr value,
                           SourceRange range) {
  auto e = std::make_unique<Expression>(ExprKind::Assign);
  e->assignOp = op;
  e->children.push_back(std::move(target));
  e->children.push_back(std::move(value));
  e->range = range;
  return e;
}

ExprPtr Expression::call(std::string callee, ExprPtr receiver,
                         std::vector<ExprPtr> args, SourceRange range) {
  auto e = std::make_unique<Expression>(ExprKind::Call);
  e->name = std::move(callee);
  e->receiver = std::move(receiver);
  e->children = std::move(args);
  e->range = range;
  return e;
}

ExprPtr Expression::index(ExprPtr base, ExprPtr idx, SourceRange range) {
  auto e = std::make_unique<Expression>(ExprKind::Index);
  e->children.push_back(std::move(base));
  e->children.push_back(std::move(idx));
  e->range = range;
  return e;
}

ExprPtr Expression::member(ExprPtr base, std::string field,
                           SourceRange range) {
  auto e = std::make_unique<Expression>(ExprKind::Member);
  e->name = std::move(field);
  e->children.push_back(std::move(base));
  e->range = range;
  return e;
}

std::string Expression::str() const {
  switch (kind) {
  case ExprKind::IntLiteral:
    return std::to_string(intValue);
  case ExprKind::FloatLiteral:
    return std::to_string(floatValue);
  case ExprKind::BoolLiteral:
    return boolValue ? "true" : "false";
  case ExprKind::VarRef:
    return name;
  case ExprKind::Binary:
    return "(" + children[0]->str() + " " + toString(binaryOp) + " " +
           children[1]->str() + ")";
  case ExprKind::Unary:
    if (unaryOp == UnaryOp::PostInc || unaryOp == UnaryOp::PostDec)
      return children[0]->str() + toString(unaryOp);
    return std::string(toString(unaryOp)) + children[0]->str();
  case ExprKind::Assign:
    return children[0]->str() + " " + toString(assignOp) + " " +
           children[1]->str();
  case ExprKind::Call: {
    std::string s;
    if (receiver)
      s += receiver->str() + ".";
    s += name + "(";
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (i)
        s += ", ";
      s += children[i]->str();
    }
    return s + ")";
  }
  case ExprKind::Index:
    return children[0]->str() + "[" + children[1]->str() + "]";
  case ExprKind::Member:
    return children[0]->str() + "." + name;
  }
  return "?";
}

StmtPtr Statement::compound(std::vector<StmtPtr> stmts, SourceRange range) {
  auto s = std::make_unique<Statement>(StmtKind::Compound);
  s->body = std::move(stmts);
  s->range = range;
  return s;
}

StmtPtr Statement::empty(SourceRange range) {
  auto s = std::make_unique<Statement>(StmtKind::Empty);
  s->range = range;
  return s;
}

std::string FunctionDecl::qualifiedName() const {
  return className.empty() ? name : className + "::" + name;
}

std::string FunctionDecl::modelName() const {
  // Paper Sec. III-B5/7: the generated Python function is named from the
  // class name, original function name and argument count, e.g. A_foo_2.
  std::string base = name;
  if (base == "operator()")
    base = "operator_call";
  std::string out;
  if (!className.empty())
    out = className + "_";
  out += base + "_" + std::to_string(params.size());
  return out;
}

const FunctionDecl *
TranslationUnit::findFunction(const std::string &qualified) const {
  for (const auto &f : functions)
    if (f->qualifiedName() == qualified)
      return f.get();
  for (const auto &c : classes)
    for (const auto &m : c->methods)
      if (m->qualifiedName() == qualified)
        return m.get();
  return nullptr;
}

std::vector<const FunctionDecl *> TranslationUnit::allFunctions() const {
  std::vector<const FunctionDecl *> out;
  for (const auto &c : classes)
    for (const auto &m : c->methods)
      out.push_back(m.get());
  for (const auto &f : functions)
    out.push_back(f.get());
  return out;
}

const ClassDecl *TranslationUnit::findClass(const std::string &name) const {
  for (const auto &c : classes)
    if (c->name == name)
      return c.get();
  return nullptr;
}

} // namespace mira::frontend
