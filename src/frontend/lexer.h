// Hand-written lexer for MiniC.
//
// Produces the whole token stream up front (sources are small). Handles
// //- and /* */-comments, decimal integer and floating literals, and
// captures '#pragma ...' lines as single Pragma tokens so the parser can
// attach '@Annotation' payloads to the following statement (paper
// Sec. III-B4).
#pragma once

#include <vector>

#include "frontend/token.h"
#include "support/diagnostics.h"

namespace mira::frontend {

class Lexer {
public:
  Lexer(std::string source, DiagnosticEngine &diags);

  /// Tokenize the entire input; always ends with an Eof token.
  std::vector<Token> tokenize();

private:
  char peek(std::size_t offset = 0) const;
  char advance();
  bool match(char expected);
  bool atEnd() const { return pos_ >= source_.size(); }
  SourceLocation here() const { return {line_, column_}; }

  void skipWhitespaceAndComments();
  Token lexNumber();
  Token lexIdentifierOrKeyword();
  Token lexPragma();
  Token makeToken(TokenKind kind, std::string text, SourceLocation loc) const;

  std::string source_;
  DiagnosticEngine &diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

} // namespace mira::frontend
