// MiniC abstract syntax tree (the "source AST" of the paper, Sec. III-A).
//
// The tree preserves what Mira needs from the ROSE source AST: statement
// order, loop SCoP structure (init / condition / increment as explicit
// children, cf. paper Fig. 2), variable names, class/member structure, and
// exact line numbers on every node — line numbers are the bridge to the
// binary AST.
//
// Ownership: nodes own their children through std::unique_ptr; non-owning
// observers use raw pointers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/source_location.h"

namespace mira::frontend {

// ----------------------------------------------------------------- types

enum class ScalarType { Void, Bool, Int, Long, Float, Double, Class };

struct Type {
  ScalarType scalar = ScalarType::Void;
  int pointerDepth = 0;     // 'double*' -> 1
  std::string className;    // when scalar == Class

  bool isVoid() const { return scalar == ScalarType::Void && !isPointer(); }
  bool isPointer() const { return pointerDepth > 0; }
  bool isFloatingPoint() const {
    return !isPointer() &&
           (scalar == ScalarType::Float || scalar == ScalarType::Double);
  }
  bool isInteger() const {
    return !isPointer() && (scalar == ScalarType::Bool ||
                            scalar == ScalarType::Int ||
                            scalar == ScalarType::Long);
  }
  bool operator==(const Type &o) const {
    return scalar == o.scalar && pointerDepth == o.pointerDepth &&
           className == o.className;
  }
  std::string str() const;
};

// ------------------------------------------------------------ annotations

/// A parsed '#pragma @Annotation {key:value, ...}' directive (paper
/// Sec. III-B4). Recognized keys: lp_init, lp_cond, lp_iters, ratio, skip.
struct Annotation {
  std::map<std::string, std::string> entries;
  SourceLocation location;

  bool has(const std::string &key) const { return entries.count(key) > 0; }
  std::optional<std::string> get(const std::string &key) const {
    auto it = entries.find(key);
    if (it == entries.end())
      return std::nullopt;
    return it->second;
  }
  bool skip() const {
    auto v = get("skip");
    return v && (*v == "yes" || *v == "true" || *v == "1");
  }
};

// ------------------------------------------------------------ expressions

enum class ExprKind {
  IntLiteral,
  FloatLiteral,
  BoolLiteral,
  VarRef,
  Binary,
  Unary,
  Assign,
  Call,   // free call, method call (receiver != null), or operator() call
  Index,  // base[index]
  Member, // base.field or base->field
};

enum class BinaryOp { Add, Sub, Mul, Div, Mod, Lt, Le, Gt, Ge, Eq, Ne,
                      LAnd, LOr };
enum class UnaryOp { Neg, Not, PreInc, PreDec, PostInc, PostDec };
enum class AssignOp { Assign, AddAssign, SubAssign, MulAssign, DivAssign };

const char *toString(BinaryOp op);
const char *toString(UnaryOp op);
const char *toString(AssignOp op);

struct Expression;
using ExprPtr = std::unique_ptr<Expression>;

struct Expression {
  ExprKind kind;
  SourceRange range;
  Type type; // filled by sema

  // literals
  std::int64_t intValue = 0;
  double floatValue = 0;
  bool boolValue = false;

  // VarRef / Call / Member
  std::string name;

  // operators
  BinaryOp binaryOp = BinaryOp::Add;
  UnaryOp unaryOp = UnaryOp::Neg;
  AssignOp assignOp = AssignOp::Assign;

  // children (meaning depends on kind):
  //   Binary: [lhs, rhs]; Unary: [operand]; Assign: [target, value];
  //   Call: args (receiver held separately); Index: [base, index];
  //   Member: [base]
  std::vector<ExprPtr> children;
  ExprPtr receiver; // Call: object expression for method calls

  // Call resolution (filled by sema): qualified name of the callee
  // ("A::foo", "sqrt", ...), and whether it is a builtin (modeled as an
  // instruction) or an external function (invisible to static analysis —
  // the paper's main residual error source, Sec. IV-D1).
  std::string resolvedCallee;
  bool isBuiltin = false;
  bool isExtern = false;

  explicit Expression(ExprKind k) : kind(k) {}

  static ExprPtr intLiteral(std::int64_t value, SourceRange range);
  static ExprPtr floatLiteral(double value, SourceRange range);
  static ExprPtr boolLiteral(bool value, SourceRange range);
  static ExprPtr varRef(std::string name, SourceRange range);
  static ExprPtr binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs,
                        SourceRange range);
  static ExprPtr unary(UnaryOp op, ExprPtr operand, SourceRange range);
  static ExprPtr assign(AssignOp op, ExprPtr target, ExprPtr value,
                        SourceRange range);
  static ExprPtr call(std::string callee, ExprPtr receiver,
                      std::vector<ExprPtr> args, SourceRange range);
  static ExprPtr index(ExprPtr base, ExprPtr idx, SourceRange range);
  static ExprPtr member(ExprPtr base, std::string field, SourceRange range);

  std::string str() const; // debugging / model comments
};

// -------------------------------------------------------------- statements

enum class StmtKind {
  Compound,
  Decl,
  ExprStmt,
  For,
  While,
  If,
  Return,
  Empty,
};

struct Statement;
using StmtPtr = std::unique_ptr<Statement>;

struct Statement {
  StmtKind kind;
  SourceRange range;
  std::optional<Annotation> annotation; // attached pragma, if any

  // Decl
  Type declType;
  std::string declName;
  std::vector<ExprPtr> arrayDims; // 'double a[N][M]' -> {N, M}
  ExprPtr declInit;               // optional

  // ExprStmt / Return (value optional) / If+While+For conditions
  ExprPtr expr;

  // For: init (Decl or ExprStmt or Empty), cond (expr), inc (expr), body
  StmtPtr forInit;
  ExprPtr forCond;
  ExprPtr forInc;

  // If
  StmtPtr thenBranch;
  StmtPtr elseBranch;

  // Compound / loop bodies
  std::vector<StmtPtr> body;
  StmtPtr loopBody; // For/While

  explicit Statement(StmtKind k) : kind(k) {}

  static StmtPtr compound(std::vector<StmtPtr> stmts, SourceRange range);
  static StmtPtr empty(SourceRange range);
};

// ------------------------------------------------------------ declarations

struct ParamDecl {
  Type type;
  std::string name;
  SourceLocation location;
};

struct FieldDecl {
  Type type;
  std::string name;
  SourceLocation location;
};

struct FunctionDecl {
  Type returnType;
  std::string name;       // "operator()" for call operators
  std::string className;  // empty for free functions
  std::vector<ParamDecl> params;
  StmtPtr bodyStmt; // Compound
  SourceRange range;

  bool isMethod() const { return !className.empty(); }
  /// Key used to resolve calls: "Class::name" or "name".
  std::string qualifiedName() const;
  /// Model-function name per the paper ("A_foo_2": class, name, #args).
  std::string modelName() const;
};

struct ClassDecl {
  std::string name;
  std::vector<FieldDecl> fields;
  std::vector<std::unique_ptr<FunctionDecl>> methods;
  SourceRange range;
};

struct TranslationUnit {
  std::vector<std::unique_ptr<ClassDecl>> classes;
  std::vector<std::unique_ptr<FunctionDecl>> functions;
  std::string fileName;

  /// Find by qualified name ("foo" or "A::foo"); nullptr if absent.
  const FunctionDecl *findFunction(const std::string &qualified) const;
  /// All functions including methods, in declaration order.
  std::vector<const FunctionDecl *> allFunctions() const;
  const ClassDecl *findClass(const std::string &name) const;
};

} // namespace mira::frontend
