#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

namespace mira::frontend {

const char *toString(TokenKind kind) {
  switch (kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "float literal";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwLong:
    return "'long'";
  case TokenKind::KwFloat:
    return "'float'";
  case TokenKind::KwDouble:
    return "'double'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwClass:
    return "'class'";
  case TokenKind::KwPublic:
    return "'public'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwConst:
    return "'const'";
  case TokenKind::KwOperator:
    return "'operator'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::PlusAssign:
    return "'+='";
  case TokenKind::MinusAssign:
    return "'-='";
  case TokenKind::StarAssign:
    return "'*='";
  case TokenKind::SlashAssign:
    return "'/='";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::NotEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Not:
    return "'!'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pragma:
    return "pragma";
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Invalid:
    return "invalid token";
  }
  return "?";
}

std::string Token::str() const {
  return std::string(toString(kind)) + " '" + text + "'";
}

Lexer::Lexer(std::string source, DiagnosticEngine &diags)
    : source_(std::move(source)), diags_(diags) {}

char Lexer::peek(std::size_t offset) const {
  return pos_ + offset < source_.size() ? source_[pos_ + offset] : '\0';
}

char Lexer::advance() {
  char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (atEnd() || peek() != expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
    } else if (c == '/' && peek(1) == '*') {
      SourceLocation start = here();
      advance();
      advance();
      bool closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          closed = true;
          break;
        }
        advance();
      }
      if (!closed)
        diags_.error(start, "unterminated block comment");
    } else {
      break;
    }
  }
}

Token Lexer::makeToken(TokenKind kind, std::string text,
                       SourceLocation loc) const {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.location = loc;
  return t;
}

Token Lexer::lexNumber() {
  SourceLocation loc = here();
  std::string text;
  bool isFloat = false;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    text += advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    isFloat = true;
    text += advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      text += advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    char next = peek(1);
    char nextnext = peek(2);
    if (std::isdigit(static_cast<unsigned char>(next)) ||
        ((next == '+' || next == '-') &&
         std::isdigit(static_cast<unsigned char>(nextnext)))) {
      isFloat = true;
      text += advance();
      if (peek() == '+' || peek() == '-')
        text += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        text += advance();
    }
  }
  Token t = makeToken(isFloat ? TokenKind::FloatLiteral
                              : TokenKind::IntLiteral,
                      text, loc);
  if (isFloat) {
    t.floatValue = std::strtod(text.c_str(), nullptr);
  } else {
    errno = 0;
    t.intValue = std::strtoll(text.c_str(), nullptr, 10);
    if (errno == ERANGE)
      diags_.error(loc, "integer literal out of range: " + text);
  }
  return t;
}

Token Lexer::lexIdentifierOrKeyword() {
  static const std::map<std::string, TokenKind> keywords = {
      {"int", TokenKind::KwInt},        {"long", TokenKind::KwLong},
      {"float", TokenKind::KwFloat},    {"double", TokenKind::KwDouble},
      {"bool", TokenKind::KwBool},      {"void", TokenKind::KwVoid},
      {"class", TokenKind::KwClass},    {"public", TokenKind::KwPublic},
      {"for", TokenKind::KwFor},        {"while", TokenKind::KwWhile},
      {"if", TokenKind::KwIf},          {"else", TokenKind::KwElse},
      {"return", TokenKind::KwReturn},  {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},    {"const", TokenKind::KwConst},
      {"operator", TokenKind::KwOperator},
  };
  SourceLocation loc = here();
  std::string text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    text += advance();
  auto it = keywords.find(text);
  return makeToken(it == keywords.end() ? TokenKind::Identifier : it->second,
                   text, loc);
}

Token Lexer::lexPragma() {
  SourceLocation loc = here();
  std::string body;
  // Consume to end of line, honoring backslash continuations (the paper's
  // Listing 6 splits an annotation across lines with '\').
  while (!atEnd() && peek() != '\n') {
    if (peek() == '\\' && peek(1) == '\n') {
      advance();
      advance();
      continue;
    }
    body += advance();
  }
  return makeToken(TokenKind::Pragma, body, loc);
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> tokens;
  while (true) {
    skipWhitespaceAndComments();
    if (atEnd())
      break;
    SourceLocation loc = here();
    char c = peek();
    if (c == '#') {
      advance();
      tokens.push_back(lexPragma());
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      tokens.push_back(lexNumber());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tokens.push_back(lexIdentifierOrKeyword());
      continue;
    }
    advance();
    switch (c) {
    case '(':
      tokens.push_back(makeToken(TokenKind::LParen, "(", loc));
      break;
    case ')':
      tokens.push_back(makeToken(TokenKind::RParen, ")", loc));
      break;
    case '{':
      tokens.push_back(makeToken(TokenKind::LBrace, "{", loc));
      break;
    case '}':
      tokens.push_back(makeToken(TokenKind::RBrace, "}", loc));
      break;
    case '[':
      tokens.push_back(makeToken(TokenKind::LBracket, "[", loc));
      break;
    case ']':
      tokens.push_back(makeToken(TokenKind::RBracket, "]", loc));
      break;
    case ';':
      tokens.push_back(makeToken(TokenKind::Semicolon, ";", loc));
      break;
    case ',':
      tokens.push_back(makeToken(TokenKind::Comma, ",", loc));
      break;
    case ':':
      tokens.push_back(makeToken(TokenKind::Colon, ":", loc));
      break;
    case '.':
      tokens.push_back(makeToken(TokenKind::Dot, ".", loc));
      break;
    case '+':
      if (match('+'))
        tokens.push_back(makeToken(TokenKind::PlusPlus, "++", loc));
      else if (match('='))
        tokens.push_back(makeToken(TokenKind::PlusAssign, "+=", loc));
      else
        tokens.push_back(makeToken(TokenKind::Plus, "+", loc));
      break;
    case '-':
      if (match('-'))
        tokens.push_back(makeToken(TokenKind::MinusMinus, "--", loc));
      else if (match('='))
        tokens.push_back(makeToken(TokenKind::MinusAssign, "-=", loc));
      else if (match('>'))
        tokens.push_back(makeToken(TokenKind::Arrow, "->", loc));
      else
        tokens.push_back(makeToken(TokenKind::Minus, "-", loc));
      break;
    case '*':
      if (match('='))
        tokens.push_back(makeToken(TokenKind::StarAssign, "*=", loc));
      else
        tokens.push_back(makeToken(TokenKind::Star, "*", loc));
      break;
    case '/':
      if (match('='))
        tokens.push_back(makeToken(TokenKind::SlashAssign, "/=", loc));
      else
        tokens.push_back(makeToken(TokenKind::Slash, "/", loc));
      break;
    case '%':
      tokens.push_back(makeToken(TokenKind::Percent, "%", loc));
      break;
    case '=':
      if (match('='))
        tokens.push_back(makeToken(TokenKind::EqualEqual, "==", loc));
      else
        tokens.push_back(makeToken(TokenKind::Assign, "=", loc));
      break;
    case '<':
      if (match('='))
        tokens.push_back(makeToken(TokenKind::LessEqual, "<=", loc));
      else
        tokens.push_back(makeToken(TokenKind::Less, "<", loc));
      break;
    case '>':
      if (match('='))
        tokens.push_back(makeToken(TokenKind::GreaterEqual, ">=", loc));
      else
        tokens.push_back(makeToken(TokenKind::Greater, ">", loc));
      break;
    case '!':
      if (match('='))
        tokens.push_back(makeToken(TokenKind::NotEqual, "!=", loc));
      else
        tokens.push_back(makeToken(TokenKind::Not, "!", loc));
      break;
    case '&':
      if (match('&'))
        tokens.push_back(makeToken(TokenKind::AmpAmp, "&&", loc));
      else
        tokens.push_back(makeToken(TokenKind::Amp, "&", loc));
      break;
    case '|':
      if (match('|')) {
        tokens.push_back(makeToken(TokenKind::PipePipe, "||", loc));
      } else {
        diags_.error(loc, "unexpected character '|'");
        tokens.push_back(makeToken(TokenKind::Invalid, "|", loc));
      }
      break;
    default:
      diags_.error(loc, std::string("unexpected character '") + c + "'");
      tokens.push_back(makeToken(TokenKind::Invalid, std::string(1, c), loc));
      break;
    }
  }
  tokens.push_back(makeToken(TokenKind::Eof, "", here()));
  return tokens;
}

} // namespace mira::frontend
