#include "sim/simulator.h"

#include <cmath>
#include <cstring>

namespace mira::sim {

using isa::InstrCategory;
using isa::Opcode;
using mir::kNoVReg;
using mir::LoopDescriptor;
using mir::MirBlock;
using mir::MirCmp;
using mir::MirFunction;
using mir::MirInst;
using mir::MirOp;
using mir::MirType;
using mir::VReg;

void Counters::add(const Counters &other) {
  for (std::size_t i = 0; i < categories.size(); ++i)
    categories[i] += other.categories[i];
  totalInstructions += other.totalInstructions;
  fpInstructions += other.fpInstructions;
  flops += other.flops;
}

double SimResult::fpiOf(const std::string &fn) const {
  auto it = functions.find(fn);
  return it == functions.end()
             ? 0.0
             : static_cast<double>(it->second.inclusive.fpInstructions);
}

double SimResult::fpiPerCall(const std::string &fn) const {
  auto it = functions.find(fn);
  if (it == functions.end() || it->second.calls == 0)
    return 0.0;
  return static_cast<double>(it->second.inclusive.fpInstructions) /
         static_cast<double>(it->second.calls);
}

const std::map<Opcode, std::uint32_t> &externCallCost(
    const std::string &name) {
  // Synthetic library-call footprints. mc_print formats a double, which
  // on a real libc retires a few floating-point instructions — invisible
  // to static analysis, hence part of the Mira-vs-measurement gap.
  static const std::map<std::string, std::map<Opcode, std::uint32_t>> table =
      {
          {"mc_clock",
           {{Opcode::MOV, 14},
            {Opcode::ADD, 4},
            {Opcode::SHL, 2},
            {Opcode::CALL, 1},
            {Opcode::RET, 1},
            {Opcode::CQO, 1}}},
          {"mc_print",
           {{Opcode::MOV, 46},
            {Opcode::ADD, 12},
            {Opcode::SUB, 6},
            {Opcode::IMUL, 4},
            {Opcode::IDIV, 3},
            {Opcode::CMP, 10},
            {Opcode::JNE, 8},
            {Opcode::JL, 3},
            {Opcode::MOVSD_RM, 3},
            {Opcode::MOVSD_MR, 2},
            {Opcode::MULSD, 2},
            {Opcode::DIVSD, 1},
            {Opcode::UCOMISD, 2},
            {Opcode::CVTTSD2SI, 1},
            {Opcode::CALL, 2},
            {Opcode::RET, 2}}},
          {"mc_print_int",
           {{Opcode::MOV, 30},
            {Opcode::ADD, 8},
            {Opcode::IDIV, 4},
            {Opcode::CMP, 6},
            {Opcode::JNE, 5},
            {Opcode::CALL, 1},
            {Opcode::RET, 1}}},
          {"mc_rand",
           {{Opcode::MOV, 6},
            {Opcode::IMUL, 2},
            {Opcode::ADD, 2},
            {Opcode::SHR, 2},
            {Opcode::CVTSI2SD, 1},
            {Opcode::MULSD, 1},
            {Opcode::RET, 1}}},
      };
  static const std::map<Opcode, std::uint32_t> fallback = {
      {Opcode::MOV, 10}, {Opcode::CALL, 1}, {Opcode::RET, 1}};
  auto it = table.find(name);
  return it == table.end() ? fallback : it->second;
}

namespace {

/// Precomputed retirement cost of one MIR instruction.
struct Cost {
  std::uint32_t total = 0;
  std::uint32_t fpi = 0;
  std::uint32_t flops = 0;
  std::vector<std::pair<std::uint8_t, std::uint16_t>> cats;

  void addOpcode(Opcode op, std::uint32_t n = 1) {
    total += n;
    if (isa::isFloatingPointArith(op)) {
      fpi += n;
      flops += n * static_cast<std::uint32_t>(isa::flopCount(op));
    }
    std::uint8_t cat = static_cast<std::uint8_t>(isa::defaultCategory(op));
    for (auto &[c, count] : cats) {
      if (c == cat) {
        count = static_cast<std::uint16_t>(count + n);
        return;
      }
    }
    cats.push_back({cat, static_cast<std::uint16_t>(n)});
  }

  void chargeInto(Counters &c, std::uint64_t times = 1) const {
    c.totalInstructions += static_cast<std::uint64_t>(total) * times;
    c.fpInstructions += static_cast<std::uint64_t>(fpi) * times;
    c.flops += static_cast<std::uint64_t>(flops) * times;
    for (const auto &[cat, n] : cats)
      c.categories[cat] += static_cast<std::uint64_t>(n) * times;
  }
};

struct FFInfo {
  bool executable = false;
  const LoopDescriptor *loop = nullptr;
  Cost headerTakenCost; // header when the loop continues (Jcc taken)
  Cost headerExitCost;  // header on the final, falling-through execution
  Cost bodyCost;        // body blocks + latch
};

/// Per-function execution plan.
struct FnExec {
  const MirFunction *fn = nullptr;
  std::vector<std::vector<Cost>> costs; // [block][inst]
  /// Branch instructions: cost when taken (the trailing fall-through JMP
  /// of the expansion does not retire). Parallel to `costs`.
  std::vector<std::vector<Cost>> takenCosts;
  Cost prologueCost;
  std::map<std::uint32_t, FFInfo> ffAtHeader;
};

struct Frame {
  const FnExec *fn = nullptr;
  std::vector<Value> regs;
  std::uint32_t block = 0;
  std::uint32_t inst = 0;
  std::size_t allocaMark = 0;
  Counters counters;
  VReg resultDst = kNoVReg; // caller-side destination for the return value
};

bool cmpEval(MirCmp cmp, bool isFloat, const Value &a, const Value &b) {
  if (isFloat) {
    switch (cmp) {
    case MirCmp::Lt:
      return a.f < b.f;
    case MirCmp::Le:
      return a.f <= b.f;
    case MirCmp::Gt:
      return a.f > b.f;
    case MirCmp::Ge:
      return a.f >= b.f;
    case MirCmp::Eq:
      return a.f == b.f;
    case MirCmp::Ne:
      return a.f != b.f;
    }
  } else {
    switch (cmp) {
    case MirCmp::Lt:
      return a.i < b.i;
    case MirCmp::Le:
      return a.i <= b.i;
    case MirCmp::Gt:
      return a.i > b.i;
    case MirCmp::Ge:
      return a.i >= b.i;
    case MirCmp::Eq:
      return a.i == b.i;
    case MirCmp::Ne:
      return a.i != b.i;
    }
  }
  return false;
}

class Machine {
public:
  Machine(const mir::MirModule &module,
          const std::vector<codegen::CodegenResult> &cg,
          const SimOptions &options)
      : module_(module), options_(options) {
    memory_.resize(1 << 20);
    bump_ = 16;
    plans_.resize(module.functions.size());
    for (std::size_t i = 0; i < module.functions.size(); ++i)
      buildPlan(plans_[i], module.functions[i], cg[i]);
  }

  SimResult run(const std::string &entry, const std::vector<Value> &args) {
    SimResult result;
    const FnExec *fn = findPlan(entry);
    if (!fn) {
      result.error = "no such function: " + entry;
      return result;
    }
    if (args.size() != fn->fn->paramRegs.size()) {
      result.error = "argument count mismatch for " + entry;
      return result;
    }

    Frame frame;
    enterFunction(frame, fn, args);
    frames_.push_back(std::move(frame));

    while (!frames_.empty()) {
      if (!step()) {
        if (!error_.empty()) {
          result.error = error_;
          return result;
        }
        break;
      }
      if (retired_ > options_.maxInstructions) {
        result.error = "instruction budget exceeded";
        return result;
      }
    }

    result.ok = true;
    result.returnValue = returnValue_;
    result.total = totalCounters_;
    result.functions = profiles_;
    result.printed = printed_;
    return result;
  }

private:
  const FnExec *findPlan(const std::string &name) const {
    for (std::size_t i = 0; i < module_.functions.size(); ++i)
      if (module_.functions[i].name == name)
        return &plans_[i];
    return nullptr;
  }

  void buildPlan(FnExec &plan, const MirFunction &fn,
                 const codegen::CodegenResult &cg) {
    plan.fn = &fn;
    plan.costs.resize(fn.blocks.size());
    plan.takenCosts.resize(fn.blocks.size());
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      plan.costs[b].resize(fn.blocks[b].insts.size());
      plan.takenCosts[b].resize(fn.blocks[b].insts.size());
      for (std::size_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
        Cost &cost = plan.costs[b][i];
        const auto &expansion = cg.map.expansion[b][i];
        for (std::uint32_t mi : expansion)
          cost.addOpcode(cg.machine.instructions[mi].opcode);
        // A taken conditional branch does not retire the trailing
        // unconditional JMP of its expansion.
        if (fn.blocks[b].insts[i].op == MirOp::Branch) {
          Cost &taken = plan.takenCosts[b][i];
          std::size_t count = expansion.size();
          if (count > 0 &&
              isa::isUnconditionalJump(
                  cg.machine.instructions[expansion[count - 1]].opcode))
            --count;
          for (std::size_t k = 0; k < count; ++k)
            taken.addOpcode(cg.machine.instructions[expansion[k]].opcode);
        }
      }
    }
    for (std::uint32_t mi : cg.map.prologue)
      plan.prologueCost.addOpcode(cg.machine.instructions[mi].opcode);

    // Fast-forward eligibility per loop.
    for (const LoopDescriptor &loop : fn.loops) {
      if (!loop.ffEligible || loop.bodyBlocks.size() != 1)
        continue;
      std::uint32_t bodyId = *loop.bodyBlocks.begin();
      const MirBlock &body = fn.blocks[bodyId];
      bool straightLine = true;
      for (std::size_t i = 0; i < body.insts.size(); ++i) {
        const MirInst &inst = body.insts[i];
        if (inst.op == MirOp::Call || inst.op == MirOp::Branch ||
            inst.op == MirOp::Alloca)
          straightLine = false;
        if (inst.op == MirOp::Jump &&
            (i + 1 != body.insts.size() || inst.target != loop.latch))
          straightLine = false;
      }
      if (!straightLine)
        continue;
      FFInfo info;
      info.executable = true;
      info.loop = &loop;
      const MirBlock &header = fn.blocks[loop.header];
      for (std::size_t i = 0; i < header.insts.size(); ++i) {
        accumulate(info.headerExitCost, plan.costs[loop.header][i]);
        accumulate(info.headerTakenCost,
                   header.insts[i].op == MirOp::Branch
                       ? plan.takenCosts[loop.header][i]
                       : plan.costs[loop.header][i]);
      }
      for (const Cost &c : plan.costs[bodyId])
        accumulate(info.bodyCost, c);
      for (const Cost &c : plan.costs[loop.latch])
        accumulate(info.bodyCost, c);
      plan.ffAtHeader[loop.header] = std::move(info);
    }
  }

  static void accumulate(Cost &into, const Cost &c) {
    into.total += c.total;
    into.fpi += c.fpi;
    into.flops += c.flops;
    for (const auto &[cat, n] : c.cats) {
      bool merged = false;
      for (auto &[c2, n2] : into.cats)
        if (c2 == cat) {
          n2 = static_cast<std::uint16_t>(n2 + n);
          merged = true;
        }
      if (!merged)
        into.cats.push_back({cat, n});
    }
  }

  void enterFunction(Frame &frame, const FnExec *fn,
                     const std::vector<Value> &args) {
    frame.fn = fn;
    frame.regs.assign(fn->fn->vregTypes.size(), Value{});
    for (std::size_t i = 0; i < args.size(); ++i)
      frame.regs[fn->fn->paramRegs[i]] = args[i];
    frame.block = 0;
    frame.inst = 0;
    frame.allocaMark = bump_;
    fn->prologueCost.chargeInto(frame.counters);
    retired_ += fn->prologueCost.total;
  }

  // -------- memory ------------------------------------------------------
  bool checkRange(std::uint64_t addr, std::size_t size) {
    if (addr < 16 || addr + size > memory_.size()) {
      if (addr >= 16 && addr + size < (1ull << 32)) {
        memory_.resize(std::max<std::size_t>(memory_.size() * 2,
                                             addr + size + 4096));
        return true;
      }
      error_ = "memory access out of range at address " +
               std::to_string(addr);
      return false;
    }
    return true;
  }

  std::uint64_t allocate(std::uint64_t bytes) {
    bump_ = (bump_ + 15) & ~15ull;
    std::uint64_t addr = bump_;
    bump_ += bytes;
    if (bump_ > memory_.size())
      memory_.resize(std::max<std::size_t>(memory_.size() * 2, bump_ + 4096));
    return addr;
  }

  template <typename T> bool loadMem(std::uint64_t addr, T &out) {
    if (!checkRange(addr, sizeof(T)))
      return false;
    std::memcpy(&out, memory_.data() + addr, sizeof(T));
    return true;
  }
  template <typename T> bool storeMem(std::uint64_t addr, T value) {
    if (!checkRange(addr, sizeof(T)))
      return false;
    std::memcpy(memory_.data() + addr, &value, sizeof(T));
    return true;
  }

  // -------- execution ---------------------------------------------------

  std::uint64_t effectiveAddress(const Frame &frame, const MirInst &inst) {
    std::uint64_t addr =
        static_cast<std::uint64_t>(frame.regs[inst.base].i);
    if (inst.index != kNoVReg)
      addr += static_cast<std::uint64_t>(frame.regs[inst.index].i) *
              static_cast<std::uint64_t>(inst.scale);
    addr += static_cast<std::uint64_t>(static_cast<std::int64_t>(inst.disp));
    return addr;
  }

  /// Execute one MIR instruction; returns false to stop (error or done).
  bool step() {
    Frame &frame = frames_.back();
    const MirFunction &fn = *frame.fn->fn;

    // Fast-forward check at header entry.
    if (options_.fastForward && frame.inst == 0) {
      auto it = frame.fn->ffAtHeader.find(frame.block);
      if (it != frame.fn->ffAtHeader.end() && it->second.executable) {
        const FFInfo &info = it->second;
        const LoopDescriptor &loop = *info.loop;
        std::int64_t ind = frame.regs[loop.induction].i;
        std::int64_t limit = frame.regs[loop.limit].i;
        std::int64_t trips = 0;
        if (ind < limit)
          trips = (limit - ind + loop.step - 1) / loop.step;
        info.headerTakenCost.chargeInto(frame.counters,
                                        static_cast<std::uint64_t>(trips));
        info.headerExitCost.chargeInto(frame.counters, 1);
        info.bodyCost.chargeInto(frame.counters,
                                 static_cast<std::uint64_t>(trips));
        retired_ += info.headerTakenCost.total * trips +
                    info.headerExitCost.total +
                    info.bodyCost.total * trips;
        frame.regs[loop.induction].i = ind + trips * loop.step;
        frame.block = loop.exit;
        frame.inst = 0;
        return true;
      }
    }

    const MirBlock &block = fn.blocks[frame.block];
    if (frame.inst >= block.insts.size()) {
      // Block without terminator (unreachable continuation): treat as
      // function end for void functions.
      return popFrame(Value{});
    }
    const MirInst &inst = block.insts[frame.inst];
    const Cost *cost = &frame.fn->costs[frame.block][frame.inst];
    if (inst.op == MirOp::Branch && frame.regs[inst.a].i != 0)
      cost = &frame.fn->takenCosts[frame.block][frame.inst];
    cost->chargeInto(frame.counters);
    retired_ += cost->total;

    auto &regs = frame.regs;
    switch (inst.op) {
    case MirOp::Nop:
      break;
    case MirOp::ConstI:
      regs[inst.dst].i = inst.imm;
      break;
    case MirOp::ConstF:
      regs[inst.dst].f = inst.fimm;
      if (inst.packed)
        regs[inst.dst].f2 = inst.fimm;
      break;
    case MirOp::Copy:
      regs[inst.dst] = regs[inst.a];
      break;
    case MirOp::Add:
      regs[inst.dst].i = regs[inst.a].i + regs[inst.b].i;
      break;
    case MirOp::Sub:
      regs[inst.dst].i = regs[inst.a].i - regs[inst.b].i;
      break;
    case MirOp::Mul:
      regs[inst.dst].i = regs[inst.a].i * regs[inst.b].i;
      break;
    case MirOp::Div:
      if (regs[inst.b].i == 0) {
        error_ = "integer division by zero at line " +
                 std::to_string(inst.line);
        return false;
      }
      regs[inst.dst].i = regs[inst.a].i / regs[inst.b].i;
      break;
    case MirOp::Rem:
      if (regs[inst.b].i == 0) {
        error_ = "integer remainder by zero at line " +
                 std::to_string(inst.line);
        return false;
      }
      regs[inst.dst].i = regs[inst.a].i % regs[inst.b].i;
      break;
    case MirOp::Neg:
      regs[inst.dst].i = -regs[inst.a].i;
      break;
    case MirOp::IMin:
      regs[inst.dst].i = std::min(regs[inst.a].i, regs[inst.b].i);
      break;
    case MirOp::IMax:
      regs[inst.dst].i = std::max(regs[inst.a].i, regs[inst.b].i);
      break;
    case MirOp::And:
      regs[inst.dst].i = regs[inst.a].i & regs[inst.b].i;
      break;
    case MirOp::Or:
      regs[inst.dst].i = regs[inst.a].i | regs[inst.b].i;
      break;
    case MirOp::Xor:
      regs[inst.dst].i = regs[inst.a].i ^ regs[inst.b].i;
      break;
    case MirOp::Not:
      regs[inst.dst].i = ~regs[inst.a].i;
      break;
    case MirOp::Shl:
      regs[inst.dst].i = regs[inst.a].i << regs[inst.b].i;
      break;
    case MirOp::Shr:
      regs[inst.dst].i = regs[inst.a].i >> regs[inst.b].i;
      break;
    case MirOp::ICmp:
      regs[inst.dst].i =
          cmpEval(inst.cmp, false, regs[inst.a], regs[inst.b]) ? 1 : 0;
      break;
    case MirOp::FCmp:
      regs[inst.dst].i =
          cmpEval(inst.cmp, true, regs[inst.a], regs[inst.b]) ? 1 : 0;
      break;
    case MirOp::FAdd:
      regs[inst.dst].f = regs[inst.a].f + regs[inst.b].f;
      if (inst.packed)
        regs[inst.dst].f2 = regs[inst.a].f2 + regs[inst.b].f2;
      break;
    case MirOp::FSub:
      regs[inst.dst].f = regs[inst.a].f - regs[inst.b].f;
      if (inst.packed)
        regs[inst.dst].f2 = regs[inst.a].f2 - regs[inst.b].f2;
      break;
    case MirOp::FMul:
      regs[inst.dst].f = regs[inst.a].f * regs[inst.b].f;
      if (inst.packed)
        regs[inst.dst].f2 = regs[inst.a].f2 * regs[inst.b].f2;
      break;
    case MirOp::FDiv:
      regs[inst.dst].f = regs[inst.a].f / regs[inst.b].f;
      if (inst.packed)
        regs[inst.dst].f2 = regs[inst.a].f2 / regs[inst.b].f2;
      break;
    case MirOp::FNeg:
      regs[inst.dst].f = -regs[inst.a].f;
      if (inst.packed)
        regs[inst.dst].f2 = -regs[inst.a].f2;
      break;
    case MirOp::FSqrt:
      regs[inst.dst].f = std::sqrt(regs[inst.a].f);
      if (inst.packed)
        regs[inst.dst].f2 = std::sqrt(regs[inst.a].f2);
      break;
    case MirOp::FAbs:
      regs[inst.dst].f = std::fabs(regs[inst.a].f);
      break;
    case MirOp::FMin:
      regs[inst.dst].f = std::min(regs[inst.a].f, regs[inst.b].f);
      if (inst.packed)
        regs[inst.dst].f2 = std::min(regs[inst.a].f2, regs[inst.b].f2);
      break;
    case MirOp::FMax:
      regs[inst.dst].f = std::max(regs[inst.a].f, regs[inst.b].f);
      if (inst.packed)
        regs[inst.dst].f2 = std::max(regs[inst.a].f2, regs[inst.b].f2);
      break;
    case MirOp::FHAdd:
      regs[inst.dst].f = regs[inst.a].f + regs[inst.a].f2;
      break;
    case MirOp::FSplat:
      regs[inst.dst].f = regs[inst.a].f;
      regs[inst.dst].f2 = regs[inst.a].f;
      break;
    case MirOp::Load: {
      std::uint64_t addr = effectiveAddress(frame, inst);
      if (inst.packed) {
        if (!loadMem(addr, regs[inst.dst].f) ||
            !loadMem(addr + 8, regs[inst.dst].f2))
          return false;
      } else if (inst.type == MirType::F64) {
        if (!loadMem(addr, regs[inst.dst].f))
          return false;
      } else if (inst.type == MirType::F32) {
        float v = 0;
        if (!loadMem(addr, v))
          return false;
        regs[inst.dst].f = v;
      } else {
        if (!loadMem(addr, regs[inst.dst].i))
          return false;
      }
      break;
    }
    case MirOp::Store: {
      std::uint64_t addr = effectiveAddress(frame, inst);
      if (inst.packed) {
        if (!storeMem(addr, regs[inst.a].f) ||
            !storeMem(addr + 8, regs[inst.a].f2))
          return false;
      } else if (inst.type == MirType::F64) {
        if (!storeMem(addr, regs[inst.a].f))
          return false;
      } else if (inst.type == MirType::F32) {
        if (!storeMem(addr, static_cast<float>(regs[inst.a].f)))
          return false;
      } else {
        if (!storeMem(addr, regs[inst.a].i))
          return false;
      }
      break;
    }
    case MirOp::Lea:
      regs[inst.dst].i =
          static_cast<std::int64_t>(effectiveAddress(frame, inst));
      break;
    case MirOp::Alloca: {
      std::uint64_t bytes = static_cast<std::uint64_t>(regs[inst.a].i) *
                            static_cast<std::uint64_t>(inst.imm);
      if (bytes > (1ull << 33)) {
        error_ = "allocation too large: " + std::to_string(bytes);
        return false;
      }
      regs[inst.dst].i = static_cast<std::int64_t>(allocate(bytes));
      break;
    }
    case MirOp::Cast: {
      bool fromFP =
          inst.fromType == MirType::F64 || inst.fromType == MirType::F32;
      bool toFP = inst.type == MirType::F64 || inst.type == MirType::F32;
      if (!fromFP && toFP)
        regs[inst.dst].f = static_cast<double>(regs[inst.a].i);
      else if (fromFP && !toFP)
        regs[inst.dst].i = static_cast<std::int64_t>(regs[inst.a].f);
      else if (fromFP && toFP)
        regs[inst.dst].f = inst.type == MirType::F32
                               ? static_cast<float>(regs[inst.a].f)
                               : regs[inst.a].f;
      else
        regs[inst.dst].i = regs[inst.a].i;
      break;
    }
    case MirOp::Jump:
      frame.block = inst.target;
      frame.inst = 0;
      return true;
    case MirOp::Branch:
      frame.block = regs[inst.a].i != 0 ? inst.target : inst.targetFalse;
      frame.inst = 0;
      return true;
    case MirOp::Ret: {
      Value result{};
      if (inst.a != kNoVReg)
        result = regs[inst.a];
      return popFrame(result);
    }
    case MirOp::Call:
      return doCall(frame, inst);
    }

    ++frame.inst;
    if (frame.inst >= block.insts.size() && !block.terminator()) {
      // fall off a block with no terminator (only possible for the
      // synthetic unreachable continuation blocks): stop the function.
      return popFrame(Value{});
    }
    return true;
  }

  bool doCall(Frame &frame, const MirInst &inst) {
    ++frame.inst; // resume after the call
    if (inst.externCall) {
      Cost cost;
      for (const auto &[op, n] : externCallCost(inst.callee))
        cost.addOpcode(op, n);
      cost.chargeInto(frame.counters);
      retired_ += cost.total;
      Value result{};
      if (inst.callee == "mc_clock") {
        result.f = static_cast<double>(retired_) * 1e-9;
      } else if (inst.callee == "mc_rand") {
        rngState_ = rngState_ * 6364136223846793005ull + 1442695040888963407ull;
        result.f =
            static_cast<double>((rngState_ >> 11) & ((1ull << 53) - 1)) /
            static_cast<double>(1ull << 53);
      } else if (inst.callee == "mc_print") {
        printed_.push_back(frame.regs[inst.args[0]].f);
      } else if (inst.callee == "mc_print_int") {
        printed_.push_back(static_cast<double>(frame.regs[inst.args[0]].i));
      }
      if (inst.dst != kNoVReg)
        frame.regs[inst.dst] = result;
      return true;
    }

    const FnExec *callee = findPlan(inst.callee);
    if (!callee) {
      error_ = "call to unknown function '" + inst.callee + "'";
      return false;
    }
    std::vector<Value> args;
    args.reserve(inst.args.size());
    for (VReg r : inst.args)
      args.push_back(frame.regs[r]);

    Frame next;
    next.resultDst = inst.dst;
    enterFunction(next, callee, args);
    frames_.push_back(std::move(next));
    return true;
  }

  bool popFrame(const Value &result) {
    Frame finished = std::move(frames_.back());
    frames_.pop_back();
    bump_ = finished.allocaMark;

    FunctionProfile &profile = profiles_[finished.fn->fn->name];
    profile.calls += 1;
    profile.inclusive.add(finished.counters);

    if (frames_.empty()) {
      totalCounters_.add(finished.counters);
      returnValue_ = result;
      return false; // done
    }
    Frame &parent = frames_.back();
    parent.counters.add(finished.counters);
    if (finished.resultDst != kNoVReg)
      parent.regs[finished.resultDst] = result;
    return true;
  }

  const mir::MirModule &module_;
  SimOptions options_;
  std::vector<FnExec> plans_;
  std::vector<Frame> frames_;
  std::vector<std::uint8_t> memory_;
  std::uint64_t bump_ = 16;
  std::uint64_t retired_ = 0;
  std::uint64_t rngState_ = 0x9E3779B97F4A7C15ull;
  std::string error_;
  Counters totalCounters_;
  std::map<std::string, FunctionProfile> profiles_;
  std::vector<double> printed_;
  Value returnValue_;
};

} // namespace

Simulator::Simulator(const mir::MirModule &module,
                     const std::vector<codegen::CodegenResult> &codegen)
    : module_(module), codegen_(codegen) {}

SimResult Simulator::run(const std::string &function,
                         const std::vector<Value> &args,
                         const SimOptions &options) {
  Machine machine(module_, codegen_, options);
  return machine.run(function, args);
}

} // namespace mira::sim
