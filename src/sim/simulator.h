// Dynamic simulator: the reproduction's stand-in for TAU + PAPI.
//
// Executes the MIR semantically and, for every MIR instruction retired,
// charges the machine instructions codegen emitted for it (the expansion
// map). Counters therefore reflect exactly the binary the static analyzer
// reads — the relationship between a real binary and the retired-
// instruction counters PAPI exposes. Counts are per-function *inclusive*
// (callees and opaque library calls included), matching instrumentation-
// based measurement (paper Sec. IV: "measured values capture samples based
// on all instructions, including those in external library function
// calls").
//
// Fast-forward mode: loops annotated '#pragma @Simulate {ff:yes}' whose
// bodies are straight-line are charged analytically (trip count computed
// from live register values) instead of iterated; memory side effects of
// the skipped iterations are dropped, which the annotation asserts cannot
// influence later control flow. Tests verify fast-forward == exact counts
// on every workload at small sizes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "codegen/codegen.h"
#include "isa/categories.h"
#include "mir/mir.h"

namespace mira::sim {

struct SimOptions {
  bool fastForward = false;
  /// Abort when more than this many machine instructions retire
  /// (protects tests against runaway loops).
  std::uint64_t maxInstructions = 1ull << 62;
};

struct Counters {
  isa::CategoryArray<std::uint64_t> categories{};
  std::uint64_t totalInstructions = 0;
  std::uint64_t fpInstructions = 0; // PAPI_FP_INS analogue
  std::uint64_t flops = 0;          // PAPI_FP_OPS analogue (packed = 2)

  void add(const Counters &other);
};

struct FunctionProfile {
  std::uint64_t calls = 0;
  Counters inclusive;
};

/// Argument / return values for simulated functions (scalars only; MiniC
/// workloads allocate their arrays internally).
struct Value {
  std::int64_t i = 0;
  double f = 0;
  double f2 = 0; // second SSE2 lane

  static Value ofInt(std::int64_t v) { return Value{v, 0, 0}; }
  static Value ofDouble(double v) { return Value{0, v, 0}; }
};

struct SimResult {
  bool ok = false;
  std::string error;
  Value returnValue;
  Counters total;
  std::map<std::string, FunctionProfile> functions;
  std::vector<double> printed; // values passed to mc_print/mc_print_int

  double fpiOf(const std::string &fn) const;
  double fpiPerCall(const std::string &fn) const;
};

class Simulator {
public:
  /// `codegen[i]` must correspond to `module.functions[i]`.
  Simulator(const mir::MirModule &module,
            const std::vector<codegen::CodegenResult> &codegen);

  SimResult run(const std::string &function, const std::vector<Value> &args,
                const SimOptions &options = {});

private:
  struct Impl;
  const mir::MirModule &module_;
  const std::vector<codegen::CodegenResult> &codegen_;
};

/// Synthetic retired-instruction cost of an opaque library call — the
/// residual the static model cannot see (paper's stated error source).
/// Returns opcode counts so categories stay consistent.
const std::map<isa::Opcode, std::uint32_t> &externCallCost(
    const std::string &name);

} // namespace mira::sim
