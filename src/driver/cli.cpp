// mira-cli: command-line front door to the analysis pipeline.
//
//   mira-cli analyze <file.mc | @workload> [--no-optimize] [--no-vectorize]
//            [--emit-python]
//       Run the full pipeline on one source, print a model summary.
//
//   mira-cli batch <files/@workloads...> [--threads N] [--no-cache]
//            [--compare-serial]
//       Fan many sources across the thread pool; per-source status table,
//       cache statistics, and (with --compare-serial) the wall-clock
//       speedup against a 1-thread run.
//
//   mira-cli coverage [--threads N] [--compare-serial]
//       Drive the ten Table I kernels plus the fig-series workloads
//       through the batch engine; print loop-coverage numbers next to the
//       paper's and the parallel speedup.
//
// '@name' pulls an embedded workload (stream, dgemm, minife, fig5,
// listings) instead of reading a file.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/batch.h"
#include "model/python_emitter.h"
#include "sema/ast_stats.h"
#include "workloads/coverage_suite.h"
#include "workloads/workloads.h"

namespace {

using namespace mira;

int usage(const char *argv0) {
  std::fprintf(
      stderr,
      "usage: %s <analyze|batch|coverage> [args]\n"
      "  analyze <file.mc|@workload> [--no-optimize] [--no-vectorize]\n"
      "          [--emit-python]\n"
      "  batch <files/@workloads...> [--threads N] [--no-cache]\n"
      "          [--compare-serial]\n"
      "  coverage [--threads N] [--compare-serial]\n"
      "workloads: @stream @dgemm @minife @fig5 @listings\n",
      argv0);
  return 2;
}

const std::string *embeddedWorkload(const std::string &name) {
  for (const auto &workload : workloads::figSeriesWorkloads())
    if (workload.name == name)
      return workload.source;
  return nullptr;
}

/// Resolve a CLI source argument: '@name' -> embedded workload, anything
/// else -> file contents. Returns false (with a message) on failure.
bool loadSource(const std::string &arg, driver::AnalysisRequest &request) {
  if (!arg.empty() && arg[0] == '@') {
    const std::string *source = embeddedWorkload(arg.substr(1));
    if (!source) {
      std::fprintf(stderr, "unknown workload '%s'\n", arg.c_str());
      return false;
    }
    request.name = arg;
    request.source = *source;
    return true;
  }
  std::ifstream in(arg);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", arg.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  request.name = arg;
  request.source = buffer.str();
  return true;
}

void printModelSummary(const core::AnalysisResult &analysis) {
  std::printf("%-24s | %6s | %6s | %5s | parameters\n", "function", "counts",
              "calls", "exact");
  for (const auto &fn : analysis.model.functions) {
    std::string params;
    for (const auto &p : fn.parameters()) {
      if (!params.empty())
        params += ", ";
      params += p;
    }
    std::printf("%-24s | %6zu | %6zu | %5s | %s\n", fn.sourceName.c_str(),
                fn.counts.size(), fn.calls.size(), fn.exact ? "yes" : "no",
                params.c_str());
  }
}

struct CommonFlags {
  std::size_t threads = ThreadPool::defaultThreadCount();
  bool useCache = true;
  bool compareSerial = false;
  bool optimize = true;
  bool vectorize = true;
  bool emitPython = false;
};

/// Consume recognized flags from args (in place); leave positionals.
bool parseFlags(std::vector<std::string> &args, CommonFlags &flags) {
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string &a = args[i];
    if (a == "--threads") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--threads requires a value\n");
        return false;
      }
      flags.threads = static_cast<std::size_t>(
          std::max(1L, std::atol(args[++i].c_str())));
    } else if (a == "--no-cache") {
      flags.useCache = false;
    } else if (a == "--compare-serial") {
      flags.compareSerial = true;
    } else if (a == "--no-optimize") {
      flags.optimize = false;
    } else if (a == "--no-vectorize") {
      flags.vectorize = false;
    } else if (a == "--emit-python") {
      flags.emitPython = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      return false;
    } else {
      positional.push_back(a);
    }
  }
  args = std::move(positional);
  return true;
}

core::MiraOptions optionsFor(const CommonFlags &flags) {
  core::MiraOptions options;
  options.compile.compiler.optimize = flags.optimize;
  options.compile.compiler.vectorize = flags.vectorize;
  return options;
}

/// Print the per-source status table and batch totals; returns the batch
/// wall time (negative on any failure).
double printOutcomes(const std::vector<driver::AnalysisOutcome> &outcomes,
                     const driver::BatchStats &stats, std::size_t threads,
                     bool quiet) {
  bool allOk = true;
  if (!quiet)
    std::printf("%-24s | %-6s | %-5s | %9s\n", "source", "status", "cache",
                "seconds");
  for (const auto &outcome : outcomes) {
    allOk = allOk && outcome.ok;
    if (quiet)
      continue;
    std::printf("%-24s | %-6s | %-5s | %9.4f\n", outcome.name.c_str(),
                outcome.ok ? "ok" : "FAILED",
                outcome.cacheHit ? "hit" : "miss", outcome.seconds);
    if (!outcome.ok)
      std::fprintf(stderr, "%s\n", outcome.diagnostics.c_str());
  }
  if (!quiet)
    std::printf("%zu sources, %zu failures, cache %zu hit / %zu miss, "
                "%.4f s on %zu threads\n",
                stats.requests, stats.failures, stats.cacheHits,
                stats.cacheMisses, stats.wallSeconds, threads);
  return allOk ? stats.wallSeconds : -1.0;
}

/// Run the requests through a fresh analyzer and print the table.
double runBatch(const std::vector<driver::AnalysisRequest> &requests,
                std::size_t threads, bool useCache, bool quiet) {
  driver::BatchOptions batchOptions;
  batchOptions.threads = threads;
  batchOptions.useCache = useCache;
  driver::BatchAnalyzer analyzer(batchOptions);
  auto outcomes = analyzer.run(requests);
  return printOutcomes(outcomes, analyzer.stats(), threads, quiet);
}

void printSpeedup(double serialSeconds, double parallelSeconds,
                  std::size_t threads) {
  if (serialSeconds <= 0 || parallelSeconds <= 0)
    return;
  std::printf("serial %.4f s -> parallel %.4f s on %zu threads: %.2fx "
              "speedup\n",
              serialSeconds, parallelSeconds, threads,
              serialSeconds / parallelSeconds);
}

int cmdAnalyze(std::vector<std::string> args) {
  CommonFlags flags;
  if (!parseFlags(args, flags) || args.size() != 1)
    return 2;
  driver::AnalysisRequest request;
  if (!loadSource(args[0], request))
    return 1;
  request.options = optionsFor(flags);

  driver::BatchAnalyzer analyzer(driver::BatchOptions{1, false});
  auto outcomes = analyzer.run({request});
  const auto &outcome = outcomes[0];
  if (!outcome.ok) {
    std::fprintf(stderr, "analysis of %s failed:\n%s\n",
                 outcome.name.c_str(), outcome.diagnostics.c_str());
    return 1;
  }
  if (!outcome.diagnostics.empty())
    std::fprintf(stderr, "%s\n", outcome.diagnostics.c_str());
  std::printf("analyzed %s in %.4f s\n", outcome.name.c_str(),
              outcome.seconds);
  printModelSummary(*outcome.analysis);
  if (flags.emitPython) {
    std::puts("");
    std::puts(model::emitPython(outcome.analysis->model).c_str());
  }
  return 0;
}

int cmdBatch(std::vector<std::string> args) {
  CommonFlags flags;
  if (!parseFlags(args, flags) || args.empty())
    return 2;
  std::vector<driver::AnalysisRequest> requests;
  for (const auto &arg : args) {
    driver::AnalysisRequest request;
    if (!loadSource(arg, request))
      return 1;
    request.options = optionsFor(flags);
    requests.push_back(std::move(request));
  }

  double parallelSeconds =
      runBatch(requests, flags.threads, flags.useCache, false);
  if (flags.compareSerial) {
    double serialSeconds = runBatch(requests, 1, flags.useCache, true);
    printSpeedup(serialSeconds, parallelSeconds, flags.threads);
  }
  return parallelSeconds < 0 ? 1 : 0;
}

std::vector<driver::AnalysisRequest> coverageRequests() {
  std::vector<driver::AnalysisRequest> requests;
  for (const auto &kernel : workloads::coverageSuite()) {
    driver::AnalysisRequest request;
    request.name = kernel.name;
    request.source = kernel.source;
    requests.push_back(std::move(request));
  }
  for (const auto &workload : workloads::figSeriesWorkloads()) {
    driver::AnalysisRequest request;
    request.name = "@" + workload.name;
    request.source = *workload.source;
    requests.push_back(std::move(request));
  }
  return requests;
}

int cmdCoverage(std::vector<std::string> args) {
  CommonFlags flags;
  if (!parseFlags(args, flags) || !args.empty())
    return 2;

  // One batch analysis serves both the Table I numbers and the status
  // table below.
  auto requests = coverageRequests();
  driver::BatchOptions batchOptions;
  batchOptions.threads = flags.threads;
  batchOptions.useCache = flags.useCache;
  driver::BatchAnalyzer analyzer(batchOptions);
  auto outcomes = analyzer.run(requests);

  // Table I numbers from the analyzed ASTs (paper columns alongside).
  std::printf("%-10s | %14s | %14s | %14s | %9s\n", "app",
              "loops p/o", "stmts p/o", "in-loop p/o", "pct p/o");
  const auto &suite = workloads::coverageSuite();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto &kernel = suite[i];
    if (!outcomes[i].ok) {
      std::printf("%-10s | analysis FAILED\n", kernel.name.c_str());
      continue;
    }
    auto coverage = sema::computeLoopCoverage(
        *outcomes[i].analysis->program->unit);
    std::printf("%-10s | %6zu/%-7zu | %6zu/%-7zu | %6zu/%-7zu | %3d/%-5.0f\n",
                kernel.name.c_str(), kernel.paperLoops, coverage.loops,
                kernel.paperStatements, coverage.statements,
                kernel.paperInLoop, coverage.inLoopStatements,
                kernel.paperPercent, coverage.percent());
  }
  std::printf("\n");

  double parallelSeconds =
      printOutcomes(outcomes, analyzer.stats(), flags.threads, false);
  if (flags.compareSerial) {
    double serialSeconds = runBatch(requests, 1, flags.useCache, true);
    printSpeedup(serialSeconds, parallelSeconds, flags.threads);
  }
  return parallelSeconds < 0 ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage(argv[0]);
  std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  int result = 2;
  if (command == "analyze")
    result = cmdAnalyze(std::move(args));
  else if (command == "batch")
    result = cmdBatch(std::move(args));
  else if (command == "coverage")
    result = cmdCoverage(std::move(args));
  return result == 2 ? usage(argv[0]) : result;
}
