// mira-cli: command-line front door to the analysis pipeline.
//
//   mira-cli analyze <file.mc | @workload> [--no-optimize] [--no-vectorize]
//            [--emit-python] [--model-threads N] [--cache-dir DIR]
//       Run the full pipeline on one source, print a model summary.
//
//   mira-cli batch <files/@workloads...> [--threads N] [--no-cache]
//            [--compare-serial] [--model-threads N]
//            [--cache-dir DIR] [--cache-limit BYTES]
//            [--manifest FILE [--since OLD] [--shard I/N] [--root DIR]]
//            [--report FILE]
//       Fan many sources across the thread pool; per-source status table,
//       cache statistics, and (with --compare-serial) the wall-clock
//       speedup against a 1-thread run. With --cache-dir, results persist
//       on disk and a rerun over an unchanged corpus recomputes nothing.
//       With --manifest the request list comes from a corpus manifest
//       instead of the command line: --since OLD analyzes only entries
//       added or changed since an older manifest, and --shard I/N keeps
//       only this process's deterministic share of the keys so N
//       processes over one --cache-dir behave like one warm batch.
//       --report writes a deterministic per-entry report for
//       `manifest merge`.
//
//   mira-cli manifest <build|diff|merge> ...
//       build <dir> --out FILE [--ext .mc]...  walk a workload tree into
//           a content-addressed manifest (docs/MANIFESTS.md);
//       diff OLD NEW  report added/changed/removed entries (exit 0 when
//           identical, 1 when they differ, 2 on trouble);
//       merge --out FILE <reports...>  fold per-shard batch reports into
//           the single report a 1-process run would have written.
//
//   mira-cli coverage [--threads N] [--compare-serial] [--cache-dir DIR]
//            [--via-daemon --socket PATH]
//       Drive the ten Table I kernels plus the fig-series workloads
//       through the artifact engine; print loop-coverage numbers next to
//       the paper's. With --cache-dir a warm run answers entirely from
//       the schema-v2 coverage summaries (zero recompiles, shown in the
//       stats line); --via-daemon asks a running daemon instead.
//
//   mira-cli simulate <file.mc|@workload> --function NAME [--sim-arg V]...
//            [--fast-forward] [--max-instructions N] [--cache-dir DIR]
//            [--via-daemon --socket PATH]
//       Run the dynamic simulator (the TAU/PAPI stand-in) on one source.
//       With a warm cache or daemon the model is never regenerated: the
//       binary comes back through a recompile-on-demand handle
//       (parse->codegen only), flagged in the output.
//
//   mira-cli cache <stats|clear|prune> --cache-dir DIR [--schema vN]
//            [--manifest FILE]...
//       Inspect or empty a persistent analysis cache directory. stats
//       breaks bytes down per artifact (model vs coverage vs
//       diagnostics); clear --schema v1 purges only pre-migration
//       entries; prune removes entries no given manifest's sources can
//       produce (union over manifests and all option-flag combos).
//
//   mira-cli serve [--socket PATH] [--listen HOST:PORT] [--secret S]
//            [--threads N] [--model-threads N]
//            [--cache-dir DIR] [--cache-limit BYTES] [--max-inflight N]
//            [--drain-timeout SECONDS] [--metrics-file PATH]
//       Long-lived analysis daemon on a Unix-domain socket and/or a TCP
//       endpoint (--listen, port 0 = kernel-assigned, printed in the
//       readiness line): the in-memory cache stays hot across requests,
//       so repeat analyses cost one socket round-trip instead of a
//       process start plus a cold pipeline. --secret demands a
//       shared-secret Hello handshake before any request is served (a
//       stray port scan triggers no compute). Connections are pipelined
//       (replies in request order); --max-inflight bounds concurrent
//       analyses (excess gets a Busy reply, not an unbounded queue);
//       --metrics-file keeps a Prometheus-style dump fresh on disk.
//       Stops on SIGINT/SIGTERM or a client shutdown, draining
//       in-flight work for up to --drain-timeout seconds.
//
//   mira-cli client <analyze|batch|coverage|simulate|manifest-diff|
//            cache-stats|metrics|ping|shutdown>
//            (--socket PATH | --connect HOST:PORT) [sources...]
//            [--secret S] [--connect-timeout SECONDS]
//            [--no-optimize] [--no-vectorize]
//            [--emit-python] [--wire-version N] [--busy-retries N]
//       Talk to a running daemon over the wire protocol
//       (docs/PROTOCOL.md). --wire-version 1 speaks the v1 dialect
//       (compatibility checks); coverage/simulate/manifest-diff/metrics
//       and batch --manifest need v2. Busy refusals are retried with
//       the daemon's backoff hint up to --busy-retries times.
//       `client batch --manifest FILE [--since OLD] [--shard I/N]
//       [--root DIR] [--report FILE] [--progress]` executes a whole
//       corpus on the daemon: report and cache directory come out
//       byte-identical to the local `batch --manifest` run, and
//       --progress streams per-chunk progress lines to stderr.
//       Failure diagnostics are uniform: one `mira-cli client: ...`
//       line on stderr, exit 3 when no daemon answered the socket,
//       exit 4 when the connection died mid-conversation, exit 1 when
//       the daemon or the analysis failed.
//
//   mira-cli coordinate --manifest FILE --workers host:port[,...]
//            [--shard-count N] [--since OLD] [--root DIR] [--report FILE]
//            [--lease-timeout SECONDS] [--connect-timeout SECONDS]
//            [--secret S] [--metrics-file PATH] [--progress]
//       Drive a corpus manifest across a fleet of TCP worker daemons
//       (docs/FLEET.md): shards are handed out as epoch-stamped leases
//       over the ManifestBatch request, progress frames double as
//       heartbeats, a dead or stalled worker's lease is re-issued under
//       a bumped epoch (stale replies are fenced), and the per-shard
//       reports merge into bytes identical to a 1-process local `batch
//       --manifest` run. Exit codes follow the client contract: 0 ok,
//       1 daemon/analysis failure, 3 no worker reachable, 4 the fleet
//       died mid-run.
//
// '@name' pulls an embedded workload (stream, dgemm, minife, fig5,
// listings) instead of reading a file. See docs/CLI.md for a full tour,
// docs/CACHING.md for the on-disk format, and docs/SERVING.md for the
// daemon operator guide.
#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "corpus/manifest.h"
#include "driver/batch.h"
#include "fleet/coordinator.h"
#include "model/python_emitter.h"
#include "support/binary_io.h"
#include "server/client.h"
#include "server/server.h"
#include "support/socket.h"
#include "support/cache_store.h"
#include "support/string_utils.h"
#include "sema/ast_stats.h"
#include "workloads/coverage_suite.h"
#include "workloads/workloads.h"

namespace {

using namespace mira;

int usage(const char *argv0) {
  std::fprintf(
      stderr,
      "usage: %s <analyze|batch|coverage|simulate|manifest|cache|serve|"
      "client|coordinate> [args]\n"
      "  analyze <file.mc|@workload> [--no-optimize] [--no-vectorize]\n"
      "          [--emit-python] [--model-threads N] [--cache-dir DIR]\n"
      "  batch <files/@workloads...> [--threads N] [--no-cache]\n"
      "          [--compare-serial] [--model-threads N]\n"
      "          [--cache-dir DIR] [--cache-limit BYTES]\n"
      "          [--manifest FILE [--since OLD] [--shard I/N] [--root DIR]]\n"
      "          [--report FILE]\n"
      "  coverage [--threads N] [--compare-serial] [--cache-dir DIR]\n"
      "          [--via-daemon --socket PATH]\n"
      "  simulate <file.mc|@workload> --function NAME [--sim-arg V]...\n"
      "          [--fast-forward] [--max-instructions N] [--cache-dir DIR]\n"
      "          [--via-daemon --socket PATH]\n"
      "  manifest build <dir> --out FILE [--ext .mc]...\n"
      "  manifest diff <old.manifest> <new.manifest>\n"
      "  manifest merge --out FILE <reports...>\n"
      "  cache <stats|clear|prune> --cache-dir DIR [--schema vN]\n"
      "          [--manifest FILE]...\n"
      "  serve [--socket PATH] [--listen HOST:PORT] [--secret S]\n"
      "          [--threads N] [--model-threads N]\n"
      "          [--cache-dir DIR] [--cache-limit BYTES] [--max-inflight N]\n"
      "          [--drain-timeout SECONDS] [--metrics-file PATH]\n"
      "  client <analyze|batch|coverage|simulate|manifest-diff|cache-stats|\n"
      "          metrics|ping|shutdown> (--socket PATH | --connect HOST:PORT)\n"
      "          [sources...] [--secret S] [--connect-timeout SECONDS]\n"
      "          [--no-optimize] [--no-vectorize] [--emit-python]\n"
      "          [--wire-version N] [--busy-retries N]\n"
      "          [--function NAME] [--sim-arg V] [--fast-forward]\n"
      "  client batch --manifest FILE [--since OLD] [--shard I/N]\n"
      "          [--root DIR] [--report FILE] [--progress] --socket PATH\n"
      "  coordinate --manifest FILE --workers host:port[,host:port...]\n"
      "          [--shard-count N] [--since OLD] [--root DIR] [--report FILE]\n"
      "          [--lease-timeout SECONDS] [--connect-timeout SECONDS]\n"
      "          [--secret S] [--metrics-file PATH] [--progress]\n"
      "          [--no-optimize] [--no-vectorize]\n"
      "workloads: @stream @dgemm @minife @fig5 @listings\n"
      "--cache-limit accepts plain bytes or a K/M/G suffix (e.g. 64M)\n"
      "--sim-arg parses integers (8) and doubles (2.5) positionally\n"
      "--shard I/N is 1-based: processes 1/N .. N/N partition a manifest\n",
      argv0);
  return 2;
}

/// Sentinel a command returns to exit with status 2 ("trouble", the
/// diff/cmp convention) *without* the usage dump main() prints for
/// ordinary argument errors — the command already printed a specific
/// message.
constexpr int kExitTrouble = -3;

const std::string *embeddedWorkload(const std::string &name) {
  for (const auto &workload : workloads::figSeriesWorkloads())
    if (workload.name == name)
      return workload.source;
  return nullptr;
}

/// Resolve a CLI source argument: '@name' -> embedded workload, anything
/// else -> file contents. Returns false (with a message) on failure.
bool loadSource(const std::string &arg, driver::AnalysisRequest &request) {
  if (!arg.empty() && arg[0] == '@') {
    const std::string *source = embeddedWorkload(arg.substr(1));
    if (!source) {
      std::fprintf(stderr, "unknown workload '%s'\n", arg.c_str());
      return false;
    }
    request.name = arg;
    request.source = *source;
    return true;
  }
  std::ifstream in(arg);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", arg.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  request.name = arg;
  request.source = buffer.str();
  return true;
}

void printModelSummary(const core::AnalysisResult &analysis) {
  std::printf("%-24s | %6s | %6s | %5s | parameters\n", "function", "counts",
              "calls", "exact");
  for (const auto &fn : analysis.model.functions) {
    std::string params;
    for (const auto &p : fn.parameters()) {
      if (!params.empty())
        params += ", ";
      params += p;
    }
    std::printf("%-24s | %6zu | %6zu | %5s | %s\n", fn.sourceName.c_str(),
                fn.counts.size(), fn.calls.size(), fn.exact ? "yes" : "no",
                params.c_str());
  }
}

struct CommonFlags {
  std::size_t threads = ThreadPool::defaultThreadCount();
  bool useCache = true;
  bool compareSerial = false;
  bool optimize = true;
  bool vectorize = true;
  bool emitPython = false;
  std::size_t modelThreads = 1;
  std::string cacheDir;
  std::uint64_t cacheBytesLimit = 0;
  std::string socketPath;
  bool viaDaemon = false;       ///< serve coverage/simulate over the wire
  std::uint32_t wireVersion = server::kProtocolVersion;
  std::size_t maxInflight = 0;  ///< serve --max-inflight (0 = unlimited)
  double drainTimeoutSeconds = 5.0; ///< serve --drain-timeout
  std::string metricsFile;      ///< serve --metrics-file
  std::size_t busyRetries = 8;  ///< client --busy-retries
  std::string schema;           ///< `cache clear --schema vN` selector
  core::SimulationArgs sim;     ///< --function / --sim-arg / --fast-forward
  std::string outPath;          ///< `manifest build/merge --out`
  std::vector<std::string> extensions; ///< `manifest build --ext` (repeatable)
  /// batch --manifest (exactly one) / cache prune --manifest
  /// (repeatable: the keep-set is the union).
  std::vector<std::string> manifestPaths;
  std::string sincePath;        ///< batch --since (older manifest)
  std::string rootOverride;     ///< batch --root (resolve base override)
  std::string reportPath;       ///< batch --report (deterministic report)
  driver::ShardSpec shard;      ///< batch --shard I/N (default: unsharded)
  bool shardGiven = false;      ///< --shard appeared (even as 1/1)
  bool progress = false;        ///< client batch --progress (stream frames)
  std::string listenSpec;       ///< serve --listen HOST:PORT (TCP endpoint)
  std::string connectSpec;      ///< client --connect HOST:PORT (TCP daemon)
  std::string secret;           ///< shared-secret handshake (both sides)
  std::string workersSpec;      ///< coordinate --workers h:p,... (repeatable)
  std::size_t shardCount = 0;   ///< coordinate --shard-count (0 = #workers)
  double leaseTimeoutSeconds = 10.0;  ///< coordinate --lease-timeout
  double connectTimeoutSeconds = 5.0; ///< TCP connect bound (client too)
};

/// Parse "1048576", "64K", "64M", "2G" into bytes; false on junk or on
/// values that would overflow 64 bits (a silently wrapped limit would
/// evict a cache the user asked to be effectively unlimited).
bool parseByteSize(const std::string &text, std::uint64_t &bytes) {
  if (text.empty())
    return false;
  std::uint64_t multiplier = 1;
  std::string digits = text;
  switch (digits.back()) {
  case 'K':
  case 'k':
    multiplier = 1024ull;
    digits.pop_back();
    break;
  case 'M':
  case 'm':
    multiplier = 1024ull * 1024;
    digits.pop_back();
    break;
  case 'G':
  case 'g':
    multiplier = 1024ull * 1024 * 1024;
    digits.pop_back();
    break;
  default:
    break;
  }
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  const unsigned long long parsed = std::strtoull(digits.c_str(), nullptr, 10);
  if (errno == ERANGE ||
      parsed > std::numeric_limits<std::uint64_t>::max() / multiplier)
    return false;
  bytes = parsed * multiplier;
  return true;
}

/// Consume recognized flags from args (in place); leave positionals.
bool parseFlags(std::vector<std::string> &args, CommonFlags &flags) {
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string &a = args[i];
    if (a == "--threads") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--threads requires a value\n");
        return false;
      }
      flags.threads = static_cast<std::size_t>(
          std::max(1L, std::atol(args[++i].c_str())));
    } else if (a == "--model-threads") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--model-threads requires a value\n");
        return false;
      }
      flags.modelThreads = static_cast<std::size_t>(
          std::max(1L, std::atol(args[++i].c_str())));
    } else if (a == "--cache-dir") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--cache-dir requires a value\n");
        return false;
      }
      flags.cacheDir = args[++i];
    } else if (a == "--socket") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--socket requires a value\n");
        return false;
      }
      flags.socketPath = args[++i];
    } else if (a == "--cache-limit") {
      if (i + 1 == args.size() ||
          !parseByteSize(args[i + 1], flags.cacheBytesLimit)) {
        std::fprintf(stderr,
                     "--cache-limit requires a byte size (e.g. 64M)\n");
        return false;
      }
      ++i;
    } else if (a == "--out") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--out requires a path\n");
        return false;
      }
      flags.outPath = args[++i];
    } else if (a == "--ext") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--ext requires an extension (e.g. .mc)\n");
        return false;
      }
      flags.extensions.push_back(args[++i]);
    } else if (a == "--manifest") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--manifest requires a path\n");
        return false;
      }
      flags.manifestPaths.push_back(args[++i]);
    } else if (a == "--since") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--since requires a manifest path\n");
        return false;
      }
      flags.sincePath = args[++i];
    } else if (a == "--root") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--root requires a directory\n");
        return false;
      }
      flags.rootOverride = args[++i];
    } else if (a == "--report") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--report requires a path\n");
        return false;
      }
      flags.reportPath = args[++i];
    } else if (a == "--shard") {
      if (i + 1 == args.size() ||
          !driver::parseShardSpec(args[i + 1], flags.shard)) {
        std::fprintf(stderr, "--shard requires I/N with 1 <= I <= N\n");
        return false;
      }
      flags.shardGiven = true;
      ++i;
    } else if (a == "--schema") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--schema requires a value (e.g. v1)\n");
        return false;
      }
      flags.schema = args[++i];
    } else if (a == "--max-inflight") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--max-inflight requires a value\n");
        return false;
      }
      flags.maxInflight = static_cast<std::size_t>(
          std::max(0L, std::atol(args[++i].c_str())));
    } else if (a == "--drain-timeout") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--drain-timeout requires seconds\n");
        return false;
      }
      flags.drainTimeoutSeconds = std::max(0.0, std::atof(args[++i].c_str()));
    } else if (a == "--metrics-file") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--metrics-file requires a path\n");
        return false;
      }
      flags.metricsFile = args[++i];
    } else if (a == "--listen") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--listen requires HOST:PORT\n");
        return false;
      }
      flags.listenSpec = args[++i];
    } else if (a == "--connect") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--connect requires HOST:PORT\n");
        return false;
      }
      flags.connectSpec = args[++i];
    } else if (a == "--secret") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--secret requires a value\n");
        return false;
      }
      flags.secret = args[++i];
    } else if (a == "--workers") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--workers requires host:port[,host:port...]\n");
        return false;
      }
      // Repeatable; occurrences accumulate into one comma-joined list.
      if (!flags.workersSpec.empty())
        flags.workersSpec += ',';
      flags.workersSpec += args[++i];
    } else if (a == "--shard-count") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--shard-count requires a value\n");
        return false;
      }
      flags.shardCount = static_cast<std::size_t>(
          std::max(0L, std::atol(args[++i].c_str())));
    } else if (a == "--lease-timeout") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--lease-timeout requires seconds\n");
        return false;
      }
      flags.leaseTimeoutSeconds = std::max(0.05, std::atof(args[++i].c_str()));
    } else if (a == "--connect-timeout") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--connect-timeout requires seconds\n");
        return false;
      }
      flags.connectTimeoutSeconds =
          std::max(0.05, std::atof(args[++i].c_str()));
    } else if (a == "--busy-retries") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--busy-retries requires a value\n");
        return false;
      }
      flags.busyRetries = static_cast<std::size_t>(
          std::max(0L, std::atol(args[++i].c_str())));
    } else if (a == "--wire-version") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--wire-version requires a value\n");
        return false;
      }
      flags.wireVersion = static_cast<std::uint32_t>(
          std::max(1L, std::atol(args[++i].c_str())));
    } else if (a == "--function") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--function requires a name\n");
        return false;
      }
      flags.sim.function = args[++i];
    } else if (a == "--sim-arg") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--sim-arg requires a value\n");
        return false;
      }
      const std::string &value = args[++i];
      if (value.find_first_of(".eE") != std::string::npos)
        flags.sim.args.push_back(sim::Value::ofDouble(std::atof(value.c_str())));
      else
        flags.sim.args.push_back(sim::Value::ofInt(std::atoll(value.c_str())));
    } else if (a == "--max-instructions") {
      if (i + 1 == args.size()) {
        std::fprintf(stderr, "--max-instructions requires a value\n");
        return false;
      }
      flags.sim.options.maxInstructions = static_cast<std::uint64_t>(
          std::max(1LL, std::atoll(args[++i].c_str())));
    } else if (a == "--fast-forward") {
      flags.sim.options.fastForward = true;
    } else if (a == "--progress") {
      flags.progress = true;
    } else if (a == "--via-daemon") {
      flags.viaDaemon = true;
    } else if (a == "--no-cache") {
      flags.useCache = false;
    } else if (a == "--compare-serial") {
      flags.compareSerial = true;
    } else if (a == "--no-optimize") {
      flags.optimize = false;
    } else if (a == "--no-vectorize") {
      flags.vectorize = false;
    } else if (a == "--emit-python") {
      flags.emitPython = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      return false;
    } else {
      positional.push_back(a);
    }
  }
  args = std::move(positional);
  return true;
}

core::MiraOptions optionsFor(const CommonFlags &flags) {
  core::MiraOptions options;
  options.compile.compiler.optimize = flags.optimize;
  options.compile.compiler.vectorize = flags.vectorize;
  return options;
}

driver::BatchOptions batchOptionsFor(const CommonFlags &flags,
                                     std::size_t threads,
                                     bool withDiskCache = true) {
  driver::BatchOptions options;
  options.threads = threads;
  options.useCache = flags.useCache;
  if (withDiskCache)
    options.cacheDir = flags.cacheDir;
  options.cacheBytesLimit = flags.cacheBytesLimit;
  options.modelThreads = flags.modelThreads;
  return options;
}

/// Print the per-source status table and batch totals; returns the batch
/// wall time (negative on any failure).
double printOutcomes(const std::vector<driver::AnalysisOutcome> &outcomes,
                     const driver::BatchStats &stats, std::size_t threads,
                     bool quiet) {
  bool allOk = true;
  if (!quiet)
    std::printf("%-24s | %-6s | %-5s | %9s\n", "source", "status", "cache",
                "seconds");
  for (const auto &outcome : outcomes) {
    allOk = allOk && outcome.ok;
    if (quiet)
      continue;
    std::printf("%-24s | %-6s | %-5s | %9.4f\n", outcome.name.c_str(),
                outcome.ok ? "ok" : "FAILED",
                outcome.cacheHit ? "hit" : "miss", outcome.seconds);
    if (!outcome.ok)
      std::fprintf(stderr, "%s\n", outcome.diagnostics.c_str());
  }
  if (!quiet) {
    std::printf("%zu sources, %zu failures, cache %zu hit / %zu miss, "
                "%.4f s on %zu threads\n",
                stats.requests, stats.failures, stats.cacheHits,
                stats.cacheMisses, stats.wallSeconds, threads);
    if (stats.diskHits + stats.diskMisses + stats.diskStores > 0)
      std::printf("disk cache: %zu hit / %zu miss, %zu stored\n",
                  stats.diskHits, stats.diskMisses, stats.diskStores);
  }
  return allOk ? stats.wallSeconds : -1.0;
}

/// Run the requests through a fresh analyzer and print the table.
double runBatch(const std::vector<driver::AnalysisRequest> &requests,
                const driver::BatchOptions &batchOptions, bool quiet) {
  driver::BatchAnalyzer analyzer(batchOptions);
  auto outcomes = analyzer.run(requests);
  return printOutcomes(outcomes, analyzer.stats(), batchOptions.threads,
                       quiet);
}

void printSpeedup(double serialSeconds, double parallelSeconds,
                  std::size_t threads) {
  if (serialSeconds <= 0 || parallelSeconds <= 0)
    return;
  std::printf("serial %.4f s -> parallel %.4f s on %zu threads: %.2fx "
              "speedup\n",
              serialSeconds, parallelSeconds, threads,
              serialSeconds / parallelSeconds);
}

int cmdAnalyze(std::vector<std::string> args) {
  CommonFlags flags;
  if (!parseFlags(args, flags) || args.size() != 1)
    return 2;
  driver::AnalysisRequest request;
  if (!loadSource(args[0], request))
    return 1;
  request.options = optionsFor(flags);

  // One request: the batch pool is a single thread, but --model-threads
  // still fans out per-function model generation, and --cache-dir makes
  // repeated analyses of an unchanged source near-free.
  driver::BatchOptions batchOptions = batchOptionsFor(flags, 1);
  // For a single request the cache only matters as the disk level;
  // --no-cache still wins over --cache-dir.
  batchOptions.useCache = flags.useCache && !flags.cacheDir.empty();
  driver::BatchAnalyzer analyzer(batchOptions);
  auto outcomes = analyzer.run({request});
  const auto &outcome = outcomes[0];
  if (!outcome.ok) {
    std::fprintf(stderr, "analysis of %s failed:\n%s\n",
                 outcome.name.c_str(), outcome.diagnostics.c_str());
    return 1;
  }
  if (!outcome.diagnostics.empty())
    std::fprintf(stderr, "%s\n", outcome.diagnostics.c_str());
  std::printf("analyzed %s in %.4f s%s\n", outcome.name.c_str(),
              outcome.seconds, outcome.cacheHit ? " (disk cache)" : "");
  printModelSummary(*outcome.analysis);
  if (flags.emitPython) {
    std::puts("");
    std::puts(model::emitPython(outcome.analysis->model).c_str());
  }
  return 0;
}

// --------------------------------------------------------- manifests

/// Slurp a file's raw bytes (manifest and report files are binary;
/// loadSource is for sources and knows '@' workloads).
bool readFileBytes(const std::string &path, std::string &bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return false;
  }
  bytes.assign((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
  return true;
}

/// Counterpart writer, shared by `manifest merge` and `batch --report`.
bool writeFileBytes(const std::string &path, const std::string &bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return false;
  }
  return true;
}

/// Print one diff listing — shared verbatim by the local `manifest
/// diff` and the daemon-backed `client manifest-diff` so CI can compare
/// the two outputs line for line. Returns the differing-path count.
std::size_t
printManifestDiff(const std::vector<corpus::ManifestEntry> &added,
                  const std::vector<corpus::ManifestEntry> &changed,
                  const std::vector<std::string> &removed) {
  for (const auto &entry : added)
    std::printf("added     %s (%016llx, %llu bytes)\n", entry.path.c_str(),
                static_cast<unsigned long long>(entry.contentHash),
                static_cast<unsigned long long>(entry.size));
  for (const auto &entry : changed)
    std::printf("changed   %s (%016llx, %llu bytes)\n", entry.path.c_str(),
                static_cast<unsigned long long>(entry.contentHash),
                static_cast<unsigned long long>(entry.size));
  for (const auto &path : removed)
    std::printf("removed   %s\n", path.c_str());
  std::printf("manifest diff: %zu added, %zu changed, %zu removed\n",
              added.size(), changed.size(), removed.size());
  return added.size() + changed.size() + removed.size();
}

/// Summary block of a (merged) batch report. Timing is absent by
/// design: reports are deterministic (driver::serializeBatchReport).
void printReportSummary(const driver::BatchReport &report) {
  const driver::BatchStats &stats = report.stats;
  std::printf("report: %zu entries, %zu failures, cache %zu hit / "
              "%zu miss\n",
              report.entries.size(), stats.failures, stats.cacheHits,
              stats.cacheMisses);
  if (stats.diskHits + stats.diskMisses + stats.diskStores > 0)
    std::printf("disk cache: %zu hit / %zu miss, %zu stored\n",
                stats.diskHits, stats.diskMisses, stats.diskStores);
}

int cmdManifest(std::vector<std::string> args) {
  CommonFlags flags;
  if (!parseFlags(args, flags) || args.empty())
    return 2;
  const std::string action = args[0];
  args.erase(args.begin());
  std::string error;

  if (action == "build") {
    if (args.size() != 1)
      return 2;
    if (flags.outPath.empty()) {
      std::fprintf(stderr, "manifest build requires --out FILE\n");
      return 2;
    }
    corpus::Manifest manifest;
    const std::vector<std::string> extensions =
        flags.extensions.empty() ? std::vector<std::string>{".mc"}
                                 : flags.extensions;
    if (!corpus::buildManifest(args[0], manifest, error, extensions)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (!corpus::writeManifestFile(flags.outPath, manifest, error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::uint64_t totalBytes = 0;
    for (const auto &entry : manifest.entries)
      totalBytes += entry.size;
    std::printf("manifest: %zu entries under '%s' (%llu source bytes) -> "
                "%s\n",
                manifest.entries.size(), manifest.root.c_str(),
                static_cast<unsigned long long>(totalBytes),
                flags.outPath.c_str());
    return 0;
  }

  if (action == "diff") {
    if (args.size() != 2)
      return 2;
    corpus::Manifest oldManifest, newManifest;
    if (!corpus::loadManifestFile(args[0], oldManifest, error) ||
        !corpus::loadManifestFile(args[1], newManifest, error)) {
      // The full diff/cmp convention: 0 = identical, 1 = differences,
      // 2 = trouble — so automation gating on exit 1 can never pass
      // vacuously off an unreadable manifest.
      std::fprintf(stderr, "%s\n", error.c_str());
      return kExitTrouble;
    }
    const corpus::ManifestDiff diff =
        corpus::diffManifests(oldManifest, newManifest);
    return printManifestDiff(diff.added, diff.changed, diff.removed) == 0
               ? 0
               : 1;
  }

  if (action == "merge") {
    if (args.empty())
      return 2;
    if (flags.outPath.empty()) {
      std::fprintf(stderr, "manifest merge requires --out FILE\n");
      return 2;
    }
    std::vector<driver::BatchReport> parts;
    for (const auto &path : args) {
      std::string bytes;
      if (!readFileBytes(path, bytes))
        return 1;
      driver::BatchReport part;
      if (!driver::deserializeBatchReport(bytes, part, error)) {
        std::fprintf(stderr, "'%s': %s\n", path.c_str(), error.c_str());
        return 1;
      }
      parts.push_back(std::move(part));
    }
    const driver::BatchReport merged = driver::mergeBatchReports(parts);
    if (!writeFileBytes(flags.outPath, driver::serializeBatchReport(merged)))
      return 1;
    printReportSummary(merged);
    std::printf("merged %zu shard reports -> %s\n", parts.size(),
                flags.outPath.c_str());
    return merged.stats.failures == 0 ? 0 : 1;
  }

  std::fprintf(stderr, "unknown manifest action '%s'\n", action.c_str());
  return 2;
}

/// `batch --manifest`: the request list comes from a corpus manifest —
/// optionally only what changed since an older one, optionally only
/// this process's deterministic shard of the keys.
int runManifestBatch(const CommonFlags &flags) {
  std::string error;
  corpus::Manifest manifest;
  if (!corpus::loadManifestFile(flags.manifestPaths[0], manifest, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  corpus::Manifest old;
  const bool haveSince = !flags.sincePath.empty();
  if (haveSince && !corpus::loadManifestFile(flags.sincePath, old, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  // Diff, merge, and shard via the one selection routine the daemon's
  // manifestBatch handler uses too, so both paths pick the same entries
  // in the same (manifest path) order.
  const core::MiraOptions options = optionsFor(flags);
  const driver::ManifestSelection selection = driver::selectManifestEntries(
      manifest, haveSince ? &old : nullptr, options, flags.shard);
  const std::vector<corpus::ManifestEntry> &mine = selection.entries;

  const std::string root =
      flags.rootOverride.empty() ? manifest.root : flags.rootOverride;
  std::vector<driver::AnalysisRequest> requests;
  requests.reserve(mine.size());
  for (const auto &entry : mine) {
    driver::AnalysisRequest request;
    const std::string path =
        (std::filesystem::path(root) / entry.path).string();
    if (!loadSource(path, request))
      return 1;
    request.name = entry.path; // table/report identity = manifest path
    request.options = options;
    requests.push_back(std::move(request));
  }

  driver::BatchAnalyzer analyzer(batchOptionsFor(flags, flags.threads));
  auto outcomes = analyzer.run(requests);
  const double wall =
      printOutcomes(outcomes, analyzer.stats(), flags.threads, false);
  std::printf("manifest: %zu of %zu entries selected", mine.size(),
              manifest.entries.size());
  if (haveSince)
    std::printf(" (%zu added, %zu changed, %zu removed skipped)",
                selection.added, selection.changed, selection.removed);
  if (flags.shard.count > 1)
    std::printf(" [shard %zu/%zu]", flags.shard.index + 1,
                flags.shard.count);
  std::printf("\n");

  if (!flags.reportPath.empty()) {
    driver::BatchReport report;
    report.stats = analyzer.stats();
    report.entries.reserve(outcomes.size());
    // Report keys come from the manifest hash (already computed for the
    // shard filter), not a second rehash of the source bytes — so they
    // always agree with what planning tools and `cache prune` derive.
    for (std::size_t i = 0; i < outcomes.size(); ++i)
      report.entries.push_back(
          {outcomes[i].name,
           driver::requestKeyFromContentHash(mine[i].contentHash, options),
           outcomes[i].ok});
    if (!writeFileBytes(flags.reportPath,
                        driver::serializeBatchReport(report)))
      return 1;
  }
  return wall < 0 ? 1 : 0;
}

int cmdBatch(std::vector<std::string> args) {
  CommonFlags flags;
  if (!parseFlags(args, flags))
    return 2;
  if (!flags.manifestPaths.empty()) {
    if (!args.empty()) {
      std::fprintf(stderr,
                   "batch --manifest takes no positional sources\n");
      return 2;
    }
    if (flags.manifestPaths.size() > 1) {
      std::fprintf(stderr, "batch takes exactly one --manifest\n");
      return 2;
    }
    return runManifestBatch(flags);
  }
  if (!flags.reportPath.empty() || !flags.sincePath.empty() ||
      !flags.rootOverride.empty() || flags.shardGiven) {
    std::fprintf(stderr,
                 "--report/--since/--shard/--root require --manifest FILE\n");
    return 2;
  }
  if (args.empty())
    return 2;
  std::vector<driver::AnalysisRequest> requests;
  for (const auto &arg : args) {
    driver::AnalysisRequest request;
    if (!loadSource(arg, request))
      return 1;
    request.options = optionsFor(flags);
    requests.push_back(std::move(request));
  }

  double parallelSeconds =
      runBatch(requests, batchOptionsFor(flags, flags.threads), false);
  if (flags.compareSerial) {
    // The serial reference run skips the disk cache: it would otherwise
    // be warmed by the parallel run above and win every comparison.
    double serialSeconds =
        runBatch(requests, batchOptionsFor(flags, 1, false), true);
    printSpeedup(serialSeconds, parallelSeconds, flags.threads);
  }
  return parallelSeconds < 0 ? 1 : 0;
}

std::vector<driver::AnalysisRequest> coverageRequests() {
  std::vector<driver::AnalysisRequest> requests;
  for (const auto &kernel : workloads::coverageSuite()) {
    driver::AnalysisRequest request;
    request.name = kernel.name;
    request.source = kernel.source;
    requests.push_back(std::move(request));
  }
  for (const auto &workload : workloads::figSeriesWorkloads()) {
    driver::AnalysisRequest request;
    request.name = "@" + workload.name;
    request.source = *workload.source;
    requests.push_back(std::move(request));
  }
  return requests;
}

std::vector<core::AnalysisSpec> coverageSpecs(const CommonFlags &flags) {
  std::vector<core::AnalysisSpec> specs;
  for (driver::AnalysisRequest &request : coverageRequests()) {
    core::AnalysisSpec spec;
    spec.name = std::move(request.name);
    spec.source = std::move(request.source);
    spec.options = optionsFor(flags); // same options (and cache keys) as
                                      // the --via-daemon path
    spec.artifacts = core::kArtifactCoverage | core::kArtifactDiagnostics;
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Print the Table I comparison for the first suite.size() artifacts.
void printCoverageTable(
    const std::vector<std::optional<sema::LoopCoverage>> &coverages) {
  std::printf("%-10s | %14s | %14s | %14s | %9s\n", "app", "loops p/o",
              "stmts p/o", "in-loop p/o", "pct p/o");
  const auto &suite = workloads::coverageSuite();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto &kernel = suite[i];
    if (!coverages[i]) {
      std::printf("%-10s | analysis FAILED\n", kernel.name.c_str());
      continue;
    }
    const sema::LoopCoverage &coverage = *coverages[i];
    std::printf("%-10s | %6zu/%-7zu | %6zu/%-7zu | %6zu/%-7zu | %3d/%-5.0f\n",
                kernel.name.c_str(), kernel.paperLoops, coverage.loops,
                kernel.paperStatements, coverage.statements,
                kernel.paperInLoop, coverage.inLoopStatements,
                kernel.paperPercent, coverage.percent());
  }
  std::printf("\n");
}

/// Per-spec status table for artifact runs (coverage/simulate sweeps);
/// returns the batch wall time (negative on any failure).
double printArtifacts(const std::vector<core::Artifacts> &results,
                      const driver::BatchStats &stats, std::size_t threads,
                      bool quiet) {
  bool allOk = true;
  if (!quiet)
    std::printf("%-24s | %-6s | %-5s | %-9s | %9s\n", "source", "status",
                "cache", "recompile", "seconds");
  for (const auto &artifacts : results) {
    allOk = allOk && artifacts.ok;
    if (quiet)
      continue;
    std::printf("%-24s | %-6s | %-5s | %-9s | %9.4f\n",
                artifacts.name.c_str(), artifacts.ok ? "ok" : "FAILED",
                artifacts.cacheHit ? "hit" : "miss",
                artifacts.recompiled ? "yes" : "no", artifacts.seconds);
    if (!artifacts.ok)
      std::fprintf(stderr, "%s\n", artifacts.diagnostics.c_str());
  }
  if (!quiet) {
    std::printf("%zu sources, %zu failures, cache %zu hit / %zu miss, "
                "%.4f s on %zu threads\n",
                stats.requests, stats.failures, stats.cacheHits,
                stats.cacheMisses, stats.wallSeconds, threads);
    std::printf("artifacts: %zu coverage (%zu from cached summaries), "
                "%zu simulations, %zu recompiles\n",
                stats.coverageArtifacts, stats.coverageFromCache,
                stats.simulationArtifacts, stats.recompiles);
    if (stats.diskHits + stats.diskMisses + stats.diskStores > 0)
      std::printf("disk cache: %zu hit / %zu miss, %zu stored\n",
                  stats.diskHits, stats.diskMisses, stats.diskStores);
  }
  return allOk ? stats.wallSeconds : -1.0;
}

int coverageViaDaemon(const CommonFlags &flags) {
  server::Client client;
  if (flags.socketPath.empty()) {
    std::fprintf(stderr, "--via-daemon requires --socket PATH\n");
    return 2;
  }
  if (!client.connect(flags.socketPath)) {
    std::fprintf(stderr, "%s\n", client.lastError().c_str());
    return 1;
  }
  auto specs = coverageSpecs(flags);
  std::vector<std::optional<sema::LoopCoverage>> coverages;
  bool allOk = true;
  std::size_t hits = 0, recompiles = 0;
  for (const auto &spec : specs) {
    server::CoverageReply reply;
    if (!client.coverage(spec.name, spec.source, optionsFor(flags), reply)) {
      std::fprintf(stderr, "%s\n", client.lastError().c_str());
      return 1;
    }
    allOk = allOk && reply.ok;
    if (reply.ok)
      coverages.push_back(reply.coverage);
    else
      coverages.push_back(std::nullopt);
    hits += reply.cacheHit ? 1 : 0;
    recompiles += reply.recompiled ? 1 : 0;
  }
  printCoverageTable(coverages);
  std::printf("%zu sources via daemon at %s: %zu cache hits, "
              "%zu recompiles\n",
              specs.size(), flags.socketPath.c_str(), hits, recompiles);
  return allOk ? 0 : 1;
}

int cmdCoverage(std::vector<std::string> args) {
  CommonFlags flags;
  if (!parseFlags(args, flags) || !args.empty())
    return 2;

  if (flags.viaDaemon)
    return coverageViaDaemon(flags);

  // One artifact run serves both the Table I numbers and the status
  // table below. With --cache-dir, a warm rerun answers every summary
  // from the schema-v2 cache: zero recompiles, zero model generation.
  auto specs = coverageSpecs(flags);
  driver::BatchAnalyzer analyzer(batchOptionsFor(flags, flags.threads));
  auto results = analyzer.runArtifacts(specs);

  std::vector<std::optional<sema::LoopCoverage>> coverages;
  coverages.reserve(results.size());
  for (const auto &artifacts : results)
    coverages.push_back(artifacts.coverage);
  printCoverageTable(coverages);

  double parallelSeconds =
      printArtifacts(results, analyzer.stats(), flags.threads, false);
  if (flags.compareSerial) {
    driver::BatchAnalyzer serial(batchOptionsFor(flags, 1, false));
    serial.runArtifacts(specs);
    printSpeedup(serial.stats().wallSeconds, parallelSeconds, flags.threads);
  }
  return parallelSeconds < 0 ? 1 : 0;
}

// ----------------------------------------------------------- simulate

/// Counter block shared verbatim by the one-shot and daemon paths, so
/// CI can diff the two outputs line for line.
void printSimResult(const sim::SimResult &result) {
  if (!result.ok) {
    std::printf("simulation FAILED: %s\n", result.error.c_str());
    return;
  }
  std::printf("return value        : int %lld, double %g\n",
              static_cast<long long>(result.returnValue.i),
              result.returnValue.f);
  std::printf("total instructions  : %llu\n",
              static_cast<unsigned long long>(result.total.totalInstructions));
  std::printf("fp instructions     : %llu\n",
              static_cast<unsigned long long>(result.total.fpInstructions));
  std::printf("flops               : %llu\n",
              static_cast<unsigned long long>(result.total.flops));
  std::printf("%-24s | %8s | %12s | %10s\n", "function", "calls",
              "instructions", "fp");
  for (const auto &entry : result.functions)
    std::printf("%-24s | %8llu | %12llu | %10llu\n", entry.first.c_str(),
                static_cast<unsigned long long>(entry.second.calls),
                static_cast<unsigned long long>(
                    entry.second.inclusive.totalInstructions),
                static_cast<unsigned long long>(
                    entry.second.inclusive.fpInstructions));
  if (!result.printed.empty()) {
    std::printf("printed             :");
    for (double value : result.printed)
      std::printf(" %g", value);
    std::printf("\n");
  }
}

int cmdSimulate(std::vector<std::string> args) {
  CommonFlags flags;
  if (!parseFlags(args, flags) || args.size() != 1)
    return 2;
  if (flags.sim.function.empty()) {
    std::fprintf(stderr, "simulate requires --function NAME\n");
    return 2;
  }
  driver::AnalysisRequest request;
  if (!loadSource(args[0], request))
    return 1;

  if (flags.viaDaemon) {
    if (flags.socketPath.empty()) {
      std::fprintf(stderr, "--via-daemon requires --socket PATH\n");
      return 2;
    }
    server::Client client;
    if (!client.connect(flags.socketPath)) {
      std::fprintf(stderr, "%s\n", client.lastError().c_str());
      return 1;
    }
    server::SimulateReply reply;
    if (!client.simulate(request.name, request.source, optionsFor(flags),
                         flags.sim, reply)) {
      std::fprintf(stderr, "%s\n", client.lastError().c_str());
      return 1;
    }
    if (!reply.ok) {
      std::fprintf(stderr, "simulate of %s failed:\n%s\n",
                   request.name.c_str(), reply.diagnostics.c_str());
      return 1;
    }
    std::printf("simulated %s:%s via daemon in %.4f s (%s%s)\n",
                request.name.c_str(), flags.sim.function.c_str(),
                static_cast<double>(reply.micros) / 1e6,
                reply.cacheHit ? "cache hit" : "computed",
                reply.recompiled ? ", recompiled" : "");
    printSimResult(reply.result);
    return reply.result.ok ? 0 : 1;
  }

  core::AnalysisSpec spec;
  spec.name = request.name;
  spec.source = request.source;
  spec.options = optionsFor(flags);
  spec.artifacts = core::kArtifactSimulation | core::kArtifactDiagnostics;
  spec.simulation = flags.sim;

  driver::BatchOptions batchOptions = batchOptionsFor(flags, 1);
  batchOptions.useCache = flags.useCache && !flags.cacheDir.empty();
  driver::BatchAnalyzer analyzer(batchOptions);
  core::Artifacts artifacts = analyzer.analyzeArtifacts(spec);
  if (!artifacts.ok || !artifacts.simulation) {
    std::fprintf(stderr, "simulate of %s failed:\n%s\n",
                 artifacts.name.c_str(), artifacts.diagnostics.c_str());
    return 1;
  }
  if (!artifacts.diagnostics.empty())
    std::fprintf(stderr, "%s\n", artifacts.diagnostics.c_str());
  std::printf("simulated %s:%s in %.4f s (%s%s)\n", artifacts.name.c_str(),
              flags.sim.function.c_str(), artifacts.seconds,
              artifacts.cacheHit ? "cache hit" : "computed",
              artifacts.recompiled ? ", recompiled" : "");
  printSimResult(*artifacts.simulation);
  return artifacts.simulation->ok ? 0 : 1;
}

int cmdCache(std::vector<std::string> args) {
  CommonFlags flags;
  if (!parseFlags(args, flags) || args.size() != 1)
    return 2;
  if (flags.cacheDir.empty()) {
    std::fprintf(stderr, "cache requires --cache-dir\n");
    return 2;
  }
  // Opening a CacheStore creates the directory; an inspection command
  // must not conjure an empty cache out of a typo'd path and report
  // "0 entries removed" as success.
  std::error_code ec;
  if (!std::filesystem::is_directory(flags.cacheDir, ec)) {
    std::fprintf(stderr, "no cache directory at '%s'\n",
                 flags.cacheDir.c_str());
    return 1;
  }
  CacheStore store(flags.cacheDir, flags.cacheBytesLimit);
  if (!store.usable()) {
    std::fprintf(stderr, "cannot open cache directory '%s'\n",
                 flags.cacheDir.c_str());
    return 1;
  }
  if (args[0] == "stats") {
    // Raw counts stay first on each line (scripts parse them); the
    // human-readable size rides along in parentheses. Field meanings
    // are documented in docs/CACHING.md, "Observability".
    std::printf("cache directory : %s\n", store.directory().c_str());
    std::size_t entries = 0;
    std::uint64_t total = 0;
    store.usage(entries, total);
    std::printf("entries         : %zu\n", entries);
    std::printf("total bytes     : %llu (%s)\n",
                static_cast<unsigned long long>(total),
                formatBytes(total).c_str());
    if (store.bytesLimit() != 0)
      std::printf("byte limit      : %llu (%s)\n",
                  static_cast<unsigned long long>(store.bytesLimit()),
                  formatBytes(store.bytesLimit()).c_str());
    else
      std::printf("byte limit      : unlimited\n");
    std::printf("schema version  : %u (reads back to v%u)\n",
                kCacheSchemaVersion, kCacheSchemaVersionMin);

    // Per-artifact byte breakdown: walk every entry (peek: no LRU
    // bump) and split its payload into the sections of the schema-v2
    // layout (docs/CACHING.md, "Entry format"). Programs are never
    // stored — they come back through recompile-on-demand handles —
    // so their column is identically zero by design.
    std::size_t v1Entries = 0, v2Entries = 0, failureEntries = 0;
    std::uint64_t modelBytes = 0, coverageBytes = 0, diagnosticsBytes = 0;
    for (std::uint64_t key : store.keys()) {
      std::uint32_t version = 0;
      auto payload = store.peek(key, version);
      if (!payload)
        continue; // unsupported schema or raced with a writer
      (version >= 2 ? v2Entries : v1Entries) += 1;
      bio::Reader r{*payload, 0};
      std::uint8_t ok = 0;
      std::string producer, diagnostics;
      if (!r.u8(ok) || !r.str(producer) || !r.str(diagnostics))
        continue;
      diagnosticsBytes += diagnostics.size();
      if (!ok) {
        ++failureEntries;
        continue;
      }
      if (version >= 2) {
        std::uint8_t hasCoverage = 0;
        const std::size_t beforeCoverage = r.offset;
        std::uint64_t scratch = 0;
        if (!r.u8(hasCoverage))
          continue;
        if (hasCoverage &&
            (!r.u64(scratch) || !r.u64(scratch) || !r.u64(scratch)))
          continue;
        coverageBytes += r.offset - beforeCoverage;
      }
      modelBytes += r.remaining();
    }
    std::printf("entries by schema : v1 %zu, v2 %zu (%zu cached "
                "failures)\n",
                v1Entries, v2Entries, failureEntries);
    std::printf("model bytes       : %llu (%s)\n",
                static_cast<unsigned long long>(modelBytes),
                formatBytes(modelBytes).c_str());
    std::printf("coverage bytes    : %llu (%s)\n",
                static_cast<unsigned long long>(coverageBytes),
                formatBytes(coverageBytes).c_str());
    std::printf("program bytes     : 0 (recompile-on-demand; never "
                "stored)\n");
    std::printf("diagnostics bytes : %llu (%s)\n",
                static_cast<unsigned long long>(diagnosticsBytes),
                formatBytes(diagnosticsBytes).c_str());
    return 0;
  }
  if (args[0] == "prune") {
    // Garbage-collect: drop every entry no manifest source still
    // produces. The manifest hash seeds the cache key
    // (driver::requestKeyFromContentHash), so no source bytes are
    // read. The keep-set is deliberately conservative: the union over
    // every given --manifest (repeatable) and every combination of the
    // wire-visible option flags, so a directory serving several
    // configurations of the same corpus survives one prune intact.
    // Entries keyed with a non-default arch (API callers only — the
    // CLI cannot set one) are not protected (docs/MANIFESTS.md).
    if (flags.manifestPaths.empty()) {
      std::fprintf(stderr, "cache prune requires --manifest FILE\n");
      return 2;
    }
    std::size_t sources = 0;
    std::set<std::uint64_t> keep;
    for (const std::string &path : flags.manifestPaths) {
      corpus::Manifest manifest;
      std::string error;
      if (!corpus::loadManifestFile(path, manifest, error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      sources += manifest.entries.size();
      for (const auto &entry : manifest.entries)
        for (std::uint8_t bits = 0; bits < 8; ++bits)
          keep.insert(driver::requestKeyFromContentHash(
              entry.contentHash, server::unpackOptions(bits)));
    }
    std::size_t total = 0, removed = 0, failed = 0;
    for (std::uint64_t key : store.keys()) {
      ++total;
      if (keep.count(key))
        continue;
      if (store.remove(key))
        ++removed;
      else
        ++failed;
    }
    std::printf("pruned %zu of %zu entries from %s (%zu manifest sources "
                "kept across all option sets)\n",
                removed, total, store.directory().c_str(), sources);
    if (failed != 0) {
      std::fprintf(stderr, "failed to remove %zu entries\n", failed);
      return 1;
    }
    return 0;
  }
  if (args[0] == "clear") {
    if (!flags.schema.empty()) {
      // `--schema vN` (or plain N): purge only that schema's entries —
      // the post-migration cleanup path for pre-v2 blobs.
      std::string digits = flags.schema;
      if (!digits.empty() && (digits[0] == 'v' || digits[0] == 'V'))
        digits.erase(0, 1);
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "--schema expects v<N> (e.g. v1)\n");
        return 2;
      }
      const auto version =
          static_cast<std::uint32_t>(std::atol(digits.c_str()));
      const std::size_t removed = store.clearVersion(version);
      std::printf("removed %zu schema-v%u cache entries from %s\n", removed,
                  version, store.directory().c_str());
      return 0;
    }
    const std::size_t before = store.entryCount();
    store.clear();
    std::printf("removed %zu cache entries from %s\n", before,
                store.directory().c_str());
    return 0;
  }
  return 2;
}

// ------------------------------------------------------------- daemon

// Signal handlers may only touch async-signal-safe state: a single
// write(2) on the server's stop-event pipe is exactly that.
volatile int g_serverStopFd = -1;

extern "C" void onStopSignal(int) {
  const int fd = g_serverStopFd;
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = write(fd, &byte, 1);
  }
}

int cmdServe(std::vector<std::string> args) {
  CommonFlags flags;
  if (!parseFlags(args, flags) || !args.empty())
    return 2;
  if (flags.socketPath.empty() && flags.listenSpec.empty()) {
    std::fprintf(stderr,
                 "serve requires --socket PATH and/or --listen HOST:PORT\n");
    return 2;
  }

  server::ServerOptions options;
  options.socketPath = flags.socketPath;
  if (!flags.listenSpec.empty()) {
    std::string parseError;
    if (!net::parseHostPort(flags.listenSpec, options.tcpHost,
                            options.tcpPortRequested, parseError)) {
      std::fprintf(stderr, "--listen: %s\n", parseError.c_str());
      return 2;
    }
    options.tcpListen = true;
  }
  options.secret = flags.secret;
  options.threads = flags.threads;
  options.modelThreads = flags.modelThreads;
  options.cacheDir = flags.cacheDir;
  options.cacheBytesLimit = flags.cacheBytesLimit;
  options.maxInflight = flags.maxInflight;
  options.drainTimeoutMillis =
      static_cast<std::uint32_t>(flags.drainTimeoutSeconds * 1000.0);
  options.metricsFile = flags.metricsFile;

  server::AnalysisServer daemon(options);
  std::string error;
  if (!daemon.start(error)) {
    std::fprintf(stderr, "cannot start daemon: %s\n", error.c_str());
    return 1;
  }

  g_serverStopFd = daemon.stopEventFd();
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGTERM, onStopSignal);

  // The readiness line names every endpoint; a --listen port of 0 is
  // printed as the kernel-assigned port so supervisors and tests can
  // parse `tcp HOST:PORT` out of it instead of racing for a fixed port.
  std::string endpoints = options.socketPath;
  if (options.tcpListen) {
    if (!endpoints.empty())
      endpoints += " and ";
    endpoints +=
        "tcp " + options.tcpHost + ":" + std::to_string(daemon.tcpPort());
  }
  std::printf("mira daemon listening on %s (%zu session threads%s%s)\n",
              endpoints.c_str(), options.threads,
              options.cacheDir.empty() ? "" : ", disk cache at ",
              options.cacheDir.c_str());
  std::fflush(stdout); // supervisors tail this line to detect readiness

  daemon.serve();

  const server::ServerStats stats = daemon.snapshotStats();
  g_serverStopFd = -1;
  std::printf("daemon stopped: %llu requests over %llu connections, "
              "%llu analyses (%llu cache hits / %llu computed)\n",
              static_cast<unsigned long long>(stats.requestsServed),
              static_cast<unsigned long long>(stats.connectionsAccepted),
              static_cast<unsigned long long>(stats.sourcesAnalyzed),
              static_cast<unsigned long long>(stats.cacheHits),
              static_cast<unsigned long long>(stats.computed));
  return 0;
}

// ------------------------------------------------------------- client

/// Unified `mira-cli client` failure diagnostic: every daemon
/// conversation that fails prints one `mira-cli client: <reason>` line
/// to stderr, and the exit status tells scripts which class of failure
/// it was without parsing that text: 3 = could not connect (no daemon
/// there), 4 = the connection died or broke protocol mid-conversation,
/// 1 = the daemon (or the analysis itself) refused or failed.
/// tests/server_test.cpp pins both the format and the codes.
int clientFailure(const server::Client &client) {
  std::fprintf(stderr, "mira-cli client: %s\n", client.lastError().c_str());
  switch (client.lastErrorKind()) {
  case server::Client::ErrorKind::connect:
    return 3;
  case server::Client::ErrorKind::transport:
  case server::Client::ErrorKind::protocol:
    return 4;
  default:
    return 1;
  }
}

int requireClientConnection(server::Client &client,
                            const CommonFlags &flags) {
  if (flags.socketPath.empty() && flags.connectSpec.empty()) {
    std::fprintf(stderr,
                 "client requires --socket PATH or --connect HOST:PORT\n");
    return 2;
  }
  if (!flags.socketPath.empty() && !flags.connectSpec.empty()) {
    std::fprintf(stderr, "--socket and --connect are mutually exclusive\n");
    return 2;
  }
  client.setConnectTimeoutMillis(
      static_cast<int>(flags.connectTimeoutSeconds * 1000.0));
  client.setSecret(flags.secret);
  if (!flags.connectSpec.empty()) {
    std::string host, parseError;
    std::uint16_t port = 0;
    if (!net::parseHostPort(flags.connectSpec, host, port, parseError)) {
      std::fprintf(stderr, "--connect: %s\n", parseError.c_str());
      return 2;
    }
    if (!client.connectTcp(host, port))
      return clientFailure(client);
    return 0;
  }
  if (!client.connect(flags.socketPath))
    return clientFailure(client);
  return 0;
}

void printClientOutcome(const server::ClientOutcome &outcome) {
  if (!outcome.diagnostics.empty())
    std::fprintf(stderr, "%s\n", outcome.diagnostics.c_str());
  std::printf("analyzed %s via daemon in %.4f s (%s)\n",
              outcome.name.c_str(),
              static_cast<double>(outcome.micros) / 1e6,
              outcome.cacheHit ? "cache hit" : "computed");
}

int cmdClient(std::vector<std::string> args) {
  CommonFlags flags;
  if (!parseFlags(args, flags) || args.empty())
    return 2;
  const std::string action = args[0];
  args.erase(args.begin());

  server::Client client;
  if (flags.wireVersion < server::kProtocolVersionMin ||
      flags.wireVersion > server::kProtocolVersion) {
    std::fprintf(stderr, "--wire-version must be %u..%u\n",
                 server::kProtocolVersionMin, server::kProtocolVersion);
    return 2;
  }
  client.setProtocolVersion(flags.wireVersion);
  client.setBusyRetries(flags.busyRetries);

  if (action == "ping") {
    if (int rc = requireClientConnection(client, flags))
      return rc;
    if (!client.ping())
      return clientFailure(client);
    std::printf("daemon at %s is alive\n",
                flags.socketPath.empty() ? flags.connectSpec.c_str()
                                         : flags.socketPath.c_str());
    return 0;
  }

  if (action == "shutdown") {
    if (int rc = requireClientConnection(client, flags))
      return rc;
    if (!client.shutdownServer())
      return clientFailure(client);
    std::printf("daemon at %s acknowledged shutdown\n",
                flags.socketPath.empty() ? flags.connectSpec.c_str()
                                         : flags.socketPath.c_str());
    return 0;
  }

  if (action == "cache-stats") {
    if (int rc = requireClientConnection(client, flags))
      return rc;
    server::ServerStats stats;
    if (!client.cacheStats(stats))
      return clientFailure(client);
    // Field meanings: docs/PROTOCOL.md, CacheStatsReply.
    std::printf("uptime          : %.1f s\n",
                static_cast<double>(stats.uptimeMicros) / 1e6);
    std::printf("connections     : %llu\n",
                static_cast<unsigned long long>(stats.connectionsAccepted));
    std::printf("requests served : %llu\n",
                static_cast<unsigned long long>(stats.requestsServed));
    std::printf("analyze / batch : %llu / %llu\n",
                static_cast<unsigned long long>(stats.analyzeRequests),
                static_cast<unsigned long long>(stats.batchRequests));
    if (flags.wireVersion >= 2)
      std::printf("coverage / sim  : %llu / %llu (%llu recompiles)\n",
                  static_cast<unsigned long long>(stats.coverageRequests),
                  static_cast<unsigned long long>(stats.simulateRequests),
                  static_cast<unsigned long long>(stats.recompiles));
    std::printf("sources analyzed: %llu (%llu cache hits, %llu computed, "
                "%llu failed)\n",
                static_cast<unsigned long long>(stats.sourcesAnalyzed),
                static_cast<unsigned long long>(stats.cacheHits),
                static_cast<unsigned long long>(stats.computed),
                static_cast<unsigned long long>(stats.failures));
    std::printf("protocol errors : %llu\n",
                static_cast<unsigned long long>(stats.protocolErrors));
    std::printf("memory entries  : %llu\n",
                static_cast<unsigned long long>(stats.memoryEntries));
    std::printf("disk cache      : %llu hit / %llu miss, %llu stored, "
                "%llu entries, %llu bytes (%s)\n",
                static_cast<unsigned long long>(stats.diskHits),
                static_cast<unsigned long long>(stats.diskMisses),
                static_cast<unsigned long long>(stats.diskStores),
                static_cast<unsigned long long>(stats.diskEntries),
                static_cast<unsigned long long>(stats.diskBytes),
                formatBytes(stats.diskBytes).c_str());
    std::printf("session threads : %llu\n",
                static_cast<unsigned long long>(stats.threads));
    return 0;
  }

  if (action == "metrics") {
    if (int rc = requireClientConnection(client, flags))
      return rc;
    std::vector<server::MetricSample> samples;
    if (!client.metrics(samples))
      return clientFailure(client);
    // Same names and `mira_` prefix as the --metrics-file dump; the
    // wire reply does not carry the counter/gauge kind, so no # TYPE
    // comment lines here.
    for (const server::MetricSample &sample : samples)
      std::printf("mira_%s %llu\n", sample.name.c_str(),
                  static_cast<unsigned long long>(sample.value));
    return 0;
  }

  if (action == "analyze") {
    if (args.size() != 1) {
      std::fprintf(stderr, "client analyze takes exactly one source\n");
      return 2;
    }
    driver::AnalysisRequest request;
    if (!loadSource(args[0], request))
      return 1;
    if (int rc = requireClientConnection(client, flags))
      return rc;
    server::ClientOutcome outcome;
    if (!client.analyze(request.name, request.source, optionsFor(flags),
                        outcome))
      return clientFailure(client);
    if (!outcome.ok) {
      std::fprintf(stderr, "analysis of %s failed:\n%s\n",
                   outcome.name.c_str(), outcome.diagnostics.c_str());
      return 1;
    }
    printClientOutcome(outcome);
    printModelSummary(*outcome.analysis);
    if (flags.emitPython) {
      std::puts("");
      std::puts(model::emitPython(outcome.analysis->model).c_str());
    }
    return 0;
  }

  if (action == "batch") {
    if (!flags.manifestPaths.empty()) {
      // --manifest: the daemon executes the whole corpus and answers
      // one deterministic report — byte-identical (report and cache
      // dir) to a local `mira-cli batch --manifest` over the same
      // manifest, options, and cache directory.
      if (!args.empty()) {
        std::fprintf(stderr,
                     "client batch --manifest takes no positional sources\n");
        return 2;
      }
      if (flags.manifestPaths.size() > 1) {
        std::fprintf(stderr, "client batch takes exactly one --manifest\n");
        return 2;
      }
      std::string manifestBytes, sinceBytes;
      if (!readFileBytes(flags.manifestPaths[0], manifestBytes))
        return 1;
      if (!flags.sincePath.empty() &&
          !readFileBytes(flags.sincePath, sinceBytes))
        return 1;
      if (int rc = requireClientConnection(client, flags))
        return rc;
      server::Client::ProgressFn onProgress;
      if (flags.progress)
        onProgress = [](const server::BatchProgress &p) {
          // Progress is operator feedback, not results: stderr, so
          // stdout stays byte-comparable with and without --progress.
          std::fprintf(stderr,
                       "progress: %u/%u analyzed, %u failures, "
                       "%u cache hits\n",
                       p.done, p.total, p.failures, p.cacheHits);
        };
      std::string reportBytes;
      if (!client.manifestBatch(manifestBytes, sinceBytes,
                                flags.rootOverride, flags.shard,
                                optionsFor(flags), onProgress, reportBytes))
        return clientFailure(client);
      driver::BatchReport report;
      std::string error;
      if (!driver::deserializeBatchReport(reportBytes, report, error)) {
        std::fprintf(stderr, "mira-cli client: malformed report from "
                             "daemon: %s\n",
                     error.c_str());
        return 4;
      }
      std::printf("%-24s | %-6s | %16s\n", "source", "status", "key");
      for (const auto &entry : report.entries)
        std::printf("%-24s | %-6s | %016llx\n", entry.name.c_str(),
                    entry.ok ? "ok" : "FAILED",
                    static_cast<unsigned long long>(entry.key));
      printReportSummary(report);
      // The daemon's report bytes go to disk untouched: `manifest
      // merge` and byte-comparisons see exactly what a local shard
      // run would have written.
      if (!flags.reportPath.empty() &&
          !writeFileBytes(flags.reportPath, reportBytes))
        return 1;
      return report.stats.failures == 0 ? 0 : 1;
    }
    if (args.empty()) {
      std::fprintf(stderr, "client batch needs at least one source\n");
      return 2;
    }
    std::vector<server::SourceItem> items;
    for (const auto &arg : args) {
      driver::AnalysisRequest request;
      if (!loadSource(arg, request))
        return 1;
      items.push_back({request.name, request.source});
    }
    if (int rc = requireClientConnection(client, flags))
      return rc;
    std::vector<server::ClientOutcome> outcomes;
    if (!client.analyzeBatch(items, optionsFor(flags), outcomes))
      return clientFailure(client);
    bool allOk = true;
    std::printf("%-24s | %-6s | %-5s | %9s\n", "source", "status", "cache",
                "seconds");
    for (const auto &outcome : outcomes) {
      allOk = allOk && outcome.ok;
      std::printf("%-24s | %-6s | %-5s | %9.4f\n", outcome.name.c_str(),
                  outcome.ok ? "ok" : "FAILED",
                  outcome.cacheHit ? "hit" : "miss",
                  static_cast<double>(outcome.micros) / 1e6);
      if (!outcome.ok)
        std::fprintf(stderr, "%s\n", outcome.diagnostics.c_str());
    }
    return allOk ? 0 : 1;
  }

  if (action == "coverage") {
    if (args.empty()) {
      std::fprintf(stderr, "client coverage needs at least one source\n");
      return 2;
    }
    if (int rc = requireClientConnection(client, flags))
      return rc;
    bool allOk = true;
    std::printf("%-24s | %6s | %6s | %8s | %4s | %-5s | %-9s\n", "source",
                "loops", "stmts", "in-loop", "pct", "cache", "recompile");
    for (const auto &arg : args) {
      driver::AnalysisRequest request;
      if (!loadSource(arg, request))
        return 1;
      server::CoverageReply reply;
      if (!client.coverage(request.name, request.source, optionsFor(flags),
                           reply))
        return clientFailure(client);
      if (!reply.ok) {
        allOk = false;
        std::printf("%-24s | analysis FAILED\n", request.name.c_str());
        std::fprintf(stderr, "%s\n", reply.diagnostics.c_str());
        continue;
      }
      std::printf("%-24s | %6zu | %6zu | %8zu | %3.0f%% | %-5s | %-9s\n",
                  request.name.c_str(), reply.coverage.loops,
                  reply.coverage.statements, reply.coverage.inLoopStatements,
                  reply.coverage.percent(),
                  reply.cacheHit ? "hit" : "miss",
                  reply.recompiled ? "yes" : "no");
    }
    return allOk ? 0 : 1;
  }

  if (action == "manifest-diff") {
    if (args.size() != 2) {
      std::fprintf(stderr,
                   "client manifest-diff takes OLD and NEW manifest files\n");
      return 2;
    }
    // Raw bytes travel; the daemon validates both blobs and answers
    // Error on anything malformed. Output matches the local
    // `manifest diff` line for line, and so does the exit-code
    // convention: 0 identical, 1 differences, 2 trouble (unreadable
    // file, no daemon, malformed manifest).
    std::string oldBytes, newBytes;
    if (!readFileBytes(args[0], oldBytes) || !readFileBytes(args[1], newBytes))
      return kExitTrouble;
    if (requireClientConnection(client, flags) != 0)
      return kExitTrouble;
    server::ManifestDiffReply reply;
    if (!client.manifestDiff(oldBytes, newBytes, reply)) {
      // Same one-line diagnostic format as every other client failure,
      // but the diff/cmp exit convention wins over the 3/4 split here.
      std::fprintf(stderr, "mira-cli client: %s\n",
                   client.lastError().c_str());
      return kExitTrouble;
    }
    return printManifestDiff(reply.added, reply.changed, reply.removed) == 0
               ? 0
               : 1;
  }

  if (action == "simulate") {
    if (args.size() != 1) {
      std::fprintf(stderr, "client simulate takes exactly one source\n");
      return 2;
    }
    if (flags.sim.function.empty()) {
      std::fprintf(stderr, "client simulate requires --function NAME\n");
      return 2;
    }
    driver::AnalysisRequest request;
    if (!loadSource(args[0], request))
      return 1;
    if (int rc = requireClientConnection(client, flags))
      return rc;
    server::SimulateReply reply;
    if (!client.simulate(request.name, request.source, optionsFor(flags),
                         flags.sim, reply))
      return clientFailure(client);
    if (!reply.ok) {
      std::fprintf(stderr, "simulate of %s failed:\n%s\n",
                   request.name.c_str(), reply.diagnostics.c_str());
      return 1;
    }
    std::printf("simulated %s:%s via daemon in %.4f s (%s%s)\n",
                request.name.c_str(), flags.sim.function.c_str(),
                static_cast<double>(reply.micros) / 1e6,
                reply.cacheHit ? "cache hit" : "computed",
                reply.recompiled ? ", recompiled" : "");
    printSimResult(reply.result);
    return reply.result.ok ? 0 : 1;
  }

  std::fprintf(stderr, "unknown client action '%s'\n", action.c_str());
  return 2;
}

// -------------------------------------------------------- coordinator

/// `mira-cli coordinate`: run a corpus manifest across TCP worker
/// daemons with shard leases and failover (src/fleet/coordinator.h,
/// docs/FLEET.md). Exit codes follow the client contract: 0 ok, 1 the
/// work itself failed (daemon rejection or failing entries in the
/// merged report), 3 no worker was ever reachable, 4 the fleet died
/// mid-run.
int cmdCoordinate(std::vector<std::string> args) {
  CommonFlags flags;
  if (!parseFlags(args, flags) || !args.empty())
    return 2;
  if (flags.manifestPaths.size() != 1) {
    std::fprintf(stderr, "coordinate requires exactly one --manifest FILE\n");
    return 2;
  }
  if (flags.workersSpec.empty()) {
    std::fprintf(stderr,
                 "coordinate requires --workers host:port[,host:port...]\n");
    return 2;
  }

  fleet::CoordinatorOptions options;
  std::string error;
  if (!fleet::parseWorkerList(flags.workersSpec, options.workers, error)) {
    std::fprintf(stderr, "--workers: %s\n", error.c_str());
    return 2;
  }
  if (!readFileBytes(flags.manifestPaths[0], options.manifestBytes))
    return kExitTrouble;
  if (!flags.sincePath.empty() &&
      !readFileBytes(flags.sincePath, options.sinceBytes))
    return kExitTrouble;
  options.root = flags.rootOverride;
  options.options = optionsFor(flags);
  options.shardCount = flags.shardCount;
  options.leaseTimeoutMillis =
      static_cast<std::uint32_t>(flags.leaseTimeoutSeconds * 1000.0);
  options.connectTimeoutMillis =
      static_cast<int>(flags.connectTimeoutSeconds * 1000.0);
  options.secret = flags.secret;
  options.metricsFile = flags.metricsFile;
  if (flags.progress)
    options.onEvent = [](const std::string &line) {
      // Lease traffic is operator feedback, not results: stderr, so
      // stdout stays byte-comparable with and without --progress.
      std::fprintf(stderr, "fleet: %s\n", line.c_str());
    };

  core::MetricsRegistry metrics;
  const fleet::CoordinatorResult result =
      fleet::runCoordinator(options, metrics);
  if (result.status != fleet::CoordinatorStatus::ok) {
    // Same one-line diagnostic discipline as `mira-cli client`.
    std::fprintf(stderr, "mira-cli coordinate: %s\n", result.error.c_str());
    switch (result.status) {
    case fleet::CoordinatorStatus::connectFailed:
      return 3;
    case fleet::CoordinatorStatus::transportFailed:
      return 4;
    default:
      return 1;
    }
  }

  for (const auto &entry : result.report.entries)
    std::printf("%-24s | %-6s | %016llx\n", entry.name.c_str(),
                entry.ok ? "ok" : "FAILED",
                static_cast<unsigned long long>(entry.key));
  printReportSummary(result.report);
  // The merged bytes go to disk untouched: byte-identical to a local
  // 1-process `batch --manifest --report` run by the fleet contract.
  if (!flags.reportPath.empty() &&
      !writeFileBytes(flags.reportPath, result.reportBytes))
    return 1;
  return result.report.stats.failures == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage(argv[0]);
  std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  int result = 2;
  if (command == "analyze")
    result = cmdAnalyze(std::move(args));
  else if (command == "batch")
    result = cmdBatch(std::move(args));
  else if (command == "coverage")
    result = cmdCoverage(std::move(args));
  else if (command == "simulate")
    result = cmdSimulate(std::move(args));
  else if (command == "manifest")
    result = cmdManifest(std::move(args));
  else if (command == "cache")
    result = cmdCache(std::move(args));
  else if (command == "serve")
    result = cmdServe(std::move(args));
  else if (command == "client")
    result = cmdClient(std::move(args));
  else if (command == "coordinate")
    result = cmdCoordinate(std::move(args));
  if (result == kExitTrouble)
    return 2; // specific message already printed; no usage dump
  return result == 2 ? usage(argv[0]) : result;
}
