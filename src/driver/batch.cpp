#include "driver/batch.h"

#include <atomic>
#include <chrono>

#include "support/hash.h"

namespace mira::driver {

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

} // namespace

std::uint64_t requestKey(const AnalysisRequest &request) {
  // Tripwire: adding a field to either options struct changes its size;
  // update the fingerprint below (and the driver_test key tests), then
  // adjust these expected sizes.
  static_assert(sizeof(mir::CompilerOptions) == 2 &&
                    sizeof(metrics::MetricOptions) == 1,
                "options gained a field: requestKey must hash it too");
  std::uint64_t key = fnv1a(request.source);
  const core::MiraOptions &o = request.options;
  std::uint8_t flags = 0;
  flags |= o.compile.compiler.optimize ? 1 : 0;
  flags |= o.compile.compiler.vectorize ? 2 : 0;
  flags |= o.metrics.assumeBranchesTaken ? 4 : 0;
  key = fnv1a(&flags, sizeof(flags), key);
  if (o.arch)
    key = fnv1a(o.arch->name, key);
  return key;
}

BatchAnalyzer::BatchAnalyzer(BatchOptions options)
    : options_(options), pool_(options.threads) {}

std::size_t BatchAnalyzer::cacheSize() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

void BatchAnalyzer::clearCache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
}

BatchAnalyzer::CacheValue
BatchAnalyzer::computeValue(const AnalysisRequest &request) {
  CacheValue value;
  value.producerName = request.name;
  // The pipeline reports through diagnostics, but an escaping exception
  // (e.g. bad_alloc) must fail one request, not terminate the pool.
  try {
    DiagnosticEngine diags;
    auto result = core::analyzeSource(request.source, request.name,
                                      request.options, diags);
    value.diagnostics = diags.str();
    if (result)
      value.analysis = std::make_shared<const core::AnalysisResult>(
          std::move(*result));
  } catch (const std::exception &e) {
    value.analysis = nullptr;
    value.diagnostics = request.name + ": internal error: " + e.what();
  }
  return value;
}

AnalysisOutcome BatchAnalyzer::analyzeOne(const AnalysisRequest &request) {
  AnalysisOutcome outcome;
  outcome.name = request.name;
  auto start = std::chrono::steady_clock::now();

  if (!options_.useCache) {
    CacheValue value = computeValue(request);
    outcome.ok = value.analysis != nullptr;
    outcome.analysis = value.analysis;
    outcome.diagnostics = std::move(value.diagnostics);
    outcome.seconds = secondsSince(start);
    return outcome;
  }

  const std::uint64_t key = requestKey(request);
  std::promise<std::shared_ptr<const CacheValue>> promise;
  CacheFuture future;
  bool producer = false;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      producer = true;
      future = promise.get_future().share();
      cache_.emplace(key, future);
    } else {
      future = it->second;
    }
  }

  if (producer) {
    try {
      promise.set_value(std::make_shared<const CacheValue>(
          computeValue(request)));
    } catch (...) {
      // Even allocating the cache entry failed; waiters see the same
      // exception through the shared future instead of blocking forever.
      promise.set_exception(std::current_exception());
    }
  }

  // Non-producers wait here; the producer task is by construction already
  // executing on some worker, so the wait always terminates.
  std::shared_ptr<const CacheValue> value;
  try {
    value = future.get();
  } catch (const std::exception &e) {
    outcome.ok = false;
    outcome.diagnostics = request.name + ": internal error: " + e.what();
    outcome.seconds = secondsSince(start);
    return outcome;
  }
  outcome.cacheHit = !producer;
  outcome.ok = value->analysis != nullptr;
  outcome.analysis = value->analysis;
  outcome.diagnostics = value->diagnostics;
  // Cached diagnostics cite the producing request's file name; when an
  // identically-sourced request under a different name hits the entry,
  // say where the text came from instead of misattributing it.
  if (outcome.cacheHit && !outcome.diagnostics.empty() &&
      value->producerName != request.name)
    outcome.diagnostics = "(diagnostics from identical source '" +
                          value->producerName + "')\n" +
                          outcome.diagnostics;
  outcome.seconds = secondsSince(start);
  return outcome;
}

std::vector<AnalysisOutcome>
BatchAnalyzer::run(const std::vector<AnalysisRequest> &requests) {
  auto start = std::chrono::steady_clock::now();
  std::vector<AnalysisOutcome> outcomes(requests.size());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    pool_.submit([this, &requests, &outcomes, i] {
      outcomes[i] = analyzeOne(requests[i]);
    });
  }
  pool_.waitIdle();

  stats_ = BatchStats{};
  stats_.requests = requests.size();
  for (const AnalysisOutcome &outcome : outcomes) {
    if (!outcome.ok)
      ++stats_.failures;
    if (options_.useCache) {
      if (outcome.cacheHit)
        ++stats_.cacheHits;
      else
        ++stats_.cacheMisses;
    }
  }
  stats_.wallSeconds = secondsSince(start);
  return outcomes;
}

} // namespace mira::driver
