#include "driver/batch.h"

#include <chrono>
#include <condition_variable>

#include "model/serialize.h"
#include "support/binary_io.h"
#include "support/hash.h"

namespace mira::driver {

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

} // namespace

std::uint64_t requestKey(const AnalysisRequest &request) {
  // Tripwire: adding a field to either options struct changes its size;
  // update the fingerprint below (and the driver_test key tests), then
  // adjust these expected sizes. Execution-strategy fields of
  // MiraOptions (modelPool) and everything in BatchOptions must stay OUT
  // of the key: they never change what is computed, and hashing them
  // would make the on-disk cache miss across equivalent configurations.
  static_assert(sizeof(mir::CompilerOptions) == 2 &&
                    sizeof(metrics::MetricOptions) == 1,
                "options gained a field: requestKey must hash it too");
  std::uint64_t key = fnv1a(request.source);
  const core::MiraOptions &o = request.options;
  std::uint8_t flags = 0;
  flags |= o.compile.compiler.optimize ? 1 : 0;
  flags |= o.compile.compiler.vectorize ? 2 : 0;
  flags |= o.metrics.assumeBranchesTaken ? 4 : 0;
  key = fnv1a(&flags, sizeof(flags), key);
  if (o.arch)
    key = fnv1a(o.arch->name, key);
  return key;
}

BatchAnalyzer::BatchAnalyzer(BatchOptions options)
    : options_(std::move(options)), pool_(options_.threads) {
  if (options_.modelThreads > 1)
    model_pool_ = std::make_unique<ThreadPool>(options_.modelThreads);
  if (options_.useCache && !options_.cacheDir.empty())
    disk_ = std::make_unique<CacheStore>(options_.cacheDir,
                                         options_.cacheBytesLimit);
}

std::size_t BatchAnalyzer::cacheSize() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

void BatchAnalyzer::clearCache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
}

// Payload layout (versioned as a whole by the CacheStore header — bump
// kCacheSchemaVersion when changing this):
//   [ok u8][producerName str][diagnostics str][model bytes when ok]
// Shared by the disk cache and the serving protocol (docs/PROTOCOL.md),
// which is what makes a daemon-served model byte-identical to a
// disk-cached one by construction.
std::string serializeOutcomePayload(const core::AnalysisResult *analysis,
                                    const std::string &diagnostics,
                                    const std::string &producerName) {
  std::string out;
  bio::putU8(out, analysis ? 1 : 0);
  bio::putString(out, producerName);
  bio::putString(out, diagnostics);
  if (analysis)
    model::serializeModel(analysis->model, out);
  return out;
}

bool deserializeOutcomePayload(
    const std::string &payload,
    std::shared_ptr<const core::AnalysisResult> &analysis,
    std::string &diagnostics, std::string &producerName) {
  bio::Reader r{payload, 0};
  std::uint8_t ok = 0;
  if (!r.u8(ok) || ok > 1)
    return false;
  if (!r.str(producerName) || !r.str(diagnostics))
    return false;
  if (!ok) {
    analysis = nullptr;
    return r.remaining() == 0;
  }
  auto result = std::make_shared<core::AnalysisResult>();
  std::size_t offset = r.offset;
  if (!model::deserializeModel(payload, offset, result->model))
    return false;
  if (offset != payload.size())
    return false; // trailing garbage: treat as corrupt
  analysis = std::move(result);
  return true;
}

BatchAnalyzer::CacheValue
BatchAnalyzer::computeValue(const AnalysisRequest &request) {
  CacheValue value;
  value.producerName = request.name;
  // The pipeline reports through diagnostics, but an escaping exception
  // (e.g. bad_alloc) must fail one request, not terminate the pool.
  try {
    DiagnosticEngine diags;
    core::MiraOptions options = request.options;
    if (model_pool_)
      options.modelPool = model_pool_.get();
    auto result =
        core::analyzeSource(request.source, request.name, options, diags);
    value.diagnostics = diags.str();
    if (result)
      value.analysis = std::make_shared<const core::AnalysisResult>(
          std::move(*result));
  } catch (const std::exception &e) {
    value.analysis = nullptr;
    value.diagnostics = request.name + ": internal error: " + e.what();
    value.transientFailure = true;
  }
  return value;
}

BatchAnalyzer::CacheValue
BatchAnalyzer::produceValue(const AnalysisRequest &request,
                            std::uint64_t key) {
  if (disk_) {
    if (auto payload = disk_->load(key)) {
      CacheValue value;
      value.fromDisk = true;
      if (deserializeOutcomePayload(*payload, value.analysis,
                                    value.diagnostics, value.producerName)) {
        disk_hits_.fetch_add(1, std::memory_order_relaxed);
        return value;
      }
      // Validated by the store but structurally unusable (e.g. written
      // by a build with different serializer semantics under the same
      // schema version — a bug, but one that must degrade to a
      // recompute, not a failure).
    }
    disk_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  CacheValue value = computeValue(request);
  // Deterministic results (models and compile errors alike) persist;
  // exception-path failures do not — caching a one-off bad_alloc would
  // replay it on every future run of this source.
  if (disk_ && !value.transientFailure) {
    const std::string payload = serializeOutcomePayload(
        value.analysis.get(), value.diagnostics, value.producerName);
    if (disk_->store(key, payload))
      disk_stores_.fetch_add(1, std::memory_order_relaxed);
  }
  return value;
}

AnalysisOutcome BatchAnalyzer::analyzeSingle(const AnalysisRequest &request) {
  return analyzeOne(request);
}

std::vector<AnalysisOutcome>
BatchAnalyzer::analyzeMany(const std::vector<AnalysisRequest> &requests) {
  std::vector<AnalysisOutcome> outcomes(requests.size());
  if (requests.empty())
    return outcomes;
  // A per-call latch instead of pool_.waitIdle(): concurrent callers
  // must each wait for exactly their own tasks. Workers hold shared
  // ownership so the state outlives this frame even if a worker is
  // descheduled between its decrement and its return.
  struct Latch {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = requests.size();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    pool_.submit([this, &requests, &outcomes, latch, i] {
      outcomes[i] = analyzeOne(requests[i]);
      std::lock_guard<std::mutex> lock(latch->mutex);
      if (--latch->remaining == 0)
        latch->done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch->mutex);
  latch->done.wait(lock, [&] { return latch->remaining == 0; });
  return outcomes;
}

AnalysisOutcome BatchAnalyzer::analyzeOne(const AnalysisRequest &request) {
  AnalysisOutcome outcome;
  outcome.name = request.name;
  auto start = std::chrono::steady_clock::now();

  if (!options_.useCache) {
    CacheValue value = computeValue(request);
    outcome.ok = value.analysis != nullptr;
    outcome.analysis = value.analysis;
    outcome.diagnostics = std::move(value.diagnostics);
    outcome.seconds = secondsSince(start);
    return outcome;
  }

  const std::uint64_t key = requestKey(request);
  std::promise<std::shared_ptr<const CacheValue>> promise;
  CacheFuture future;
  bool producer = false;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      producer = true;
      future = promise.get_future().share();
      cache_.emplace(key, future);
    } else {
      future = it->second;
    }
  }

  if (producer) {
    bool dropEntry = false;
    try {
      auto value = std::make_shared<const CacheValue>(
          produceValue(request, key));
      dropEntry = value->transientFailure;
      promise.set_value(std::move(value));
    } catch (...) {
      // Even allocating the cache entry failed; waiters see the same
      // exception through the shared future instead of blocking forever.
      promise.set_exception(std::current_exception());
      dropEntry = true;
    }
    if (dropEntry) {
      // Transient failures must not outlive this batch: duplicates
      // already in flight share the failure (they were concurrent with
      // it), but later run()s and future duplicates must recompute
      // rather than replay a one-off bad_alloc forever.
      std::lock_guard<std::mutex> lock(cache_mutex_);
      cache_.erase(key);
    }
  }

  // Non-producers wait here; the producer task is by construction already
  // executing on some worker, so the wait always terminates.
  std::shared_ptr<const CacheValue> value;
  try {
    value = future.get();
  } catch (const std::exception &e) {
    outcome.ok = false;
    outcome.diagnostics = request.name + ": internal error: " + e.what();
    outcome.seconds = secondsSince(start);
    return outcome;
  }
  outcome.cacheHit = !producer || value->fromDisk;
  outcome.ok = value->analysis != nullptr;
  outcome.analysis = value->analysis;
  outcome.diagnostics = value->diagnostics;
  // Cached diagnostics cite the producing request's file name; when an
  // identically-sourced request under a different name hits the entry,
  // say where the text came from instead of misattributing it.
  if (outcome.cacheHit && !outcome.diagnostics.empty() &&
      value->producerName != request.name)
    outcome.diagnostics = "(diagnostics from identical source '" +
                          value->producerName + "')\n" +
                          outcome.diagnostics;
  outcome.seconds = secondsSince(start);
  return outcome;
}

std::vector<AnalysisOutcome>
BatchAnalyzer::run(const std::vector<AnalysisRequest> &requests) {
  auto start = std::chrono::steady_clock::now();
  std::vector<AnalysisOutcome> outcomes(requests.size());
  disk_hits_.store(0, std::memory_order_relaxed);
  disk_misses_.store(0, std::memory_order_relaxed);
  disk_stores_.store(0, std::memory_order_relaxed);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    pool_.submit([this, &requests, &outcomes, i] {
      outcomes[i] = analyzeOne(requests[i]);
    });
  }
  pool_.waitIdle();

  stats_ = BatchStats{};
  stats_.requests = requests.size();
  for (const AnalysisOutcome &outcome : outcomes) {
    if (!outcome.ok)
      ++stats_.failures;
    if (options_.useCache) {
      if (outcome.cacheHit)
        ++stats_.cacheHits;
      else
        ++stats_.cacheMisses;
    }
  }
  stats_.diskHits = disk_hits_.load(std::memory_order_relaxed);
  stats_.diskMisses = disk_misses_.load(std::memory_order_relaxed);
  stats_.diskStores = disk_stores_.load(std::memory_order_relaxed);
  stats_.wallSeconds = secondsSince(start);
  return outcomes;
}

} // namespace mira::driver
