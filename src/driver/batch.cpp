#include "driver/batch.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>

#include <stdexcept>

#include "model/serialize.h"
#include "support/binary_io.h"
#include "support/fault_injection.h"
#include "support/hash.h"
#include "symbolic/interner.h"

namespace mira::driver {

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

} // namespace

std::uint64_t requestKeyFromContentHash(std::uint64_t contentHash,
                                        const core::MiraOptions &o) {
  // Tripwire: adding a field to either options struct changes its size;
  // update the fingerprint below (and the driver_test key tests), then
  // adjust these expected sizes. Execution-strategy fields of
  // MiraOptions (modelPool), the artifact mask, simulation arguments,
  // and everything in BatchOptions must stay OUT of the key: they never
  // change what the pipeline computes, and hashing them would make the
  // on-disk cache miss across equivalent configurations.
  static_assert(sizeof(mir::CompilerOptions) == 2 &&
                    sizeof(metrics::MetricOptions) == 1,
                "options gained a field: requestKey must hash it too");
  std::uint64_t key = contentHash;
  std::uint8_t flags = 0;
  flags |= o.compile.compiler.optimize ? 1 : 0;
  flags |= o.compile.compiler.vectorize ? 2 : 0;
  flags |= o.metrics.assumeBranchesTaken ? 4 : 0;
  key = fnv1a(&flags, sizeof(flags), key);
  if (o.arch)
    key = fnv1a(o.arch->name, key);
  return key;
}

std::uint64_t requestKey(const core::AnalysisSpec &spec) {
  // The manifest layer (corpus/manifest.h) relies on this exact
  // factoring: its stored content hash is fnv1a(source), so hash + the
  // continuation below reproduces the key without the source bytes.
  return requestKeyFromContentHash(fnv1a(spec.source), spec.options);
}

std::uint64_t requestKey(const AnalysisRequest &request) {
  core::AnalysisSpec spec;
  spec.source = request.source;
  spec.options = request.options;
  return requestKey(spec);
}

// --------------------------------------------------- shard planning

bool parseShardSpec(const std::string &text, ShardSpec &shard) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == text.size())
    return false;
  const std::string indexDigits = text.substr(0, slash);
  const std::string countDigits = text.substr(slash + 1);
  if (indexDigits.find_first_not_of("0123456789") != std::string::npos ||
      countDigits.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  const unsigned long long index =
      std::strtoull(indexDigits.c_str(), nullptr, 10);
  const unsigned long long count =
      std::strtoull(countDigits.c_str(), nullptr, 10);
  // ERANGE saturates to ULLONG_MAX — an overflowed shard count would be
  // silently accepted and match (almost) no keys.
  if (errno == ERANGE || index < 1 || count < 1 || index > count)
    return false;
  shard.index = static_cast<std::size_t>(index - 1); // CLI is 1-based
  shard.count = static_cast<std::size_t>(count);
  return true;
}

bool keyInShard(std::uint64_t key, const ShardSpec &shard) {
  if (shard.count <= 1)
    return true;
  // Finalize (splitmix64) before the modulo: request keys have low-bit
  // structure (whole corpora share key % 4), and a raw `key % count`
  // then leaves entire shards empty — fatal for a fleet run, where an
  // empty shard means an idle worker and a loaded one does everything.
  std::uint64_t mixed = key;
  mixed ^= mixed >> 30;
  mixed *= 0xbf58476d1ce4e5b9ull;
  mixed ^= mixed >> 27;
  mixed *= 0x94d049bb133111ebull;
  mixed ^= mixed >> 31;
  return mixed % shard.count == shard.index;
}

ManifestSelection selectManifestEntries(const corpus::Manifest &manifest,
                                        const corpus::Manifest *since,
                                        const core::MiraOptions &options,
                                        const ShardSpec &shard) {
  ManifestSelection selection;
  std::vector<corpus::ManifestEntry> candidates;
  if (since) {
    const corpus::ManifestDiff diff = corpus::diffManifests(*since, manifest);
    selection.added = diff.added.size();
    selection.changed = diff.changed.size();
    selection.removed = diff.removed.size();
    // Both diff vectors are path-sorted; merging keeps manifest order,
    // which is what makes reports byte-comparable across invocations.
    std::merge(diff.added.begin(), diff.added.end(), diff.changed.begin(),
               diff.changed.end(), std::back_inserter(candidates),
               [](const corpus::ManifestEntry &a,
                  const corpus::ManifestEntry &b) { return a.path < b.path; });
  } else {
    candidates = manifest.entries;
    selection.added = candidates.size();
  }
  selection.candidates = candidates.size();
  for (corpus::ManifestEntry &entry : candidates) {
    if (keyInShard(requestKeyFromContentHash(entry.contentHash, options),
                   shard))
      selection.entries.push_back(std::move(entry));
  }
  return selection;
}

// ------------------------------------------- stats & report merging

BatchStats mergeBatchStats(const std::vector<BatchStats> &parts) {
  BatchStats merged;
  for (const BatchStats &part : parts) {
    merged.requests += part.requests;
    merged.failures += part.failures;
    merged.cacheHits += part.cacheHits;
    merged.cacheMisses += part.cacheMisses;
    merged.diskHits += part.diskHits;
    merged.diskMisses += part.diskMisses;
    merged.diskStores += part.diskStores;
    merged.modelArtifacts += part.modelArtifacts;
    merged.programArtifacts += part.programArtifacts;
    merged.coverageArtifacts += part.coverageArtifacts;
    merged.simulationArtifacts += part.simulationArtifacts;
    merged.coverageFromCache += part.coverageFromCache;
    merged.recompiles += part.recompiles;
    // Shards run concurrently: their wall clocks overlap, so the batch
    // took as long as its slowest shard, not the sum.
    merged.wallSeconds = std::max(merged.wallSeconds, part.wallSeconds);
  }
  return merged;
}

BatchStats tallyBatchStats(const std::vector<core::Artifacts> &results,
                           bool useCache) {
  BatchStats stats;
  stats.requests = results.size();
  for (const core::Artifacts &artifacts : results) {
    if (!artifacts.ok)
      ++stats.failures;
    if (useCache) {
      if (artifacts.cacheHit)
        ++stats.cacheHits;
      else
        ++stats.cacheMisses;
    }
    if ((artifacts.requested & core::kArtifactModel) && artifacts.model)
      ++stats.modelArtifacts;
    if ((artifacts.requested & core::kArtifactProgram) && artifacts.program)
      ++stats.programArtifacts;
    if ((artifacts.requested & core::kArtifactCoverage) && artifacts.coverage)
      ++stats.coverageArtifacts;
    if (artifacts.simulation)
      ++stats.simulationArtifacts;
    if (artifacts.coverageFromCache)
      ++stats.coverageFromCache;
    if (artifacts.recompiled)
      ++stats.recompiles;
    if (artifacts.diskHit)
      ++stats.diskHits;
    if (artifacts.diskMiss)
      ++stats.diskMisses;
    if (artifacts.diskStored)
      ++stats.diskStores;
  }
  return stats;
}

namespace {

// Report file magic: the bytes "MirR", read as a little-endian u32.
constexpr std::uint32_t kReportMagic = 0x5272694du;
constexpr std::uint32_t kReportVersion = 1;

void putReportStats(std::string &out, const BatchStats &stats) {
  // Every counter except wallSeconds, in declaration order. Timing is
  // deliberately absent: a report must be byte-identical across runs
  // and process counts for the shard-merge correctness check.
  bio::putU64(out, stats.requests);
  bio::putU64(out, stats.failures);
  bio::putU64(out, stats.cacheHits);
  bio::putU64(out, stats.cacheMisses);
  bio::putU64(out, stats.diskHits);
  bio::putU64(out, stats.diskMisses);
  bio::putU64(out, stats.diskStores);
  bio::putU64(out, stats.modelArtifacts);
  bio::putU64(out, stats.programArtifacts);
  bio::putU64(out, stats.coverageArtifacts);
  bio::putU64(out, stats.simulationArtifacts);
  bio::putU64(out, stats.coverageFromCache);
  bio::putU64(out, stats.recompiles);
}

bool readReportStats(bio::Reader &r, BatchStats &stats) {
  std::uint64_t values[13];
  for (std::uint64_t &value : values)
    if (!r.u64(value))
      return false;
  stats = BatchStats{};
  stats.requests = static_cast<std::size_t>(values[0]);
  stats.failures = static_cast<std::size_t>(values[1]);
  stats.cacheHits = static_cast<std::size_t>(values[2]);
  stats.cacheMisses = static_cast<std::size_t>(values[3]);
  stats.diskHits = static_cast<std::size_t>(values[4]);
  stats.diskMisses = static_cast<std::size_t>(values[5]);
  stats.diskStores = static_cast<std::size_t>(values[6]);
  stats.modelArtifacts = static_cast<std::size_t>(values[7]);
  stats.programArtifacts = static_cast<std::size_t>(values[8]);
  stats.coverageArtifacts = static_cast<std::size_t>(values[9]);
  stats.simulationArtifacts = static_cast<std::size_t>(values[10]);
  stats.coverageFromCache = static_cast<std::size_t>(values[11]);
  stats.recompiles = static_cast<std::size_t>(values[12]);
  return true;
}

} // namespace

std::string serializeBatchReport(const BatchReport &report) {
  std::string out;
  bio::putU32(out, kReportMagic);
  bio::putU32(out, kReportVersion);
  putReportStats(out, report.stats);
  bio::putU32(out, static_cast<std::uint32_t>(report.entries.size()));
  for (const BatchReportEntry &entry : report.entries) {
    bio::putString(out, entry.name);
    bio::putU64(out, entry.key);
    bio::putU8(out, entry.ok ? 1 : 0);
  }
  bio::putU64(out, fnv1a(out));
  return out;
}

bool deserializeBatchReport(const std::string &bytes, BatchReport &report,
                            std::string &error) {
  report = BatchReport{};
  bio::Reader r{bytes, 0};
  std::uint32_t magic = 0, version = 0, count = 0;
  if (!r.u32(magic) || magic != kReportMagic) {
    error = "not a Mira batch report (bad magic)";
    return false;
  }
  if (!r.u32(version) || version != kReportVersion) {
    error = "unsupported report version " + std::to_string(version);
    return false;
  }
  if (!readReportStats(r, report.stats)) {
    error = "truncated report counter block";
    return false;
  }
  if (!r.u32(count)) {
    error = "truncated report entry count";
    return false;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    BatchReportEntry entry;
    std::uint8_t ok = 0;
    if (!r.str(entry.name) || !r.u64(entry.key) || !r.u8(ok) || ok > 1) {
      error = "truncated report entry " + std::to_string(i);
      return false;
    }
    entry.ok = ok == 1;
    report.entries.push_back(std::move(entry));
  }
  const std::size_t checksummed = r.offset;
  std::uint64_t checksum = 0;
  if (!r.u64(checksum) || r.remaining() != 0) {
    error = "truncated or oversized report trailer";
    return false;
  }
  if (fnv1a(bytes.data(), checksummed) != checksum) {
    error = "report checksum mismatch (corrupt or torn file)";
    return false;
  }
  return true;
}

BatchReport mergeBatchReports(const std::vector<BatchReport> &parts) {
  BatchReport merged;
  std::vector<BatchStats> stats;
  stats.reserve(parts.size());
  for (const BatchReport &part : parts) {
    stats.push_back(part.stats);
    merged.entries.insert(merged.entries.end(), part.entries.begin(),
                          part.entries.end());
  }
  merged.stats = mergeBatchStats(stats);
  // (name, key) order == manifest order for manifest-driven shards:
  // manifests are path-sorted and each shard preserved that order over
  // its disjoint subset, so this sort is what makes the merged report
  // byte-identical to a single-process run's.
  std::sort(merged.entries.begin(), merged.entries.end(),
            [](const BatchReportEntry &a, const BatchReportEntry &b) {
              return a.name != b.name ? a.name < b.name : a.key < b.key;
            });
  return merged;
}

// ------------------------------------------------------ payload codecs

// v1 payload layout (schema 1, still read from old disk entries and
// written to v1 wire clients):
//   [ok u8][producerName str][diagnostics str][model bytes when ok]
std::string serializeOutcomePayloadV1(const core::AnalysisResult *analysis,
                                      const std::string &diagnostics,
                                      const std::string &producerName) {
  std::string out;
  bio::putU8(out, analysis ? 1 : 0);
  bio::putString(out, producerName);
  bio::putString(out, diagnostics);
  if (analysis)
    model::serializeModel(analysis->model, out);
  return out;
}

bool deserializeOutcomePayloadV1(
    const std::string &payload,
    std::shared_ptr<const core::AnalysisResult> &analysis,
    std::string &diagnostics, std::string &producerName) {
  bio::Reader r{payload, 0};
  std::uint8_t ok = 0;
  if (!r.u8(ok) || ok > 1)
    return false;
  if (!r.str(producerName) || !r.str(diagnostics))
    return false;
  if (!ok) {
    analysis = nullptr;
    return r.remaining() == 0;
  }
  auto result = std::make_shared<core::AnalysisResult>();
  std::size_t offset = r.offset;
  if (!model::deserializeModel(payload, offset, result->model))
    return false;
  if (offset != payload.size())
    return false; // trailing garbage: treat as corrupt
  analysis = std::move(result);
  return true;
}

// v2 payload layout (schema 2 — bump kCacheSchemaVersion when changing
// this): [ok u8][producerName str][diagnostics str] then, when ok,
// [hasCoverage u8][loops u64][statements u64][inLoop u64]?[model bytes].
// Shared by the disk cache and the v2 wire protocol (docs/PROTOCOL.md),
// which is what makes a daemon-served result byte-identical to a
// disk-cached one by construction. hasCoverage is 0 only for values that
// round-tripped through a v1 entry (the summary was never stored).
std::string serializeArtifactPayload(const model::PerformanceModel *model,
                                     const sema::LoopCoverage *coverage,
                                     const std::string &diagnostics,
                                     const std::string &producerName) {
  std::string out;
  bio::putU8(out, model ? 1 : 0);
  bio::putString(out, producerName);
  bio::putString(out, diagnostics);
  if (!model)
    return out;
  bio::putU8(out, coverage ? 1 : 0);
  if (coverage) {
    bio::putU64(out, coverage->loops);
    bio::putU64(out, coverage->statements);
    bio::putU64(out, coverage->inLoopStatements);
  }
  model::serializeModel(*model, out);
  return out;
}

bool deserializeArtifactPayload(
    const std::string &payload,
    std::shared_ptr<const core::AnalysisResult> &analysis,
    std::optional<sema::LoopCoverage> &coverage, std::string &diagnostics,
    std::string &producerName) {
  coverage.reset();
  bio::Reader r{payload, 0};
  std::uint8_t ok = 0;
  if (!r.u8(ok) || ok > 1)
    return false;
  if (!r.str(producerName) || !r.str(diagnostics))
    return false;
  if (!ok) {
    analysis = nullptr;
    return r.remaining() == 0;
  }
  std::uint8_t hasCoverage = 0;
  if (!r.u8(hasCoverage) || hasCoverage > 1)
    return false;
  if (hasCoverage) {
    std::uint64_t loops = 0, statements = 0, inLoop = 0;
    if (!r.u64(loops) || !r.u64(statements) || !r.u64(inLoop))
      return false;
    sema::LoopCoverage summary;
    summary.loops = static_cast<std::size_t>(loops);
    summary.statements = static_cast<std::size_t>(statements);
    summary.inLoopStatements = static_cast<std::size_t>(inLoop);
    coverage = summary;
  }
  auto result = std::make_shared<core::AnalysisResult>();
  std::size_t offset = r.offset;
  if (!model::deserializeModel(payload, offset, result->model))
    return false;
  if (offset != payload.size())
    return false; // trailing garbage: treat as corrupt
  analysis = std::move(result);
  return true;
}

// -------------------------------------------------------- BatchAnalyzer

void publishInternGauges(core::MetricsRegistry &metrics) {
  const symbolic::InternStats stats = symbolic::ExprInterner::globalStats();
  metrics.gauge("intern_hits").set(stats.hits);
  metrics.gauge("intern_misses").set(stats.misses);
  metrics.gauge("intern_nodes").set(stats.nodes);
}

BatchAnalyzer::BatchAnalyzer(BatchOptions options)
    : options_(std::move(options)), pool_(options_.threads),
      owned_metrics_(options_.metrics ? nullptr : new core::MetricsRegistry()),
      metrics_(options_.metrics ? options_.metrics : owned_metrics_.get()),
      requests_(metrics_->counter("analyzer_requests_total")),
      failures_(metrics_->counter("analyzer_failures_total")),
      cache_hits_(metrics_->counter("analyzer_cache_hits_total")),
      computed_(metrics_->counter("analyzer_computed_total")),
      disk_hits_(metrics_->counter("analyzer_disk_hits_total")),
      disk_misses_(metrics_->counter("analyzer_disk_misses_total")),
      disk_stores_(metrics_->counter("analyzer_disk_stores_total")),
      coverage_from_cache_(
          metrics_->counter("analyzer_coverage_from_cache_total")),
      recompiles_(metrics_->counter("analyzer_recompiles_total")) {
  if (options_.modelThreads > 1)
    model_pool_ = std::make_unique<ThreadPool>(options_.modelThreads);
  if (options_.useCache && !options_.cacheDir.empty())
    disk_ = std::make_unique<CacheStore>(options_.cacheDir,
                                         options_.cacheBytesLimit);
  // Contained task exceptions are a should-not-happen signal (computeValue
  // catches at the task boundary), so surface them in the shared registry
  // rather than letting them vanish into the pool.
  core::MetricsRegistry::Counter &poolExceptions =
      metrics_->counter("pool_task_exceptions_total");
  pool_.setExceptionHandler([&poolExceptions] { poolExceptions.increment(); });
  if (model_pool_)
    model_pool_->setExceptionHandler(
        [&poolExceptions] { poolExceptions.increment(); });
}

std::size_t BatchAnalyzer::cacheSize() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

void BatchAnalyzer::clearCache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
}

core::AnalysisSpec BatchAnalyzer::toSpec(const AnalysisRequest &request) {
  core::AnalysisSpec spec;
  spec.name = request.name;
  spec.source = request.source;
  spec.options = request.options;
  spec.artifacts = core::kArtifactDefault;
  return spec;
}

AnalysisOutcome BatchAnalyzer::toOutcome(core::Artifacts &&artifacts) {
  AnalysisOutcome outcome;
  outcome.name = std::move(artifacts.name);
  outcome.ok = artifacts.ok;
  outcome.cacheHit = artifacts.cacheHit;
  outcome.analysis = std::move(artifacts.resultV1);
  outcome.diagnostics = std::move(artifacts.diagnostics);
  outcome.seconds = artifacts.seconds;
  return outcome;
}

BatchAnalyzer::CacheValue
BatchAnalyzer::computeValue(const core::AnalysisSpec &spec) {
  CacheValue value;
  value.producerName = spec.name;
  // The pipeline reports through diagnostics, but an escaping exception
  // (e.g. bad_alloc) must fail one request, not terminate the pool.
  try {
    // Injection point: exercises the transient-failure path (and, under
    // a crash rule, death at an arbitrary point mid-batch).
    if (fault::shouldFail("compute"))
      throw std::runtime_error("injected compute fault");
    core::AnalysisSpec full = spec;
    if (options_.useCache) {
      // Full compute populates every cache layer regardless of the
      // requesting mask: the model (the expensive stage), the coverage
      // summary (one cheap AST walk), and the live program — later
      // requests for any mask are then free. Simulation is per-call
      // and deliberately excluded (fulfill() runs it on the handle).
      full.artifacts = core::kArtifactModel | core::kArtifactDiagnostics |
                       core::kArtifactProgram | core::kArtifactCoverage;
    } else {
      // No cache to populate: run only what this request asked for
      // (minus simulation, which fulfill() executes), so a no-cache
      // coverage or simulate request never pays for model generation.
      full.artifacts = (spec.artifacts & ~core::kArtifactSimulation) |
                       core::kArtifactDiagnostics;
    }
    if (model_pool_)
      full.options.modelPool = model_pool_.get();
    DiagnosticEngine diags;
    core::Artifacts artifacts = core::analyze(full, diags);
    value.diagnostics = std::move(artifacts.diagnostics);
    if (artifacts.ok) {
      value.ok = true;
      value.analysis = std::move(artifacts.resultV1);
      value.model = std::move(artifacts.model);
      value.coverage = artifacts.coverage;
      value.program = std::move(artifacts.program);
    }
  } catch (const std::exception &e) {
    value = CacheValue{};
    value.producerName = spec.name;
    value.diagnostics = spec.name + ": internal error: " + e.what();
    value.transientFailure = true;
  }
  return value;
}

BatchAnalyzer::CacheValue
BatchAnalyzer::produceValue(const core::AnalysisSpec &spec,
                            std::uint64_t key) {
  if (disk_) {
    std::uint32_t version = 0;
    if (auto payload = disk_->load(key, version)) {
      CacheValue value;
      value.fromDisk = true;
      const bool parsed =
          version >= 2
              ? deserializeArtifactPayload(*payload, value.analysis,
                                           value.coverage, value.diagnostics,
                                           value.producerName)
              : deserializeOutcomePayloadV1(*payload, value.analysis,
                                            value.diagnostics,
                                            value.producerName);
      if (parsed) {
        value.ok = value.analysis != nullptr;
        if (value.analysis) {
          value.model = std::shared_ptr<const model::PerformanceModel>(
              value.analysis, &value.analysis->model);
          // The entry restores without the compiled program; program-
          // needing artifacts reattach it lazily at recompile cost.
          value.program = core::ProgramHandle::deferred(
              spec.source, spec.name, spec.options.compile);
        }
        disk_hits_.increment();
        return value;
      }
      // Validated by the store but structurally unusable (e.g. written
      // by a build with different serializer semantics under the same
      // schema version — a bug, but one that must degrade to a
      // recompute, not a failure).
    }
    disk_misses_.increment();
  }
  CacheValue value = computeValue(spec);
  // Deterministic results (models and compile errors alike) persist;
  // exception-path failures do not — caching a one-off bad_alloc would
  // replay it on every future run of this source.
  if (disk_ && !value.transientFailure) {
    const std::string payload = serializeArtifactPayload(
        value.model.get(), value.coverage ? &*value.coverage : nullptr,
        value.diagnostics, value.producerName);
    if (disk_->store(key, payload)) {
      disk_stores_.increment();
      value.stored = true;
    }
  }
  return value;
}

core::Artifacts BatchAnalyzer::fulfill(const core::AnalysisSpec &spec,
                                       const CacheValue &value, bool cacheHit) {
  core::Artifacts artifacts;
  artifacts.name = spec.name;
  artifacts.requested = spec.artifacts;
  artifacts.cacheHit = cacheHit;
  artifacts.ok = value.ok;
  artifacts.diagnostics = value.diagnostics;
  // Cached diagnostics cite the producing request's file name; when an
  // identically-sourced request under a different name hits the entry,
  // say where the text came from instead of misattributing it.
  if (cacheHit && !artifacts.diagnostics.empty() &&
      value.producerName != spec.name)
    artifacts.diagnostics = "(diagnostics from identical source '" +
                            value.producerName + "')\n" +
                            artifacts.diagnostics;
  artifacts.resultV1 = value.analysis;
  if (!artifacts.ok)
    return artifacts;

  if (spec.artifacts & core::kArtifactModel)
    artifacts.model = value.model;
  if (spec.artifacts & core::kArtifactProgram)
    artifacts.program = value.program;

  // A program-needing artifact materializes the handle exactly once per
  // cache value, no matter how many requests want it concurrently; only
  // the request that actually recompiled counts toward `recompiles`.
  const auto materialize = [&]() -> std::shared_ptr<const core::CompiledProgram> {
    if (!value.program)
      return nullptr;
    bool compiledNow = false;
    auto program = value.program->get(&compiledNow);
    if (compiledNow) {
      artifacts.recompiled = true;
      recompiles_.increment();
    }
    return program;
  };

  if (spec.artifacts & core::kArtifactCoverage) {
    if (value.coverage) {
      artifacts.coverage = *value.coverage;
      if (cacheHit) {
        coverage_from_cache_.increment();
        artifacts.coverageFromCache = true;
      }
    } else if (auto program = materialize()) {
      // v1 disk entry: no stored summary — recompile-on-demand.
      artifacts.coverage = sema::computeLoopCoverage(*program->unit);
    }
  } else if (value.coverage) {
    // Free to attach: the serving layers forward it to v2 payloads.
    artifacts.coverage = *value.coverage;
  }

  if (spec.artifacts & core::kArtifactSimulation) {
    if (auto program = materialize()) {
      artifacts.simulation = std::make_shared<const sim::SimResult>(
          core::simulate(*program, spec.simulation.function,
                         spec.simulation.args, spec.simulation.options));
    } else {
      sim::SimResult failed;
      failed.ok = false;
      failed.error = "compiled program unavailable (recompile failed)";
      artifacts.simulation =
          std::make_shared<const sim::SimResult>(std::move(failed));
    }
  }
  return artifacts;
}

core::Artifacts BatchAnalyzer::analyzeSpec(const core::AnalysisSpec &spec) {
  auto start = std::chrono::steady_clock::now();

  // Lifetime tallies live in the registry so concurrent entry points
  // (the daemon's analyzeArtifacts) observe the same counters that
  // runArtifacts() turns into a per-run BatchStats via deltas.
  const auto record = [this](const core::Artifacts &artifacts) {
    requests_.increment();
    if (!artifacts.ok)
      failures_.increment();
    if (options_.useCache) {
      if (artifacts.cacheHit)
        cache_hits_.increment();
      else
        computed_.increment();
    }
  };

  if (!options_.useCache) {
    CacheValue value = computeValue(spec);
    core::Artifacts artifacts = fulfill(spec, value, false);
    artifacts.seconds = secondsSince(start);
    record(artifacts);
    return artifacts;
  }

  const std::uint64_t key = requestKey(spec);
  std::promise<std::shared_ptr<const CacheValue>> promise;
  CacheFuture future;
  bool producer = false;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      producer = true;
      future = promise.get_future().share();
      cache_.emplace(key, future);
    } else {
      future = it->second;
    }
  }

  if (producer) {
    bool dropEntry = false;
    try {
      auto value = std::make_shared<const CacheValue>(
          produceValue(spec, key));
      dropEntry = value->transientFailure;
      promise.set_value(std::move(value));
    } catch (...) {
      // Even allocating the cache entry failed; waiters see the same
      // exception through the shared future instead of blocking forever.
      promise.set_exception(std::current_exception());
      dropEntry = true;
    }
    if (dropEntry) {
      // Transient failures must not outlive this batch: duplicates
      // already in flight share the failure (they were concurrent with
      // it), but later runs and future duplicates must recompute
      // rather than replay a one-off bad_alloc forever.
      std::lock_guard<std::mutex> lock(cache_mutex_);
      cache_.erase(key);
    }
  }

  // Non-producers wait here; the producer task is by construction already
  // executing on some worker, so the wait always terminates.
  std::shared_ptr<const CacheValue> value;
  try {
    value = future.get();
  } catch (const std::exception &e) {
    core::Artifacts artifacts;
    artifacts.name = spec.name;
    artifacts.requested = spec.artifacts;
    artifacts.ok = false;
    artifacts.diagnostics = spec.name + ": internal error: " + e.what();
    artifacts.seconds = secondsSince(start);
    record(artifacts);
    return artifacts;
  }
  const bool cacheHit = !producer || value->fromDisk;
  core::Artifacts artifacts = fulfill(spec, *value, cacheHit);
  if (producer) {
    // Disk-level provenance belongs to exactly one request per value —
    // the producer — so flag sums over any result set equal the
    // registry deltas (tallyBatchStats relies on this).
    artifacts.diskHit = value->fromDisk;
    artifacts.diskMiss = disk_ != nullptr && !value->fromDisk;
    artifacts.diskStored = value->stored;
  }
  artifacts.seconds = secondsSince(start);
  record(artifacts);
  return artifacts;
}

core::Artifacts
BatchAnalyzer::analyzeArtifacts(const core::AnalysisSpec &spec) {
  return analyzeSpec(spec);
}

std::vector<core::Artifacts> BatchAnalyzer::analyzeArtifactsMany(
    const std::vector<core::AnalysisSpec> &specs) {
  std::vector<core::Artifacts> results(specs.size());
  if (specs.empty())
    return results;
  // A per-call latch instead of pool_.waitIdle(): concurrent callers
  // must each wait for exactly their own tasks. Workers hold shared
  // ownership so the state outlives this frame even if a worker is
  // descheduled between its decrement and its return.
  struct Latch {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = specs.size();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    pool_.submit([this, &specs, &results, latch, i] {
      results[i] = analyzeSpec(specs[i]);
      std::lock_guard<std::mutex> lock(latch->mutex);
      if (--latch->remaining == 0)
        latch->done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch->mutex);
  latch->done.wait(lock, [&] { return latch->remaining == 0; });
  return results;
}

std::vector<core::Artifacts>
BatchAnalyzer::runArtifacts(const std::vector<core::AnalysisSpec> &specs) {
  auto start = std::chrono::steady_clock::now();
  std::vector<core::Artifacts> results(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    pool_.submit([this, &specs, &results, i] {
      results[i] = analyzeSpec(specs[i]);
    });
  }
  pool_.waitIdle();

  // Per-result provenance flags, not registry deltas: the flags sum to
  // the same numbers for this (non-concurrent) call, and they keep the
  // per-run view correct even when the registry is shared with daemon
  // traffic — the same tally the daemon's ManifestBatch reports.
  stats_ = tallyBatchStats(results, options_.useCache);
  stats_.wallSeconds = secondsSince(start);
  publishInternGauges(*metrics_);
  return results;
}

AnalysisOutcome BatchAnalyzer::analyzeSingle(const AnalysisRequest &request) {
  return toOutcome(analyzeSpec(toSpec(request)));
}

std::vector<AnalysisOutcome>
BatchAnalyzer::analyzeMany(const std::vector<AnalysisRequest> &requests) {
  std::vector<core::AnalysisSpec> specs;
  specs.reserve(requests.size());
  for (const AnalysisRequest &request : requests)
    specs.push_back(toSpec(request));
  std::vector<core::Artifacts> results = analyzeArtifactsMany(specs);
  std::vector<AnalysisOutcome> outcomes;
  outcomes.reserve(results.size());
  for (core::Artifacts &artifacts : results)
    outcomes.push_back(toOutcome(std::move(artifacts)));
  return outcomes;
}

std::vector<AnalysisOutcome>
BatchAnalyzer::run(const std::vector<AnalysisRequest> &requests) {
  std::vector<core::AnalysisSpec> specs;
  specs.reserve(requests.size());
  for (const AnalysisRequest &request : requests)
    specs.push_back(toSpec(request));
  std::vector<core::Artifacts> results = runArtifacts(specs);
  std::vector<AnalysisOutcome> outcomes;
  outcomes.reserve(results.size());
  for (core::Artifacts &artifacts : results)
    outcomes.push_back(toOutcome(std::move(artifacts)));
  return outcomes;
}

} // namespace mira::driver
