/// \file
/// Parallel batch analysis: many MiniC sources through the full
/// pipeline, with per-request artifact fulfillment.
///
/// BatchAnalyzer fans core::AnalysisSpecs across a fixed ThreadPool,
/// collects per-request core::Artifacts deterministically in input
/// order, and de-duplicates work through a two-level cache keyed by
/// (source hash, options): an in-memory future map that persists across
/// run calls on the same analyzer, and an optional on-disk CacheStore
/// (support/cache_store.h) that persists across processes.
///
/// Fulfillment planning (the v2 redesign): each requested artifact is
/// served from the cheapest layer that has it —
///   1. memory   — a live or previously restored entry in-process;
///   2. disk     — model + diagnostics + coverage summary (schema v2;
///                 v1 entries restore without the coverage summary);
///   3. recompile — a ProgramHandle re-runs parse→sema→codegen (never
///                 model generation) when a cache hit must answer a
///                 program-needing artifact (simulation, v1-entry
///                 coverage);
///   4. full compute — a miss runs the whole pipeline once and
///                 populates every layer for future callers.
/// BatchStats counts each plan step so tests and the CLI can prove a
/// warm run recomputed nothing.
///
/// Thread-safety contract with core::analyze: the pipeline keeps no
/// shared mutable state (each request gets its own DiagnosticEngine,
/// and all function-local statics in the pipeline are immutable tables),
/// so concurrent analyses of different requests are safe. run() and
/// runArtifacts() themselves must not be called concurrently on one
/// BatchAnalyzer; analyzeArtifacts()/analyzeSingle()/analyzeMany() may.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/artifacts.h"
#include "core/metrics_registry.h"
#include "core/mira.h"
#include "corpus/manifest.h"
#include "support/cache_store.h"
#include "support/thread_pool.h"

namespace mira::driver {

/// One unit of v1 batch work: a named MiniC source plus pipeline
/// options. Equivalent to a core::AnalysisSpec asking for model +
/// diagnostics; new callers should build specs directly.
struct AnalysisRequest {
  std::string name;   ///< display / file name (not part of the cache key)
  std::string source; ///< MiniC source text
  core::MiraOptions options; ///< pipeline options (part of the cache key)
};

/// Per-request v1 result, at the request's input position. The v2
/// equivalent is core::Artifacts (richer: coverage, simulation, and a
/// recompile-on-demand program handle).
struct AnalysisOutcome {
  std::string name; ///< echoed AnalysisRequest::name
  bool ok = false;  ///< analysis produced a model (no errors)
  /// Served without recomputing: from another in-flight/completed
  /// request this process (memory hit) or from the disk cache of an
  /// earlier run (disk hit).
  bool cacheHit = false;
  /// Shared with the cache and any duplicate requests; null when !ok.
  /// Disk-cache hits restore the model and diagnostics but NOT the
  /// compiled program (AnalysisResult::program is null): v1 consumers
  /// that need the AST or binary must analyze without the disk layer,
  /// or migrate to the artifact API whose ProgramHandle recompiles on
  /// demand (core/artifacts.h).
  std::shared_ptr<const core::AnalysisResult> analysis;
  /// Rendered diagnostics (warnings on success, errors on failure).
  std::string diagnostics;
  double seconds = 0; ///< analysis wall time; ~0 for pure cache hits
};

/// Knobs for one BatchAnalyzer. Only AnalysisSpec::options influence
/// cache keys — everything here is execution strategy and storage
/// placement, deliberately excluded from requestKey().
struct BatchOptions {
  /// Worker threads analyzing requests concurrently.
  std::size_t threads = ThreadPool::defaultThreadCount();
  /// Master switch for both cache levels (memory and disk).
  bool useCache = true;
  /// Directory for the persistent cache; empty disables the disk level.
  std::string cacheDir;
  /// LRU byte cap for the disk level (0 = unlimited). See
  /// support/cache_store.h for the eviction policy.
  std::uint64_t cacheBytesLimit = 0;
  /// Threads for within-request per-function model generation (1 =
  /// serial). When >1 the analyzer owns a second, dedicated pool shared
  /// by all requests; results are byte-identical either way.
  std::size_t modelThreads = 1;
  /// Registry the analyzer's lifetime counters register in (non-owning;
  /// must outlive the analyzer). Null = the analyzer owns a private
  /// registry, reachable through BatchAnalyzer::metrics(). The serving
  /// daemon passes its own registry here so analyzer and server counters
  /// share one metrics surface (core/metrics_registry.h).
  core::MetricsRegistry *metrics = nullptr;
};

/// Counters describing the last run()/runArtifacts(). The per-artifact
/// block proves where each answer came from: a warm coverage sweep
/// should show coverageFromCache == requests and recompiles == 0.
/// Since the metrics unification these are per-run *views* of the
/// analyzer's lifetime core::MetricsRegistry counters (snapshot deltas
/// around the run) plus per-result tallies — each underlying counter is
/// defined once, in the registry.
struct BatchStats {
  std::size_t requests = 0;    ///< size of the request vector
  std::size_t failures = 0;    ///< outcomes with ok == false
  std::size_t cacheHits = 0;   ///< outcomes served without recomputation
  std::size_t cacheMisses = 0; ///< outcomes that ran the pipeline
  std::size_t diskHits = 0;    ///< entries restored from the disk cache
  std::size_t diskMisses = 0;  ///< disk lookups that fell through
  std::size_t diskStores = 0;  ///< entries written to the disk cache
  // Per-artifact fulfillment (v2): what was served, and from where.
  std::size_t modelArtifacts = 0;      ///< requests served a model
  std::size_t programArtifacts = 0;    ///< requests served a ProgramHandle
  std::size_t coverageArtifacts = 0;   ///< requests served loop coverage
  std::size_t simulationArtifacts = 0; ///< simulations executed
  std::size_t coverageFromCache = 0;   ///< coverage answered from a cached
                                       ///< summary (no AST needed)
  std::size_t recompiles = 0;          ///< deferred handles materialized
                                       ///< (parse→codegen re-runs)
  double wallSeconds = 0; ///< whole-batch wall clock of the last run
};

/// Cache key: FNV-1a fingerprint of the source bytes and every
/// model-affecting option (compiler toggles, metric options, arch).
/// Stable across processes and runs by construction — it is the on-disk
/// cache's file name (support/cache_store.h). The artifact mask and
/// simulation arguments are deliberately NOT keyed: every mask reuses
/// one entry.
std::uint64_t requestKey(const core::AnalysisSpec &spec);
std::uint64_t requestKey(const AnalysisRequest &request);

/// The options half of requestKey: continue hashing the model-affecting
/// options from an already-computed FNV-1a source fingerprint.
/// `requestKey(spec) == requestKeyFromContentHash(fnv1a(spec.source),
/// spec.options)` by construction — which is what lets a corpus
/// manifest (corpus/manifest.h stores exactly that source fingerprint)
/// predict cache keys, plan shards, and prune the store without reading
/// any source bytes.
std::uint64_t requestKeyFromContentHash(std::uint64_t contentHash,
                                        const core::MiraOptions &options);

// --------------------------------------------------- shard planning

/// One shard of a partitioned batch: this process owns every request
/// whose cache key satisfies `key % count == index`.
///
/// Determinism contract (docs/MANIFESTS.md): assignment depends only on
/// (key, count) — never on input order, thread count, or which machine
/// evaluates it — so N processes given the same manifest and options
/// partition it identically, with no coordination and no overlap.
/// Duplicate sources hash to one key and therefore land in one shard,
/// which keeps per-shard cache counters equal to a single-process run.
struct ShardSpec {
  std::size_t index = 0; ///< 0-based shard number, < count
  std::size_t count = 1; ///< total shards; 1 = unsharded
};

/// Parse the CLI's 1-based "I/N" syntax ("2/4" = second of four) into a
/// 0-based ShardSpec. False on junk, I < 1, N < 1, or I > N.
bool parseShardSpec(const std::string &text, ShardSpec &shard);

/// True when `key` belongs to `shard`: the key is bit-mixed (splitmix64
/// finalizer) and reduced modulo the shard count, so shards stay
/// balanced even though raw request keys share low-bit structure. A
/// pure function of (key, shard) — every participant in a fleet run
/// computes the same partition with no coordination.
bool keyInShard(std::uint64_t key, const ShardSpec &shard);

/// The work one manifest-batch invocation owns, plus the diff view it
/// was derived from.
struct ManifestSelection {
  /// Entries to analyze, in manifest (path) order.
  std::vector<corpus::ManifestEntry> entries;
  std::size_t candidates = 0; ///< added + changed (pre-shard-filter)
  std::size_t added = 0;      ///< diff view; == entries.size() pre-shard
  std::size_t changed = 0;    ///< when no baseline, all count as added
  std::size_t removed = 0;    ///< baseline-only paths (never analyzed)
};

/// Select the entries `manifest` obliges this invocation to analyze:
/// diff against an optional `since` baseline (keep added + changed, in
/// path order), then keep only the keys of `shard`. A pure function of
/// its inputs — local `batch --manifest` and the daemon's ManifestBatch
/// request both plan through this, which is what makes their selections
/// (and therefore their reports) identical by construction.
ManifestSelection selectManifestEntries(const corpus::Manifest &manifest,
                                        const corpus::Manifest *since,
                                        const core::MiraOptions &options,
                                        const ShardSpec &shard);

// ------------------------------------------- stats & report merging

/// Sum per-shard counter blocks into one batch-wide view. Every counter
/// adds; wallSeconds is the max (shards run concurrently, so their wall
/// clocks overlap rather than accumulate).
BatchStats mergeBatchStats(const std::vector<BatchStats> &parts);

/// Derive a per-run BatchStats from per-result provenance flags (see
/// core::Artifacts::diskHit and friends). Agrees exactly with the
/// registry-delta view for a non-concurrent run — runArtifacts() is
/// implemented on top of this — and stays correct when other traffic
/// shares the registry, which is how the daemon's ManifestBatch builds
/// a report byte-identical to a local run. wallSeconds is left 0 (the
/// caller owns the clock).
BatchStats tallyBatchStats(const std::vector<core::Artifacts> &results,
                           bool useCache);

/// Copy the process-wide symbolic::ExprInterner tallies into the
/// registry as gauges (rendered as mira_intern_{hits,misses,nodes}).
/// The hash-consing hot path never touches the registry itself; callers
/// with a metrics view (batch runs, the daemon's refreshGauges) publish
/// on render instead.
void publishInternGauges(core::MetricsRegistry &metrics);

/// One line of a shard report: which request, under which cache key,
/// with what outcome. Deliberately excludes timing so reports are
/// deterministic (byte-comparable across runs and process counts).
struct BatchReportEntry {
  std::string name;        ///< request name (manifest path in manifest runs)
  std::uint64_t key = 0;   ///< driver::requestKey of the request
  bool ok = false;         ///< analysis produced a model
};

/// A deterministic batch report: per-request entries plus the counter
/// block. `mira-cli batch --report` writes one per (shard) process;
/// `mira-cli manifest merge` folds shard reports into the report a
/// single-process run would have produced — byte-identically, which is
/// the multi-process correctness check tests and CI pin.
struct BatchReport {
  std::vector<BatchReportEntry> entries;
  BatchStats stats; ///< wallSeconds is NOT serialized (nondeterministic)
};

/// Byte-stable serialization: `[magic "MirR" u32][version u32]` then the
/// counter block (every BatchStats field except wallSeconds, as u64, in
/// declaration order), `[entryCount u32]`, per entry
/// `[name str][key u64][ok u8]`, and a trailing FNV-1a checksum.
std::string serializeBatchReport(const BatchReport &report);

/// Parse serializeBatchReport bytes; false with a description on any
/// structural problem (magic, version, truncation, trailing garbage,
/// checksum).
bool deserializeBatchReport(const std::string &bytes, BatchReport &report,
                            std::string &error);

/// Merge shard reports: entries are re-sorted by (name, key) — manifest
/// order, since manifests are path-sorted and shards select disjoint
/// subsets — and stats merge via mergeBatchStats.
BatchReport mergeBatchReports(const std::vector<BatchReport> &parts);

/// Serialize one analysis value into the schema-v2 artifact payload
/// shared by the disk cache and the v2 wire protocol:
/// `[ok u8][producerName str][diagnostics str]` then, when ok:
/// `[hasCoverage u8][loops u64 stmts u64 inLoop u64]?[model bytes]`
/// (docs/CACHING.md "Entry format"). `model` null = a cached failure
/// (`coverage` is then ignored). Versioned by kCacheSchemaVersion == 2.
std::string serializeArtifactPayload(const model::PerformanceModel *model,
                                     const sema::LoopCoverage *coverage,
                                     const std::string &diagnostics,
                                     const std::string &producerName);

/// Parse a serializeArtifactPayload buffer. Returns false on any
/// structural problem (bounds, trailing garbage) — callers treat that
/// as corruption and recompute. On success `analysis` is null iff the
/// payload recorded a failed analysis; `coverage` is empty when the
/// payload carried no summary.
bool deserializeArtifactPayload(
    const std::string &payload,
    std::shared_ptr<const core::AnalysisResult> &analysis,
    std::optional<sema::LoopCoverage> &coverage, std::string &diagnostics,
    std::string &producerName);

/// The schema-v1 payload codec (`[ok][producerName][diagnostics][model]`)
/// — still written to v1 wire clients and still read from v1 disk
/// entries, which degrade to recompile-on-demand for program-needing
/// artifacts.
std::string serializeOutcomePayloadV1(const core::AnalysisResult *analysis,
                                      const std::string &diagnostics,
                                      const std::string &producerName);
bool deserializeOutcomePayloadV1(
    const std::string &payload,
    std::shared_ptr<const core::AnalysisResult> &analysis,
    std::string &diagnostics, std::string &producerName);

/// Analyzes batches of sources in parallel with two-level caching and
/// per-artifact fulfillment planning.
class BatchAnalyzer {
public:
  explicit BatchAnalyzer(BatchOptions options = {});

  // ----------------------------------------------------- v2 entries

  /// Fulfill one spec on the calling thread, sharing the in-memory and
  /// disk cache levels with every other caller. Safe to call
  /// concurrently (the serving daemon fans sessions across its own pool
  /// and calls this per request); does not touch stats().
  core::Artifacts analyzeArtifacts(const core::AnalysisSpec &spec);

  /// Fan `specs` across the batch pool and block until all artifacts
  /// are in (input order). Safe to call concurrently; does not touch
  /// stats(). Must not be called from a task running on this analyzer's
  /// own pool (nested-pool rule, support/thread_pool.h).
  std::vector<core::Artifacts>
  analyzeArtifactsMany(const std::vector<core::AnalysisSpec> &specs);

  /// Fulfill every spec and update stats(); outcome[i] corresponds to
  /// specs[i] regardless of thread count or completion order. Not
  /// concurrency-safe with itself (use analyzeArtifactsMany for that).
  std::vector<core::Artifacts>
  runArtifacts(const std::vector<core::AnalysisSpec> &specs);

  // ------------------------------------------ v1 compatibility entries

  /// Analyze every request; outcome[i] corresponds to requests[i]
  /// regardless of thread count or completion order. Equivalent to
  /// runArtifacts over model+diagnostics specs.
  std::vector<AnalysisOutcome> run(const std::vector<AnalysisRequest> &requests);

  /// Analyze one request on the calling thread (see analyzeArtifacts
  /// for the concurrency contract).
  AnalysisOutcome analyzeSingle(const AnalysisRequest &request);

  /// Fan `requests` across the batch pool (see analyzeArtifactsMany for
  /// the concurrency contract).
  std::vector<AnalysisOutcome>
  analyzeMany(const std::vector<AnalysisRequest> &requests);

  /// Stats of the last run()/runArtifacts() (cache hit/miss, failures,
  /// per-artifact fulfillment, wall clock).
  const BatchStats &stats() const { return stats_; }

  /// The registry holding this analyzer's lifetime counters
  /// (analyzer_requests_total, analyzer_disk_hits_total, ...): the one
  /// passed in BatchOptions::metrics, or the analyzer's own. Counters
  /// accumulate across every entry point, including the concurrent-safe
  /// ones that never touch stats().
  core::MetricsRegistry &metrics() { return *metrics_; }

  std::size_t threadCount() const { return pool_.threadCount(); }

  /// Entries in the in-memory level (the disk level is inspected through
  /// diskCache()).
  std::size_t cacheSize() const;

  /// Drop every in-memory entry. The disk level, if any, is untouched —
  /// use diskCache()->clear() for that.
  void clearCache();

  /// The disk level, or null when BatchOptions::cacheDir was empty.
  CacheStore *diskCache() { return disk_.get(); }

private:
  /// One cached analysis value, shared by every mask that asks for the
  /// same (source, options): the legacy result view, the artifact
  /// views, and the live-or-deferred program handle.
  struct CacheValue {
    /// The analysis succeeded. With caching on this implies `analysis`
    /// is set (full compute produces the model); on the no-cache path a
    /// mask without kArtifactModel yields ok values with no model.
    bool ok = false;
    /// Legacy owner: model (+ program when computed live); null on
    /// failure or when the model was not requested (no-cache path).
    /// Disk restores leave analysis->program null — the handle below is
    /// how programs come back.
    std::shared_ptr<const core::AnalysisResult> analysis;
    /// Aliases analysis->model; null on failure.
    std::shared_ptr<const model::PerformanceModel> model;
    /// Loop-coverage summary; absent for entries restored from v1 disk
    /// payloads (those degrade to recompile-on-demand).
    std::optional<sema::LoopCoverage> coverage;
    /// Live for computed values, deferred for disk restores; null on
    /// failure.
    std::shared_ptr<core::ProgramHandle> program;
    std::string diagnostics;
    std::string producerName; // request whose analysis populated the entry
    bool fromDisk = false;    // restored from the disk level, not computed
    bool stored = false;      // this value was persisted to the disk level
    /// Failure came from a caught exception (bad_alloc, resource
    /// exhaustion), not from deterministic diagnostics. Never persisted:
    /// a transient failure written to disk would replay forever.
    bool transientFailure = false;
  };
  using CacheFuture = std::shared_future<std::shared_ptr<const CacheValue>>;

  /// Resolve one spec through the plan (memory → disk → recompile →
  /// full compute) and fulfill its artifact mask.
  core::Artifacts analyzeSpec(const core::AnalysisSpec &spec);

  /// Serve `spec`'s artifacts out of a resolved cache value.
  core::Artifacts fulfill(const core::AnalysisSpec &spec,
                          const CacheValue &value, bool cacheHit);

  /// The producer path: disk lookup, then compute + disk store.
  CacheValue produceValue(const core::AnalysisSpec &spec, std::uint64_t key);

  CacheValue computeValue(const core::AnalysisSpec &spec);

  static AnalysisOutcome toOutcome(core::Artifacts &&artifacts);
  static core::AnalysisSpec toSpec(const AnalysisRequest &request);

  BatchOptions options_;
  ThreadPool pool_;
  std::unique_ptr<ThreadPool> model_pool_; // within-request fan-out
  std::unique_ptr<CacheStore> disk_;
  BatchStats stats_;

  // The metrics surface: a borrowed registry (BatchOptions::metrics) or
  // a private one. Declared before the counter handles below, which
  // bind into it at construction. Counters are lifetime-monotonic;
  // runArtifacts() derives its per-run BatchStats from before/after
  // deltas.
  std::unique_ptr<core::MetricsRegistry> owned_metrics_;
  core::MetricsRegistry *metrics_ = nullptr;
  core::MetricsRegistry::Counter &requests_;
  core::MetricsRegistry::Counter &failures_;
  core::MetricsRegistry::Counter &cache_hits_;
  core::MetricsRegistry::Counter &computed_;
  core::MetricsRegistry::Counter &disk_hits_;
  core::MetricsRegistry::Counter &disk_misses_;
  core::MetricsRegistry::Counter &disk_stores_;
  core::MetricsRegistry::Counter &coverage_from_cache_;
  core::MetricsRegistry::Counter &recompiles_;

  mutable std::mutex cache_mutex_;
  std::map<std::uint64_t, CacheFuture> cache_;
};

} // namespace mira::driver
