/// \file
/// Parallel batch analysis: many MiniC sources through the full pipeline.
///
/// BatchAnalyzer fans AnalysisRequests across a fixed ThreadPool,
/// collects per-request outcomes deterministically in input order, and
/// de-duplicates work through a two-level cache keyed by (source hash,
/// options): an in-memory future map that persists across run() calls on
/// the same analyzer, and an optional on-disk CacheStore
/// (support/cache_store.h) that persists across processes. Sweeps that
/// revisit a workload (bench series, repeated CLI batches) pay for each
/// distinct (source, options) pair exactly once per machine, not once
/// per process.
///
/// Thread-safety contract with core::analyzeSource: the pipeline keeps
/// no shared mutable state (each request gets its own DiagnosticEngine,
/// and all function-local statics in the pipeline are immutable tables),
/// so concurrent analyses of different requests are safe. run() itself
/// must not be called concurrently on one BatchAnalyzer.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/mira.h"
#include "support/cache_store.h"
#include "support/thread_pool.h"

namespace mira::driver {

/// One unit of batch work: a named MiniC source plus pipeline options.
struct AnalysisRequest {
  std::string name;   ///< display / file name (not part of the cache key)
  std::string source; ///< MiniC source text
  core::MiraOptions options; ///< pipeline options (part of the cache key)
};

/// Per-request result, at the request's input position.
struct AnalysisOutcome {
  std::string name; ///< echoed AnalysisRequest::name
  bool ok = false;  ///< analysis produced a model (no errors)
  /// Served without recomputing: from another in-flight/completed
  /// request this process (memory hit) or from the disk cache of an
  /// earlier run (disk hit).
  bool cacheHit = false;
  /// Shared with the cache and any duplicate requests; null when !ok.
  /// Disk-cache hits restore the model and diagnostics but NOT the
  /// compiled program (AnalysisResult::program is null): consumers that
  /// need the AST or binary (coverage stats, simulation) must analyze
  /// without the disk layer.
  std::shared_ptr<const core::AnalysisResult> analysis;
  /// Rendered diagnostics (warnings on success, errors on failure).
  std::string diagnostics;
  double seconds = 0; ///< analysis wall time; ~0 for pure cache hits
};

/// Knobs for one BatchAnalyzer. Only AnalysisRequest::options influence
/// cache keys — everything here is execution strategy and storage
/// placement, deliberately excluded from requestKey().
struct BatchOptions {
  /// Worker threads analyzing requests concurrently.
  std::size_t threads = ThreadPool::defaultThreadCount();
  /// Master switch for both cache levels (memory and disk).
  bool useCache = true;
  /// Directory for the persistent cache; empty disables the disk level.
  std::string cacheDir;
  /// LRU byte cap for the disk level (0 = unlimited). See
  /// support/cache_store.h for the eviction policy.
  std::uint64_t cacheBytesLimit = 0;
  /// Threads for within-request per-function model generation (1 =
  /// serial). When >1 the analyzer owns a second, dedicated pool shared
  /// by all requests; results are byte-identical either way.
  std::size_t modelThreads = 1;
};

/// Counters describing the last BatchAnalyzer::run().
struct BatchStats {
  std::size_t requests = 0;    ///< size of the request vector
  std::size_t failures = 0;    ///< outcomes with ok == false
  std::size_t cacheHits = 0;   ///< outcomes served without recomputation
  std::size_t cacheMisses = 0; ///< outcomes that ran the pipeline
  std::size_t diskHits = 0;    ///< entries restored from the disk cache
  std::size_t diskMisses = 0;  ///< disk lookups that fell through
  std::size_t diskStores = 0;  ///< entries written to the disk cache
  double wallSeconds = 0; ///< whole-batch wall clock of the last run()
};

/// Cache key: FNV-1a fingerprint of the source bytes and every
/// model-affecting option (compiler toggles, metric options, arch).
/// Stable across processes and runs by construction — it is the on-disk
/// cache's file name (support/cache_store.h).
std::uint64_t requestKey(const AnalysisRequest &request);

/// Serialize one analysis value into the canonical payload format shared
/// by the disk cache and the serving protocol:
/// `[ok u8][producerName str][diagnostics str][model bytes when ok]`
/// (docs/CACHING.md "Entry format"). `analysis` may be null (a cached
/// failure). Versioned as a whole by kCacheSchemaVersion.
std::string serializeOutcomePayload(const core::AnalysisResult *analysis,
                                    const std::string &diagnostics,
                                    const std::string &producerName);

/// Parse a serializeOutcomePayload buffer. Returns false on any
/// structural problem (bounds, trailing garbage) — callers treat that as
/// corruption and recompute. On success `analysis` is null iff the
/// payload recorded a failed analysis.
bool deserializeOutcomePayload(
    const std::string &payload,
    std::shared_ptr<const core::AnalysisResult> &analysis,
    std::string &diagnostics, std::string &producerName);

/// Analyzes batches of sources in parallel with two-level caching.
class BatchAnalyzer {
public:
  explicit BatchAnalyzer(BatchOptions options = {});

  /// Analyze every request; outcome[i] corresponds to requests[i]
  /// regardless of thread count or completion order.
  std::vector<AnalysisOutcome> run(const std::vector<AnalysisRequest> &requests);

  /// Analyze one request on the calling thread, sharing the in-memory
  /// and disk cache levels with every other caller. Unlike run(), this
  /// IS safe to call concurrently (the serving daemon fans sessions
  /// across its own pool and calls this per request); it does not use
  /// the analyzer's batch pool and does not touch stats().
  AnalysisOutcome analyzeSingle(const AnalysisRequest &request);

  /// Fan `requests` across the batch pool and block until all outcomes
  /// are in (input order). Like analyzeSingle — and unlike run() — this
  /// is safe to call concurrently and does not touch stats(): the
  /// daemon serves each batch request through one call, so concurrent
  /// sessions share the pool fairly. Must not be called from a task
  /// running on this analyzer's own pool (nested-pool rule,
  /// support/thread_pool.h).
  std::vector<AnalysisOutcome>
  analyzeMany(const std::vector<AnalysisRequest> &requests);

  /// Stats of the last run() (cache hit/miss, failures, wall clock).
  const BatchStats &stats() const { return stats_; }

  std::size_t threadCount() const { return pool_.threadCount(); }

  /// Entries in the in-memory level (the disk level is inspected through
  /// diskCache()).
  std::size_t cacheSize() const;

  /// Drop every in-memory entry. The disk level, if any, is untouched —
  /// use diskCache()->clear() for that.
  void clearCache();

  /// The disk level, or null when BatchOptions::cacheDir was empty.
  CacheStore *diskCache() { return disk_.get(); }

private:
  struct CacheValue {
    std::shared_ptr<const core::AnalysisResult> analysis; // null on failure
    std::string diagnostics;
    std::string producerName; // request whose analysis populated the entry
    bool fromDisk = false;    // restored from the disk level, not computed
    /// Failure came from a caught exception (bad_alloc, resource
    /// exhaustion), not from deterministic diagnostics. Never persisted:
    /// a transient failure written to disk would replay forever.
    bool transientFailure = false;
  };
  using CacheFuture = std::shared_future<std::shared_ptr<const CacheValue>>;

  /// Run one request and cache-share the result. Returns the outcome for
  /// this position; duplicates of an in-flight request block on its
  /// future (the producer is already running, so this cannot deadlock).
  AnalysisOutcome analyzeOne(const AnalysisRequest &request);

  /// The producer path: disk lookup, then compute + disk store.
  CacheValue produceValue(const AnalysisRequest &request, std::uint64_t key);

  CacheValue computeValue(const AnalysisRequest &request);

  BatchOptions options_;
  ThreadPool pool_;
  std::unique_ptr<ThreadPool> model_pool_; // within-request fan-out
  std::unique_ptr<CacheStore> disk_;
  BatchStats stats_;

  // Disk counters accumulate from worker threads during run(); run()
  // folds them into stats_ after the pool drains.
  std::atomic<std::size_t> disk_hits_{0};
  std::atomic<std::size_t> disk_misses_{0};
  std::atomic<std::size_t> disk_stores_{0};

  mutable std::mutex cache_mutex_;
  std::map<std::uint64_t, CacheFuture> cache_;
};

} // namespace mira::driver
