// Parallel batch analysis: many MiniC sources through the full pipeline.
//
// BatchAnalyzer fans AnalysisRequests across a fixed ThreadPool, collects
// per-request outcomes deterministically in input order, and de-duplicates
// work through an in-memory cache keyed by (source hash, options). The
// cache persists across run() calls on the same analyzer, so sweeps that
// revisit a workload (bench series, repeated CLI batches) pay for each
// distinct (source, options) pair exactly once.
//
// Thread-safety contract with core::analyzeSource: the pipeline keeps no
// shared mutable state (each request gets its own DiagnosticEngine, and
// all function-local statics in the pipeline are immutable tables), so
// concurrent analyses of different requests are safe. run() itself must
// not be called concurrently on one BatchAnalyzer.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/mira.h"
#include "support/thread_pool.h"

namespace mira::driver {

struct AnalysisRequest {
  std::string name;   // display / file name (not part of the cache key)
  std::string source; // MiniC source text
  core::MiraOptions options;
};

/// Per-request result, at the request's input position.
struct AnalysisOutcome {
  std::string name;
  bool ok = false;
  bool cacheHit = false; // served from (or waited on) an existing entry
  /// Shared with the cache and any duplicate requests; null when !ok.
  std::shared_ptr<const core::AnalysisResult> analysis;
  /// Rendered diagnostics (warnings on success, errors on failure).
  std::string diagnostics;
  double seconds = 0; // analysis wall time; ~0 for pure cache hits
};

struct BatchOptions {
  std::size_t threads = ThreadPool::defaultThreadCount();
  bool useCache = true;
};

struct BatchStats {
  std::size_t requests = 0;
  std::size_t failures = 0;
  std::size_t cacheHits = 0;
  std::size_t cacheMisses = 0;
  double wallSeconds = 0; // whole-batch wall clock of the last run()
};

/// Cache key: FNV-1a fingerprint of the source bytes and every
/// model-affecting option (compiler toggles, metric options, arch).
std::uint64_t requestKey(const AnalysisRequest &request);

class BatchAnalyzer {
public:
  explicit BatchAnalyzer(BatchOptions options = {});

  /// Analyze every request; outcome[i] corresponds to requests[i]
  /// regardless of thread count or completion order.
  std::vector<AnalysisOutcome> run(const std::vector<AnalysisRequest> &requests);

  /// Stats of the last run() (cache hit/miss, failures, wall clock).
  const BatchStats &stats() const { return stats_; }

  std::size_t threadCount() const { return pool_.threadCount(); }
  std::size_t cacheSize() const;
  void clearCache();

private:
  struct CacheValue {
    std::shared_ptr<const core::AnalysisResult> analysis; // null on failure
    std::string diagnostics;
    std::string producerName; // request whose analysis populated the entry
  };
  using CacheFuture = std::shared_future<std::shared_ptr<const CacheValue>>;

  /// Run one request and cache-share the result. Returns the outcome for
  /// this position; duplicates of an in-flight request block on its
  /// future (the producer is already running, so this cannot deadlock).
  AnalysisOutcome analyzeOne(const AnalysisRequest &request);

  static CacheValue computeValue(const AnalysisRequest &request);

  BatchOptions options_;
  ThreadPool pool_;
  BatchStats stats_;

  mutable std::mutex cache_mutex_;
  std::map<std::uint64_t, CacheFuture> cache_;
};

} // namespace mira::driver
