// MIR -> machine code generation.
//
// Produces the MachineFunction placed into the MiraObject plus the
// expansion map tying every MIR instruction to the machine instructions it
// became. The simulator executes MIR semantically and retires the mapped
// machine instructions, so dynamic counts and the binary the static
// analyzer reads are two views of the same code by construction — exactly
// the relationship between a real binary and the hardware counters TAU/
// PAPI read on it.
//
// Call targets are emitted as Label operands holding a function id
// (resolved through the object's symbol table); intra-function jump
// targets are byte offsets from the function start, like x86 relative
// branches.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "codegen/regalloc.h"
#include "isa/instruction.h"
#include "mir/mir.h"

namespace mira::codegen {

/// Machine instructions charged per MIR instruction.
struct ExpansionMap {
  /// expansion[blockId][instIdx] -> indices into MachineFunction
  std::vector<std::vector<std::vector<std::uint32_t>>> expansion;
  /// Prologue instructions, charged once per function entry.
  std::vector<std::uint32_t> prologue;
};

struct CodegenResult {
  isa::MachineFunction machine;
  ExpansionMap map;
  /// First machine instruction index of each MIR block (blocks emitting
  /// nothing map to the next emitted instruction).
  std::map<std::uint32_t, std::uint32_t> blockFirstInstr;
};

/// Extern functions get negative call ids: -(index+1) into this list.
/// Order must match objfile symbol emission.
const std::vector<std::string> &externFunctionTable();
int externCallId(const std::string &name);

/// Generate machine code for one function. `functionIds` maps qualified
/// names to their id (position in the module/object).
CodegenResult generateCode(const mir::MirFunction &fn,
                           const std::map<std::string, int> &functionIds);

} // namespace mira::codegen
