#include "codegen/regalloc.h"

#include <algorithm>
#include <set>

namespace mira::codegen {

using mir::kNoVReg;
using mir::MirBlock;
using mir::MirFunction;
using mir::MirInst;
using mir::MirOp;
using mir::MirType;
using mir::VReg;

namespace {

bool isFPType(MirType t) { return t == MirType::F64 || t == MirType::F32; }

const isa::Reg kGPRPool[] = {
    isa::Reg::RAX, isa::Reg::RBX, isa::Reg::RCX, isa::Reg::RDX,
    isa::Reg::RSI, isa::Reg::RDI, isa::Reg::R8,  isa::Reg::R9,
    isa::Reg::R12, isa::Reg::R13,
};
const isa::Reg kXMMPool[] = {
    isa::Reg::XMM0, isa::Reg::XMM1,  isa::Reg::XMM2,  isa::Reg::XMM3,
    isa::Reg::XMM4, isa::Reg::XMM5,  isa::Reg::XMM6,  isa::Reg::XMM7,
    isa::Reg::XMM8, isa::Reg::XMM9,  isa::Reg::XMM10, isa::Reg::XMM11,
    isa::Reg::XMM12, isa::Reg::XMM13,
};

struct Interval {
  VReg vreg = kNoVReg;
  std::size_t start = 0;
  std::size_t end = 0;
  bool fp = false;
  bool crossesCall = false;
};

} // namespace

AllocationResult allocateRegisters(const MirFunction &fn) {
  // Linear positions.
  std::vector<std::pair<std::size_t, std::size_t>> blockSpan(
      fn.blocks.size()); // [startPos, endPos)
  std::size_t pos = 0;
  std::vector<std::size_t> callPositions;
  std::map<VReg, Interval> intervals;

  auto touch = [&](VReg r, std::size_t p, bool fp) {
    if (r == kNoVReg)
      return;
    auto [it, fresh] = intervals.try_emplace(r);
    Interval &iv = it->second;
    if (fresh) {
      iv.vreg = r;
      iv.start = p;
      iv.end = p;
      iv.fp = fp;
    } else {
      iv.start = std::min(iv.start, p);
      iv.end = std::max(iv.end, p);
    }
  };

  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    blockSpan[b].first = pos;
    for (const MirInst &inst : fn.blocks[b].insts) {
      for (VReg u : inst.uses())
        touch(u, pos, isFPType(fn.typeOf(u)));
      if (inst.def() != kNoVReg)
        touch(inst.def(), pos, isFPType(fn.typeOf(inst.def())));
      if (inst.op == MirOp::Call)
        callPositions.push_back(pos);
      ++pos;
    }
    blockSpan[b].second = pos;
  }
  // Parameters are live from position 0.
  for (VReg p : fn.paramRegs)
    touch(p, 0, isFPType(fn.typeOf(p)));

  // Back edges: a branch from block b to block t with t <= b forms a loop
  // region [start(t), end(b)). Extend every interval touching the region
  // to span it (conservative; see header). Repeat until stable to handle
  // nested/overlapping regions.
  std::vector<std::pair<std::size_t, std::size_t>> regions;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b)
    for (std::uint32_t succ : fn.blocks[b].successors())
      if (succ <= b)
        regions.push_back({blockSpan[succ].first, blockSpan[b].second});

  bool changed = true;
  while (changed) {
    changed = false;
    for (auto &[r, iv] : intervals) {
      for (const auto &[lo, hi] : regions) {
        bool intersects = iv.start < hi && iv.end >= lo;
        if (intersects && (iv.start > lo || iv.end < hi - 1)) {
          iv.start = std::min(iv.start, lo);
          iv.end = std::max(iv.end, hi - 1);
          changed = true;
        }
      }
    }
  }

  for (auto &[r, iv] : intervals)
    for (std::size_t cp : callPositions)
      if (iv.start < cp && cp < iv.end)
        iv.crossesCall = true;

  // Linear scan.
  std::vector<Interval> order;
  order.reserve(intervals.size());
  for (auto &[r, iv] : intervals)
    order.push_back(iv);
  std::sort(order.begin(), order.end(), [](const Interval &a,
                                           const Interval &b) {
    return a.start != b.start ? a.start < b.start : a.vreg < b.vreg;
  });

  AllocationResult result;
  struct Active {
    std::size_t end;
    isa::Reg reg;
    bool fp;
  };
  std::vector<Active> active;
  std::set<isa::Reg> freeGPR(std::begin(kGPRPool), std::end(kGPRPool));
  std::set<isa::Reg> freeXMM(std::begin(kXMMPool), std::end(kXMMPool));

  for (const Interval &iv : order) {
    // Expire finished intervals.
    for (auto it = active.begin(); it != active.end();) {
      if (it->end < iv.start) {
        (it->fp ? freeXMM : freeGPR).insert(it->reg);
        it = active.erase(it);
      } else {
        ++it;
      }
    }
    Assignment asg;
    std::set<isa::Reg> &pool = iv.fp ? freeXMM : freeGPR;
    if (!iv.crossesCall && !pool.empty()) {
      asg.inRegister = true;
      asg.reg = *pool.begin();
      pool.erase(pool.begin());
      active.push_back({iv.end, asg.reg, iv.fp});
    } else {
      asg.inRegister = false;
      asg.stackSlot = result.numStackSlots++;
    }
    result.assignments[iv.vreg] = asg;
  }
  return result;
}

} // namespace mira::codegen
