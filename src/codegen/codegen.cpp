#include "codegen/codegen.h"

#include <cassert>

namespace mira::codegen {

using isa::Instruction;
using isa::MemRef;
using isa::Opcode;
using isa::Operand;
using isa::Reg;
using mir::kNoVReg;
using mir::MirBlock;
using mir::MirCmp;
using mir::MirFunction;
using mir::MirInst;
using mir::MirOp;
using mir::MirType;
using mir::VReg;

const std::vector<std::string> &externFunctionTable() {
  static const std::vector<std::string> table = {
      "mc_clock", "mc_print", "mc_print_int", "mc_rand"};
  return table;
}

int externCallId(const std::string &name) {
  const auto &table = externFunctionTable();
  for (std::size_t i = 0; i < table.size(); ++i)
    if (table[i] == name)
      return -static_cast<int>(i) - 1;
  return -static_cast<int>(table.size()) - 1; // unknown extern bucket
}

namespace {

bool isFPType(MirType t) { return t == MirType::F64 || t == MirType::F32; }

Opcode jccFor(MirCmp cmp) {
  switch (cmp) {
  case MirCmp::Lt:
    return Opcode::JL;
  case MirCmp::Le:
    return Opcode::JLE;
  case MirCmp::Gt:
    return Opcode::JG;
  case MirCmp::Ge:
    return Opcode::JGE;
  case MirCmp::Eq:
    return Opcode::JE;
  case MirCmp::Ne:
    return Opcode::JNE;
  }
  return Opcode::JE;
}

class CodeGenerator {
public:
  CodeGenerator(const MirFunction &fn,
                const std::map<std::string, int> &functionIds)
      : fn_(fn), functionIds_(functionIds), alloc_(allocateRegisters(fn)) {}

  CodegenResult run() {
    result_.machine.name = fn_.name;
    result_.map.expansion.resize(fn_.blocks.size());

    emitPrologue();

    for (std::size_t b = 0; b < fn_.blocks.size(); ++b) {
      const MirBlock &block = fn_.blocks[b];
      blockStart_[static_cast<std::uint32_t>(b)] =
          static_cast<std::uint32_t>(result_.machine.instructions.size());
      result_.map.expansion[b].resize(block.insts.size());
      pendingCmp_ = false;
      for (std::size_t i = 0; i < block.insts.size(); ++i) {
        current_ = &result_.map.expansion[b][i];
        emitInst(block, block.insts[i], i,
                 static_cast<std::uint32_t>(b));
      }
    }

    // Layout and patch intra-function jump labels to byte offsets.
    result_.machine.layout(0);
    for (Instruction &inst : result_.machine.instructions) {
      if (isa::isCall(inst.opcode))
        continue; // call labels stay as function ids
      for (Operand &op : inst.operands) {
        if (op.kind == isa::OperandKind::Label) {
          auto it = blockStart_.find(static_cast<std::uint32_t>(op.imm));
          assert(it != blockStart_.end());
          std::uint32_t idx = it->second;
          std::uint64_t addr =
              idx < result_.machine.instructions.size()
                  ? result_.machine.instructions[idx].address
                  : (result_.machine.instructions.empty()
                         ? 0
                         : result_.machine.instructions.back().address +
                               result_.machine.instructions.back()
                                   .encodedSize());
          op = Operand::makeImm(static_cast<std::int64_t>(addr));
        }
      }
    }

    // blockFirstInstr: blocks that emitted nothing point at the next
    // emitted instruction (or one past the end).
    result_.blockFirstInstr = blockStart_;
    return std::move(result_);
  }

private:
  std::uint32_t emit(Opcode op, std::vector<Operand> ops,
                     std::uint32_t line) {
    std::uint32_t idx =
        static_cast<std::uint32_t>(result_.machine.instructions.size());
    result_.machine.instructions.emplace_back(op, std::move(ops), line);
    if (current_)
      current_->push_back(idx);
    else
      result_.map.prologue.push_back(idx);
    return idx;
  }

  MemRef slotRef(std::int32_t slot) const {
    MemRef m;
    m.base = Reg::RBP;
    m.disp = -8 * (slot + 1);
    return m;
  }

  bool fpVReg(VReg v) const { return isFPType(fn_.typeOf(v)); }

  /// Physical register currently holding `v`, reloading spilled values
  /// into a scratch register (scratchIdx selects between the two).
  Reg read(VReg v, int scratchIdx, std::uint32_t line) {
    const Assignment &a = alloc_.of(v);
    if (a.inRegister)
      return a.reg;
    if (fpVReg(v)) {
      Reg s = scratchIdx ? Reg::XMM15 : Reg::XMM14;
      emit(fn_.typeOf(v) == MirType::F32 ? Opcode::MOVSS_RM
                                         : Opcode::MOVSD_RM,
           {Operand::makeReg(s), Operand::makeMem(slotRef(a.stackSlot))},
           line);
      return s;
    }
    Reg s = scratchIdx ? Reg::R11 : Reg::R10;
    emit(Opcode::MOV,
         {Operand::makeReg(s), Operand::makeMem(slotRef(a.stackSlot))},
         line);
    return s;
  }

  /// Register to compute the def of `v` into.
  Reg defTarget(VReg v) {
    const Assignment &a = alloc_.of(v);
    if (a.inRegister)
      return a.reg;
    return fpVReg(v) ? Reg::XMM14 : Reg::R10;
  }

  /// Store the computed def back to its home if spilled.
  void finishDef(VReg v, Reg computed, std::uint32_t line) {
    const Assignment &a = alloc_.of(v);
    if (a.inRegister)
      return;
    if (fpVReg(v))
      emit(fn_.typeOf(v) == MirType::F32 ? Opcode::MOVSS_MR
                                         : Opcode::MOVSD_MR,
           {Operand::makeMem(slotRef(a.stackSlot)), Operand::makeReg(computed)},
           line);
    else
      emit(Opcode::MOV,
           {Operand::makeMem(slotRef(a.stackSlot)),
            Operand::makeReg(computed)},
           line);
  }

  MemRef addrOf(const MirInst &inst, std::uint32_t line) {
    MemRef m;
    m.base = read(inst.base, 0, line);
    if (inst.index != kNoVReg) {
      m.index = read(inst.index, 1, line);
      m.scale = static_cast<std::uint8_t>(inst.scale);
    }
    m.disp = inst.disp;
    return m;
  }

  void emitPrologue() {
    current_ = nullptr;
    emit(Opcode::PUSH, {Operand::makeReg(Reg::RBP)}, 0);
    emit(Opcode::MOV, {Operand::makeReg(Reg::RBP), Operand::makeReg(Reg::RSP)},
         0);
    frameSize_ = 8 * alloc_.numStackSlots;
    if (frameSize_ % 16)
      frameSize_ += 8;
    if (frameSize_)
      emit(Opcode::SUB,
           {Operand::makeReg(Reg::RSP), Operand::makeImm(frameSize_)}, 0);

    // Home incoming arguments (System-V-like: int/ptr in RDI,RSI,RDX,RCX,
    // R8,R9; fp in XMM0..XMM7; the rest on the caller's stack frame).
    static const Reg intArg[] = {Reg::RDI, Reg::RSI, Reg::RDX,
                                 Reg::RCX, Reg::R8,  Reg::R9};
    int usedInt = 0, usedFP = 0, stackArgs = 0;
    for (std::size_t i = 0; i < fn_.paramRegs.size(); ++i) {
      VReg p = fn_.paramRegs[i];
      bool fp = fpVReg(p);
      const Assignment &a = alloc_.of(p);
      Operand home = a.inRegister
                         ? Operand::makeReg(a.reg)
                         : Operand::makeMem(slotRef(a.stackSlot));
      if (fp && usedFP < 8) {
        Reg src = isa::xmm(usedFP++);
        emit(a.inRegister ? Opcode::MOVSD_RR : Opcode::MOVSD_MR,
             {home, Operand::makeReg(src)}, 0);
      } else if (!fp && usedInt < 6) {
        Reg src = intArg[usedInt++];
        emit(Opcode::MOV, {home, Operand::makeReg(src)}, 0);
      } else {
        // Stack argument: load from the caller frame.
        MemRef m;
        m.base = Reg::RBP;
        m.disp = 16 + 8 * stackArgs++;
        if (fp) {
          if (a.inRegister) {
            emit(Opcode::MOVSD_RM, {home, Operand::makeMem(m)}, 0);
          } else {
            emit(Opcode::MOVSD_RM,
                 {Operand::makeReg(Reg::XMM14), Operand::makeMem(m)}, 0);
            emit(Opcode::MOVSD_MR, {home, Operand::makeReg(Reg::XMM14)}, 0);
          }
        } else if (a.inRegister) {
          emit(Opcode::MOV, {home, Operand::makeMem(m)}, 0);
        } else {
          emit(Opcode::MOV,
               {Operand::makeReg(Reg::R10), Operand::makeMem(m)}, 0);
          emit(Opcode::MOV, {home, Operand::makeReg(Reg::R10)}, 0);
        }
      }
    }
  }

  void emitEpilogue(std::uint32_t line) {
    if (frameSize_)
      emit(Opcode::ADD,
           {Operand::makeReg(Reg::RSP), Operand::makeImm(frameSize_)}, line);
    emit(Opcode::POP, {Operand::makeReg(Reg::RBP)}, line);
    emit(Opcode::RET, {}, line);
  }

  /// True if the ICmp/FCmp at index i can fuse with a Branch at i+1.
  bool fusesWithNextBranch(const MirBlock &block, std::size_t i) const {
    const MirInst &cmpInst = block.insts[i];
    if (i + 1 >= block.insts.size())
      return false;
    const MirInst &next = block.insts[i + 1];
    if (next.op != MirOp::Branch || next.a != cmpInst.dst)
      return false;
    // The flag consumer must be the only use.
    for (const MirBlock &b : fn_.blocks)
      for (const MirInst &inst : b.insts) {
        if (&inst == &next)
          continue;
        for (VReg u : inst.uses())
          if (u == cmpInst.dst)
            return false;
      }
    return true;
  }

  void emitInst(const MirBlock &block, const MirInst &inst, std::size_t idx,
                std::uint32_t blockId) {
    std::uint32_t line = inst.line;
    switch (inst.op) {
    case MirOp::Nop:
      break;
    case MirOp::ConstI: {
      Reg d = defTarget(inst.dst);
      emit(Opcode::MOV, {Operand::makeReg(d), Operand::makeImm(inst.imm)},
           line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::ConstF: {
      Reg d = defTarget(inst.dst);
      if (inst.fimm == 0) {
        emit(Opcode::XORPD, {Operand::makeReg(d), Operand::makeReg(d)}, line);
      } else {
        std::int64_t bits;
        static_assert(sizeof(double) == sizeof(std::int64_t));
        __builtin_memcpy(&bits, &inst.fimm, sizeof bits);
        emit(Opcode::MOV,
             {Operand::makeReg(Reg::R10), Operand::makeImm(bits)}, line);
        emit(Opcode::MOVQ_XR,
             {Operand::makeReg(d), Operand::makeReg(Reg::R10)}, line);
      }
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::Copy: {
      Reg s = read(inst.a, 0, line);
      Reg d = defTarget(inst.dst);
      if (d != s) {
        if (fpVReg(inst.dst))
          emit(inst.packed ? Opcode::MOVAPD_RR : Opcode::MOVSD_RR,
               {Operand::makeReg(d), Operand::makeReg(s)}, line);
        else
          emit(Opcode::MOV, {Operand::makeReg(d), Operand::makeReg(s)}, line);
      }
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::Add:
    case MirOp::Sub:
    case MirOp::Mul:
    case MirOp::And:
    case MirOp::Or:
    case MirOp::Xor:
    case MirOp::Shl:
    case MirOp::Shr: {
      Reg a = read(inst.a, 0, line);
      Reg b = read(inst.b, 1, line);
      Reg d = defTarget(inst.dst);
      if (d != a)
        emit(Opcode::MOV, {Operand::makeReg(d), Operand::makeReg(a)}, line);
      Opcode op;
      switch (inst.op) {
      case MirOp::Add:
        op = Opcode::ADD;
        break;
      case MirOp::Sub:
        op = Opcode::SUB;
        break;
      case MirOp::Mul:
        op = Opcode::IMUL;
        break;
      case MirOp::And:
        op = Opcode::AND;
        break;
      case MirOp::Or:
        op = Opcode::OR;
        break;
      case MirOp::Xor:
        op = Opcode::XOR;
        break;
      case MirOp::Shl:
        op = Opcode::SHL;
        break;
      default:
        op = Opcode::SHR;
        break;
      }
      emit(op, {Operand::makeReg(d), Operand::makeReg(b)}, line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::Div:
    case MirOp::Rem: {
      Reg a = read(inst.a, 0, line);
      Reg b = read(inst.b, 1, line);
      emit(Opcode::MOV, {Operand::makeReg(Reg::RAX), Operand::makeReg(a)},
           line);
      emit(Opcode::CQO, {}, line);
      emit(Opcode::IDIV, {Operand::makeReg(b)}, line);
      Reg d = defTarget(inst.dst);
      emit(Opcode::MOV,
           {Operand::makeReg(d),
            Operand::makeReg(inst.op == MirOp::Div ? Reg::RAX : Reg::RDX)},
           line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::Neg: {
      Reg a = read(inst.a, 0, line);
      Reg d = defTarget(inst.dst);
      if (d != a)
        emit(Opcode::MOV, {Operand::makeReg(d), Operand::makeReg(a)}, line);
      emit(Opcode::NEG, {Operand::makeReg(d)}, line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::Not: {
      Reg a = read(inst.a, 0, line);
      Reg d = defTarget(inst.dst);
      if (d != a)
        emit(Opcode::MOV, {Operand::makeReg(d), Operand::makeReg(a)}, line);
      emit(Opcode::NOT, {Operand::makeReg(d)}, line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::IMin:
    case MirOp::IMax: {
      // CMP + MOV + conditional-move stand-in.
      Reg a = read(inst.a, 0, line);
      Reg b = read(inst.b, 1, line);
      Reg d = defTarget(inst.dst);
      emit(Opcode::CMP, {Operand::makeReg(a), Operand::makeReg(b)}, line);
      if (d != a)
        emit(Opcode::MOV, {Operand::makeReg(d), Operand::makeReg(a)}, line);
      emit(Opcode::MOV, {Operand::makeReg(d), Operand::makeReg(b)}, line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::ICmp:
    case MirOp::FCmp: {
      bool fp = inst.op == MirOp::FCmp;
      Reg a = read(inst.a, 0, line);
      Reg b = read(inst.b, 1, line);
      emit(fp ? Opcode::UCOMISD : Opcode::CMP,
           {Operand::makeReg(a), Operand::makeReg(b)}, line);
      if (fusesWithNextBranch(block, idx)) {
        pendingCmp_ = true;
        pendingRel_ = inst.cmp;
      } else {
        Reg d = defTarget(inst.dst);
        emit(Opcode::SETcc, {Operand::makeReg(d)}, line);
        finishDef(inst.dst, d, line);
      }
      break;
    }
    case MirOp::FAdd:
    case MirOp::FSub:
    case MirOp::FMul:
    case MirOp::FDiv:
    case MirOp::FMin:
    case MirOp::FMax: {
      Reg a = read(inst.a, 0, line);
      Reg b = read(inst.b, 1, line);
      Reg d = defTarget(inst.dst);
      bool f32 = inst.type == MirType::F32;
      if (d != a)
        emit(inst.packed ? Opcode::MOVAPD_RR
                         : (f32 ? Opcode::MOVSS_RR : Opcode::MOVSD_RR),
             {Operand::makeReg(d), Operand::makeReg(a)}, line);
      Opcode op;
      switch (inst.op) {
      case MirOp::FAdd:
        op = inst.packed ? Opcode::ADDPD : (f32 ? Opcode::ADDSS : Opcode::ADDSD);
        break;
      case MirOp::FSub:
        op = inst.packed ? Opcode::SUBPD : (f32 ? Opcode::SUBSS : Opcode::SUBSD);
        break;
      case MirOp::FMul:
        op = inst.packed ? Opcode::MULPD : (f32 ? Opcode::MULSS : Opcode::MULSD);
        break;
      case MirOp::FDiv:
        op = inst.packed ? Opcode::DIVPD : (f32 ? Opcode::DIVSS : Opcode::DIVSD);
        break;
      case MirOp::FMin:
        op = inst.packed ? Opcode::MINPD : Opcode::MINSD;
        break;
      default:
        op = inst.packed ? Opcode::MAXPD : Opcode::MAXSD;
        break;
      }
      emit(op, {Operand::makeReg(d), Operand::makeReg(b)}, line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::FNeg: {
      Reg a = read(inst.a, 0, line);
      Reg d = defTarget(inst.dst);
      if (d != a)
        emit(Opcode::MOVSD_RR, {Operand::makeReg(d), Operand::makeReg(a)},
             line);
      emit(Opcode::XORPD, {Operand::makeReg(d), Operand::makeReg(d)}, line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::FSqrt: {
      Reg a = read(inst.a, 0, line);
      Reg d = defTarget(inst.dst);
      emit(inst.packed ? Opcode::SQRTPD : Opcode::SQRTSD,
           {Operand::makeReg(d), Operand::makeReg(a)}, line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::FAbs: {
      Reg a = read(inst.a, 0, line);
      Reg d = defTarget(inst.dst);
      if (d != a)
        emit(Opcode::MOVSD_RR, {Operand::makeReg(d), Operand::makeReg(a)},
             line);
      emit(Opcode::ANDPD, {Operand::makeReg(d), Operand::makeReg(d)}, line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::FHAdd: {
      Reg a = read(inst.a, 0, line);
      Reg d = defTarget(inst.dst);
      if (d != a)
        emit(Opcode::MOVAPD_RR, {Operand::makeReg(d), Operand::makeReg(a)},
             line);
      emit(Opcode::HADDPD, {Operand::makeReg(d), Operand::makeReg(d)}, line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::FSplat: {
      Reg a = read(inst.a, 0, line);
      Reg d = defTarget(inst.dst);
      if (d != a)
        emit(Opcode::MOVSD_RR, {Operand::makeReg(d), Operand::makeReg(a)},
             line);
      emit(Opcode::UNPCKLPD, {Operand::makeReg(d), Operand::makeReg(d)},
           line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::Load: {
      MemRef m = addrOf(inst, line);
      Reg d = defTarget(inst.dst);
      Opcode op;
      if (inst.packed)
        op = Opcode::MOVAPD_RM;
      else if (inst.type == MirType::F64)
        op = Opcode::MOVSD_RM;
      else if (inst.type == MirType::F32)
        op = Opcode::MOVSS_RM;
      else
        op = Opcode::MOV;
      emit(op, {Operand::makeReg(d), Operand::makeMem(m)}, line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::Store: {
      MemRef m = addrOf(inst, line);
      // Use scratch index 0 is taken by base; the value uses the other
      // scratch bank (FP vs GPR do not collide anyway).
      Reg v = read(inst.a, 1, line);
      Opcode op;
      if (inst.packed)
        op = Opcode::MOVAPD_MR;
      else if (inst.type == MirType::F64)
        op = Opcode::MOVSD_MR;
      else if (inst.type == MirType::F32)
        op = Opcode::MOVSS_MR;
      else
        op = Opcode::MOV;
      emit(op, {Operand::makeMem(m), Operand::makeReg(v)}, line);
      break;
    }
    case MirOp::Lea: {
      MemRef m = addrOf(inst, line);
      Reg d = defTarget(inst.dst);
      emit(Opcode::LEA, {Operand::makeReg(d), Operand::makeMem(m)}, line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::Alloca: {
      Reg count = read(inst.a, 0, line);
      emit(Opcode::MOV, {Operand::makeReg(Reg::R11), Operand::makeReg(count)},
           line);
      emit(Opcode::IMUL,
           {Operand::makeReg(Reg::R11), Operand::makeImm(inst.imm)}, line);
      emit(Opcode::SUB, {Operand::makeReg(Reg::RSP), Operand::makeReg(Reg::R11)},
           line);
      Reg d = defTarget(inst.dst);
      emit(Opcode::MOV, {Operand::makeReg(d), Operand::makeReg(Reg::RSP)},
           line);
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::Cast: {
      Reg a = read(inst.a, 0, line);
      Reg d = defTarget(inst.dst);
      bool fromFP = isFPType(inst.fromType);
      bool toFP = isFPType(inst.type);
      if (!fromFP && toFP) {
        emit(inst.type == MirType::F32 ? Opcode::CVTSI2SS : Opcode::CVTSI2SD,
             {Operand::makeReg(d), Operand::makeReg(a)}, line);
      } else if (fromFP && !toFP) {
        emit(inst.fromType == MirType::F32 ? Opcode::CVTTSS2SI
                                           : Opcode::CVTTSD2SI,
             {Operand::makeReg(d), Operand::makeReg(a)}, line);
      } else if (fromFP && toFP) {
        emit(inst.type == MirType::F32 ? Opcode::CVTSD2SS : Opcode::CVTSS2SD,
             {Operand::makeReg(d), Operand::makeReg(a)}, line);
      } else {
        emit(Opcode::MOVSXD, {Operand::makeReg(d), Operand::makeReg(a)},
             line);
      }
      finishDef(inst.dst, d, line);
      break;
    }
    case MirOp::Jump: {
      // Fallthrough elision: no JMP when the target is the next block.
      if (inst.target != blockId + 1)
        emit(Opcode::JMP, {Operand::makeLabel(inst.target)}, line);
      break;
    }
    case MirOp::Branch: {
      if (pendingCmp_) {
        pendingCmp_ = false;
        emit(jccFor(pendingRel_), {Operand::makeLabel(inst.target)}, line);
      } else {
        Reg c = read(inst.a, 0, line);
        emit(Opcode::TEST, {Operand::makeReg(c), Operand::makeReg(c)}, line);
        emit(Opcode::JNE, {Operand::makeLabel(inst.target)}, line);
      }
      if (inst.targetFalse != blockId + 1)
        emit(Opcode::JMP, {Operand::makeLabel(inst.targetFalse)}, line);
      break;
    }
    case MirOp::Ret: {
      if (inst.a != kNoVReg) {
        Reg v = read(inst.a, 0, line);
        if (fpVReg(inst.a)) {
          if (v != Reg::XMM0)
            emit(Opcode::MOVSD_RR,
                 {Operand::makeReg(Reg::XMM0), Operand::makeReg(v)}, line);
        } else if (v != Reg::RAX) {
          emit(Opcode::MOV, {Operand::makeReg(Reg::RAX), Operand::makeReg(v)},
               line);
        }
      }
      emitEpilogue(line);
      break;
    }
    case MirOp::Call: {
      static const Reg intArg[] = {Reg::RDI, Reg::RSI, Reg::RDX,
                                   Reg::RCX, Reg::R8,  Reg::R9};
      int usedInt = 0, usedFP = 0;
      for (VReg arg : inst.args) {
        Reg src = read(arg, 0, line);
        if (fpVReg(arg)) {
          if (usedFP < 8)
            emit(Opcode::MOVSD_RR,
                 {Operand::makeReg(isa::xmm(usedFP)), Operand::makeReg(src)},
                 line);
          else
            emit(Opcode::PUSH, {Operand::makeReg(Reg::R10)}, line);
          ++usedFP;
        } else {
          if (usedInt < 6)
            emit(Opcode::MOV,
                 {Operand::makeReg(intArg[usedInt]), Operand::makeReg(src)},
                 line);
          else
            emit(Opcode::PUSH, {Operand::makeReg(src)}, line);
          ++usedInt;
        }
      }
      int target;
      if (inst.externCall) {
        target = externCallId(inst.callee);
      } else {
        auto it = functionIds_.find(inst.callee);
        target = it != functionIds_.end() ? it->second : -999;
      }
      emit(Opcode::CALL, {Operand::makeLabel(target)}, line);
      if (inst.dst != kNoVReg) {
        Reg d = defTarget(inst.dst);
        if (fpVReg(inst.dst)) {
          if (d != Reg::XMM0)
            emit(Opcode::MOVSD_RR,
                 {Operand::makeReg(d), Operand::makeReg(Reg::XMM0)}, line);
        } else if (d != Reg::RAX) {
          emit(Opcode::MOV, {Operand::makeReg(d), Operand::makeReg(Reg::RAX)},
               line);
        }
        finishDef(inst.dst, d, line);
      }
      break;
    }
    }
  }

  const MirFunction &fn_;
  const std::map<std::string, int> &functionIds_;
  AllocationResult alloc_;
  CodegenResult result_;
  std::vector<std::uint32_t> *current_ = nullptr;
  std::map<std::uint32_t, std::uint32_t> blockStart_;
  bool pendingCmp_ = false;
  MirCmp pendingRel_ = MirCmp::Lt;
  std::int64_t frameSize_ = 0;
};

} // namespace

CodegenResult generateCode(const MirFunction &fn,
                           const std::map<std::string, int> &functionIds) {
  CodeGenerator gen(fn, functionIds);
  return gen.run();
}

} // namespace mira::codegen
