// Linear-scan register allocation over MIR virtual registers.
//
// Live intervals are computed on the linearized instruction order and
// conservatively extended across loop back edges (any register touching a
// loop region is treated as live through the whole region). Unallocated
// registers get RBP-relative stack slots; spilled operands go through the
// reserved scratch registers (R10/R11, XMM14/XMM15).
//
// The machine code is the structural/count reference of the pipeline (the
// simulator executes MIR with per-instruction machine expansions), so the
// allocator optimizes for realistic instruction mixes and deterministic
// output.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "isa/registers.h"
#include "mir/mir.h"

namespace mira::codegen {

struct Assignment {
  bool inRegister = false;
  isa::Reg reg = isa::Reg::NONE;
  std::int32_t stackSlot = -1; // index; address = [rbp - 8*(slot+1)]
};

struct AllocationResult {
  std::map<mir::VReg, Assignment> assignments;
  std::int32_t numStackSlots = 0;

  const Assignment &of(mir::VReg r) const { return assignments.at(r); }
};

/// Allocate registers for `fn`. Registers live across calls are always
/// stack-homed (the convention is caller-clobbers-everything).
AllocationResult allocateRegisters(const mir::MirFunction &fn);

} // namespace mira::codegen
