#include "corpus/manifest.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "support/binary_io.h"
#include "support/hash.h"

namespace mira::corpus {

namespace fs = std::filesystem;

std::uint64_t contentHash(const std::string &sourceBytes) {
  return fnv1a(sourceBytes);
}

bool buildManifest(const std::string &rootDir, Manifest &manifest,
                   std::string &error,
                   const std::vector<std::string> &extensions) {
  manifest = Manifest{};
  manifest.root = rootDir;
  std::error_code ec;
  if (!fs::is_directory(rootDir, ec)) {
    error = "manifest root '" + rootDir + "' is not a directory";
    return false;
  }

  const fs::path root(rootDir);
  fs::recursive_directory_iterator it(root, ec), end;
  if (ec) {
    error = "cannot open '" + rootDir + "': " + ec.message();
    return false;
  }
  for (; it != end; it.increment(ec)) {
    if (ec) {
      error = "cannot walk '" + rootDir + "': " + ec.message();
      return false;
    }
    // A stat failure is not a skip: a silently incomplete manifest
    // would later prune live cache entries / plan a wrong batch.
    std::error_code statEc;
    const bool regular = it->is_regular_file(statEc);
    if (statEc) {
      error = "cannot stat '" + it->path().string() +
              "': " + statEc.message();
      return false;
    }
    if (!regular)
      continue;
    const std::string extension = it->path().extension().string();
    if (std::find(extensions.begin(), extensions.end(), extension) ==
        extensions.end())
      continue;

    std::ifstream in(it->path(), std::ios::binary);
    if (!in) {
      error = "cannot read '" + it->path().string() + "'";
      return false;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad()) {
      error = "read error on '" + it->path().string() + "'";
      return false;
    }

    ManifestEntry entry;
    // generic_string: '/' separators on every host, so the same tree
    // produces the same manifest bytes everywhere.
    entry.path = it->path().lexically_relative(root).generic_string();
    entry.contentHash = contentHash(bytes);
    entry.size = bytes.size();
    manifest.entries.push_back(std::move(entry));
  }

  std::sort(manifest.entries.begin(), manifest.entries.end(),
            [](const ManifestEntry &a, const ManifestEntry &b) {
              return a.path < b.path;
            });
  return true;
}

std::string serializeManifest(const Manifest &manifest) {
  std::string out;
  bio::putU32(out, kManifestMagic);
  bio::putU32(out, kManifestVersion);
  bio::putString(out, manifest.root);
  bio::putU32(out, static_cast<std::uint32_t>(manifest.entries.size()));
  for (const ManifestEntry &entry : manifest.entries) {
    bio::putString(out, entry.path);
    bio::putU64(out, entry.contentHash);
    bio::putU64(out, entry.size);
  }
  bio::putU64(out, fnv1a(out)); // checksum over everything above
  return out;
}

bool deserializeManifest(const std::string &bytes, Manifest &manifest,
                         std::string &error) {
  manifest = Manifest{};
  bio::Reader r{bytes, 0};
  std::uint32_t magic = 0, version = 0, count = 0;
  if (!r.u32(magic) || magic != kManifestMagic) {
    error = "not a Mira manifest (bad magic)";
    return false;
  }
  if (!r.u32(version) || version != kManifestVersion) {
    error = "unsupported manifest version " + std::to_string(version) +
            " (this build reads version " + std::to_string(kManifestVersion) +
            ")";
    return false;
  }
  if (!r.str(manifest.root) || !r.u32(count)) {
    error = "truncated manifest header";
    return false;
  }
  // No reserve(count): the count is untrusted; per-entry reads fail
  // naturally when the bytes run out.
  for (std::uint32_t i = 0; i < count; ++i) {
    ManifestEntry entry;
    if (!r.str(entry.path) || !r.u64(entry.contentHash) ||
        !r.u64(entry.size)) {
      error = "truncated manifest entry " + std::to_string(i);
      return false;
    }
    if (!manifest.entries.empty() &&
        manifest.entries.back().path >= entry.path) {
      error = "manifest entries not strictly path-sorted at '" + entry.path +
              "'";
      return false;
    }
    manifest.entries.push_back(std::move(entry));
  }
  const std::size_t checksummed = r.offset;
  std::uint64_t checksum = 0;
  if (!r.u64(checksum) || r.remaining() != 0) {
    error = "truncated or oversized manifest trailer";
    return false;
  }
  if (fnv1a(bytes.data(), checksummed) != checksum) {
    error = "manifest checksum mismatch (corrupt or torn file)";
    return false;
  }
  return true;
}

bool writeManifestFile(const std::string &path, const Manifest &manifest,
                       std::string &error) {
  const std::string bytes = serializeManifest(manifest);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    error = "cannot write manifest to '" + path + "'";
    return false;
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    error = "write error on '" + path + "'";
    return false;
  }
  return true;
}

bool loadManifestFile(const std::string &path, Manifest &manifest,
                      std::string &error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open manifest '" + path + "'";
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    error = "read error on '" + path + "'";
    return false;
  }
  if (!deserializeManifest(bytes, manifest, error)) {
    error = "'" + path + "': " + error;
    return false;
  }
  return true;
}

ManifestDiff diffManifests(const Manifest &from, const Manifest &to) {
  ManifestDiff diff;
  // Both sides are path-sorted (build and load guarantee it), so one
  // linear merge classifies every path.
  std::size_t i = 0, j = 0;
  while (i < from.entries.size() || j < to.entries.size()) {
    if (i == from.entries.size()) {
      diff.added.push_back(to.entries[j++]);
    } else if (j == to.entries.size()) {
      diff.removed.push_back(from.entries[i++].path);
    } else if (from.entries[i].path < to.entries[j].path) {
      diff.removed.push_back(from.entries[i++].path);
    } else if (to.entries[j].path < from.entries[i].path) {
      diff.added.push_back(to.entries[j++]);
    } else {
      if (from.entries[i].contentHash != to.entries[j].contentHash)
        diff.changed.push_back(to.entries[j]);
      ++i;
      ++j;
    }
  }
  return diff;
}

} // namespace mira::corpus
