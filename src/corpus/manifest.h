/// \file
/// Content-addressed corpus manifests for incremental re-analysis.
///
/// A manifest is the durable description of one workload tree: every
/// analyzable source file under a root directory, named by its
/// root-relative path and fingerprinted with the same 64-bit FNV-1a
/// content hash that seeds the analysis cache key
/// (driver::requestKey starts from fnv1a(source) and mixes in the
/// model-affecting options — see driver::requestKeyFromContentHash).
/// That shared scheme is the whole point: a manifest entry's hash plus a
/// set of pipeline options *is* the cache key, so batch drivers can
/// plan incremental and sharded work — and garbage-collect the cache —
/// without re-reading a byte of source.
///
/// Workflow (docs/MANIFESTS.md is the operator guide):
///   1. `mira-cli manifest build <dir>` walks the tree and writes a
///      schema-versioned, checksummed manifest file;
///   2. `mira-cli manifest diff OLD NEW` (or the daemon's ManifestDiff
///      wire request) reports added/changed/removed entries;
///   3. `mira-cli batch --manifest M [--since OLD] [--shard I/N]`
///      analyzes only what changed, deterministically partitioned
///      across shard processes that share one cache directory.
///
/// Determinism contract: entries are sorted by path, paths use '/'
/// separators regardless of host, and serialization is byte-stable —
/// two builds over identical trees produce identical *entry* bytes.
/// The recorded root directory string is serialized verbatim (batch
/// drivers resolve entries against it), so whole-file byte identity
/// additionally requires the same root argument spelling; content
/// comparison across differently-rooted builds is `manifest diff`'s
/// job, not cmp's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mira::corpus {

/// Manifest file magic: the bytes "MirC" (for Corpus), read as a
/// little-endian u32. First field of a serialized manifest.
inline constexpr std::uint32_t kManifestMagic = 0x4372694du;

/// On-disk manifest schema version. Bump when the serialized layout
/// below changes; loaders reject other versions with a clear error
/// instead of misreading bytes.
inline constexpr std::uint32_t kManifestVersion = 1;

/// One source file of a corpus: where it lives relative to the root,
/// what its bytes hash to, and how big it is.
struct ManifestEntry {
  /// Root-relative path with '/' separators on every host — the entry's
  /// identity across manifest versions (renames are remove + add).
  std::string path;
  /// FNV-1a of the file's bytes — the seed of the analysis cache key
  /// (driver::requestKeyFromContentHash mixes the options into this).
  std::uint64_t contentHash = 0;
  /// File size in bytes when the manifest was built (informational:
  /// lets planners estimate work without stat()ing the tree).
  std::uint64_t size = 0;
};

/// A built manifest: the root it was built from plus its entries,
/// sorted by path.
struct Manifest {
  /// Root directory as given to buildManifest — the default base
  /// against which batch drivers resolve entry paths (`--root`
  /// overrides it when a manifest travels to another machine).
  std::string root;
  std::vector<ManifestEntry> entries; ///< sorted by ManifestEntry::path
};

/// The FNV-1a content hash of one source, exactly as buildManifest
/// computes it for each file — and exactly the seed driver::requestKey
/// hashes options into. Exposed so tests and planners can pin the
/// "manifest hash + options == cache key" contract.
std::uint64_t contentHash(const std::string &sourceBytes);

/// Walk `rootDir` recursively and build a manifest of every regular
/// file whose extension is in `extensions` (default: ".mc"). Entries
/// come back sorted by path. Returns false — with a description in
/// `error` — when the root is not a directory or any matching file
/// cannot be read (a partially hashed tree would be a silently wrong
/// manifest).
bool buildManifest(const std::string &rootDir, Manifest &manifest,
                   std::string &error,
                   const std::vector<std::string> &extensions = {".mc"});

/// Byte-stable serialization:
/// `[magic u32][version u32][root str][count u32]` then per entry
/// `[path str][contentHash u64][size u64]`, then `[checksum u64]` — an
/// FNV-1a over every preceding byte, same scheme as the cache store.
std::string serializeManifest(const Manifest &manifest);

/// Parse serializeManifest bytes. Returns false with a description on
/// any structural problem: bad magic, unsupported version, truncation,
/// trailing garbage, unsorted or duplicate paths, checksum mismatch.
bool deserializeManifest(const std::string &bytes, Manifest &manifest,
                         std::string &error);

/// Write `manifest` to `path` (serializeManifest bytes); false with a
/// description on I/O failure.
bool writeManifestFile(const std::string &path, const Manifest &manifest,
                       std::string &error);

/// Read and validate a manifest file; false with a description when the
/// file is unreadable or fails deserializeManifest.
bool loadManifestFile(const std::string &path, Manifest &manifest,
                      std::string &error);

/// What changed between two manifests, keyed by path.
struct ManifestDiff {
  std::vector<ManifestEntry> added;   ///< in `to` only (entries from `to`)
  std::vector<ManifestEntry> changed; ///< both, different contentHash
                                      ///< (entries from `to`)
  std::vector<std::string> removed;   ///< paths in `from` only
  bool empty() const {
    return added.empty() && changed.empty() && removed.empty();
  }
};

/// Diff two manifests. Both sides' entries must be path-sorted (which
/// build and load guarantee); results are path-sorted too. A size-only
/// change with an equal hash is NOT a change — content addressing means
/// the hash is the identity (and equal hashes imply equal sizes for
/// real files).
ManifestDiff diffManifests(const Manifest &from, const Manifest &to);

} // namespace mira::corpus
