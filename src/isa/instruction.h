// Machine instructions of the synthetic ISA: operands, instructions,
// printing. The encoder (encoding.h) serializes these into MiraObject
// .text bytes; the disassembler decodes them back for the binary AST.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.h"
#include "isa/registers.h"
#include "support/source_location.h"

namespace mira::isa {

enum class OperandKind : std::uint8_t { Reg, Imm, Mem, Label };

/// Memory operand: [base + index*scale + disp].
struct MemRef {
  Reg base = Reg::NONE;
  Reg index = Reg::NONE;
  std::uint8_t scale = 1; // 1, 2, 4, or 8
  std::int32_t disp = 0;

  bool operator==(const MemRef &o) const {
    return base == o.base && index == o.index && scale == o.scale &&
           disp == o.disp;
  }
  std::string str() const;
};

struct Operand {
  OperandKind kind = OperandKind::Imm;
  Reg reg = Reg::NONE;
  std::int64_t imm = 0; // Imm value, or Label target id
  MemRef mem;

  static Operand makeReg(Reg r);
  static Operand makeImm(std::int64_t value);
  static Operand makeMem(MemRef m);
  /// Branch/call target: label ids are resolved to addresses at layout.
  static Operand makeLabel(std::int64_t labelId);

  bool operator==(const Operand &o) const;
  std::string str() const;
};

struct Instruction {
  Opcode opcode = Opcode::NOP;
  std::vector<Operand> operands;
  /// Source line this instruction was generated from (the DWARF-style
  /// line-table entry written to the object, paper Sec. III-A2). 0 when
  /// compiler-generated glue without a source position.
  std::uint32_t line = 0;

  /// Address within the function's .text after layout; 0 before.
  std::uint64_t address = 0;

  Instruction() = default;
  Instruction(Opcode op, std::vector<Operand> ops, std::uint32_t srcLine = 0)
      : opcode(op), operands(std::move(ops)), line(srcLine) {}

  bool operator==(const Instruction &o) const {
    return opcode == o.opcode && operands == o.operands && line == o.line;
  }

  /// Encoded size in bytes (layout uses this to assign addresses).
  std::size_t encodedSize() const;

  std::string str() const; // "addpd xmm0, xmm1"
};

/// A machine function: a named, laid-out instruction sequence. Label
/// operands refer to instruction indices until layout() resolves them to
/// byte addresses.
struct MachineFunction {
  std::string name;            // qualified source name ("A::foo")
  std::vector<Instruction> instructions;

  /// Assign `address` to every instruction, starting at `base`.
  /// Returns the total encoded size.
  std::uint64_t layout(std::uint64_t base);

  std::string str() const;
};

} // namespace mira::isa
