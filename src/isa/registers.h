// Register file of the synthetic x86-64-like ISA.
//
// 16 general-purpose 64-bit registers and 16 XMM vector registers (128-bit,
// two doubles) — the register model the paper's instruction categories
// assume (e.g. "SSE2 data movement ... between XMM registers and memory").
#pragma once

#include <cstdint>
#include <string>

namespace mira::isa {

enum class Reg : std::uint8_t {
  // general purpose
  RAX, RBX, RCX, RDX, RSI, RDI, RBP, RSP,
  R8, R9, R10, R11, R12, R13, R14, R15,
  // SSE2 vector registers
  XMM0, XMM1, XMM2, XMM3, XMM4, XMM5, XMM6, XMM7,
  XMM8, XMM9, XMM10, XMM11, XMM12, XMM13, XMM14, XMM15,
  NONE,
};

inline constexpr int kNumGPR = 16;
inline constexpr int kNumXMM = 16;

inline bool isGPR(Reg r) {
  return static_cast<int>(r) < kNumGPR;
}
inline bool isXMM(Reg r) {
  return static_cast<int>(r) >= kNumGPR &&
         static_cast<int>(r) < kNumGPR + kNumXMM;
}
inline int regIndex(Reg r) { return static_cast<int>(r); }
inline Reg gpr(int index) { return static_cast<Reg>(index); }
inline Reg xmm(int index) { return static_cast<Reg>(kNumGPR + index); }

std::string regName(Reg r);

} // namespace mira::isa
