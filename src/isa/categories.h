// Instruction categories of the architecture description file.
//
// The paper (Sec. III-B6) divides the x86 instruction set into 64
// categories in the architecture description file; Mira reports cumulative
// per-category counts (Table II uses seven of them for cg_solve). The enum
// below reproduces a 64-way categorization modeled on the Intel SDM
// instruction groupings.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace mira::isa {

enum class InstrCategory : std::uint8_t {
  // integer / general purpose (Intel SDM Vol.1 Ch.5 groupings)
  IntDataTransfer,        // MOV, PUSH, POP, XCHG ...
  IntArith,               // ADD, SUB, IMUL, IDIV, INC, DEC, NEG, CMP ...
  IntDecimalArith,        // DAA-family (legacy; unused by the compiler)
  IntLogical,             // AND, OR, XOR, NOT
  IntShiftRotate,         // SHL, SHR, SAR, ROL ...
  IntBitByte,             // BT, SETcc, TEST
  IntControlTransfer,     // JMP, Jcc, CALL, RET, LOOP
  IntString,              // MOVS, CMPS ...
  IntIO,                  // IN, OUT
  IntEnterLeave,          // ENTER, LEAVE
  IntFlagControl,         // STC, CLC ...
  IntSegmentReg,          // segment register moves
  IntMisc,                // LEA, NOP, CPUID, ...
  IntRandom,              // RDRAND, RDSEED
  // x87 FPU
  X87DataTransfer,
  X87BasicArith,
  X87Comparison,
  X87Transcendental,
  X87LoadConstant,
  X87Control,
  // MMX
  MMXDataTransfer,
  MMXConversion,
  MMXPackedArith,
  MMXComparison,
  MMXLogical,
  MMXShiftRotate,
  MMXStateManagement,
  // SSE (single precision)
  SSEDataTransfer,
  SSEPackedArith,
  SSEComparison,
  SSELogical,
  SSEShuffleUnpack,
  SSEConversion,
  SSEMXCSRManagement,
  SSE64BitSIMD,
  SSECacheabilityControl,
  // SSE2 (double precision) — the categories Table II reports
  SSE2DataMovement,       // MOVSD, MOVAPD, MOVUPD ... (XMM <-> memory/XMM)
  SSE2PackedArith,        // ADDPD/ADDSD, MULPD/MULSD ... (the FPI source)
  SSE2Logical,            // ANDPD, ORPD, XORPD
  SSE2Compare,            // CMPPD, COMISD, UCOMISD
  SSE2ShuffleUnpack,      // SHUFPD, UNPCKLPD/UNPCKHPD
  SSE2Conversion,         // CVTSI2SD, CVTTSD2SI, CVTSD2SS ...
  SSE2PackedSingleConv,
  SSE2_128BitSIMDInt,
  SSE2CacheabilityControl,
  // SSE3 / SSSE3 / SSE4
  SSE3FPArith,
  SSE3Horizontal,
  SSSE3Arith,
  SSE4DwordMultiply,
  SSE4FPDotProduct,
  SSE4Streaming,
  // AVX / FMA (present for description-file completeness)
  AVXArith,
  AVXDataMovement,
  FMAArith,
  // system / other
  Crypto,                 // AESNI, SHA
  BitManipulation,        // BMI1/BMI2: ANDN, BEXTR ...
  Mode64Bit,              // CDQE, CQO, MOVSXD, SWAPGS — "64-bit mode"
  SystemInstruction,      // SYSCALL, HLT ...
  VMX,
  SMX,
  Transactional,          // RTM: XBEGIN ...
  Virtualization,
  PowerManagement,        // MONITOR, MWAIT
  MiscInstruction,        // everything else (Table II "Misc Instruction")
  kCount_,                // sentinel == 64
};

inline constexpr std::size_t kNumCategories =
    static_cast<std::size_t>(InstrCategory::kCount_);
static_assert(kNumCategories == 64, "the paper's description file uses 64 "
                                    "instruction categories");

/// Human-readable category name as printed in Table II (e.g.
/// "SSE2 packed arithmetic instruction").
std::string categoryName(InstrCategory category);

/// Inverse of categoryName (exact match); nullopt for unknown names.
std::optional<InstrCategory> categoryFromName(const std::string &name);

/// Fixed-size array keyed by category, used for count accumulation.
template <typename T>
using CategoryArray = std::array<T, kNumCategories>;

} // namespace mira::isa
