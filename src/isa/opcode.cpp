#include "isa/opcode.h"

#include <map>

namespace mira::isa {

namespace {
struct OpcodeInfo {
  const char *name;
  InstrCategory category;
  int flops; // double-precision FP operations retired
};

const OpcodeInfo &info(Opcode op) {
  static const OpcodeInfo table[] = {
      {"mov", InstrCategory::IntDataTransfer, 0},
      {"movzx", InstrCategory::IntDataTransfer, 0},
      {"push", InstrCategory::IntDataTransfer, 0},
      {"pop", InstrCategory::IntDataTransfer, 0},
      {"add", InstrCategory::IntArith, 0},
      {"sub", InstrCategory::IntArith, 0},
      {"imul", InstrCategory::IntArith, 0},
      {"idiv", InstrCategory::IntArith, 0},
      {"inc", InstrCategory::IntArith, 0},
      {"dec", InstrCategory::IntArith, 0},
      {"neg", InstrCategory::IntArith, 0},
      {"cmp", InstrCategory::IntArith, 0},
      {"cdq", InstrCategory::Mode64Bit, 0},
      {"and", InstrCategory::IntLogical, 0},
      {"or", InstrCategory::IntLogical, 0},
      {"xor", InstrCategory::IntLogical, 0},
      {"not", InstrCategory::IntLogical, 0},
      {"shl", InstrCategory::IntShiftRotate, 0},
      {"shr", InstrCategory::IntShiftRotate, 0},
      {"sar", InstrCategory::IntShiftRotate, 0},
      {"test", InstrCategory::IntBitByte, 0},
      {"setcc", InstrCategory::IntBitByte, 0},
      {"lea", InstrCategory::IntMisc, 0},
      {"nop", InstrCategory::IntMisc, 0},
      {"jmp", InstrCategory::IntControlTransfer, 0},
      {"je", InstrCategory::IntControlTransfer, 0},
      {"jne", InstrCategory::IntControlTransfer, 0},
      {"jl", InstrCategory::IntControlTransfer, 0},
      {"jle", InstrCategory::IntControlTransfer, 0},
      {"jg", InstrCategory::IntControlTransfer, 0},
      {"jge", InstrCategory::IntControlTransfer, 0},
      {"call", InstrCategory::IntControlTransfer, 0},
      {"ret", InstrCategory::IntControlTransfer, 0},
      {"cqo", InstrCategory::Mode64Bit, 0},
      {"movsxd", InstrCategory::Mode64Bit, 0},
      {"movsd", InstrCategory::SSE2DataMovement, 0},   // load
      {"movsd", InstrCategory::SSE2DataMovement, 0},   // store
      {"movsd", InstrCategory::SSE2DataMovement, 0},   // reg-reg
      {"movapd", InstrCategory::SSE2DataMovement, 0},  // load
      {"movapd", InstrCategory::SSE2DataMovement, 0},  // store
      {"movapd", InstrCategory::SSE2DataMovement, 0},  // reg-reg
      {"movupd", InstrCategory::SSE2DataMovement, 0},
      {"movupd", InstrCategory::SSE2DataMovement, 0},
      {"movq", InstrCategory::SSE2DataMovement, 0},
      {"movq", InstrCategory::SSE2DataMovement, 0},
      {"addsd", InstrCategory::SSE2PackedArith, 1},
      {"subsd", InstrCategory::SSE2PackedArith, 1},
      {"mulsd", InstrCategory::SSE2PackedArith, 1},
      {"divsd", InstrCategory::SSE2PackedArith, 1},
      {"sqrtsd", InstrCategory::SSE2PackedArith, 1},
      {"maxsd", InstrCategory::SSE2PackedArith, 1},
      {"minsd", InstrCategory::SSE2PackedArith, 1},
      {"addpd", InstrCategory::SSE2PackedArith, 2},
      {"subpd", InstrCategory::SSE2PackedArith, 2},
      {"mulpd", InstrCategory::SSE2PackedArith, 2},
      {"divpd", InstrCategory::SSE2PackedArith, 2},
      {"sqrtpd", InstrCategory::SSE2PackedArith, 2},
      {"maxpd", InstrCategory::SSE2PackedArith, 2},
      {"minpd", InstrCategory::SSE2PackedArith, 2},
      {"haddpd", InstrCategory::SSE2PackedArith, 1},
      {"comisd", InstrCategory::SSE2Compare, 0},
      {"ucomisd", InstrCategory::SSE2Compare, 0},
      {"andpd", InstrCategory::SSE2Logical, 0},
      {"xorpd", InstrCategory::SSE2Logical, 0},
      {"shufpd", InstrCategory::SSE2ShuffleUnpack, 0},
      {"unpcklpd", InstrCategory::SSE2ShuffleUnpack, 0},
      {"unpckhpd", InstrCategory::SSE2ShuffleUnpack, 0},
      {"cvtsi2sd", InstrCategory::SSE2Conversion, 0},
      {"cvttsd2si", InstrCategory::SSE2Conversion, 0},
      {"cvtsd2ss", InstrCategory::SSE2Conversion, 0},
      {"cvtss2sd", InstrCategory::SSE2Conversion, 0},
      {"movss", InstrCategory::SSEDataTransfer, 0},
      {"movss", InstrCategory::SSEDataTransfer, 0},
      {"movss", InstrCategory::SSEDataTransfer, 0},
      {"addss", InstrCategory::SSEPackedArith, 1},
      {"subss", InstrCategory::SSEPackedArith, 1},
      {"mulss", InstrCategory::SSEPackedArith, 1},
      {"divss", InstrCategory::SSEPackedArith, 1},
      {"sqrtss", InstrCategory::SSEPackedArith, 1},
      {"cvtsi2ss", InstrCategory::SSEConversion, 0},
      {"cvttss2si", InstrCategory::SSEConversion, 0},
  };
  static_assert(sizeof(table) / sizeof(table[0]) == kNumOpcodes,
                "opcode info table out of sync with Opcode enum");
  return table[static_cast<std::size_t>(op)];
}
} // namespace

std::string opcodeName(Opcode op) { return info(op).name; }

std::optional<Opcode> opcodeFromName(const std::string &name) {
  for (std::size_t i = 0; i < kNumOpcodes; ++i) {
    Opcode op = static_cast<Opcode>(i);
    if (opcodeName(op) == name)
      return op;
  }
  return std::nullopt;
}

InstrCategory defaultCategory(Opcode op) { return info(op).category; }

bool isFloatingPointArith(Opcode op) { return info(op).flops > 0; }

int flopCount(Opcode op) { return info(op).flops; }

bool isControlTransfer(Opcode op) {
  switch (op) {
  case Opcode::JMP:
  case Opcode::JE:
  case Opcode::JNE:
  case Opcode::JL:
  case Opcode::JLE:
  case Opcode::JG:
  case Opcode::JGE:
  case Opcode::CALL:
  case Opcode::RET:
    return true;
  default:
    return false;
  }
}

bool isConditionalJump(Opcode op) {
  switch (op) {
  case Opcode::JE:
  case Opcode::JNE:
  case Opcode::JL:
  case Opcode::JLE:
  case Opcode::JG:
  case Opcode::JGE:
    return true;
  default:
    return false;
  }
}

bool isUnconditionalJump(Opcode op) { return op == Opcode::JMP; }
bool isCall(Opcode op) { return op == Opcode::CALL; }
bool isReturn(Opcode op) { return op == Opcode::RET; }

namespace {
const char *kCategoryNames[] = {
    "Integer data transfer instruction",
    "Integer arithmetic instruction",
    "Integer decimal arithmetic instruction",
    "Integer logical instruction",
    "Integer shift and rotate instruction",
    "Integer bit and byte instruction",
    "Integer control transfer instruction",
    "Integer string instruction",
    "Integer I/O instruction",
    "Integer enter and leave instruction",
    "Integer flag control instruction",
    "Integer segment register instruction",
    "Integer miscellaneous instruction",
    "Integer random number instruction",
    "x87 FPU data transfer instruction",
    "x87 FPU basic arithmetic instruction",
    "x87 FPU comparison instruction",
    "x87 FPU transcendental instruction",
    "x87 FPU load constant instruction",
    "x87 FPU control instruction",
    "MMX data transfer instruction",
    "MMX conversion instruction",
    "MMX packed arithmetic instruction",
    "MMX comparison instruction",
    "MMX logical instruction",
    "MMX shift and rotate instruction",
    "MMX state management instruction",
    "SSE data transfer instruction",
    "SSE packed arithmetic instruction",
    "SSE comparison instruction",
    "SSE logical instruction",
    "SSE shuffle and unpack instruction",
    "SSE conversion instruction",
    "SSE MXCSR state management instruction",
    "SSE 64-bit SIMD integer instruction",
    "SSE cacheability control instruction",
    "SSE2 data movement instruction",
    "SSE2 packed arithmetic instruction",
    "SSE2 logical instruction",
    "SSE2 compare instruction",
    "SSE2 shuffle and unpack instruction",
    "SSE2 conversion instruction",
    "SSE2 packed single-precision conversion instruction",
    "SSE2 128-bit SIMD integer instruction",
    "SSE2 cacheability control instruction",
    "SSE3 floating-point arithmetic instruction",
    "SSE3 horizontal arithmetic instruction",
    "SSSE3 arithmetic instruction",
    "SSE4 dword multiply instruction",
    "SSE4 floating-point dot product instruction",
    "SSE4 streaming load instruction",
    "AVX arithmetic instruction",
    "AVX data movement instruction",
    "FMA arithmetic instruction",
    "Cryptographic instruction",
    "Bit manipulation instruction",
    "64-bit mode instruction",
    "System instruction",
    "VMX instruction",
    "SMX instruction",
    "Transactional memory instruction",
    "Virtualization instruction",
    "Power management instruction",
    "Misc Instruction",
};
static_assert(sizeof(kCategoryNames) / sizeof(kCategoryNames[0]) ==
                  kNumCategories,
              "category name table out of sync");
} // namespace

std::string categoryName(InstrCategory category) {
  return kCategoryNames[static_cast<std::size_t>(category)];
}

std::optional<InstrCategory> categoryFromName(const std::string &name) {
  for (std::size_t i = 0; i < kNumCategories; ++i)
    if (name == kCategoryNames[i])
      return static_cast<InstrCategory>(i);
  return std::nullopt;
}

} // namespace mira::isa
