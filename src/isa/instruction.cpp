#include "isa/instruction.h"

namespace mira::isa {

std::string regName(Reg r) {
  static const char *names[] = {
      "rax",  "rbx",  "rcx",  "rdx",  "rsi",   "rdi",   "rbp",   "rsp",
      "r8",   "r9",   "r10",  "r11",  "r12",   "r13",   "r14",   "r15",
      "xmm0", "xmm1", "xmm2", "xmm3", "xmm4",  "xmm5",  "xmm6",  "xmm7",
      "xmm8", "xmm9", "xmm10", "xmm11", "xmm12", "xmm13", "xmm14", "xmm15",
  };
  if (r == Reg::NONE)
    return "<none>";
  return names[static_cast<std::size_t>(r)];
}

std::string MemRef::str() const {
  std::string s = "[";
  bool any = false;
  if (base != Reg::NONE) {
    s += regName(base);
    any = true;
  }
  if (index != Reg::NONE) {
    if (any)
      s += " + ";
    s += regName(index);
    if (scale != 1)
      s += "*" + std::to_string(scale);
    any = true;
  }
  if (disp != 0 || !any) {
    if (any)
      s += disp >= 0 ? " + " : " - ";
    s += std::to_string(disp >= 0 || !any ? disp : -disp);
  }
  return s + "]";
}

Operand Operand::makeReg(Reg r) {
  Operand o;
  o.kind = OperandKind::Reg;
  o.reg = r;
  return o;
}

Operand Operand::makeImm(std::int64_t value) {
  Operand o;
  o.kind = OperandKind::Imm;
  o.imm = value;
  return o;
}

Operand Operand::makeMem(MemRef m) {
  Operand o;
  o.kind = OperandKind::Mem;
  o.mem = m;
  return o;
}

Operand Operand::makeLabel(std::int64_t labelId) {
  Operand o;
  o.kind = OperandKind::Label;
  o.imm = labelId;
  return o;
}

bool Operand::operator==(const Operand &o) const {
  if (kind != o.kind)
    return false;
  switch (kind) {
  case OperandKind::Reg:
    return reg == o.reg;
  case OperandKind::Imm:
  case OperandKind::Label:
    return imm == o.imm;
  case OperandKind::Mem:
    return mem == o.mem;
  }
  return false;
}

std::string Operand::str() const {
  switch (kind) {
  case OperandKind::Reg:
    return regName(reg);
  case OperandKind::Imm:
    return std::to_string(imm);
  case OperandKind::Mem:
    return mem.str();
  case OperandKind::Label:
    return ".L" + std::to_string(imm);
  }
  return "?";
}

std::size_t Instruction::encodedSize() const {
  // Mirrors encoding.cpp: 2-byte opcode + 1-byte operand count + operands.
  std::size_t size = 3;
  for (const Operand &op : operands) {
    size += 1; // operand kind tag
    switch (op.kind) {
    case OperandKind::Reg:
      size += 1;
      break;
    case OperandKind::Imm:
    case OperandKind::Label:
      size += 8;
      break;
    case OperandKind::Mem:
      size += 7; // base, index, scale, disp32
      break;
    }
  }
  return size;
}

std::string Instruction::str() const {
  std::string s = opcodeName(opcode);
  for (std::size_t i = 0; i < operands.size(); ++i) {
    s += i == 0 ? " " : ", ";
    s += operands[i].str();
  }
  return s;
}

std::uint64_t MachineFunction::layout(std::uint64_t base) {
  std::uint64_t addr = base;
  for (Instruction &inst : instructions) {
    inst.address = addr;
    addr += inst.encodedSize();
  }
  return addr - base;
}

std::string MachineFunction::str() const {
  std::string s = name + ":\n";
  for (const Instruction &inst : instructions) {
    s += "  " + std::to_string(inst.address) + ": " + inst.str();
    if (inst.line)
      s += "   ; line " + std::to_string(inst.line);
    s += '\n';
  }
  return s;
}

} // namespace mira::isa
