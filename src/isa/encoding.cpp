#include "isa/encoding.h"

namespace mira::isa {

namespace {

void putU16(std::vector<std::uint8_t> &out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void putI32(std::vector<std::uint8_t> &out, std::int32_t v) {
  auto u = static_cast<std::uint32_t>(v);
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((u >> (8 * i)) & 0xFF));
}

void putI64(std::vector<std::uint8_t> &out, std::int64_t v) {
  auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((u >> (8 * i)) & 0xFF));
}

bool getU8(const std::vector<std::uint8_t> &bytes, std::size_t &off,
           std::uint8_t &out) {
  if (off >= bytes.size())
    return false;
  out = bytes[off++];
  return true;
}

bool getU16(const std::vector<std::uint8_t> &bytes, std::size_t &off,
            std::uint16_t &out) {
  if (off + 2 > bytes.size())
    return false;
  out = static_cast<std::uint16_t>(bytes[off] |
                                   (static_cast<std::uint16_t>(bytes[off + 1])
                                    << 8));
  off += 2;
  return true;
}

bool getI32(const std::vector<std::uint8_t> &bytes, std::size_t &off,
            std::int32_t &out) {
  if (off + 4 > bytes.size())
    return false;
  std::uint32_t u = 0;
  for (int i = 0; i < 4; ++i)
    u |= static_cast<std::uint32_t>(bytes[off + i]) << (8 * i);
  off += 4;
  out = static_cast<std::int32_t>(u);
  return true;
}

bool getI64(const std::vector<std::uint8_t> &bytes, std::size_t &off,
            std::int64_t &out) {
  if (off + 8 > bytes.size())
    return false;
  std::uint64_t u = 0;
  for (int i = 0; i < 8; ++i)
    u |= static_cast<std::uint64_t>(bytes[off + i]) << (8 * i);
  off += 8;
  out = static_cast<std::int64_t>(u);
  return true;
}

} // namespace

void encodeInstruction(const Instruction &inst,
                       std::vector<std::uint8_t> &out) {
  putU16(out, static_cast<std::uint16_t>(inst.opcode));
  out.push_back(static_cast<std::uint8_t>(inst.operands.size()));
  for (const Operand &op : inst.operands) {
    out.push_back(static_cast<std::uint8_t>(op.kind));
    switch (op.kind) {
    case OperandKind::Reg:
      out.push_back(static_cast<std::uint8_t>(op.reg));
      break;
    case OperandKind::Imm:
    case OperandKind::Label:
      putI64(out, op.imm);
      break;
    case OperandKind::Mem:
      out.push_back(static_cast<std::uint8_t>(op.mem.base));
      out.push_back(static_cast<std::uint8_t>(op.mem.index));
      out.push_back(op.mem.scale);
      putI32(out, op.mem.disp);
      break;
    }
  }
}

std::vector<std::uint8_t> encodeFunction(const MachineFunction &fn) {
  std::vector<std::uint8_t> out;
  for (const Instruction &inst : fn.instructions)
    encodeInstruction(inst, out);
  return out;
}

std::optional<Instruction> decodeInstruction(
    const std::vector<std::uint8_t> &bytes, std::size_t &offset,
    DiagnosticEngine &diags) {
  std::size_t start = offset;
  std::uint16_t opcodeRaw = 0;
  std::uint8_t nops = 0;
  if (!getU16(bytes, offset, opcodeRaw) || !getU8(bytes, offset, nops)) {
    diags.error({}, "truncated instruction header at offset " +
                        std::to_string(start));
    return std::nullopt;
  }
  if (opcodeRaw >= kNumOpcodes) {
    diags.error({}, "invalid opcode " + std::to_string(opcodeRaw) +
                        " at offset " + std::to_string(start));
    return std::nullopt;
  }
  Instruction inst;
  inst.opcode = static_cast<Opcode>(opcodeRaw);
  for (std::uint8_t i = 0; i < nops; ++i) {
    std::uint8_t kindRaw = 0;
    if (!getU8(bytes, offset, kindRaw) || kindRaw > 3) {
      diags.error({}, "truncated or invalid operand at offset " +
                          std::to_string(offset));
      return std::nullopt;
    }
    Operand op;
    op.kind = static_cast<OperandKind>(kindRaw);
    switch (op.kind) {
    case OperandKind::Reg: {
      std::uint8_t r = 0;
      if (!getU8(bytes, offset, r) ||
          r > static_cast<std::uint8_t>(Reg::NONE)) {
        diags.error({}, "invalid register operand");
        return std::nullopt;
      }
      op.reg = static_cast<Reg>(r);
      break;
    }
    case OperandKind::Imm:
    case OperandKind::Label:
      if (!getI64(bytes, offset, op.imm)) {
        diags.error({}, "truncated immediate operand");
        return std::nullopt;
      }
      break;
    case OperandKind::Mem: {
      std::uint8_t base = 0, index = 0, scale = 0;
      std::int32_t disp = 0;
      if (!getU8(bytes, offset, base) || !getU8(bytes, offset, index) ||
          !getU8(bytes, offset, scale) || !getI32(bytes, offset, disp)) {
        diags.error({}, "truncated memory operand");
        return std::nullopt;
      }
      op.mem.base = static_cast<Reg>(base);
      op.mem.index = static_cast<Reg>(index);
      op.mem.scale = scale;
      op.mem.disp = disp;
      break;
    }
    }
    inst.operands.push_back(op);
  }
  return inst;
}

std::optional<std::vector<Instruction>> decodeFunction(
    const std::vector<std::uint8_t> &bytes, std::uint64_t baseAddress,
    DiagnosticEngine &diags) {
  std::vector<Instruction> out;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    std::uint64_t addr = baseAddress + offset;
    auto inst = decodeInstruction(bytes, offset, diags);
    if (!inst)
      return std::nullopt;
    inst->address = addr;
    out.push_back(std::move(*inst));
  }
  return out;
}

} // namespace mira::isa
