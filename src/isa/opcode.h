// Opcodes of the synthetic x86-64-like ISA.
//
// The compiler back-end emits these; the disassembler decodes them back
// into the binary AST; the simulator retires them (standing in for PAPI's
// retired-instruction counters); the architecture description file maps
// each to one of the 64 categories (categories.h), with Mira's defaults
// given by defaultCategory().
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "isa/categories.h"

namespace mira::isa {

enum class Opcode : std::uint16_t {
  // ---- integer data transfer
  MOV,    // reg<-reg/imm/mem, mem<-reg/imm
  MOVZX,
  PUSH,
  POP,
  // ---- integer arithmetic
  ADD,
  SUB,
  IMUL,
  IDIV,
  INC,
  DEC,
  NEG,
  CMP,
  CDQ, // sign-extend for division (counted as 64-bit mode like CQO)
  // ---- logical / shift / bit
  AND,
  OR,
  XOR,
  NOT,
  SHL,
  SHR,
  SAR,
  TEST,
  SETcc,
  // ---- misc integer
  LEA,
  NOP,
  // ---- control transfer
  JMP,
  JE,
  JNE,
  JL,
  JLE,
  JG,
  JGE,
  CALL,
  RET,
  // ---- 64-bit mode
  CQO,
  MOVSXD,
  // ---- SSE2 data movement
  MOVSD_RM, // load: xmm <- mem
  MOVSD_MR, // store: mem <- xmm
  MOVSD_RR, // xmm <- xmm
  MOVAPD_RM,
  MOVAPD_MR,
  MOVAPD_RR,
  MOVUPD_RM,
  MOVUPD_MR,
  MOVQ_XR, // xmm <- gpr bit pattern
  MOVQ_RX, // gpr <- xmm bit pattern
  // ---- SSE2 scalar arithmetic (double) — FPI contributors
  ADDSD,
  SUBSD,
  MULSD,
  DIVSD,
  SQRTSD,
  MAXSD,
  MINSD,
  // ---- SSE2 packed arithmetic (double) — FPI contributors
  ADDPD,
  SUBPD,
  MULPD,
  DIVPD,
  SQRTPD,
  MAXPD,
  MINPD,
  HADDPD, // horizontal add used to reduce vector accumulators
  // ---- SSE2 compare / logical / shuffle
  COMISD,
  UCOMISD,
  ANDPD,
  XORPD,
  SHUFPD,
  UNPCKLPD,
  UNPCKHPD,
  // ---- SSE2 conversion
  CVTSI2SD,
  CVTTSD2SI,
  CVTSD2SS,
  CVTSS2SD,
  // ---- SSE scalar single (float workloads)
  MOVSS_RM,
  MOVSS_MR,
  MOVSS_RR,
  ADDSS,
  SUBSS,
  MULSS,
  DIVSS,
  SQRTSS,
  CVTSI2SS,
  CVTTSS2SI,
  kCount_,
};

inline constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::kCount_);

/// Mnemonic, e.g. "addpd".
std::string opcodeName(Opcode op);
std::optional<Opcode> opcodeFromName(const std::string &name);

/// Mira's default opcode -> category table; the architecture description
/// file may override individual assignments.
InstrCategory defaultCategory(Opcode op);

/// Floating-point instruction? (PAPI_FP_INS semantics: scalar or packed
/// SSE/SSE2 arithmetic, the metric of paper Tables III-V.)
bool isFloatingPointArith(Opcode op);
/// Number of double-precision FP operations performed (for packed ops,
/// the vector width 2; used for FLOP-based derived metrics).
int flopCount(Opcode op);
/// Control transfer (ends a basic block)?
bool isControlTransfer(Opcode op);
bool isConditionalJump(Opcode op);
bool isUnconditionalJump(Opcode op);
bool isCall(Opcode op);
bool isReturn(Opcode op);

} // namespace mira::isa
