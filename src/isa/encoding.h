// Binary encoding of the synthetic ISA.
//
// Serializes instruction streams to the .text bytes of a MiraObject and
// decodes them back (the disassembler half of the paper's Input Processor).
// The format is deliberately simple but genuinely byte-oriented, so the
// decoder must parse it like a real disassembler parses machine code:
//   [u16 opcode][u8 operand-count]{ [u8 kind][payload...] }*
// Payloads: Reg -> u8; Imm/Label -> i64 LE; Mem -> base u8, index u8,
// scale u8, disp i32 LE.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/instruction.h"
#include "support/diagnostics.h"

namespace mira::isa {

/// Append the encoding of `inst` to `out`.
void encodeInstruction(const Instruction &inst, std::vector<std::uint8_t> &out);

/// Encode a whole function body.
std::vector<std::uint8_t> encodeFunction(const MachineFunction &fn);

/// Decode one instruction starting at `offset`; advances `offset` past it.
/// Returns nullopt (and a diagnostic) on truncated/invalid bytes.
std::optional<Instruction> decodeInstruction(
    const std::vector<std::uint8_t> &bytes, std::size_t &offset,
    DiagnosticEngine &diags);

/// Decode a function body (instruction addresses are assigned from
/// `baseAddress` + byte offsets, matching MachineFunction::layout).
std::optional<std::vector<Instruction>> decodeFunction(
    const std::vector<std::uint8_t> &bytes, std::uint64_t baseAddress,
    DiagnosticEngine &diags);

} // namespace mira::isa
