#include "model/serialize.h"

#include "isa/opcode.h"
#include "support/binary_io.h"
#include "symbolic/expr.h"
#include "symbolic/interner.h"

namespace mira::model {

namespace {

using symbolic::Expr;
using symbolic::ExprKind;
using symbolic::ExprNode;
using symbolic::ExprNodeRef;

using bio::putI64;
using bio::putString;
using bio::putU32;
using bio::putU8;

// Corrupt data must fail parsing, not exhaust memory or the stack.
constexpr std::size_t kMaxExprDepth = 512;

void putExprNode(std::string &out, const ExprNode &node) {
  putU8(out, static_cast<std::uint8_t>(node.kind));
  switch (node.kind) {
  case ExprKind::IntConst:
    putI64(out, node.value);
    return;
  case ExprKind::Param:
    putString(out, node.name);
    return;
  case ExprKind::Sum:
    putString(out, node.name);
    break; // operands follow (lo, hi, body)
  default:
    break;
  }
  putU32(out, static_cast<std::uint32_t>(node.operands.size()));
  for (const ExprNodeRef &operand : node.operands)
    putExprNode(out, *operand);
}

void putExpr(std::string &out, const Expr &expr) {
  putExprNode(out, expr.node());
}

// ------------------------------------------------------------- readers

struct Reader : bio::Reader {
  bool exprNode(ExprNodeRef &out, std::size_t depth);

  bool expr(Expr &out) {
    ExprNodeRef node;
    if (!exprNode(node, 0))
      return false;
    out = Expr::fromNode(std::move(node));
    return true;
  }
};

bool Reader::exprNode(ExprNodeRef &out, std::size_t depth) {
  if (depth > kMaxExprDepth)
    return false;
  std::uint8_t kindTag = 0;
  if (!u8(kindTag))
    return false;
  if (kindTag > static_cast<std::uint8_t>(ExprKind::Sum))
    return false;
  const auto kind = static_cast<ExprKind>(kindTag);
  auto node = std::make_shared<ExprNode>(kind);
  switch (kind) {
  case ExprKind::IntConst:
    if (!i64(node->value))
      return false;
    out = std::move(node);
    return true;
  case ExprKind::Param:
    if (!str(node->name))
      return false;
    out = std::move(node);
    return true;
  case ExprKind::Sum:
    if (!str(node->name))
      return false;
    break;
  default:
    break;
  }
  std::uint32_t count = 0;
  if (!u32(count))
    return false;
  // Every operand costs at least its one-byte kind tag.
  if (count > remaining())
    return false;
  if (kind == ExprKind::Sum && count != 3)
    return false;
  node->operands.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ExprNodeRef child;
    if (!exprNode(child, depth + 1))
      return false;
    node->operands.push_back(std::move(child));
  }
  out = std::move(node);
  return true;
}

} // namespace

void serializeModel(const PerformanceModel &model, std::string &out) {
  putString(out, model.sourceFile);
  putU32(out, static_cast<std::uint32_t>(model.functions.size()));
  for (const FunctionModel &fn : model.functions) {
    putString(out, fn.sourceName);
    putString(out, fn.modelName);
    putU32(out, static_cast<std::uint32_t>(fn.paramNames.size()));
    for (const std::string &name : fn.paramNames)
      putString(out, name);
    putU8(out, fn.exact ? 1 : 0);
    putU32(out, static_cast<std::uint32_t>(fn.notes.size()));
    for (const std::string &note : fn.notes)
      putString(out, note);
    putU32(out, static_cast<std::uint32_t>(fn.counts.size()));
    for (const CountStep &step : fn.counts) {
      putExpr(out, step.multiplier);
      putString(out, step.comment);
      putU32(out, static_cast<std::uint32_t>(step.opcodes.size()));
      for (const auto &[op, n] : step.opcodes) {
        putU32(out, static_cast<std::uint32_t>(op));
        putI64(out, n);
      }
    }
    putU32(out, static_cast<std::uint32_t>(fn.calls.size()));
    for (const CallStep &step : fn.calls) {
      putExpr(out, step.multiplier);
      putString(out, step.callee);
      putU32(out, step.line);
      putU32(out, static_cast<std::uint32_t>(step.argBindings.size()));
      for (const auto &[name, expr] : step.argBindings) {
        putString(out, name);
        putExpr(out, expr);
      }
    }
  }
}

bool deserializeModel(const std::string &bytes, std::size_t &offset,
                      PerformanceModel &out) {
  Reader r{{bytes, offset}};
  // One expression arena per payload: Expr::fromNode re-enters the
  // current interner, so expressions repeated across a model's functions
  // deserialize to shared nodes, and the table dies with this call
  // instead of accumulating in the calling thread's default interner.
  // Re-interning is structure-preserving, so reserializing the result
  // reproduces the input bytes exactly (pinned by model_test).
  symbolic::ExprInterner interner;
  symbolic::ExprInterner::Scope scope(interner);
  out = PerformanceModel();
  if (!r.str(out.sourceFile))
    return false;
  std::uint32_t functionCount = 0;
  if (!r.u32(functionCount) || functionCount > r.remaining())
    return false;
  out.functions.reserve(functionCount);
  for (std::uint32_t f = 0; f < functionCount; ++f) {
    FunctionModel fn;
    if (!r.str(fn.sourceName) || !r.str(fn.modelName))
      return false;
    std::uint32_t paramCount = 0;
    if (!r.u32(paramCount) || paramCount > r.remaining())
      return false;
    fn.paramNames.reserve(paramCount);
    for (std::uint32_t i = 0; i < paramCount; ++i) {
      std::string name;
      if (!r.str(name))
        return false;
      fn.paramNames.push_back(std::move(name));
    }
    std::uint8_t exact = 0;
    if (!r.u8(exact) || exact > 1)
      return false;
    fn.exact = exact != 0;
    std::uint32_t noteCount = 0;
    if (!r.u32(noteCount) || noteCount > r.remaining())
      return false;
    for (std::uint32_t i = 0; i < noteCount; ++i) {
      std::string note;
      if (!r.str(note))
        return false;
      fn.notes.push_back(std::move(note));
    }
    std::uint32_t countSteps = 0;
    if (!r.u32(countSteps) || countSteps > r.remaining())
      return false;
    for (std::uint32_t i = 0; i < countSteps; ++i) {
      CountStep step;
      if (!r.expr(step.multiplier) || !r.str(step.comment))
        return false;
      std::uint32_t opcodeCount = 0;
      if (!r.u32(opcodeCount) || opcodeCount > r.remaining())
        return false;
      for (std::uint32_t o = 0; o < opcodeCount; ++o) {
        std::uint32_t opcode = 0;
        std::int64_t n = 0;
        if (!r.u32(opcode) || opcode >= isa::kNumOpcodes || !r.i64(n))
          return false;
        step.opcodes[static_cast<isa::Opcode>(opcode)] = n;
      }
      fn.counts.push_back(std::move(step));
    }
    std::uint32_t callSteps = 0;
    if (!r.u32(callSteps) || callSteps > r.remaining())
      return false;
    for (std::uint32_t i = 0; i < callSteps; ++i) {
      CallStep step;
      if (!r.expr(step.multiplier) || !r.str(step.callee) ||
          !r.u32(step.line))
        return false;
      std::uint32_t bindingCount = 0;
      if (!r.u32(bindingCount) || bindingCount > r.remaining())
        return false;
      for (std::uint32_t b = 0; b < bindingCount; ++b) {
        std::string name;
        Expr expr;
        if (!r.str(name) || !r.expr(expr))
          return false;
        step.argBindings.emplace(std::move(name), expr);
      }
      fn.calls.push_back(std::move(step));
    }
    out.functions.push_back(std::move(fn));
  }
  offset = r.offset;
  return true;
}

} // namespace mira::model
