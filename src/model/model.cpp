#include "model/model.h"

namespace mira::model {

std::set<std::string> FunctionModel::parameters() const {
  std::set<std::string> out;
  for (const CountStep &step : counts)
    for (const std::string &p : step.multiplier.parameters())
      out.insert(p);
  for (const CallStep &step : calls) {
    for (const std::string &p : step.multiplier.parameters())
      out.insert(p);
    for (const auto &[name, expr] : step.argBindings)
      for (const std::string &p : expr.parameters())
        out.insert(p);
  }
  return out;
}

void EvaluatedCounts::add(const EvaluatedCounts &other, double scale) {
  for (const auto &[op, n] : other.opcodes)
    opcodes[op] += n * scale;
  totalInstructions += other.totalInstructions * scale;
  fpInstructions += other.fpInstructions * scale;
  flops += other.flops * scale;
}

isa::CategoryArray<double> EvaluatedCounts::categories(
    const arch::ArchDescription &desc) const {
  return desc.categorize(opcodes);
}

const FunctionModel *PerformanceModel::find(
    const std::string &sourceName) const {
  for (const FunctionModel &fn : functions)
    if (fn.sourceName == sourceName || fn.modelName == sourceName)
      return &fn;
  return nullptr;
}

FunctionModel *PerformanceModel::find(const std::string &sourceName) {
  for (FunctionModel &fn : functions)
    if (fn.sourceName == sourceName || fn.modelName == sourceName)
      return &fn;
  return nullptr;
}

std::optional<EvaluatedCounts> PerformanceModel::evaluate(
    const std::string &sourceName, const Env &env, std::string *error) const {
  const FunctionModel *fn = find(sourceName);
  if (!fn) {
    if (error)
      *error = "no model for function '" + sourceName + "'";
    return std::nullopt;
  }
  return evaluateInner(*fn, env, error, 0);
}

std::optional<EvaluatedCounts> PerformanceModel::evaluateInner(
    const FunctionModel &fn, const Env &env, std::string *error,
    int depth) const {
  if (depth > 64) {
    if (error)
      *error = "model call depth exceeded (recursion?)";
    return std::nullopt;
  }
  EvaluatedCounts total;
  for (const CountStep &step : fn.counts) {
    auto mult = step.multiplier.evaluate(env);
    if (!mult) {
      if (error) {
        *error = "cannot evaluate multiplier in " + fn.modelName + " (" +
                 step.multiplier.str() + "); missing parameters:";
        for (const std::string &p : step.multiplier.parameters())
          if (!env.count(p))
            *error += " " + p;
      }
      return std::nullopt;
    }
    double m = static_cast<double>(*mult);
    for (const auto &[op, n] : step.opcodes) {
      double amount = m * static_cast<double>(n);
      total.opcodes[op] += amount;
      total.totalInstructions += amount;
      if (isa::isFloatingPointArith(op)) {
        total.fpInstructions += amount;
        total.flops += amount * isa::flopCount(op);
      }
    }
  }
  for (const CallStep &step : fn.calls) {
    auto mult = step.multiplier.evaluate(env);
    if (!mult) {
      if (error)
        *error = "cannot evaluate call multiplier for " + step.callee +
                 " in " + fn.modelName;
      return std::nullopt;
    }
    if (*mult == 0)
      continue;
    const FunctionModel *callee = find(step.callee);
    if (!callee) {
      if (error)
        *error = "missing callee model '" + step.callee + "'";
      return std::nullopt;
    }
    // Build the callee environment: bound arguments evaluated in the
    // caller environment; anything else falls through from the caller
    // environment (user-supplied model parameters).
    Env calleeEnv = env;
    for (const auto &[param, expr] : step.argBindings) {
      auto v = expr.evaluate(env);
      if (!v) {
        if (error)
          *error = "cannot evaluate argument '" + param + "' of call to " +
                   step.callee + " at line " + std::to_string(step.line);
        return std::nullopt;
      }
      calleeEnv[param] = *v;
    }
    auto calleeCounts = evaluateInner(*callee, calleeEnv, error, depth + 1);
    if (!calleeCounts)
      return std::nullopt;
    total.add(*calleeCounts, static_cast<double>(*mult));
  }
  return total;
}

std::set<std::string> PerformanceModel::requiredParameters(
    const std::string &sourceName) const {
  std::set<std::string> out;
  const FunctionModel *fn = find(sourceName);
  if (!fn)
    return out;
  for (const std::string &p : fn->parameters())
    out.insert(p);
  for (const CallStep &step : fn->calls) {
    const FunctionModel *callee = find(step.callee);
    if (!callee)
      continue;
    for (const std::string &p : requiredParameters(step.callee))
      if (!step.argBindings.count(p))
        out.insert(p);
  }
  return out;
}

} // namespace mira::model
