// The performance model Mira generates (paper Sec. III-C, Fig. 5).
//
// One FunctionModel per source function: a list of counting steps
// (parametric multiplier x per-execution opcode histogram) and call steps
// (parametric call multiplicity + argument bindings, combined like the
// generated Python's handle_function_call). The model is emitted as
// genuine Python source (python_emitter.h) and is also evaluable
// in-process so the benchmarks need no Python interpreter.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "isa/categories.h"
#include "isa/opcode.h"
#include "symbolic/expr.h"

namespace mira::model {

using symbolic::Env;
using symbolic::Expr;

/// multiplier * opcode histogram.
struct CountStep {
  Expr multiplier;
  std::map<isa::Opcode, std::int64_t> opcodes;
  std::string comment; // e.g. "loop body line 12 (vectorized main)"
};

/// Combine a callee model: counts += multiplier * callee(argBindings).
struct CallStep {
  Expr multiplier;
  std::string callee; // qualified source name
  /// callee parameter name -> expression over caller parameters. Unbound
  /// callee parameters become user-supplied model parameters (the paper's
  /// y_16 pattern).
  std::map<std::string, Expr> argBindings;
  std::uint32_t line = 0;
};

struct FunctionModel {
  std::string sourceName; // "A::foo"
  std::string modelName;  // "A_foo_2"
  std::vector<std::string> paramNames; // source parameter names (ints)
  std::vector<CountStep> counts;
  std::vector<CallStep> calls;
  /// All free parameters of the expressions.
  std::set<std::string> parameters() const;
  bool exact = true;
  std::vector<std::string> notes; // annotation requests, approximations
};

/// Evaluated counts for one function (inclusive of callees).
struct EvaluatedCounts {
  std::map<isa::Opcode, double> opcodes;
  double totalInstructions = 0;
  double fpInstructions = 0; // scalar+packed SSE/SSE2 arithmetic
  double flops = 0;

  void add(const EvaluatedCounts &other, double scale);
  isa::CategoryArray<double> categories(const arch::ArchDescription &desc)
      const;
};

class PerformanceModel {
public:
  std::vector<FunctionModel> functions;
  std::string sourceFile;

  const FunctionModel *find(const std::string &sourceName) const;
  FunctionModel *find(const std::string &sourceName);

  /// Evaluate a function model (inclusive). Unbound parameters make the
  /// evaluation fail with a message listing them.
  std::optional<EvaluatedCounts> evaluate(const std::string &sourceName,
                                          const Env &env,
                                          std::string *error = nullptr) const;

  /// All model parameters a caller of `sourceName` must supply (its own
  /// expression parameters plus unbound callee parameters).
  std::set<std::string> requiredParameters(
      const std::string &sourceName) const;

private:
  std::optional<EvaluatedCounts> evaluateInner(const FunctionModel &fn,
                                               const Env &env,
                                               std::string *error,
                                               int depth) const;
};

} // namespace mira::model
