// Binary serialization of PerformanceModel for the on-disk analysis
// cache (support/cache_store.h).
//
// The encoding is a straightforward length-prefixed tree walk: strings
// are u32-length + bytes, containers are u32-count + elements, and
// symbolic::Expr nodes are a one-byte kind tag followed by their
// children. Deserialization rebuilds Expr nodes verbatim (bypassing the
// canonicalizing builders) so a cached model's emitted Python is
// byte-identical to the freshly computed one — the property the batch
// determinism tests pin.
//
// Robustness: deserializeModel never throws and never trusts a length —
// every read is bounds-checked against the remaining buffer, opcode tags
// are validated against the ISA, and expression nesting is depth-capped.
// A malformed buffer yields `false` (the cache layer then treats the
// entry as corrupt and recomputes). The byte format carries no version
// of its own: cache_store.h's schema-version header versions the whole
// payload, so any layout change here must bump kCacheSchemaVersion.
#pragma once

#include <string>

#include "model/model.h"

namespace mira::model {

/// Append the serialized form of `model` to `out`.
void serializeModel(const PerformanceModel &model, std::string &out);

/// Parse a buffer produced by serializeModel, starting at `offset` and
/// advancing it past the model. Returns false (leaving `out` in an
/// unspecified state) on any structural problem.
bool deserializeModel(const std::string &bytes, std::size_t &offset,
                      PerformanceModel &out);

} // namespace mira::model
