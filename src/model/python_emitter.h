// Python code generation for performance models (paper Fig. 5).
//
// Produces a runnable Python module: one function per source function
// (renamed Class_name_nargs), bodies updating per-category metric
// dictionaries, calls combined through handle_function_call. Parameters
// that static analysis could not resolve stay as Python function
// arguments, to be supplied at evaluation time.
#pragma once

#include <string>

#include "arch/arch.h"
#include "model/model.h"

namespace mira::model {

struct PythonEmitOptions {
  /// Emit per-category dictionaries (like the paper's Table II keys).
  /// When false, emits raw opcode mnemonics as keys.
  bool categoryKeys = true;
  /// Architecture used to map opcodes to categories.
  const arch::ArchDescription *arch = nullptr;
};

/// Emit the whole model as one Python module source string.
std::string emitPython(const PerformanceModel &model,
                       const PythonEmitOptions &options = {});

/// Emit a single function's model (for inspection / Fig. 5-style output).
std::string emitPythonFunction(const PerformanceModel &model,
                               const FunctionModel &fn,
                               const PythonEmitOptions &options = {});

} // namespace mira::model
