#include "objfile/objfile.h"

#include <algorithm>

#include "isa/encoding.h"

namespace mira::objfile {

namespace {

constexpr std::uint32_t kMagic = 0x4152494D; // "MIRA" little-endian
constexpr std::uint32_t kVersion = 1;

// DWARF-style line program opcodes.
constexpr std::uint8_t kLineEnd = 0x00;
constexpr std::uint8_t kLineAdvancePc = 0x01;
constexpr std::uint8_t kLineAdvanceLine = 0x02;
constexpr std::uint8_t kLineCopy = 0x03;

void putU32(std::vector<std::uint8_t> &out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void putU64(std::vector<std::uint8_t> &out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void putString(std::vector<std::uint8_t> &out, const std::string &s) {
  putU32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void putULEB(std::vector<std::uint8_t> &out, std::uint64_t v) {
  do {
    std::uint8_t byte = v & 0x7F;
    v >>= 7;
    if (v)
      byte |= 0x80;
    out.push_back(byte);
  } while (v);
}

void putSLEB(std::vector<std::uint8_t> &out, std::int64_t v) {
  bool more = true;
  while (more) {
    std::uint8_t byte = v & 0x7F;
    v >>= 7;
    bool signBit = byte & 0x40;
    if ((v == 0 && !signBit) || (v == -1 && signBit))
      more = false;
    else
      byte |= 0x80;
    out.push_back(byte);
  }
}

struct Reader {
  const std::vector<std::uint8_t> &data;
  std::size_t pos = 0;
  bool failed = false;

  bool need(std::size_t n) {
    if (pos + n > data.size()) {
      failed = true;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1))
      return 0;
    return data[pos++];
  }
  std::uint32_t u32() {
    if (!need(4))
      return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8))
      return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
  std::string str() {
    std::uint32_t len = u32();
    if (!need(len))
      return {};
    std::string s(data.begin() + static_cast<std::ptrdiff_t>(pos),
                  data.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
    return s;
  }
  std::uint64_t uleb() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (!need(1))
        return v;
      std::uint8_t byte = data[pos++];
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if (!(byte & 0x80))
        break;
      shift += 7;
    }
    return v;
  }
  std::int64_t sleb() {
    std::int64_t v = 0;
    int shift = 0;
    std::uint8_t byte = 0;
    do {
      if (!need(1))
        return v;
      byte = data[pos++];
      v |= static_cast<std::int64_t>(byte & 0x7F) << shift;
      shift += 7;
    } while (byte & 0x80);
    if (shift < 64 && (byte & 0x40))
      v |= -(static_cast<std::int64_t>(1) << shift);
    return v;
  }
};

} // namespace

std::vector<std::uint8_t> MiraObject::serialize() const {
  std::vector<std::uint8_t> out;
  putU32(out, kMagic);
  putU32(out, kVersion);

  putU32(out, static_cast<std::uint32_t>(symbols.size()));
  for (const FunctionSymbol &sym : symbols) {
    putString(out, sym.name);
    putU64(out, sym.offset);
    putU64(out, sym.size);
    putU32(out, static_cast<std::uint32_t>(sym.id));
  }
  putU32(out, static_cast<std::uint32_t>(externSymbols.size()));
  for (const std::string &name : externSymbols)
    putString(out, name);

  putU32(out, static_cast<std::uint32_t>(text.size()));
  out.insert(out.end(), text.begin(), text.end());

  // Line program (state machine: address = 0, line = 1).
  std::vector<std::uint8_t> program;
  std::uint64_t address = 0;
  std::int64_t line = 1;
  for (const LineEntry &entry : lineTable) {
    if (entry.address != address) {
      program.push_back(kLineAdvancePc);
      putULEB(program, entry.address - address);
      address = entry.address;
    }
    if (entry.line != line) {
      program.push_back(kLineAdvanceLine);
      putSLEB(program, static_cast<std::int64_t>(entry.line) - line);
      line = entry.line;
    }
    program.push_back(kLineCopy);
  }
  program.push_back(kLineEnd);
  putU32(out, static_cast<std::uint32_t>(program.size()));
  out.insert(out.end(), program.begin(), program.end());
  return out;
}

std::optional<MiraObject> MiraObject::parse(
    const std::vector<std::uint8_t> &data, DiagnosticEngine &diags) {
  Reader r{data};
  if (r.u32() != kMagic) {
    diags.error({}, "not a MiraObject (bad magic)");
    return std::nullopt;
  }
  std::uint32_t version = r.u32();
  if (version != kVersion) {
    diags.error({}, "unsupported MiraObject version " +
                        std::to_string(version));
    return std::nullopt;
  }
  MiraObject obj;
  std::uint32_t numSyms = r.u32();
  for (std::uint32_t i = 0; i < numSyms && !r.failed; ++i) {
    FunctionSymbol sym;
    sym.name = r.str();
    sym.offset = r.u64();
    sym.size = r.u64();
    sym.id = static_cast<int>(r.u32());
    obj.symbols.push_back(std::move(sym));
  }
  std::uint32_t numExterns = r.u32();
  for (std::uint32_t i = 0; i < numExterns && !r.failed; ++i)
    obj.externSymbols.push_back(r.str());

  std::uint32_t textSize = r.u32();
  if (!r.need(textSize)) {
    diags.error({}, "truncated .text section");
    return std::nullopt;
  }
  obj.text.assign(data.begin() + static_cast<std::ptrdiff_t>(r.pos),
                  data.begin() + static_cast<std::ptrdiff_t>(r.pos + textSize));
  r.pos += textSize;

  std::uint32_t programSize = r.u32();
  if (!r.need(programSize)) {
    diags.error({}, "truncated .debug_line section");
    return std::nullopt;
  }
  std::size_t programEnd = r.pos + programSize;
  std::uint64_t address = 0;
  std::int64_t line = 1;
  while (r.pos < programEnd && !r.failed) {
    std::uint8_t op = r.u8();
    if (op == kLineEnd)
      break;
    switch (op) {
    case kLineAdvancePc:
      address += r.uleb();
      break;
    case kLineAdvanceLine:
      line += r.sleb();
      break;
    case kLineCopy:
      obj.lineTable.push_back(
          {address, static_cast<std::uint32_t>(line)});
      break;
    default:
      diags.error({}, "invalid line-program opcode " + std::to_string(op));
      return std::nullopt;
    }
  }
  if (r.failed) {
    diags.error({}, "truncated MiraObject");
    return std::nullopt;
  }
  // Validate symbol ranges.
  for (const FunctionSymbol &sym : obj.symbols) {
    if (sym.offset + sym.size > obj.text.size()) {
      diags.error({}, "symbol '" + sym.name + "' extends past .text");
      return std::nullopt;
    }
  }
  return obj;
}

const FunctionSymbol *MiraObject::findSymbol(const std::string &name) const {
  for (const FunctionSymbol &sym : symbols)
    if (sym.name == name)
      return &sym;
  return nullptr;
}

const FunctionSymbol *MiraObject::symbolById(int id) const {
  for (const FunctionSymbol &sym : symbols)
    if (sym.id == id)
      return &sym;
  return nullptr;
}

std::uint32_t MiraObject::lineForAddress(std::uint64_t address) const {
  std::uint32_t line = 0;
  for (const LineEntry &entry : lineTable) {
    if (entry.address > address)
      break;
    line = entry.line;
  }
  return line;
}

MiraObject buildObject(const std::vector<isa::MachineFunction> &functions,
                       const std::vector<std::string> &externs) {
  MiraObject obj;
  obj.externSymbols = externs;
  std::uint64_t offset = 0;
  int id = 0;
  for (const isa::MachineFunction &fn : functions) {
    // Function bodies are laid out relative to 0 (jump offsets are
    // function-relative); the line table stores absolute offsets.
    std::vector<std::uint8_t> bytes = isa::encodeFunction(fn);
    FunctionSymbol sym;
    sym.name = fn.name;
    sym.offset = offset;
    sym.size = bytes.size();
    sym.id = id++;
    obj.symbols.push_back(sym);

    std::uint32_t lastLine = 0xFFFFFFFF;
    for (const isa::Instruction &inst : fn.instructions) {
      if (inst.line != lastLine) {
        obj.lineTable.push_back({offset + inst.address, inst.line});
        lastLine = inst.line;
      }
    }
    obj.text.insert(obj.text.end(), bytes.begin(), bytes.end());
    offset += bytes.size();
  }
  std::sort(obj.lineTable.begin(), obj.lineTable.end(),
            [](const LineEntry &a, const LineEntry &b) {
              return a.address < b.address;
            });
  return obj;
}

} // namespace mira::objfile
