// MiraObject: the object-file container of the synthetic toolchain.
//
// Stands in for ELF in the paper's pipeline (DESIGN.md substitution
// table). Holds:
//   .symtab      — defined function symbols (name, offset, size, id) and
//                  undefined externals (library functions);
//   .text        — concatenated encoded machine code;
//   .debug_line  — a DWARF-style line program: a state machine over
//                  (address, line) with advance_pc / advance_line / copy
//                  opcodes, exactly the mechanism the paper describes for
//                  bridging source and binary (Sec. III-A2).
//
// The container serializes to bytes and parses back; the Input Processor
// side of Mira consumes parsed objects only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.h"
#include "support/diagnostics.h"

namespace mira::objfile {

struct FunctionSymbol {
  std::string name;     // qualified source name
  std::uint64_t offset = 0; // into .text
  std::uint64_t size = 0;
  int id = 0; // call-target id used by CALL Label operands
};

struct LineEntry {
  std::uint64_t address = 0; // absolute .text offset
  std::uint32_t line = 0;
};

class MiraObject {
public:
  std::vector<FunctionSymbol> symbols;
  std::vector<std::string> externSymbols; // undefined (library) symbols
  std::vector<std::uint8_t> text;
  std::vector<LineEntry> lineTable; // sorted by address

  /// Serialize to the on-disk/in-memory byte format.
  std::vector<std::uint8_t> serialize() const;

  /// Parse; returns nullopt (with diagnostics) on malformed input.
  static std::optional<MiraObject> parse(const std::vector<std::uint8_t> &data,
                                         DiagnosticEngine &diags);

  const FunctionSymbol *findSymbol(const std::string &name) const;
  const FunctionSymbol *symbolById(int id) const;

  /// Line for an absolute .text address (nearest entry at or before it),
  /// 0 if none.
  std::uint32_t lineForAddress(std::uint64_t address) const;
};

/// Build an object from laid-out machine functions: encodes each body,
/// assigns offsets, emits the line program. Function ids are assigned in
/// order (matching codegen's functionIds map).
MiraObject buildObject(const std::vector<isa::MachineFunction> &functions,
                       const std::vector<std::string> &externs);

} // namespace mira::objfile
