// Affine expressions over named variables with integer coefficients.
//
// The polyhedral model (paper Sec. II-B, III-B2) represents loop bounds and
// branch conditions as affine inequalities over iteration variables and
// parameters; AffineExpr is that representation: c0 + sum(ci * vi).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "symbolic/expr.h"
#include "symbolic/polynomial.h"

namespace mira::polyhedral {

using symbolic::Env;
using symbolic::Expr;
using symbolic::Polynomial;

class AffineExpr {
public:
  AffineExpr() = default;
  explicit AffineExpr(std::int64_t constant) : constant_(constant) {}
  static AffineExpr variable(const std::string &name,
                             std::int64_t coeff = 1);

  std::int64_t constant() const { return constant_; }
  std::int64_t coeff(const std::string &var) const;
  const std::map<std::string, std::int64_t> &coeffs() const {
    return coeffs_;
  }

  bool isConstant() const { return coeffs_.empty(); }
  /// True if `var` appears with a nonzero coefficient.
  bool involves(const std::string &var) const { return coeff(var) != 0; }

  friend AffineExpr operator+(const AffineExpr &a, const AffineExpr &b);
  friend AffineExpr operator-(const AffineExpr &a, const AffineExpr &b);
  AffineExpr operator-() const;
  AffineExpr scaled(std::int64_t factor) const;
  AffineExpr &operator+=(const AffineExpr &o) { return *this = *this + o; }
  AffineExpr &operator-=(const AffineExpr &o) { return *this = *this - o; }

  /// Remove `var`, returning the expression with that term dropped.
  AffineExpr without(const std::string &var) const;

  /// Substitute `var := replacement` (replacement affine).
  AffineExpr substitute(const std::string &var,
                        const AffineExpr &replacement) const;

  std::optional<std::int64_t> evaluate(const Env &env) const;
  Polynomial toPolynomial() const;
  Expr toExpr() const;
  /// Expr of degree <= 1 converts back; nullopt otherwise.
  static std::optional<AffineExpr> fromExpr(const Expr &expr);

  bool operator==(const AffineExpr &o) const {
    return constant_ == o.constant_ && coeffs_ == o.coeffs_;
  }

  std::string str() const;

private:
  std::int64_t constant_ = 0;
  std::map<std::string, std::int64_t> coeffs_;

  void setCoeff(const std::string &var, std::int64_t value);
};

/// Comparison relations usable in loop conditions and branch guards.
enum class CmpRel { LT, LE, GT, GE, EQ, NE };

const char *toString(CmpRel rel);
CmpRel negate(CmpRel rel);

/// An affine constraint `expr REL 0`. Normal form used by the solver is
/// GE: expr >= 0; helpers convert LT/LE/GT from source-level comparisons.
struct AffineConstraint {
  AffineExpr expr; // meaning: expr >= 0 (after normalization)

  /// Build `lhs rel rhs` as one or two GE-normal constraints.
  /// EQ yields two constraints; NE is not affine-representable (handled by
  /// the congruence/complement machinery instead).
  static std::vector<AffineConstraint> make(const AffineExpr &lhs, CmpRel rel,
                                            const AffineExpr &rhs);

  std::optional<bool> holds(const Env &env) const;
  std::string str() const;
};

/// A congruence condition `expr % modulus REL 0` with REL in {EQ, NE}.
/// Models branch guards like `j % 4 != 0` (paper Listing 5): NE breaks
/// convexity and is counted by the complement rule.
struct Congruence {
  AffineExpr expr;
  std::int64_t modulus = 1;
  bool negated = false; // false: expr % m == 0; true: expr % m != 0

  std::optional<bool> holds(const Env &env) const;
  std::string str() const;
};

} // namespace mira::polyhedral
