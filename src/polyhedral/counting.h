// Parametric lattice-point counting for loop iteration domains.
//
// This is the engine behind Mira's loop modeling (paper Sec. III-B2/3):
//   * affine nests with known numeric bounds      -> exact enumeration;
//   * parametric affine nests (single bound pair
//     per level)                                  -> closed-form polynomial
//                                                    via Faulhaber summation;
//   * branch guards inside loops                  -> constraints folded into
//                                                    the polyhedron (Fig 4b);
//   * congruence guards (j % c != 0)              -> complement rule
//                                                    count(true) = count(all)
//                                                    - count(false) (Fig 4c);
//   * min/max bounds, residual guards             -> lazy Sum expressions or
//                                                    an annotation request
//                                                    (paper Listing 3).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "polyhedral/affine.h"
#include "polyhedral/fourier_motzkin.h"

namespace mira::polyhedral {

/// One loop level: `for (var = lb; var <= ub; var += step)`. Multiple
/// lower/upper bounds arise when branch guards are folded in; the
/// effective range is [max(lowerBounds), min(upperBounds)].
struct LoopLevel {
  std::string var;
  std::vector<AffineExpr> lowerBounds;
  std::vector<AffineExpr> upperBounds;
  std::int64_t step = 1;

  static LoopLevel make(std::string var, AffineExpr lb, AffineExpr ub,
                        std::int64_t step = 1);
};

/// A (possibly parametric) iteration domain: a loop nest plus extra affine
/// guards and congruence guards contributed by `if` statements.
struct IterationDomain {
  std::vector<LoopLevel> levels; // outermost first
  std::vector<AffineConstraint> guards;
  std::vector<Congruence> congruences;

  /// Names appearing in bounds/guards that are not loop variables.
  std::set<std::string> parameters() const;

  /// Bounds + guards as one constraint system (congruences excluded).
  ConstraintSystem toConstraintSystem() const;

  /// Domain restricted by an additional guard (used for if-in-loop
  /// modeling: the branch body's domain = loop domain + condition).
  IterationDomain withGuard(const AffineConstraint &guard) const;
  IterationDomain withCongruence(const Congruence &congruence) const;

  std::string str() const;
};

enum class CountMethod {
  Enumeration, // fully numeric, counted exactly by walking the domain
  ClosedForm,  // polynomial in the parameters (Faulhaber)
  LazySum,     // nested symbolic Sum, evaluated on demand
};

const char *toString(CountMethod method);

struct CountResult {
  Expr count;
  CountMethod method = CountMethod::Enumeration;
  /// False when the counter had to assume something it could not prove
  /// (e.g. a parameter-only guard treated as true); the metrics layer
  /// surfaces this as "annotation recommended".
  bool exact = true;
  /// True when the domain cannot be handled statically at all (paper
  /// Listing 3: min/max bounds from function calls); callers must supply
  /// a user annotation.
  bool requiresAnnotation = false;
  std::string note;
};

/// Count the integer points of `domain`.
CountResult countIterations(const IterationDomain &domain);

/// Reference brute-force enumerator: binds `env` for all parameters and
/// walks the nest. nullopt if some parameter is missing or a level is
/// unbounded. Used to validate countIterations in tests.
std::optional<std::int64_t> enumerateDomain(const IterationDomain &domain,
                                            const Env &env);

/// Count points of `range` [lo, hi] congruent to the congruence class of
/// `cong` (helper exposed for tests): number of v in [lo,hi] with
/// v ≡ target (mod m), all symbolic.
Expr countCongruentInRange(const Expr &lo, const Expr &hi, const Expr &target,
                           std::int64_t modulus);

} // namespace mira::polyhedral
