// Fourier–Motzkin elimination over rational constraint systems.
//
// Used for (a) emptiness checks of fully numeric polyhedra, (b) deriving
// per-variable bounds for the brute-force reference enumerator, and
// (c) convexity sanity checks. Counting itself lives in counting.h.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "polyhedral/affine.h"

namespace mira::polyhedral {

/// A conjunction of affine constraints (each `expr >= 0`) over a set of
/// variables. Variables not eliminated are treated as free/rational.
class ConstraintSystem {
public:
  ConstraintSystem() = default;
  explicit ConstraintSystem(std::vector<AffineConstraint> constraints)
      : constraints_(std::move(constraints)) {}

  void add(AffineConstraint c) { constraints_.push_back(std::move(c)); }
  void add(const std::vector<AffineConstraint> &cs) {
    constraints_.insert(constraints_.end(), cs.begin(), cs.end());
  }
  const std::vector<AffineConstraint> &constraints() const {
    return constraints_;
  }

  /// All variables mentioned by any constraint.
  std::vector<std::string> variables() const;

  /// Eliminate `var` by Fourier–Motzkin: pair every lower bound with every
  /// upper bound. Exact over rationals (sufficient for emptiness checks).
  ConstraintSystem eliminate(const std::string &var) const;

  /// True if the rational relaxation is infeasible: after eliminating all
  /// variables, some constant constraint is negative. (Rational emptiness
  /// implies integer emptiness; the converse may not hold, which is fine
  /// for the uses here.)
  bool isRationallyEmpty() const;

  /// Substitute a concrete value for `var`.
  ConstraintSystem substituted(const std::string &var,
                               std::int64_t value) const;

  /// Tight integer bounds of `var` implied by constraints where all other
  /// variables are already bound in `env`. Returns nullopt if unbounded on
  /// either side.
  std::optional<std::pair<std::int64_t, std::int64_t>>
  integerBounds(const std::string &var, const Env &env) const;

  std::string str() const;

private:
  std::vector<AffineConstraint> constraints_;
};

} // namespace mira::polyhedral
