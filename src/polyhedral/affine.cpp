#include "polyhedral/affine.h"

#include "symbolic/rational.h"

namespace mira::polyhedral {

using symbolic::checkedAdd;
using symbolic::checkedMul;
using symbolic::floorMod;
using symbolic::Rational;

AffineExpr AffineExpr::variable(const std::string &name, std::int64_t coeff) {
  AffineExpr e;
  e.setCoeff(name, coeff);
  return e;
}

std::int64_t AffineExpr::coeff(const std::string &var) const {
  auto it = coeffs_.find(var);
  return it == coeffs_.end() ? 0 : it->second;
}

void AffineExpr::setCoeff(const std::string &var, std::int64_t value) {
  if (value == 0)
    coeffs_.erase(var);
  else
    coeffs_[var] = value;
}

AffineExpr operator+(const AffineExpr &a, const AffineExpr &b) {
  AffineExpr out = a;
  out.constant_ = checkedAdd(out.constant_, b.constant_);
  for (const auto &[v, c] : b.coeffs_)
    out.setCoeff(v, checkedAdd(out.coeff(v), c));
  return out;
}

AffineExpr operator-(const AffineExpr &a, const AffineExpr &b) {
  return a + (-b);
}

AffineExpr AffineExpr::operator-() const { return scaled(-1); }

AffineExpr AffineExpr::scaled(std::int64_t factor) const {
  AffineExpr out;
  if (factor == 0)
    return out;
  out.constant_ = checkedMul(constant_, factor);
  for (const auto &[v, c] : coeffs_)
    out.coeffs_[v] = checkedMul(c, factor);
  return out;
}

AffineExpr AffineExpr::without(const std::string &var) const {
  AffineExpr out = *this;
  out.coeffs_.erase(var);
  return out;
}

AffineExpr AffineExpr::substitute(const std::string &var,
                                  const AffineExpr &replacement) const {
  std::int64_t c = coeff(var);
  if (c == 0)
    return *this;
  return without(var) + replacement.scaled(c);
}

std::optional<std::int64_t> AffineExpr::evaluate(const Env &env) const {
  try {
    std::int64_t acc = constant_;
    for (const auto &[v, c] : coeffs_) {
      auto it = env.find(v);
      if (it == env.end())
        return std::nullopt;
      acc = checkedAdd(acc, checkedMul(c, it->second));
    }
    return acc;
  } catch (const symbolic::ArithmeticError &) {
    return std::nullopt;
  }
}

Polynomial AffineExpr::toPolynomial() const {
  Polynomial p{Rational(constant_)};
  for (const auto &[v, c] : coeffs_)
    p += Polynomial::variable(v).scaled(Rational(c));
  return p;
}

Expr AffineExpr::toExpr() const {
  std::vector<Expr> terms;
  if (constant_ != 0)
    terms.push_back(Expr::intConst(constant_));
  for (const auto &[v, c] : coeffs_)
    terms.push_back(Expr::mul({Expr::intConst(c), Expr::param(v)}));
  if (terms.empty())
    return Expr::intConst(0);
  return Expr::add(std::move(terms));
}

std::optional<AffineExpr> AffineExpr::fromExpr(const Expr &expr) {
  auto poly = Polynomial::fromExpr(expr);
  if (!poly || poly->degree() > 1)
    return std::nullopt;
  AffineExpr out;
  for (const auto &[mono, c] : poly->terms()) {
    if (!c.isInteger())
      return std::nullopt;
    if (mono.empty()) {
      out.constant_ = c.asInteger();
    } else {
      out.setCoeff(mono[0].first, c.asInteger());
    }
  }
  return out;
}

std::string AffineExpr::str() const {
  std::string out;
  bool first = true;
  for (const auto &[v, c] : coeffs_) {
    if (!first)
      out += " + ";
    first = false;
    if (c == 1)
      out += v;
    else
      out += std::to_string(c) + "*" + v;
  }
  if (constant_ != 0 || first) {
    if (!first)
      out += " + ";
    out += std::to_string(constant_);
  }
  return out;
}

const char *toString(CmpRel rel) {
  switch (rel) {
  case CmpRel::LT:
    return "<";
  case CmpRel::LE:
    return "<=";
  case CmpRel::GT:
    return ">";
  case CmpRel::GE:
    return ">=";
  case CmpRel::EQ:
    return "==";
  case CmpRel::NE:
    return "!=";
  }
  return "?";
}

CmpRel negate(CmpRel rel) {
  switch (rel) {
  case CmpRel::LT:
    return CmpRel::GE;
  case CmpRel::LE:
    return CmpRel::GT;
  case CmpRel::GT:
    return CmpRel::LE;
  case CmpRel::GE:
    return CmpRel::LT;
  case CmpRel::EQ:
    return CmpRel::NE;
  case CmpRel::NE:
    return CmpRel::EQ;
  }
  return CmpRel::EQ;
}

std::vector<AffineConstraint> AffineConstraint::make(const AffineExpr &lhs,
                                                     CmpRel rel,
                                                     const AffineExpr &rhs) {
  // Normalize everything to expr >= 0 over integers:
  //   a <  b  ->  b - a - 1 >= 0
  //   a <= b  ->  b - a     >= 0
  //   a >  b  ->  a - b - 1 >= 0
  //   a >= b  ->  a - b     >= 0
  //   a == b  ->  both a - b >= 0 and b - a >= 0
  switch (rel) {
  case CmpRel::LT:
    return {AffineConstraint{rhs - lhs - AffineExpr(1)}};
  case CmpRel::LE:
    return {AffineConstraint{rhs - lhs}};
  case CmpRel::GT:
    return {AffineConstraint{lhs - rhs - AffineExpr(1)}};
  case CmpRel::GE:
    return {AffineConstraint{lhs - rhs}};
  case CmpRel::EQ:
    return {AffineConstraint{lhs - rhs}, AffineConstraint{rhs - lhs}};
  case CmpRel::NE:
    return {}; // not affine-representable; see Congruence
  }
  return {};
}

std::optional<bool> AffineConstraint::holds(const Env &env) const {
  auto v = expr.evaluate(env);
  if (!v)
    return std::nullopt;
  return *v >= 0;
}

std::string AffineConstraint::str() const { return expr.str() + " >= 0"; }

std::optional<bool> Congruence::holds(const Env &env) const {
  auto v = expr.evaluate(env);
  if (!v || modulus == 0)
    return std::nullopt;
  bool zero = floorMod(*v, modulus) == 0;
  return negated ? !zero : zero;
}

std::string Congruence::str() const {
  return expr.str() + " % " + std::to_string(modulus) +
         (negated ? " != 0" : " == 0");
}

} // namespace mira::polyhedral
