#include "polyhedral/fourier_motzkin.h"

#include <algorithm>
#include <set>

#include "symbolic/rational.h"

namespace mira::polyhedral {

using symbolic::checkedMul;
using symbolic::floorDiv;

std::vector<std::string> ConstraintSystem::variables() const {
  std::set<std::string> vars;
  for (const auto &c : constraints_)
    for (const auto &[v, coeff] : c.expr.coeffs())
      vars.insert(v);
  return {vars.begin(), vars.end()};
}

ConstraintSystem ConstraintSystem::eliminate(const std::string &var) const {
  // Partition into lower bounds (coeff > 0: a*var >= -rest), upper bounds
  // (coeff < 0), and constraints not involving var.
  std::vector<AffineConstraint> lowers, uppers;
  ConstraintSystem out;
  for (const auto &c : constraints_) {
    std::int64_t a = c.expr.coeff(var);
    if (a > 0)
      lowers.push_back(c);
    else if (a < 0)
      uppers.push_back(c);
    else
      out.add(c);
  }
  // Combine: from aL*var + rL >= 0 (aL>0) and -aU*var + rU >= 0 (aU>0):
  //   aU*rL + aL*rU >= 0.
  for (const auto &lo : lowers) {
    std::int64_t aL = lo.expr.coeff(var);
    AffineExpr rL = lo.expr.without(var);
    for (const auto &up : uppers) {
      std::int64_t aU = -up.expr.coeff(var);
      AffineExpr rU = up.expr.without(var);
      out.add(AffineConstraint{rL.scaled(aU) + rU.scaled(aL)});
    }
  }
  return out;
}

bool ConstraintSystem::isRationallyEmpty() const {
  ConstraintSystem cur = *this;
  for (const std::string &v : variables())
    cur = cur.eliminate(v);
  for (const auto &c : cur.constraints())
    if (c.expr.isConstant() && c.expr.constant() < 0)
      return true;
  return false;
}

ConstraintSystem ConstraintSystem::substituted(const std::string &var,
                                               std::int64_t value) const {
  ConstraintSystem out;
  for (const auto &c : constraints_)
    out.add(AffineConstraint{c.expr.substitute(var, AffineExpr(value))});
  return out;
}

std::optional<std::pair<std::int64_t, std::int64_t>>
ConstraintSystem::integerBounds(const std::string &var, const Env &env) const {
  std::optional<std::int64_t> lo, hi;
  for (const auto &c : constraints_) {
    std::int64_t a = c.expr.coeff(var);
    if (a == 0)
      continue;
    auto rest = c.expr.without(var).evaluate(env);
    if (!rest)
      return std::nullopt; // some other variable unbound
    if (a > 0) {
      // a*var + rest >= 0  ->  var >= ceil(-rest / a) = -floor(rest / a)...
      // ceil(-r/a) for integers = floorDiv(-*rest + a - 1, a)
      std::int64_t bound = floorDiv(-*rest + a - 1, a);
      lo = lo ? std::max(*lo, bound) : bound;
    } else {
      // a*var + rest >= 0, a<0  ->  var <= floor(rest / -a)
      std::int64_t bound = floorDiv(*rest, -a);
      hi = hi ? std::min(*hi, bound) : bound;
    }
  }
  if (!lo || !hi)
    return std::nullopt;
  return std::make_pair(*lo, *hi);
}

std::string ConstraintSystem::str() const {
  std::string out;
  for (const auto &c : constraints_) {
    if (!out.empty())
      out += " && ";
    out += c.str();
  }
  return out.empty() ? "true" : out;
}

} // namespace mira::polyhedral
