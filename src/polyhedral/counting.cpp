#include "polyhedral/counting.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "symbolic/summation.h"

namespace mira::polyhedral {

using symbolic::Polynomial;
using symbolic::Rational;
using symbolic::sumOverRange;

LoopLevel LoopLevel::make(std::string var, AffineExpr lb, AffineExpr ub,
                          std::int64_t step) {
  LoopLevel l;
  l.var = std::move(var);
  l.lowerBounds.push_back(std::move(lb));
  l.upperBounds.push_back(std::move(ub));
  l.step = step;
  return l;
}

std::set<std::string> IterationDomain::parameters() const {
  std::set<std::string> loopVars;
  for (const auto &l : levels)
    loopVars.insert(l.var);
  std::set<std::string> params;
  auto collect = [&](const AffineExpr &e) {
    for (const auto &[v, c] : e.coeffs())
      if (!loopVars.count(v))
        params.insert(v);
  };
  for (const auto &l : levels) {
    for (const auto &b : l.lowerBounds)
      collect(b);
    for (const auto &b : l.upperBounds)
      collect(b);
  }
  for (const auto &g : guards)
    collect(g.expr);
  for (const auto &c : congruences)
    collect(c.expr);
  return params;
}

ConstraintSystem IterationDomain::toConstraintSystem() const {
  ConstraintSystem sys;
  for (const auto &l : levels) {
    AffineExpr var = AffineExpr::variable(l.var);
    for (const auto &lb : l.lowerBounds)
      sys.add(AffineConstraint{var - lb}); // var - lb >= 0
    for (const auto &ub : l.upperBounds)
      sys.add(AffineConstraint{ub - var}); // ub - var >= 0
  }
  for (const auto &g : guards)
    sys.add(g);
  return sys;
}

IterationDomain IterationDomain::withGuard(const AffineConstraint &guard) const {
  IterationDomain d = *this;
  d.guards.push_back(guard);
  return d;
}

IterationDomain IterationDomain::withCongruence(
    const Congruence &congruence) const {
  IterationDomain d = *this;
  d.congruences.push_back(congruence);
  return d;
}

std::string IterationDomain::str() const {
  std::string out;
  for (const auto &l : levels) {
    out += "for " + l.var + " in [";
    for (std::size_t i = 0; i < l.lowerBounds.size(); ++i)
      out += (i ? " ,max " : "") + l.lowerBounds[i].str();
    out += " .. ";
    for (std::size_t i = 0; i < l.upperBounds.size(); ++i)
      out += (i ? " ,min " : "") + l.upperBounds[i].str();
    out += "]";
    if (l.step != 1)
      out += " step " + std::to_string(l.step);
    out += "; ";
  }
  for (const auto &g : guards)
    out += "if " + g.str() + "; ";
  for (const auto &c : congruences)
    out += "if " + c.str() + "; ";
  return out;
}

const char *toString(CountMethod method) {
  switch (method) {
  case CountMethod::Enumeration:
    return "enumeration";
  case CountMethod::ClosedForm:
    return "closed-form";
  case CountMethod::LazySum:
    return "lazy-sum";
  }
  return "?";
}

Expr countCongruentInRange(const Expr &lo, const Expr &hi, const Expr &target,
                           std::int64_t modulus) {
  // #{ v in [lo, hi] : v ≡ target (mod m) }
  //   = floor((hi - target)/m) - floor((lo - 1 - target)/m)
  Expr m = Expr::intConst(modulus);
  Expr upper = Expr::floorDiv(hi - target, m);
  Expr lower = Expr::floorDiv(lo - Expr::intConst(1) - target, m);
  return upper - lower;
}

namespace {

/// Fold affine guards into the bounds of the innermost loop variable they
/// mention (when that variable's coefficient is ±1). Returns the residual
/// guards that could not be folded.
std::vector<AffineConstraint>
foldGuards(std::vector<LoopLevel> &levels,
           const std::vector<AffineConstraint> &guards) {
  std::vector<AffineConstraint> residual;
  for (const AffineConstraint &g : guards) {
    bool folded = false;
    // Walk innermost -> outermost.
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
      std::int64_t a = g.expr.coeff(it->var);
      if (a == 0)
        continue;
      if (a == 1) {
        // var + rest >= 0  ->  var >= -rest
        it->lowerBounds.push_back(-g.expr.without(it->var));
        folded = true;
      } else if (a == -1) {
        // -var + rest >= 0  ->  var <= rest
        it->upperBounds.push_back(g.expr.without(it->var));
        folded = true;
      }
      break; // only the innermost involved variable is considered
    }
    if (!folded)
      residual.push_back(g);
  }
  return residual;
}

struct BoundExprs {
  Expr lo; // max of lower bounds
  Expr hi; // min of upper bounds
  bool single = false;
  AffineExpr loAffine; // valid when single
  AffineExpr hiAffine;
};

BoundExprs boundsOf(const LoopLevel &level) {
  BoundExprs b;
  assert(!level.lowerBounds.empty() && !level.upperBounds.empty());
  b.lo = level.lowerBounds[0].toExpr();
  for (std::size_t i = 1; i < level.lowerBounds.size(); ++i)
    b.lo = Expr::max(b.lo, level.lowerBounds[i].toExpr());
  b.hi = level.upperBounds[0].toExpr();
  for (std::size_t i = 1; i < level.upperBounds.size(); ++i)
    b.hi = Expr::min(b.hi, level.upperBounds[i].toExpr());
  b.single =
      level.lowerBounds.size() == 1 && level.upperBounds.size() == 1;
  if (b.single) {
    b.loAffine = level.lowerBounds[0];
    b.hiAffine = level.upperBounds[0];
  }
  return b;
}

/// Deduplicate bounds lists (guards may re-add an existing bound).
void dedupeBounds(LoopLevel &level) {
  auto dedupe = [](std::vector<AffineExpr> &bounds) {
    std::vector<AffineExpr> out;
    for (const auto &b : bounds) {
      bool dup = false;
      for (const auto &o : out)
        if (o == b)
          dup = true;
      if (!dup)
        out.push_back(b);
    }
    bounds = std::move(out);
  };
  dedupe(level.lowerBounds);
  dedupe(level.upperBounds);
}

} // namespace

namespace {
std::optional<std::int64_t> enumerateWithBudget(const IterationDomain &domain,
                                                const Env &env,
                                                std::int64_t budget) {
  // Recursive nested-loop walk with memo-free simplicity; fine for the
  // test-scale domains this is used on.
  struct Walker {
    const IterationDomain &domain;
    Env env;
    std::int64_t budget;

    std::optional<std::int64_t> walk(std::size_t depth) {
      if (--budget < 0)
        return std::nullopt;
      if (depth == domain.levels.size()) {
        for (const auto &g : domain.guards) {
          auto h = g.holds(env);
          if (!h)
            return std::nullopt;
          if (!*h)
            return 0;
        }
        for (const auto &c : domain.congruences) {
          auto h = c.holds(env);
          if (!h)
            return std::nullopt;
          if (!*h)
            return 0;
        }
        return 1;
      }
      const LoopLevel &level = domain.levels[depth];
      std::optional<std::int64_t> lo, hi;
      for (const auto &b : level.lowerBounds) {
        auto v = b.evaluate(env);
        if (!v)
          return std::nullopt;
        lo = lo ? std::max(*lo, *v) : *v;
      }
      for (const auto &b : level.upperBounds) {
        auto v = b.evaluate(env);
        if (!v)
          return std::nullopt;
        hi = hi ? std::min(*hi, *v) : *v;
      }
      if (!lo || !hi)
        return std::nullopt;
      std::int64_t total = 0;
      for (std::int64_t v = *lo; v <= *hi; v += level.step) {
        env[level.var] = v;
        auto inner = walk(depth + 1);
        if (!inner)
          return std::nullopt;
        total += *inner;
      }
      env.erase(level.var);
      return total;
    }
  };
  Walker w{domain, env, budget};
  return w.walk(0);
}
} // namespace

std::optional<std::int64_t> enumerateDomain(const IterationDomain &domain,
                                            const Env &env) {
  return enumerateWithBudget(domain, env,
                             std::numeric_limits<std::int64_t>::max());
}

CountResult countIterations(const IterationDomain &domain) {
  CountResult result;

  if (domain.levels.empty()) {
    result.count = Expr::intConst(1);
    result.method = CountMethod::ClosedForm;
    return result;
  }
  for (const auto &l : domain.levels) {
    if (l.lowerBounds.empty() || l.upperBounds.empty()) {
      result.requiresAnnotation = true;
      result.note = "loop variable '" + l.var + "' has missing bounds";
      result.count = Expr::intConst(0);
      return result;
    }
    if (l.step <= 0) {
      result.requiresAnnotation = true;
      result.note = "loop variable '" + l.var + "' has non-positive step";
      result.count = Expr::intConst(0);
      return result;
    }
  }

  std::vector<LoopLevel> levels = domain.levels;
  std::vector<AffineConstraint> residual = foldGuards(levels, domain.guards);
  for (auto &l : levels)
    dedupeBounds(l);

  // Residual guards mentioning only parameters cannot be decided
  // statically; the paper's answer is a user annotation.
  for (const auto &g : residual) {
    bool mentionsLoopVar = false;
    for (const auto &l : levels)
      if (g.expr.involves(l.var))
        mentionsLoopVar = true;
    if (!mentionsLoopVar) {
      result.exact = false;
      result.note = "guard '" + g.str() +
                    "' depends only on parameters; treated as true "
                    "(annotation recommended)";
    }
  }

  // Fully numeric domain: walk it exactly (handles min/max bounds,
  // congruences, residual guards — paper Fig. 4 cases). A point budget
  // protects against walking huge constant-bound nests; those fall
  // through to the symbolic paths below.
  if (domain.parameters().empty()) {
    IterationDomain numeric = domain;
    numeric.levels = levels;
    numeric.guards = residual;
    auto n = enumerateWithBudget(numeric, Env{}, 20'000'000);
    if (n) {
      result.count = Expr::intConst(*n);
      result.method = CountMethod::Enumeration;
      return result;
    }
  }

  // A strided innermost level does not compose with congruence guards or
  // extra (guard-folded) bounds: the surviving lattice points are an
  // arithmetic-progression/congruence intersection (CRT), which this
  // counter does not implement symbolically. Fully numeric domains were
  // already enumerated above; parametric ones need an annotation.
  {
    const LoopLevel &inner = levels.back();
    if (inner.step != 1 &&
        (!domain.congruences.empty() || inner.lowerBounds.size() > 1 ||
         inner.upperBounds.size() > 1)) {
      result.requiresAnnotation = true;
      result.note = "strided loop variable '" + inner.var +
                    "' combined with guards; annotate the loop/branch";
      result.count = Expr::intConst(0);
      return result;
    }
  }

  // Non-foldable residual guards involving loop variables block the
  // symbolic paths.
  for (const auto &g : residual) {
    for (const auto &l : levels) {
      if (g.expr.involves(l.var)) {
        result.requiresAnnotation = true;
        result.note = "guard '" + g.str() +
                      "' has a non-unit loop-variable coefficient; "
                      "annotate the branch";
        result.count = Expr::intConst(0);
        return result;
      }
    }
  }

  // Closed-form path: every level has a single bound pair, steps are 1
  // except possibly the innermost, congruences only constrain the
  // innermost variable.
  bool closedFormEligible = true;
  for (std::size_t d = 0; d < levels.size(); ++d) {
    const LoopLevel &l = levels[d];
    if (l.lowerBounds.size() != 1 || l.upperBounds.size() != 1)
      closedFormEligible = false;
    if (l.step != 1 && d + 1 != levels.size())
      closedFormEligible = false;
  }

  // Degenerate-range check: the closed form F(hi) - F(lo-1) over-subtracts
  // if an inner range can be empty for some outer point of the domain
  // (e.g. j in [i+1, 6] with i reaching beyond 5). Prove non-emptiness
  // with Fourier-Motzkin: the outer bounds plus "level d empty"
  // (lb_d > ub_d) must be infeasible for every non-outermost level.
  // Parameters are treated as free variables, which is conservative.
  if (closedFormEligible) {
    ConstraintSystem outer;
    for (std::size_t d = 0; d < levels.size() && closedFormEligible; ++d) {
      const LoopLevel &l = levels[d];
      if (d > 0) {
        AffineExpr emptyCond =
            l.lowerBounds[0] - l.upperBounds[0] - AffineExpr(1);
        bool dependsOnOuter = false;
        for (std::size_t o = 0; o < d; ++o)
          if (emptyCond.involves(levels[o].var))
            dependsOnOuter = true;
        if (dependsOnOuter) {
          ConstraintSystem probe = outer;
          probe.add(AffineConstraint{emptyCond}); // empty range reachable?
          if (!probe.isRationallyEmpty())
            closedFormEligible = false; // fall back to the clamped lazy path
        }
        // Emptiness uniform in the loop variables (parameters only, e.g.
        // M <= 0 for a rectangle) is tolerated: the paper's models assume
        // parameters describe non-degenerate problem sizes, and the
        // top-level clamp handles the all-empty case.
      }
      AffineExpr v = AffineExpr::variable(l.var);
      outer.add(AffineConstraint{v - l.lowerBounds[0]});
      outer.add(AffineConstraint{l.upperBounds[0] - v});
    }
  }
  const std::string &innerVar = levels.back().var;
  for (const auto &c : domain.congruences) {
    for (std::size_t d = 0; d + 1 < levels.size(); ++d)
      if (c.expr.involves(levels[d].var))
        closedFormEligible = false;
    std::int64_t a = c.expr.coeff(innerVar);
    if (a != 1 && a != -1)
      closedFormEligible = false;
    if (c.modulus <= 0)
      closedFormEligible = false;
  }

  if (closedFormEligible) {
    const LoopLevel &inner = levels.back();
    BoundExprs ib = boundsOf(inner);

    // Innermost count as an Expr (and, when possible, a Polynomial).
    Expr innerCount;
    bool innerPolynomial = false;
    Polynomial innerPoly;

    if (domain.congruences.empty() && inner.step == 1) {
      innerPoly = ib.hiAffine.toPolynomial() - ib.loAffine.toPolynomial() +
                  Polynomial{Rational(1)};
      innerCount = innerPoly.toExpr();
      innerPolynomial = true;
    } else if (domain.congruences.empty()) {
      // step > 1: floor((ub - lb)/step) + 1
      innerCount = Expr::floorDiv(ib.hi - ib.lo,
                                  Expr::intConst(inner.step)) +
                   Expr::intConst(1);
    } else {
      // Congruences on the innermost variable. Intersect: count values in
      // [lb, ub] in the EQ class; apply the complement rule for NE
      // (paper Fig. 4c). Multiple congruences compose by inclusion-
      // exclusion only in the single-congruence practical case; with more
      // than one, fall back to a lazy sum below.
      if (domain.congruences.size() == 1 && inner.step == 1) {
        const Congruence &c = domain.congruences[0];
        std::int64_t a = c.expr.coeff(innerVar);
        // a*v + rest ≡ 0 (mod m)  ->  v ≡ -a*rest (mod m) since a = ±1
        // (a==1: v ≡ -rest; a==-1: v ≡ rest).
        AffineExpr rest = c.expr.without(innerVar);
        Expr target = (a == 1) ? (-rest).toExpr() : rest.toExpr();
        Expr eqCount =
            countCongruentInRange(ib.lo, ib.hi, target, c.modulus);
        Expr all = ib.hi - ib.lo + Expr::intConst(1);
        innerCount = c.negated ? (all - eqCount) : eqCount;
        if (c.negated) {
          result.note = "congruence guard handled by complement rule: "
                        "count(true) = count(loop) - count(false)";
        }
      } else {
        closedFormEligible = false;
      }
    }

    if (closedFormEligible) {
      if (innerPolynomial) {
        // Sum the polynomial outward level by level (Faulhaber).
        Polynomial acc = innerPoly;
        bool stillPoly = true;
        for (std::size_t d = levels.size() - 1; d-- > 0;) {
          const LoopLevel &l = levels[d];
          if (!stillPoly)
            break;
          acc = sumOverRange(acc, l.var, l.lowerBounds[0].toPolynomial(),
                             l.upperBounds[0].toPolynomial());
        }
        if (stillPoly) {
          // Clamp at zero so an empty outermost range (e.g. N = 0) does
          // not yield a negative count. (Inner levels were proven
          // non-empty above; see the summation.h domain note.)
          Expr poly = acc.toExpr();
          result.count = poly.isIntConst() || acc.degree() == 0
                             ? poly
                             : Expr::max(Expr::intConst(0), poly);
          result.method = CountMethod::ClosedForm;
          return result;
        }
      } else {
        // Innermost is a floor-expression: wrap outer levels as lazy sums.
        Expr acc = innerCount;
        for (std::size_t d = levels.size() - 1; d-- > 0;) {
          const LoopLevel &l = levels[d];
          acc = Expr::sum(l.var, l.lowerBounds[0].toExpr(),
                          l.upperBounds[0].toExpr(), acc);
        }
        result.count = acc;
        result.method =
            levels.size() == 1 ? CountMethod::ClosedForm : CountMethod::LazySum;
        return result;
      }
    }
  }

  // General fallback: nested lazy sums over [max(lbs), min(ubs)] with a
  // clamped innermost span and congruence factors where expressible.
  if (!domain.congruences.empty()) {
    bool innerOnly = true;
    for (const auto &c : domain.congruences) {
      for (std::size_t d = 0; d + 1 < levels.size(); ++d)
        if (c.expr.involves(levels[d].var))
          innerOnly = false;
      std::int64_t a = c.expr.coeff(innerVar);
      if (a != 1 && a != -1)
        innerOnly = false;
    }
    if (!innerOnly || domain.congruences.size() > 1) {
      result.requiresAnnotation = true;
      result.note = "congruence guards too complex for static counting; "
                    "annotate the branch";
      result.count = Expr::intConst(0);
      return result;
    }
  }

  const LoopLevel &inner = levels.back();
  BoundExprs ib = boundsOf(inner);
  Expr innerSpan;
  if (domain.congruences.empty()) {
    Expr raw;
    if (inner.step == 1)
      raw = ib.hi - ib.lo + Expr::intConst(1);
    else
      raw = Expr::floorDiv(ib.hi - ib.lo, Expr::intConst(inner.step)) +
            Expr::intConst(1);
    innerSpan = Expr::max(Expr::intConst(0), raw);
  } else {
    const Congruence &c = domain.congruences[0];
    std::int64_t a = c.expr.coeff(innerVar);
    AffineExpr rest = c.expr.without(innerVar);
    Expr target = (a == 1) ? (-rest).toExpr() : rest.toExpr();
    Expr eqCount = countCongruentInRange(ib.lo, ib.hi, target, c.modulus);
    Expr all = ib.hi - ib.lo + Expr::intConst(1);
    Expr raw = c.negated ? (all - eqCount) : eqCount;
    innerSpan = Expr::max(Expr::intConst(0), raw);
  }

  Expr acc = innerSpan;
  for (std::size_t d = levels.size() - 1; d-- > 0;) {
    const LoopLevel &l = levels[d];
    BoundExprs b = boundsOf(l);
    if (l.step == 1) {
      acc = Expr::sum(l.var, b.lo, b.hi, acc);
    } else {
      // Strided level: substitute var = lo + step*k and sum k over
      // [0, floor((hi - lo) / step)]. (Negative spans make the range
      // empty via Sum's hi < lo semantics.)
      std::string k = l.var + "__step";
      Expr kvar = Expr::param(k);
      Expr substituted =
          acc.substitute(l.var, b.lo + Expr::intConst(l.step) * kvar);
      Expr hiK = Expr::floorDiv(b.hi - b.lo, Expr::intConst(l.step));
      acc = Expr::sum(k, Expr::intConst(0), hiK, substituted);
    }
  }
  result.count = acc;
  result.method = CountMethod::LazySum;
  return result;
}

} // namespace mira::polyhedral
