#include "core/metrics_registry.h"

namespace mira::core {

MetricsRegistry::Counter &MetricsRegistry::counter(const std::string &name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter()))
             .first;
  return *it->second;
}

MetricsRegistry::Gauge &MetricsRegistry::gauge(const std::string &name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge())).first;
  return *it->second;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> samples;
  samples.reserve(counters_.size() + gauges_.size());
  // Merge the two sorted maps so the snapshot is name-sorted overall.
  auto c = counters_.begin();
  auto g = gauges_.begin();
  while (c != counters_.end() || g != gauges_.end()) {
    const bool takeCounter =
        g == gauges_.end() ||
        (c != counters_.end() && c->first < g->first);
    if (takeCounter) {
      samples.push_back({c->first, c->second->value(), true});
      ++c;
    } else {
      samples.push_back({g->first, g->second->value(), false});
      ++g;
    }
  }
  return samples;
}

std::string MetricsRegistry::renderText(const std::vector<Sample> &samples) {
  std::string out;
  for (const Sample &sample : samples) {
    const std::string full = "mira_" + sample.name;
    out += "# TYPE " + full + (sample.monotonic ? " counter\n" : " gauge\n");
    out += full + " " + std::to_string(sample.value) + "\n";
  }
  return out;
}

} // namespace mira::core
