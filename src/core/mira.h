// Mira public API: options and the shared result/simulation types.
//
// The entry point is the artifact-oriented v2 API in core/artifacts.h —
// build an AnalysisSpec naming the artifacts you need and call
// core::analyze (or, with caching, drive it through
// driver::BatchAnalyzer):
//
//   core::AnalysisSpec spec;
//   spec.name = "app.mc";
//   spec.source = source;
//   spec.artifacts = core::kArtifactModel | core::kArtifactCoverage;
//   core::Artifacts arts = core::analyze(spec);
//   auto counts = arts.model->evaluate("cg_solve", {{"n", 1000}});
//
// One call runs the full pipeline: parse -> sema -> compile
// (optimize/vectorize) -> object emission -> disassembly -> bridge ->
// metric generation -> model. simulate runs the same binary's semantics
// and returns the dynamic ground-truth counters (the TAU/PAPI
// substitute). The deprecated v1 entry point (analyzeSource) was removed
// as of schema v2; docs/MIGRATION.md maps every v1 call to its v2
// replacement.
//
// Thread-safety contract: core::analyze keeps no shared mutable state —
// every request owns its DiagnosticEngine and all pipeline-internal
// statics are immutable lookup tables — so concurrent calls on different
// (spec, diags) tuples are safe. driver::BatchAnalyzer relies on this to
// fan requests across a thread pool; any future global cache or counter
// added to the pipeline must be synchronized or per-request.
//
// Within one request, the model-generation stage can additionally fan
// out per source function when MiraOptions::modelPool is set. The
// TranslationUnit, bridge, and call graph are only read during that
// stage, and per-function diagnostics merge back in declaration order,
// so results stay byte-identical to a serial run (see
// metrics::generateModel). modelPool is an execution-strategy knob: it
// never changes what is computed, and cache keys (driver::requestKey)
// deliberately ignore it.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "arch/arch.h"
#include "core/compiler.h"
#include "metrics/metric_generator.h"
#include "model/model.h"
#include "model/python_emitter.h"
#include "sim/simulator.h"

namespace mira::core {

struct MiraOptions {
  CompileOptions compile;
  metrics::MetricOptions metrics;
  /// Architecture description used for category aggregation/prediction.
  const arch::ArchDescription *arch = &arch::haswellDescription();
  /// Optional worker pool for within-request per-function model
  /// generation (non-owning; may be shared across requests but must not
  /// be the pool the caller itself runs on). Null = serial. Pure
  /// execution strategy: results are byte-identical either way, and the
  /// analysis cache key ignores this field.
  ThreadPool *modelPool = nullptr;
};

/// v1 result shape: a model plus (when computed in-process) the live
/// compiled program. Cache layers may restore the model without the
/// program (`program == nullptr`); the v2 API's ProgramHandle
/// (core/artifacts.h) is how such results regain a program on demand.
struct AnalysisResult {
  /// Shared const since the v2 redesign: the same compiled program backs
  /// this result, the batch cache, and any ProgramHandle. Deref/null
  /// checks work as before.
  std::shared_ptr<const CompiledProgram> program;
  model::PerformanceModel model;

  /// Shorthand: evaluate FPI (the paper's headline metric) for a
  /// function; nullopt if parameters are missing.
  std::optional<double> staticFPI(const std::string &function,
                                  const model::Env &env,
                                  std::string *error = nullptr) const;
};

/// Dynamic ground truth on the same compiled program.
sim::SimResult simulate(const CompiledProgram &program,
                        const std::string &function,
                        const std::vector<sim::Value> &args,
                        const sim::SimOptions &options = {});

/// Relative error |a - b| / b (paper's validation metric), 0 when b == 0.
double relativeError(double modeled, double measured);

} // namespace mira::core
