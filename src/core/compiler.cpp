#include "core/compiler.h"

#include "frontend/parser.h"

namespace mira::core {

std::unique_ptr<CompiledProgram> compileProgram(const std::string &source,
                                                const std::string &fileName,
                                                const CompileOptions &options,
                                                DiagnosticEngine &diags) {
  auto program = std::make_unique<CompiledProgram>();

  program->unit = frontend::Parser::parse(source, fileName, diags);
  if (diags.hasErrors())
    return nullptr;

  sema::SemanticAnalyzer analyzer(diags);
  program->sema = analyzer.analyze(*program->unit);
  if (!program->sema.success)
    return nullptr;

  program->mir = mir::lowerToMir(*program->unit, options.compiler, diags);
  if (diags.hasErrors())
    return nullptr;

  for (std::size_t i = 0; i < program->mir.functions.size(); ++i)
    program->functionIds[program->mir.functions[i].name] =
        static_cast<int>(i);

  std::vector<isa::MachineFunction> machineFunctions;
  for (const mir::MirFunction &fn : program->mir.functions) {
    program->codegen.push_back(
        codegen::generateCode(fn, program->functionIds));
    machineFunctions.push_back(program->codegen.back().machine);
  }

  // Serialize and re-parse so the binary side genuinely starts from bytes.
  objfile::MiraObject built =
      objfile::buildObject(machineFunctions, codegen::externFunctionTable());
  std::vector<std::uint8_t> bytes = built.serialize();
  auto parsed = objfile::MiraObject::parse(bytes, diags);
  if (!parsed) {
    diags.error({}, "internal: failed to re-parse the emitted object");
    return nullptr;
  }
  program->object = std::move(*parsed);

  auto binAst = binast::buildBinaryAst(program->object, diags);
  if (!binAst)
    return nullptr;
  program->binaryAst = std::move(*binAst);

  program->bridge = std::make_unique<bridge::ProgramBridge>(
      *program->unit, program->binaryAst);
  return program;
}

} // namespace mira::core
