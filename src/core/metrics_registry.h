/// \file
/// One shared registry of named monotonic counters and gauges.
///
/// The serving stack used to keep three disjoint counter surfaces — the
/// daemon's atomics behind ServerStats, BatchAnalyzer's disk/fulfillment
/// atomics behind BatchStats, and whatever the CLI printed — which could
/// drift apart because each counter was defined (and bumped) more than
/// once. MetricsRegistry replaces them: a counter or gauge is registered
/// exactly once by name, every layer bumps the same cell, and every view
/// (the cacheStats wire block, the Metrics wire reply, the --metrics-file
/// text dump, `mira-cli client metrics`) renders from one snapshot of the
/// same registry, so the views cannot disagree by construction.
///
/// Concurrency: counter()/gauge() registration takes a mutex; the
/// returned references are stable for the registry's lifetime, and all
/// reads/writes through them are relaxed atomics — hot paths never lock.
/// snapshot() locks only to walk the name table.
///
/// Naming: lowercase `[a-z0-9_]` names in the Prometheus idiom —
/// monotonic counters end in `_total` ("server_requests_served_total"),
/// gauges name a current level ("server_memory_entries"). renderText()
/// emits the standard exposition format with every name prefixed
/// `mira_`, one `# TYPE` line per sample.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mira::core {

/// Registry of named monotonic counters and gauges shared by the batch
/// analyzer, the daemon, and every metrics view.
class MetricsRegistry {
public:
  /// Monotonically increasing counter. Never reset; per-interval views
  /// (e.g. BatchStats for one run) are computed as snapshot deltas.
  class Counter {
  public:
    void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
    void increment() { add(1); }
    std::uint64_t value() const {
      return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    Counter() = default;
    std::atomic<std::uint64_t> value_{0};
  };

  /// Last-write-wins level (cache occupancy, in-flight requests). Owners
  /// refresh gauges before a snapshot is taken.
  class Gauge {
  public:
    void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
    std::uint64_t value() const {
      return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    Gauge() = default;
    std::atomic<std::uint64_t> value_{0};
  };

  /// One (name, value) pair of a snapshot; `monotonic` distinguishes
  /// counters from gauges for renderers that care (# TYPE lines).
  struct Sample {
    std::string name;
    std::uint64_t value = 0;
    bool monotonic = false;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Find-or-create the counter named `name`. The reference stays valid
  /// for the registry's lifetime; repeated calls return the same cell.
  Counter &counter(const std::string &name);

  /// Find-or-create the gauge named `name` (same stability contract).
  Gauge &gauge(const std::string &name);

  /// Point-in-time view of every registered metric, name-sorted (the
  /// map order), so equal registry states render to equal bytes.
  std::vector<Sample> snapshot() const;

  /// Render a snapshot in the Prometheus text exposition format:
  /// `# TYPE mira_<name> counter|gauge` then `mira_<name> <value>`.
  static std::string renderText(const std::vector<Sample> &samples);

  /// snapshot() + renderText() in one call.
  std::string renderText() const { return renderText(snapshot()); }

private:
  mutable std::mutex mutex_;
  // unique_ptr cells: map rebalancing must not move the atomics that
  // hot paths hold references to.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

} // namespace mira::core
