// The embedded toolchain driver: MiniC source -> everything downstream.
//
// One call produces all artifacts of the paper's workflow (Fig. 1):
//   * the source AST (Input Processor, source side),
//   * the MIR + optimized machine code (the "compiler" whose effects make
//     source-only analysis inaccurate),
//   * the MiraObject (the "ELF binary"),
//   * the binary AST disassembled back from the object bytes (Input
//     Processor, binary side),
//   * the source<->binary bridge (line table association).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "binast/binast.h"
#include "bridge/bridge.h"
#include "codegen/codegen.h"
#include "frontend/ast.h"
#include "mir/lowering.h"
#include "objfile/objfile.h"
#include "sema/sema.h"
#include "support/diagnostics.h"

namespace mira::core {

struct CompileOptions {
  mir::CompilerOptions compiler; // optimize + vectorize toggles
};

struct CompiledProgram {
  std::unique_ptr<frontend::TranslationUnit> unit;
  sema::SemaResult sema;
  mir::MirModule mir;
  std::vector<codegen::CodegenResult> codegen; // parallel to mir.functions
  objfile::MiraObject object;
  binast::BinaryAst binaryAst;
  std::unique_ptr<bridge::ProgramBridge> bridge;

  /// Function ids used by CALL operands (position in mir.functions).
  std::map<std::string, int> functionIds;
};

/// Compile a MiniC source string through the full pipeline. Returns
/// nullptr when diagnostics contain errors. The object is serialized and
/// re-parsed so the binary AST genuinely comes from container bytes.
std::unique_ptr<CompiledProgram> compileProgram(const std::string &source,
                                                const std::string &fileName,
                                                const CompileOptions &options,
                                                DiagnosticEngine &diags);

} // namespace mira::core
