#include "core/artifacts.h"

#include "symbolic/interner.h"

namespace mira::core {

std::shared_ptr<ProgramHandle>
ProgramHandle::live(std::shared_ptr<const CompiledProgram> program) {
  auto handle = std::shared_ptr<ProgramHandle>(new ProgramHandle());
  handle->program_ = std::move(program);
  handle->attempted_ = true;
  return handle;
}

std::shared_ptr<ProgramHandle> ProgramHandle::deferred(std::string source,
                                                       std::string fileName,
                                                       CompileOptions options) {
  auto handle = std::shared_ptr<ProgramHandle>(new ProgramHandle());
  handle->deferred_ = true;
  handle->source_ = std::move(source);
  handle->name_ = std::move(fileName);
  handle->options_ = options;
  return handle;
}

std::shared_ptr<const CompiledProgram> ProgramHandle::get(bool *compiledNow) {
  if (compiledNow)
    *compiledNow = false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!attempted_) {
    attempted_ = true;
    // Recompile = parse -> sema -> optimize -> codegen -> object ->
    // disassembly -> bridge. Model generation (the expensive stage) is
    // what the cache hit already paid for, so it is skipped here. The
    // diagnostics are discarded: the original analysis already rendered
    // them, and a source that analyzed cleanly recompiles cleanly.
    DiagnosticEngine diags;
    // Recompilation gets its own expression arena, like a full analyze:
    // symbolic churn from this one compile stays out of the calling
    // thread's default interner (nodes the program keeps stay alive
    // through their shared_ptrs after the arena dies).
    symbolic::ExprInterner interner;
    symbolic::ExprInterner::Scope scope(interner);
    program_ = compileProgram(source_, name_, options_, diags);
    if (compiledNow)
      *compiledNow = program_ != nullptr;
  }
  return program_;
}

bool ProgramHandle::materialized() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return program_ != nullptr;
}

std::optional<double> Artifacts::staticFPI(const std::string &function,
                                           const model::Env &env,
                                           std::string *error) const {
  if (!model) {
    if (error)
      *error = "no model artifact (request kArtifactModel)";
    return std::nullopt;
  }
  auto counts = model->evaluate(function, env, error);
  if (!counts)
    return std::nullopt;
  return counts->fpInstructions;
}

Artifacts analyze(const AnalysisSpec &spec) {
  DiagnosticEngine diags;
  return analyze(spec, diags);
}

Artifacts analyze(const AnalysisSpec &spec, DiagnosticEngine &diags) {
  Artifacts out;
  out.name = spec.name;
  out.requested = spec.artifacts;

  // Per-compile expression arena: every symbolic node built while
  // analyzing this spec (parse -> sema -> MIR -> model, including the
  // per-function model tasks, which re-enter this interner on their pool
  // threads) is hash-consed here, so within one analysis structurally
  // equal expressions are one node and equality is pointer identity. The
  // arena dies with the request; nodes the returned artifacts reference
  // stay alive through their shared_ptrs.
  symbolic::ExprInterner interner;
  symbolic::ExprInterner::Scope scope(interner);

  std::shared_ptr<const CompiledProgram> program =
      compileProgram(spec.source, spec.name, spec.options.compile, diags);
  if (!program) {
    out.diagnostics = diags.str();
    return out;
  }

  if (spec.artifacts & kArtifactModel) {
    // Same stage sequence the removed v1 analyzeSource ran, so models
    // and diagnostics through this path stay byte-identical to v1
    // results (pinned by tests/artifact_test.cpp).
    auto result = std::make_shared<AnalysisResult>();
    result->program = program;
    result->model = metrics::generateModel(
        *program->unit, program->sema.callGraph, *program->bridge,
        spec.options.metrics, diags, spec.options.modelPool);
    if (diags.hasErrors()) {
      out.diagnostics = diags.str();
      return out;
    }
    out.resultV1 = result;
    out.model = std::shared_ptr<const model::PerformanceModel>(
        out.resultV1, &result->model);
  }

  out.ok = true;
  out.diagnostics = diags.str();
  out.program = ProgramHandle::live(program);
  if (spec.artifacts & kArtifactCoverage)
    out.coverage = sema::computeLoopCoverage(*program->unit);
  if (spec.artifacts & kArtifactSimulation)
    out.simulation = std::make_shared<const sim::SimResult>(
        simulate(*program, spec.simulation.function, spec.simulation.args,
                 spec.simulation.options));
  return out;
}

} // namespace mira::core
