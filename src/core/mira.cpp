#include "core/mira.h"

#include <cmath>

namespace mira::core {

std::optional<double> AnalysisResult::staticFPI(const std::string &function,
                                                const model::Env &env,
                                                std::string *error) const {
  auto counts = model.evaluate(function, env, error);
  if (!counts)
    return std::nullopt;
  return counts->fpInstructions;
}

std::optional<AnalysisResult> analyzeSource(const std::string &source,
                                            const std::string &fileName,
                                            const MiraOptions &options,
                                            DiagnosticEngine &diags) {
  AnalysisResult result;
  result.program = compileProgram(source, fileName, options.compile, diags);
  if (!result.program)
    return std::nullopt;
  result.model = metrics::generateModel(
      *result.program->unit, result.program->sema.callGraph,
      *result.program->bridge, options.metrics, diags, options.modelPool);
  if (diags.hasErrors())
    return std::nullopt;
  return result;
}

sim::SimResult simulate(const CompiledProgram &program,
                        const std::string &function,
                        const std::vector<sim::Value> &args,
                        const sim::SimOptions &options) {
  sim::Simulator simulator(program.mir, program.codegen);
  return simulator.run(function, args, options);
}

double relativeError(double modeled, double measured) {
  if (measured == 0)
    return modeled == 0 ? 0 : 1;
  return std::fabs(modeled - measured) / std::fabs(measured);
}

} // namespace mira::core
