#include "core/mira.h"

#include <cmath>

namespace mira::core {

std::optional<double> AnalysisResult::staticFPI(const std::string &function,
                                                const model::Env &env,
                                                std::string *error) const {
  auto counts = model.evaluate(function, env, error);
  if (!counts)
    return std::nullopt;
  return counts->fpInstructions;
}

sim::SimResult simulate(const CompiledProgram &program,
                        const std::string &function,
                        const std::vector<sim::Value> &args,
                        const sim::SimOptions &options) {
  sim::Simulator simulator(program.mir, program.codegen);
  return simulator.run(function, args, options);
}

double relativeError(double modeled, double measured) {
  if (measured == 0)
    return modeled == 0 ? 0 : 1;
  return std::fabs(modeled - measured) / std::fabs(measured);
}

} // namespace mira::core
