#include "core/mira.h"

#include <cmath>

#include "core/artifacts.h"

namespace mira::core {

std::optional<double> AnalysisResult::staticFPI(const std::string &function,
                                                const model::Env &env,
                                                std::string *error) const {
  auto counts = model.evaluate(function, env, error);
  if (!counts)
    return std::nullopt;
  return counts->fpInstructions;
}

std::optional<AnalysisResult> analyzeSource(const std::string &source,
                                            const std::string &fileName,
                                            const MiraOptions &options,
                                            DiagnosticEngine &diags) {
  // v1 shim: forward to the artifact API with the mask v1 implied. The
  // model copy below is the shim's only overhead (Expr trees are shared
  // nodes, so it is a shallow structural copy).
  AnalysisSpec spec;
  spec.name = fileName;
  spec.source = source;
  spec.options = options;
  spec.artifacts = kArtifactModel | kArtifactDiagnostics | kArtifactProgram;
  Artifacts artifacts = analyze(spec, diags);
  if (!artifacts.ok)
    return std::nullopt;
  AnalysisResult result;
  result.program = artifacts.program->get();
  result.model = *artifacts.model;
  return result;
}

sim::SimResult simulate(const CompiledProgram &program,
                        const std::string &function,
                        const std::vector<sim::Value> &args,
                        const sim::SimOptions &options) {
  sim::Simulator simulator(program.mir, program.codegen);
  return simulator.run(function, args, options);
}

double relativeError(double modeled, double measured) {
  if (measured == 0)
    return modeled == 0 ? 0 : 1;
  return std::fabs(modeled - measured) / std::fabs(measured);
}

} // namespace mira::core
