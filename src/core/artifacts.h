/// \file
/// Artifact-oriented analysis API (v2): one request/result pair used by
/// every layer — one-shot calls, the batch driver, the disk cache, and
/// the serving daemon.
///
/// The paper's workflow is one pipeline with several consumers: model
/// evaluation, Python emission, loop-coverage statistics, and simulated
/// ground truth. The v1 surface (core::analyzeSource) was all-or-nothing
/// — it always generated the model and always handed back a live
/// compiled program — which meant a cache or daemon hit that restored
/// only the model could never answer coverage or simulation questions.
///
/// v2 turns the request inside out: an AnalysisSpec names the source and
/// declares *which artifacts* the caller needs (ArtifactMask), and the
/// returned Artifacts carries exactly those, each servable from the
/// cheapest layer that has it. The key enabling type is ProgramHandle: a
/// compiled program that is either *live* (compiled in this process) or
/// *recompile-on-demand* (a cache hit restored the model without the
/// binary; the handle re-runs parse→sema→codegen — skipping model
/// generation, the expensive stage — on first use, memoized and
/// thread-safe). Coverage additionally travels as a serialized summary
/// in cache schema v2, so a warm cache answers `mira-cli coverage`
/// without touching the compiler at all.
///
/// Layering: core::analyze() here is the uncached one-shot entry;
/// driver::BatchAnalyzer::analyzeArtifacts() adds the memory → disk →
/// recompile → full-compute fulfillment planning; the daemon serves the
/// same specs over the wire (docs/PROTOCOL.md v2). Results through any
/// path are byte-identical to a one-shot run (the invariant every layer
/// pins in tests). docs/MIGRATION.md maps v1 calls onto this API.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/mira.h"
#include "sema/ast_stats.h"

namespace mira::core {

/// Bitmask naming the artifacts an AnalysisSpec asks for. Diagnostics
/// are always rendered; the bit exists so a spec can say "diagnostics
/// only" (e.g. a syntax check). The mask never influences cache keys:
/// the same (source, options) entry serves every mask.
using ArtifactMask = std::uint8_t;
inline constexpr ArtifactMask kArtifactModel = 1u << 0;       ///< PerformanceModel
inline constexpr ArtifactMask kArtifactDiagnostics = 1u << 1; ///< rendered text
inline constexpr ArtifactMask kArtifactProgram = 1u << 2;     ///< ProgramHandle
inline constexpr ArtifactMask kArtifactCoverage = 1u << 3;    ///< LoopCoverage
inline constexpr ArtifactMask kArtifactSimulation = 1u << 4;  ///< SimResult
/// What v1 analyzeSource produced: model + diagnostics.
inline constexpr ArtifactMask kArtifactDefault =
    kArtifactModel | kArtifactDiagnostics;
inline constexpr ArtifactMask kArtifactAll =
    kArtifactModel | kArtifactDiagnostics | kArtifactProgram |
    kArtifactCoverage | kArtifactSimulation;

/// Per-call simulation request carried by AnalysisSpec when
/// kArtifactSimulation is set. Unlike every other artifact, simulation
/// results depend on these arguments and are therefore executed per
/// request (the compiled program they run on is what caching reuses).
struct SimulationArgs {
  std::string function;         ///< entry function to execute
  std::vector<sim::Value> args; ///< scalar arguments, in order
  sim::SimOptions options;      ///< fast-forward, instruction cap
};

/// One analysis request: a named source, pipeline options, and the set
/// of artifacts the caller wants. The unit of work of the whole v2
/// surface — `core::analyze`, `driver::BatchAnalyzer`, and the daemon's
/// wire requests all consume exactly this.
struct AnalysisSpec {
  std::string name = "<memory>"; ///< display / file name (never keyed)
  std::string source;            ///< MiniC source text
  MiraOptions options;           ///< pipeline options (part of the key)
  ArtifactMask artifacts = kArtifactDefault;
  SimulationArgs simulation;     ///< used when kArtifactSimulation is set
};

/// A compiled program that is either live or recompile-on-demand.
///
/// Live handles wrap a program compiled in this process. Deferred
/// handles hold (source, name, compile options) and re-run
/// parse→sema→codegen on first get() — the cheap two-thirds of the
/// pipeline, skipping model generation — so a disk- or daemon-cache hit
/// that restored only the model can still answer program-needing
/// questions (simulation, AST walks) at recompile cost instead of
/// full-analysis cost. get() is memoized and thread-safe: concurrent
/// callers compile once and share the result.
class ProgramHandle {
public:
  /// Wrap an already-compiled program.
  static std::shared_ptr<ProgramHandle>
  live(std::shared_ptr<const CompiledProgram> program);

  /// Recompile-on-demand over the original inputs.
  static std::shared_ptr<ProgramHandle>
  deferred(std::string source, std::string fileName, CompileOptions options);

  /// The program, compiling on first use for deferred handles. Null only
  /// when a deferred recompile fails — possible only if the cached entry
  /// came from a different build whose compiler accepted the source.
  /// `compiledNow`, when non-null, is set true iff THIS call performed
  /// the recompile (at most one caller per handle sees true; waiters and
  /// live handles see false) — the batch layer's recompile counter.
  std::shared_ptr<const CompiledProgram> get(bool *compiledNow = nullptr);

  /// True for recompile-on-demand handles (even after materializing).
  bool isDeferred() const { return deferred_; }
  /// True when get() would return without compiling.
  bool materialized() const;
  /// True when this deferred handle has actually recompiled.
  bool recompiled() const { return deferred_ && materialized(); }

private:
  ProgramHandle() = default;

  bool deferred_ = false;
  std::string source_, name_;
  CompileOptions options_;

  mutable std::mutex mutex_;
  bool attempted_ = false; ///< deferred compile ran (even if it failed)
  std::shared_ptr<const CompiledProgram> program_;
};

/// The result of one AnalysisSpec: every requested artifact, each
/// possibly served from a different layer. Fields for artifacts that
/// were not requested (and not free to attach) are empty.
struct Artifacts {
  std::string name;          ///< echoed AnalysisSpec::name
  bool ok = false;           ///< source compiled (and modeled, if asked)
  bool cacheHit = false;     ///< served without running the full pipeline
  bool recompiled = false;   ///< this request performed a deferred recompile
  // Per-request fulfillment provenance, set by the batch layer: each
  // flag marks the one request whose producer did the corresponding
  // disk-level work (duplicate requests sharing the value carry false),
  // so summing flags over any request set reproduces the counter deltas
  // a dedicated registry would show — without assuming the registry is
  // private to the run. This is what lets the serving daemon assemble a
  // BatchReport byte-identical to a local run while other traffic
  // shares its metrics (driver::tallyBatchStats).
  bool diskHit = false;          ///< producer restored this value from disk
  bool diskMiss = false;         ///< producer consulted the disk level and missed
  bool diskStored = false;       ///< producer persisted this value to disk
  bool coverageFromCache = false; ///< coverage answered from a cached summary
  ArtifactMask requested = 0; ///< echoed AnalysisSpec::artifacts
  /// Rendered diagnostics: warnings on success, errors on failure.
  /// Cache hits under a different name are prefixed with their producer.
  std::string diagnostics;
  /// kArtifactModel: shared with the cache and duplicate requests.
  std::shared_ptr<const model::PerformanceModel> model;
  /// kArtifactProgram: live or recompile-on-demand (see ProgramHandle).
  std::shared_ptr<ProgramHandle> program;
  /// kArtifactCoverage — also attached opportunistically when the
  /// serving layer already has it (a v2 cache entry), since that costs
  /// nothing; absent only when neither requested nor available.
  std::optional<sema::LoopCoverage> coverage;
  /// kArtifactSimulation: executed with AnalysisSpec::simulation.
  std::shared_ptr<const sim::SimResult> simulation;
  /// Compatibility view for v1 consumers (AnalysisOutcome::analysis):
  /// the same model (and program, when live) as an AnalysisResult. Null
  /// when !ok or when the model was not produced.
  std::shared_ptr<const AnalysisResult> resultV1;
  double seconds = 0; ///< wall time spent fulfilling this spec

  /// Shorthand mirroring AnalysisResult::staticFPI: evaluate FPI (the
  /// paper's headline metric) from the model artifact; nullopt when the
  /// model is absent or parameters are missing.
  std::optional<double> staticFPI(const std::string &function,
                                  const model::Env &env,
                                  std::string *error = nullptr) const;
};

/// One-shot, uncached fulfillment of `spec`: runs the pipeline stages
/// the mask needs (model generation only under kArtifactModel) and
/// returns live artifacts. The caching layers (driver::BatchAnalyzer,
/// the daemon) funnel their misses through this.
Artifacts analyze(const AnalysisSpec &spec);

/// As analyze(), but records diagnostics into a caller-owned engine too
/// (for tests and tools asserting on structured diagnostics rather than
/// the rendered Artifacts::diagnostics string).
Artifacts analyze(const AnalysisSpec &spec, DiagnosticEngine &diags);

} // namespace mira::core
