// Multivariate polynomials with rational coefficients.
//
// Closed-form iteration counts of affine loop nests are (quasi-)polynomials
// in the loop parameters. The polyhedral counter builds them by repeated
// Faulhaber summation (summation.h) and converts the result back to an
// integer Expr via a common denominator and ExactDiv.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "symbolic/expr.h"
#include "symbolic/rational.h"

namespace mira::symbolic {

/// A monomial: product of variables raised to positive powers, e.g. x^2*y.
/// Canonical form: sorted by variable name, exponents >= 1.
using Monomial = std::vector<std::pair<std::string, int>>;

/// Polynomial = sum of coeff * monomial. The empty monomial is the constant
/// term. Zero coefficients are never stored.
class Polynomial {
public:
  Polynomial() = default;
  explicit Polynomial(Rational constant);
  static Polynomial variable(const std::string &name);
  static Polynomial constant(Rational value) { return Polynomial(value); }

  bool isZero() const { return terms_.empty(); }
  bool isConstant() const;
  /// Constant value (requires isConstant()).
  Rational constantValue() const;

  /// Total degree; 0 for constants and the zero polynomial.
  int degree() const;
  /// Highest exponent of `var` across all terms.
  int degreeIn(const std::string &var) const;

  friend Polynomial operator+(const Polynomial &a, const Polynomial &b);
  friend Polynomial operator-(const Polynomial &a, const Polynomial &b);
  friend Polynomial operator*(const Polynomial &a, const Polynomial &b);
  Polynomial operator-() const;
  Polynomial &operator+=(const Polynomial &o) { return *this = *this + o; }
  Polynomial &operator-=(const Polynomial &o) { return *this = *this - o; }
  Polynomial &operator*=(const Polynomial &o) { return *this = *this * o; }

  Polynomial scaled(const Rational &factor) const;
  Polynomial pow(int exponent) const;

  /// Replace `var` by another polynomial.
  Polynomial substitute(const std::string &var,
                        const Polynomial &replacement) const;

  /// Rewrite as a univariate polynomial in `var`: index k holds the
  /// coefficient polynomial (free of `var`) of var^k.
  std::vector<Polynomial> coefficientsIn(const std::string &var) const;

  /// Exact evaluation; nullopt when a parameter is unbound or the result
  /// is not an integer.
  std::optional<std::int64_t> evaluate(const Env &env) const;
  std::optional<Rational> evaluateRational(const Env &env) const;

  /// Convert to an integer Expr: multiply through by the coefficient LCM
  /// and wrap in ExactDiv. Integer-valued polynomials (all counts are)
  /// evaluate exactly.
  Expr toExpr() const;

  /// Parse an Expr into a polynomial; nullopt for non-polynomial kinds
  /// (FloorDiv, Mod, Min, Max, Sum).
  static std::optional<Polynomial> fromExpr(const Expr &expr);

  std::string str() const;

  const std::map<Monomial, Rational> &terms() const { return terms_; }

private:
  std::map<Monomial, Rational> terms_;

  void addTerm(const Monomial &m, const Rational &c);
};

} // namespace mira::symbolic
