// Symbolic integer expressions — the language of Mira's parametric models.
//
// The paper's generated Python models contain parametric expressions such
// as iteration counts depending on unresolved program inputs (Sec. III-C).
// Expr is an immutable DAG of integer-valued operations over named
// parameters; it can be evaluated with concrete bindings, printed as
// Python source (for the emitted model), and printed for debugging.
//
// Supported operations: integer constants, parameters, n-ary add/mul,
// floor division, exact division (division known to be remainder-free,
// used when converting rational-coefficient closed forms back to integer
// expressions), modulus, min/max, and a lazy bounded summation node used
// when no closed form exists.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "symbolic/rational.h"

namespace mira::symbolic {

enum class ExprKind {
  IntConst,
  Param,
  Add,      // n-ary sum
  Mul,      // n-ary product
  FloorDiv, // floor(a / b)
  ExactDiv, // a / b where b | a is guaranteed (checked at evaluation)
  Mod,      // a mod b, mathematical (result in [0, b))
  Min,
  Max,
  Sum, // Sum(var, lo, hi, body): sum of body for var in [lo, hi]
};

class ExprNode;
using ExprNodeRef = std::shared_ptr<const ExprNode>;

/// Environment binding parameter names to concrete integer values.
using Env = std::map<std::string, std::int64_t>;

/// Value-semantic handle to an immutable expression node.
class Expr {
public:
  /// Default-constructed Expr is the constant 0.
  Expr();

  // --- constructors -----------------------------------------------------
  static Expr intConst(std::int64_t value);
  static Expr param(std::string name);
  static Expr add(std::vector<Expr> operands);
  static Expr mul(std::vector<Expr> operands);
  static Expr floorDiv(Expr a, Expr b);
  static Expr exactDiv(Expr a, Expr b);
  static Expr mod(Expr a, Expr b);
  static Expr min(Expr a, Expr b);
  static Expr max(Expr a, Expr b);
  /// Lazy sum: body may reference `var` as a parameter. Empty ranges
  /// (hi < lo) evaluate to 0.
  static Expr sum(std::string var, Expr lo, Expr hi, Expr body);

  /// Wrap an already-built node, bypassing the canonicalizing builders.
  /// For deserialization (model/serialize.h) only: the node must come
  /// from a tree that was canonical when serialized, so re-canonicalizing
  /// would be at best a no-op and at worst a source of byte-level drift
  /// between cached and fresh models. The tree IS re-entered into the
  /// calling thread's ExprInterner (structure-preserving, so serialized
  /// bytes cannot drift) to restore node sharing and the cached
  /// hash/order-key that deserialized nodes lack.
  static Expr fromNode(ExprNodeRef node);

  friend Expr operator+(const Expr &a, const Expr &b);
  friend Expr operator-(const Expr &a, const Expr &b);
  friend Expr operator*(const Expr &a, const Expr &b);
  Expr operator-() const;
  Expr &operator+=(const Expr &o) { return *this = *this + o; }
  Expr &operator-=(const Expr &o) { return *this = *this - o; }
  Expr &operator*=(const Expr &o) { return *this = *this * o; }

  // --- inspection --------------------------------------------------------
  ExprKind kind() const;
  bool isIntConst() const;
  bool isIntConst(std::int64_t value) const;
  /// Value if this is a constant.
  std::optional<std::int64_t> constValue() const;
  /// All parameter names referenced (excluding Sum-bound variables).
  std::set<std::string> parameters() const;
  const ExprNode &node() const { return *node_; }

  /// Structural equality (after builder-level canonicalization).
  /// Pointer identity for nodes interned in the same ExprInterner — the
  /// common case, since hash-consing gives every structure one canonical
  /// node per interner. Falls back to the precomputed structural hash
  /// and a pointer-shortcutting deep walk across interners.
  bool equals(const Expr &other) const;

  // --- evaluation & printing ---------------------------------------------
  /// Evaluate with all parameters bound; returns nullopt if a parameter is
  /// missing or an ExactDiv has a remainder (which indicates a bug in the
  /// closed-form producer).
  std::optional<std::int64_t> evaluate(const Env &env) const;

  /// Substitute a parameter by an expression (used to compose models).
  Expr substitute(const std::string &name, const Expr &replacement) const;

  /// Human-readable form, e.g. "(N*(N + 1))/2".
  std::string str() const;
  /// Python source form for the emitted model (floor div -> '//').
  std::string toPython() const;

private:
  explicit Expr(ExprNodeRef node) : node_(std::move(node)) {}

  ExprNodeRef node_;
};

/// Internal node. Exposed so analyses (polynomial conversion) can walk the
/// tree; construct only through Expr builders.
class ExprNode {
public:
  ExprKind kind;
  std::int64_t value = 0;             // IntConst
  std::string name;                   // Param, Sum bound variable
  std::vector<ExprNodeRef> operands;  // others

  // Hash-consing metadata, filled once by ExprInterner when the node is
  // interned (zero/empty on raw deserialized nodes until fromNode
  // re-enters them). `hash` is the structural hash; `key` caches the
  // canonical ordering key the builders sort commutative operand lists
  // by, in the exact historical format ("#3", "pN", "A(pN,#1,)", ...)
  // so interning cannot move bytes in any serialized output. `ownerId`
  // identifies the interner that owns the node (ids are never reused,
  // so a dead interner's nodes can never be mistaken for a live one's).
  std::uint64_t hash = 0;
  std::string key;
  std::uint64_t ownerId = 0;

  ExprNode(ExprKind k) : kind(k) {}
};

} // namespace mira::symbolic
