#include "symbolic/polynomial.h"

#include <algorithm>

namespace mira::symbolic {

Polynomial::Polynomial(Rational constant) {
  if (!constant.isZero())
    terms_[Monomial{}] = constant;
}

Polynomial Polynomial::variable(const std::string &name) {
  Polynomial p;
  p.terms_[Monomial{{name, 1}}] = Rational(1);
  return p;
}

bool Polynomial::isConstant() const {
  return terms_.empty() ||
         (terms_.size() == 1 && terms_.begin()->first.empty());
}

Rational Polynomial::constantValue() const {
  if (terms_.empty())
    return Rational(0);
  return terms_.begin()->second;
}

int Polynomial::degree() const {
  int d = 0;
  for (const auto &[m, c] : terms_) {
    int t = 0;
    for (const auto &[v, e] : m)
      t += e;
    d = std::max(d, t);
  }
  return d;
}

int Polynomial::degreeIn(const std::string &var) const {
  int d = 0;
  for (const auto &[m, c] : terms_)
    for (const auto &[v, e] : m)
      if (v == var)
        d = std::max(d, e);
  return d;
}

void Polynomial::addTerm(const Monomial &m, const Rational &c) {
  if (c.isZero())
    return;
  auto it = terms_.find(m);
  if (it == terms_.end()) {
    terms_[m] = c;
  } else {
    it->second += c;
    if (it->second.isZero())
      terms_.erase(it);
  }
}

Polynomial operator+(const Polynomial &a, const Polynomial &b) {
  Polynomial out = a;
  for (const auto &[m, c] : b.terms_)
    out.addTerm(m, c);
  return out;
}

Polynomial operator-(const Polynomial &a, const Polynomial &b) {
  return a + (-b);
}

Polynomial Polynomial::operator-() const {
  Polynomial out;
  for (const auto &[m, c] : terms_)
    out.terms_[m] = -c;
  return out;
}

namespace {
Monomial mergeMonomials(const Monomial &a, const Monomial &b) {
  Monomial out;
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].first < b[j].first)) {
      out.push_back(a[i++]);
    } else if (i == a.size() || b[j].first < a[i].first) {
      out.push_back(b[j++]);
    } else {
      out.emplace_back(a[i].first, a[i].second + b[j].second);
      ++i;
      ++j;
    }
  }
  return out;
}
} // namespace

Polynomial operator*(const Polynomial &a, const Polynomial &b) {
  Polynomial out;
  for (const auto &[ma, ca] : a.terms_)
    for (const auto &[mb, cb] : b.terms_)
      out.addTerm(mergeMonomials(ma, mb), ca * cb);
  return out;
}

Polynomial Polynomial::scaled(const Rational &factor) const {
  Polynomial out;
  if (factor.isZero())
    return out;
  for (const auto &[m, c] : terms_)
    out.terms_[m] = c * factor;
  return out;
}

Polynomial Polynomial::pow(int exponent) const {
  Polynomial result{Rational(1)};
  for (int i = 0; i < exponent; ++i)
    result *= *this;
  return result;
}

Polynomial Polynomial::substitute(const std::string &var,
                                  const Polynomial &replacement) const {
  Polynomial out;
  for (const auto &[m, c] : terms_) {
    Polynomial term{c};
    for (const auto &[v, e] : m) {
      if (v == var)
        term *= replacement.pow(e);
      else
        term *= Polynomial::variable(v).pow(e);
    }
    out += term;
  }
  return out;
}

std::vector<Polynomial> Polynomial::coefficientsIn(
    const std::string &var) const {
  std::vector<Polynomial> out(static_cast<std::size_t>(degreeIn(var)) + 1);
  for (const auto &[m, c] : terms_) {
    int power = 0;
    Monomial rest;
    for (const auto &[v, e] : m) {
      if (v == var)
        power = e;
      else
        rest.push_back({v, e});
    }
    Polynomial piece;
    piece.addTerm(rest, c);
    out[static_cast<std::size_t>(power)] += piece;
  }
  return out;
}

std::optional<Rational> Polynomial::evaluateRational(const Env &env) const {
  try {
    Rational acc(0);
    for (const auto &[m, c] : terms_) {
      Rational term = c;
      for (const auto &[v, e] : m) {
        auto it = env.find(v);
        if (it == env.end())
          return std::nullopt;
        for (int k = 0; k < e; ++k)
          term *= Rational(it->second);
      }
      acc += term;
    }
    return acc;
  } catch (const ArithmeticError &) {
    return std::nullopt;
  }
}

std::optional<std::int64_t> Polynomial::evaluate(const Env &env) const {
  auto r = evaluateRational(env);
  if (!r || !r->isInteger())
    return std::nullopt;
  return r->asInteger();
}

Expr Polynomial::toExpr() const {
  if (terms_.empty())
    return Expr::intConst(0);
  // Common denominator.
  std::int64_t lcm = 1;
  for (const auto &[m, c] : terms_) {
    std::int64_t d = c.den();
    lcm = checkedMul(lcm / gcd64(lcm, d), d);
  }
  std::vector<Expr> sum;
  for (const auto &[m, c] : terms_) {
    std::vector<Expr> factors;
    factors.push_back(Expr::intConst(checkedMul(c.num(), lcm / c.den())));
    for (const auto &[v, e] : m)
      for (int k = 0; k < e; ++k)
        factors.push_back(Expr::param(v));
    sum.push_back(Expr::mul(std::move(factors)));
  }
  Expr numerator = Expr::add(std::move(sum));
  if (lcm == 1)
    return numerator;
  return Expr::exactDiv(numerator, Expr::intConst(lcm));
}

namespace {
std::optional<Polynomial> polyFromNode(const ExprNode &node) {
  switch (node.kind) {
  case ExprKind::IntConst:
    return Polynomial{Rational(node.value)};
  case ExprKind::Param:
    return Polynomial::variable(node.name);
  case ExprKind::Add: {
    Polynomial acc;
    for (const auto &o : node.operands) {
      auto p = polyFromNode(*o);
      if (!p)
        return std::nullopt;
      acc += *p;
    }
    return acc;
  }
  case ExprKind::Mul: {
    Polynomial acc{Rational(1)};
    for (const auto &o : node.operands) {
      auto p = polyFromNode(*o);
      if (!p)
        return std::nullopt;
      acc *= *p;
    }
    return acc;
  }
  case ExprKind::ExactDiv: {
    auto a = polyFromNode(*node.operands[0]);
    auto b = polyFromNode(*node.operands[1]);
    if (!a || !b || !b->isConstant() || b->constantValue().isZero())
      return std::nullopt;
    return a->scaled(Rational(1) / b->constantValue());
  }
  default:
    return std::nullopt;
  }
}
} // namespace

std::optional<Polynomial> Polynomial::fromExpr(const Expr &expr) {
  return polyFromNode(expr.node());
}

std::string Polynomial::str() const {
  if (terms_.empty())
    return "0";
  std::string out;
  bool first = true;
  for (const auto &[m, c] : terms_) {
    if (!first)
      out += " + ";
    first = false;
    out += c.str();
    for (const auto &[v, e] : m) {
      out += "*" + v;
      if (e > 1)
        out += "^" + std::to_string(e);
    }
  }
  return out;
}

} // namespace mira::symbolic
