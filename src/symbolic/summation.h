// Closed-form summation of polynomials over integer ranges (Faulhaber).
//
// The polyhedral counter reduces "number of lattice points in an affine
// loop nest" to nested sums: count(level d) = sum_{i=lb..ub} count(d+1),
// where count(d+1) is a polynomial in i and the outer parameters. Faulhaber
// formulas give Sum_{i=1}^{n} i^k as a degree-(k+1) polynomial, so each
// level of summation stays polynomial — the parametric model the paper
// generates for affine SCoPs.
//
// Domain note: the closed form Sum_{i=L}^{U} P(i) = F(U) - F(L-1) is exact
// whenever U >= L-1 (including the empty range U = L-1). Callers must
// guarantee non-degenerate ranges (the polyhedral layer checks emptiness
// separately and clamps numeric evaluation at zero).
#pragma once

#include "symbolic/polynomial.h"

namespace mira::symbolic {

/// Bernoulli numbers with the B1 = +1/2 convention, as exact rationals.
/// Index 0..max supported (kMaxFaulhaberDegree).
inline constexpr int kMaxFaulhaberDegree = 16;
Rational bernoulliPlus(int index);

/// Faulhaber: the polynomial S_k(n) = Sum_{i=1}^{n} i^k in variable `var`.
/// k must be in [0, kMaxFaulhaberDegree].
Polynomial faulhaber(int k, const std::string &var);

/// Antidifference: F(n) = Sum_{i=1}^{n} P(i) as a polynomial in `var`,
/// where P is viewed as a polynomial in `iterVar` (other variables are
/// symbolic parameters carried through).
Polynomial prefixSum(const Polynomial &poly, const std::string &iterVar,
                     const std::string &var);

/// Sum_{iterVar = lo}^{hi} P(iterVar), where lo/hi are polynomials in outer
/// variables. Exact for hi >= lo-1 (see domain note above).
Polynomial sumOverRange(const Polynomial &poly, const std::string &iterVar,
                        const Polynomial &lo, const Polynomial &hi);

} // namespace mira::symbolic
