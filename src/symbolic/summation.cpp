#include "symbolic/summation.h"

#include <array>
#include <cassert>

namespace mira::symbolic {

namespace {

/// Compute Bernoulli numbers (B- convention) by the standard recurrence
///   Sum_{j=0}^{m} C(m+1, j) B_j = 0 for m >= 1, B_0 = 1,
/// then flip B1 to +1/2 (the only difference between conventions).
const std::array<Rational, kMaxFaulhaberDegree + 1> &bernoulliTable() {
  static std::array<Rational, kMaxFaulhaberDegree + 1> table = [] {
    std::array<Rational, kMaxFaulhaberDegree + 1> b{};
    b[0] = Rational(1);
    for (int m = 1; m <= kMaxFaulhaberDegree; ++m) {
      Rational acc(0);
      for (int j = 0; j < m; ++j)
        acc += Rational(binomial(m + 1, j)) * b[static_cast<std::size_t>(j)];
      b[static_cast<std::size_t>(m)] =
          -acc / Rational(binomial(m + 1, m));
    }
    b[1] = Rational(1, 2); // switch to the B+ convention
    return b;
  }();
  return table;
}

} // namespace

Rational bernoulliPlus(int index) {
  assert(index >= 0 && index <= kMaxFaulhaberDegree);
  return bernoulliTable()[static_cast<std::size_t>(index)];
}

Polynomial faulhaber(int k, const std::string &var) {
  assert(k >= 0 && k <= kMaxFaulhaberDegree);
  // S_k(n) = 1/(k+1) * Sum_{j=0}^{k} C(k+1, j) * B+_j * n^{k+1-j}
  Polynomial n = Polynomial::variable(var);
  Polynomial acc;
  for (int j = 0; j <= k; ++j) {
    Rational coeff = Rational(binomial(k + 1, j)) * bernoulliPlus(j);
    if (coeff.isZero())
      continue;
    acc += n.pow(k + 1 - j).scaled(coeff);
  }
  return acc.scaled(Rational(1, static_cast<std::int64_t>(k) + 1));
}

Polynomial prefixSum(const Polynomial &poly, const std::string &iterVar,
                     const std::string &var) {
  std::vector<Polynomial> coeffs = poly.coefficientsIn(iterVar);
  Polynomial acc;
  for (std::size_t k = 0; k < coeffs.size(); ++k) {
    if (coeffs[k].isZero())
      continue;
    acc += coeffs[k] * faulhaber(static_cast<int>(k), var);
  }
  return acc;
}

Polynomial sumOverRange(const Polynomial &poly, const std::string &iterVar,
                        const Polynomial &lo, const Polynomial &hi) {
  // F(n) = Sum_{i=1}^{n} P(i); answer = F(hi) - F(lo - 1).
  // Use a fresh variable name that cannot collide with user parameters.
  const std::string tmp = "__faulhaber_n";
  Polynomial f = prefixSum(poly, iterVar, tmp);
  Polynomial atHi = f.substitute(tmp, hi);
  Polynomial atLoMinus1 =
      f.substitute(tmp, lo - Polynomial{Rational(1)});
  return atHi - atLoMinus1;
}

} // namespace mira::symbolic
