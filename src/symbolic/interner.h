// Hash-consing arena for symbolic expression nodes.
//
// The symbolic layer used to allocate one heap ExprNode per construction
// and compare expressions by re-serializing whole subtrees to strings
// (orderKey) — O(subtree) work on every equals() and every canonicalizing
// sort. ExprInterner replaces that with structural interning: each node
// is hashed at construction and looked up in a table, so one canonical
// node exists per structure. Within one interner, structural equality IS
// pointer identity; across interners (a model restored from cache
// compared against a freshly built one) equality falls back to the
// precomputed structural hash and a pointer-shortcutting deep walk —
// never to string building.
//
// Scoping: an interner is installed for the current thread with an RAII
// Scope. The driver installs one per compile (core::analyze) and the
// per-function model tasks re-enter the same compile's interner on their
// pool threads, so a compile's node churn is confined to one arena that
// dies with the request instead of fragmenting the global heap. Code
// running outside any scope (tests, ad-hoc Expr math) falls back to a
// thread-local default interner. Because a node's canonical form caches
// its order key, parameter and bound-variable name strings are stored
// once per unique node — name interning falls out of node interning.
//
// Thread-safety: intern() is internally synchronized (one mutex per
// interner), so a per-compile interner may be shared by the model pool's
// worker tasks. The returned nodes are immutable and shared_ptr-owned:
// they outlive the interner wherever models still reference them.
//
// Counters: process-wide hit/miss/node tallies are exported as
// mira_intern_{hits,misses,nodes} through core::MetricsRegistry (the
// server publishes them on every metrics render; bench_batch_throughput
// prints them after its cold phase).
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "symbolic/expr.h"

namespace mira::symbolic {

/// Process-wide interning tallies (sums over every interner ever used).
struct InternStats {
  std::uint64_t hits = 0;   ///< intern() calls answered by an existing node
  std::uint64_t misses = 0; ///< intern() calls that created a new node
  std::uint64_t nodes = 0;  ///< unique nodes currently alive in tables
};

/// A hash-consing arena: one canonical ExprNode per structure.
class ExprInterner {
public:
  ExprInterner();
  ~ExprInterner();
  ExprInterner(const ExprInterner &) = delete;
  ExprInterner &operator=(const ExprInterner &) = delete;

  /// Canonicalize a node described by its fields. `operands` must already
  /// be interned in THIS interner (builders intern bottom-up; use
  /// reintern() for foreign trees). Returns the one canonical node for
  /// the structure, creating it (with its structural hash and cached
  /// order key) on first sight.
  ExprNodeRef intern(ExprKind kind, std::int64_t value, std::string name,
                     std::vector<ExprNodeRef> operands);

  /// Canonicalize an existing tree (deserialized or built under another
  /// interner) bottom-up, preserving its structure byte-for-byte — the
  /// re-entry path Expr::fromNode uses so cached models dedup without
  /// serialization drift. O(1) for nodes this interner already owns.
  ExprNodeRef reintern(const ExprNodeRef &node);

  /// Unique nodes owned by this interner.
  std::size_t size() const;

  /// Installs an interner as the calling thread's current one for the
  /// lifetime of the object (nestable; restores the previous on exit).
  class Scope {
  public:
    explicit Scope(ExprInterner &interner);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    ExprInterner *previous_;
  };

  /// The calling thread's current interner: the innermost live Scope's,
  /// or a thread-local default for code running outside any scope.
  static ExprInterner &current();

  /// Process-wide tallies across every interner (relaxed reads).
  static InternStats globalStats();

private:
  ExprNodeRef internLocked(ExprKind kind, std::int64_t value,
                           std::string name,
                           std::vector<ExprNodeRef> operands);

  mutable std::mutex mutex_;
  // Never-reused process-unique id stamped on owned nodes, so a node
  // from a destroyed interner can never alias a live one (no ABA on a
  // recycled `this` address).
  const std::uint64_t id_;
  // hash -> structurally distinct nodes sharing it (collision chain).
  std::unordered_map<std::uint64_t, std::vector<ExprNodeRef>> table_;
};

} // namespace mira::symbolic
