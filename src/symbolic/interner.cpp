#include "symbolic/interner.h"

#include <atomic>
#include <utility>

namespace mira::symbolic {

namespace {

// Process-wide tallies. Relaxed: the counters are monitoring data
// (mira_intern_*), not synchronization.
std::atomic<std::uint64_t> gHits{0};
std::atomic<std::uint64_t> gMisses{0};
std::atomic<std::uint64_t> gNodes{0};

std::atomic<std::uint64_t> gNextInternerId{1};

// Innermost live Scope's interner for this thread, if any.
thread_local ExprInterner *tCurrent = nullptr;

std::uint64_t hashCombine(std::uint64_t seed, std::uint64_t v) {
  // boost::hash_combine recipe widened to 64 bits.
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

std::uint64_t hashString(const std::string &s) {
  // FNV-1a.
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Shallow structural hash: operands contribute their cached hashes, so
/// hashing a node is O(fields), not O(subtree).
std::uint64_t hashNode(ExprKind kind, std::int64_t value,
                       const std::string &name,
                       const std::vector<ExprNodeRef> &operands) {
  std::uint64_t h = hashCombine(0x6d697261 /* 'mira' */,
                                static_cast<std::uint64_t>(kind));
  h = hashCombine(h, static_cast<std::uint64_t>(value));
  h = hashCombine(h, hashString(name));
  h = hashCombine(h, operands.size());
  for (const ExprNodeRef &op : operands)
    h = hashCombine(h, op->hash);
  return h;
}

/// The canonical ordering key, byte-identical to the recursive string
/// builder the canonicalizing sorts used before interning — computed
/// once per unique node from the operands' cached keys.
std::string makeKey(ExprKind kind, std::int64_t value,
                    const std::string &name,
                    const std::vector<ExprNodeRef> &operands) {
  auto list = [&operands] {
    std::string s;
    for (const ExprNodeRef &op : operands) {
      s += op->key;
      s += ',';
    }
    return s;
  };
  switch (kind) {
  case ExprKind::IntConst:
    return "#" + std::to_string(value);
  case ExprKind::Param:
    return "p" + name;
  case ExprKind::Add:
    return "A(" + list() + ")";
  case ExprKind::Mul:
    return "M(" + list() + ")";
  case ExprKind::FloorDiv:
    return "F(" + list() + ")";
  case ExprKind::ExactDiv:
    return "E(" + list() + ")";
  case ExprKind::Mod:
    return "%(" + list() + ")";
  case ExprKind::Min:
    return "m(" + list() + ")";
  case ExprKind::Max:
    return "X(" + list() + ")";
  case ExprKind::Sum:
    return "S" + name + "(" + list() + ")";
  }
  return "?";
}

} // namespace

ExprInterner::ExprInterner()
    : id_(gNextInternerId.fetch_add(1, std::memory_order_relaxed)) {}

ExprInterner::~ExprInterner() {
  std::size_t owned = 0;
  for (const auto &[hash, bucket] : table_)
    owned += bucket.size();
  gNodes.fetch_sub(owned, std::memory_order_relaxed);
}

ExprNodeRef ExprInterner::intern(ExprKind kind, std::int64_t value,
                                 std::string name,
                                 std::vector<ExprNodeRef> operands) {
  // Operands interned elsewhere (an Expr built under another scope, a
  // model restored from cache) are pulled into this table first so the
  // shallow pointer comparison below stays sound.
  for (ExprNodeRef &op : operands)
    if (op->ownerId != id_)
      op = reintern(op);
  std::lock_guard<std::mutex> lock(mutex_);
  return internLocked(kind, value, std::move(name), std::move(operands));
}

ExprNodeRef ExprInterner::reintern(const ExprNodeRef &node) {
  if (!node || node->ownerId == id_)
    return node;
  std::vector<ExprNodeRef> operands;
  operands.reserve(node->operands.size());
  for (const ExprNodeRef &op : node->operands)
    operands.push_back(reintern(op));
  std::lock_guard<std::mutex> lock(mutex_);
  return internLocked(node->kind, node->value, node->name,
                      std::move(operands));
}

ExprNodeRef ExprInterner::internLocked(ExprKind kind, std::int64_t value,
                                       std::string name,
                                       std::vector<ExprNodeRef> operands) {
  const std::uint64_t hash = hashNode(kind, value, name, operands);
  std::vector<ExprNodeRef> &bucket = table_[hash];
  for (const ExprNodeRef &candidate : bucket) {
    if (candidate->kind != kind || candidate->value != value ||
        candidate->name != name ||
        candidate->operands.size() != operands.size())
      continue;
    bool same = true;
    // Children are canonical in this interner, so pointer comparison IS
    // structural comparison.
    for (std::size_t i = 0; i < operands.size(); ++i) {
      if (candidate->operands[i] != operands[i]) {
        same = false;
        break;
      }
    }
    if (same) {
      gHits.fetch_add(1, std::memory_order_relaxed);
      return candidate;
    }
  }
  auto node = std::make_shared<ExprNode>(kind);
  node->value = value;
  node->name = std::move(name);
  node->operands = std::move(operands);
  node->hash = hash;
  node->key = makeKey(kind, value, node->name, node->operands);
  node->ownerId = id_;
  bucket.push_back(node);
  gMisses.fetch_add(1, std::memory_order_relaxed);
  gNodes.fetch_add(1, std::memory_order_relaxed);
  return node;
}

std::size_t ExprInterner::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t owned = 0;
  for (const auto &[hash, bucket] : table_)
    owned += bucket.size();
  return owned;
}

ExprInterner::Scope::Scope(ExprInterner &interner) : previous_(tCurrent) {
  tCurrent = &interner;
}

ExprInterner::Scope::~Scope() { tCurrent = previous_; }

ExprInterner &ExprInterner::current() {
  if (tCurrent)
    return *tCurrent;
  // Fallback arena for code running outside any Scope (tests, ad-hoc
  // Expr math). Thread-local so no cross-thread contention and the
  // table dies with the thread instead of growing for process lifetime.
  thread_local ExprInterner tDefault;
  return tDefault;
}

InternStats ExprInterner::globalStats() {
  InternStats stats;
  stats.hits = gHits.load(std::memory_order_relaxed);
  stats.misses = gMisses.load(std::memory_order_relaxed);
  stats.nodes = gNodes.load(std::memory_order_relaxed);
  return stats;
}

} // namespace mira::symbolic
