#include "symbolic/expr.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "symbolic/interner.h"

namespace mira::symbolic {

namespace {

/// All builders construct through the calling thread's interner, so one
/// canonical node exists per structure and every node carries its
/// precomputed hash and ordering key.
ExprNodeRef internNode(ExprKind kind, std::int64_t value, std::string name,
                       std::vector<ExprNodeRef> operands) {
  return ExprInterner::current().intern(kind, value, std::move(name),
                                        std::move(operands));
}

ExprNodeRef makeConst(std::int64_t v) {
  return internNode(ExprKind::IntConst, v, {}, {});
}

bool isConst(const ExprNodeRef &n, std::int64_t v) {
  return n->kind == ExprKind::IntConst && n->value == v;
}

/// Canonical ordering for commutative operand lists: the interner caches
/// the historical string key on every node, so comparison is a string
/// compare, never a subtree walk.
bool keyLess(const ExprNodeRef &a, const ExprNodeRef &b) {
  return a->key < b->key;
}

} // namespace

Expr::Expr() : node_(makeConst(0)) {}

Expr Expr::intConst(std::int64_t value) { return Expr(makeConst(value)); }

Expr Expr::param(std::string name) {
  return Expr(internNode(ExprKind::Param, 0, std::move(name), {}));
}

Expr Expr::add(std::vector<Expr> operands) {
  ExprInterner &interner = ExprInterner::current();
  std::vector<ExprNodeRef> flat;
  std::int64_t constant = 0;
  // Absorbed nodes are canonicalized into the current interner so the
  // like-term merge below can key on node identity.
  std::function<void(const ExprNodeRef &)> absorb =
      [&](const ExprNodeRef &n) {
        if (n->kind == ExprKind::IntConst) {
          try {
            constant = checkedAdd(constant, n->value);
          } catch (const ArithmeticError &) {
            // Folding would overflow int64; keep the constant symbolic.
            // evaluate() reports the overflow as nullopt at use time —
            // construction itself must not throw.
            flat.push_back(interner.reintern(n));
          }
        } else if (n->kind == ExprKind::Add) {
          for (const auto &o : n->operands)
            absorb(o);
        } else {
          flat.push_back(interner.reintern(n));
        }
      };
  for (const Expr &e : operands)
    absorb(e.node_);

  // Combine like terms: each term is (coeff, residual factors). Terms are
  // either Param/other nodes (coeff 1) or Mul nodes with a leading const.
  // Factors are canonical nodes in the current interner, so "same
  // residual" is pointer-vector equality — no string keys, and no false
  // merges when param names contain key metacharacters.
  struct Term {
    std::int64_t coeff;
    std::vector<ExprNodeRef> factors; // non-const factors, sorted
  };
  std::vector<Term> terms;
  for (const auto &n : flat) {
    Term t;
    t.coeff = 1;
    if (n->kind == ExprKind::Mul) {
      for (const auto &f : n->operands) {
        if (f->kind == ExprKind::IntConst) {
          try {
            t.coeff = checkedMul(t.coeff, f->value);
          } catch (const ArithmeticError &) {
            t.factors.push_back(f); // overflow: keep the const as a factor
          }
        } else {
          t.factors.push_back(f);
        }
      }
    } else {
      t.factors.push_back(n);
    }
    bool merged = false;
    for (Term &prev : terms) {
      if (prev.factors == t.factors) {
        try {
          prev.coeff = checkedAdd(prev.coeff, t.coeff);
          merged = true;
        } catch (const ArithmeticError &) {
          // Coefficient sum overflows; keep the terms separate.
        }
        break;
      }
    }
    if (!merged)
      terms.push_back(std::move(t));
  }

  std::vector<ExprNodeRef> result;
  for (Term &t : terms) {
    if (t.coeff == 0)
      continue;
    if (t.coeff == 1 && t.factors.size() == 1) {
      result.push_back(t.factors[0]);
    } else {
      std::vector<Expr> factors;
      if (t.coeff != 1)
        factors.push_back(Expr::intConst(t.coeff));
      for (auto &f : t.factors)
        factors.push_back(Expr(f));
      result.push_back(Expr::mul(std::move(factors)).node_);
    }
  }

  std::sort(result.begin(), result.end(), keyLess);
  if (constant != 0 || result.empty())
    result.push_back(makeConst(constant));
  if (result.size() == 1)
    return Expr(result[0]);
  return Expr(internNode(ExprKind::Add, 0, {}, std::move(result)));
}

Expr Expr::mul(std::vector<Expr> operands) {
  ExprInterner &interner = ExprInterner::current();
  std::vector<ExprNodeRef> flat;
  std::int64_t constant = 1;
  std::function<void(const ExprNodeRef &)> absorb =
      [&](const ExprNodeRef &n) {
        if (n->kind == ExprKind::IntConst) {
          try {
            constant = checkedMul(constant, n->value);
          } catch (const ArithmeticError &) {
            flat.push_back(interner.reintern(n));
          }
        } else if (n->kind == ExprKind::Mul) {
          for (const auto &o : n->operands)
            absorb(o);
        } else {
          flat.push_back(interner.reintern(n));
        }
      };
  for (const Expr &e : operands)
    absorb(e.node_);

  if (constant == 0)
    return Expr::intConst(0);

  std::sort(flat.begin(), flat.end(), keyLess);
  std::vector<ExprNodeRef> result;
  if (constant != 1 || flat.empty())
    result.push_back(makeConst(constant));
  result.insert(result.end(), flat.begin(), flat.end());
  if (result.size() == 1)
    return Expr(result[0]);
  return Expr(internNode(ExprKind::Mul, 0, {}, std::move(result)));
}

Expr Expr::floorDiv(Expr a, Expr b) {
  if (b.node_->kind == ExprKind::IntConst &&
      a.node_->kind == ExprKind::IntConst) {
    try {
      return Expr::intConst(
          mira::symbolic::floorDiv(a.node_->value, b.node_->value));
    } catch (const ArithmeticError &) {
      // Zero divisor (or INT64_MIN / -1): the fold is undefined, but
      // construction must not throw — build the symbolic node and let
      // evaluate() report nullopt, per its documented contract.
    }
  }
  if (isConst(b.node_, 1))
    return a;
  return Expr(internNode(ExprKind::FloorDiv, 0, {}, {a.node_, b.node_}));
}

Expr Expr::exactDiv(Expr a, Expr b) {
  if (b.node_->kind == ExprKind::IntConst &&
      a.node_->kind == ExprKind::IntConst && b.node_->value != 0 &&
      !(a.node_->value == std::numeric_limits<std::int64_t>::min() &&
        b.node_->value == -1) &&
      a.node_->value % b.node_->value == 0)
    return Expr::intConst(a.node_->value / b.node_->value);
  if (isConst(b.node_, 1))
    return a;
  return Expr(internNode(ExprKind::ExactDiv, 0, {}, {a.node_, b.node_}));
}

Expr Expr::mod(Expr a, Expr b) {
  if (a.node_->kind == ExprKind::IntConst &&
      b.node_->kind == ExprKind::IntConst) {
    try {
      return Expr::intConst(floorMod(a.node_->value, b.node_->value));
    } catch (const ArithmeticError &) {
      // Zero divisor: keep the node symbolic; see floorDiv.
    }
  }
  return Expr(internNode(ExprKind::Mod, 0, {}, {a.node_, b.node_}));
}

Expr Expr::min(Expr a, Expr b) {
  if (a.equals(b))
    return a;
  if (a.node_->kind == ExprKind::IntConst && b.node_->kind == ExprKind::IntConst)
    return Expr::intConst(std::min(a.node_->value, b.node_->value));
  return Expr(internNode(ExprKind::Min, 0, {}, {a.node_, b.node_}));
}

Expr Expr::max(Expr a, Expr b) {
  if (a.equals(b))
    return a;
  if (a.node_->kind == ExprKind::IntConst && b.node_->kind == ExprKind::IntConst)
    return Expr::intConst(std::max(a.node_->value, b.node_->value));
  return Expr(internNode(ExprKind::Max, 0, {}, {a.node_, b.node_}));
}

Expr Expr::sum(std::string var, Expr lo, Expr hi, Expr body) {
  // Fully constant range with constant body folds immediately.
  if (lo.isIntConst() && hi.isIntConst()) {
    std::int64_t l = *lo.constValue();
    std::int64_t h = *hi.constValue();
    if (h < l)
      return Expr::intConst(0);
    if (body.isIntConst()) {
      try {
        return Expr::intConst(
            checkedMul(checkedAdd(checkedSub(h, l), 1), *body.constValue()));
      } catch (const ArithmeticError &) {
        // Count or product overflows int64: keep the Sum symbolic.
      }
    }
  }
  return Expr(internNode(ExprKind::Sum, 0, std::move(var),
                         {lo.node_, hi.node_, body.node_}));
}

Expr Expr::fromNode(ExprNodeRef node) {
  if (!node)
    return Expr();
  // Structure-preserving: reintern never reorders or rewrites, it only
  // replaces each subtree with the interner's canonical copy, so
  // serialized bytes cannot drift across a deserialize/reserialize trip.
  return Expr(ExprInterner::current().reintern(node));
}

Expr operator+(const Expr &a, const Expr &b) { return Expr::add({a, b}); }
Expr operator-(const Expr &a, const Expr &b) {
  return Expr::add({a, Expr::mul({Expr::intConst(-1), b})});
}
Expr operator*(const Expr &a, const Expr &b) { return Expr::mul({a, b}); }
Expr Expr::operator-() const {
  return Expr::mul({Expr::intConst(-1), *this});
}

ExprKind Expr::kind() const { return node_->kind; }

bool Expr::isIntConst() const { return node_->kind == ExprKind::IntConst; }

bool Expr::isIntConst(std::int64_t value) const {
  return isIntConst() && node_->value == value;
}

std::optional<std::int64_t> Expr::constValue() const {
  if (isIntConst())
    return node_->value;
  return std::nullopt;
}

std::set<std::string> Expr::parameters() const {
  std::set<std::string> out;
  std::function<void(const ExprNodeRef &, std::set<std::string> &)> walk =
      [&](const ExprNodeRef &n, std::set<std::string> &bound) {
        if (n->kind == ExprKind::Param) {
          if (!bound.count(n->name))
            out.insert(n->name);
          return;
        }
        if (n->kind == ExprKind::Sum) {
          // lo/hi are in the outer scope; the body binds n->name.
          walk(n->operands[0], bound);
          walk(n->operands[1], bound);
          std::set<std::string> inner = bound;
          inner.insert(n->name);
          walk(n->operands[2], inner);
          return;
        }
        for (const auto &o : n->operands)
          walk(o, bound);
      };
  std::set<std::string> bound;
  walk(node_, bound);
  return out;
}

namespace {

bool nodesEqual(const ExprNodeRef &a, const ExprNodeRef &b) {
  if (a == b) // canonical within an interner: the common case
    return true;
  if (a->hash != b->hash)
    return false;
  if (a->kind != b->kind || a->value != b->value || a->name != b->name ||
      a->operands.size() != b->operands.size())
    return false;
  for (std::size_t i = 0; i < a->operands.size(); ++i)
    if (!nodesEqual(a->operands[i], b->operands[i]))
      return false;
  return true;
}

} // namespace

bool Expr::equals(const Expr &other) const {
  return nodesEqual(node_, other.node_);
}

namespace {

std::optional<std::int64_t> evalNode(const ExprNodeRef &n, const Env &env) {
  switch (n->kind) {
  case ExprKind::IntConst:
    return n->value;
  case ExprKind::Param: {
    auto it = env.find(n->name);
    if (it == env.end())
      return std::nullopt;
    return it->second;
  }
  case ExprKind::Add: {
    std::int64_t acc = 0;
    for (const auto &o : n->operands) {
      auto v = evalNode(o, env);
      if (!v)
        return std::nullopt;
      acc = checkedAdd(acc, *v);
    }
    return acc;
  }
  case ExprKind::Mul: {
    std::int64_t acc = 1;
    for (const auto &o : n->operands) {
      auto v = evalNode(o, env);
      if (!v)
        return std::nullopt;
      acc = checkedMul(acc, *v);
    }
    return acc;
  }
  case ExprKind::FloorDiv: {
    auto a = evalNode(n->operands[0], env);
    auto b = evalNode(n->operands[1], env);
    if (!a || !b || *b == 0)
      return std::nullopt;
    return floorDiv(*a, *b);
  }
  case ExprKind::ExactDiv: {
    auto a = evalNode(n->operands[0], env);
    auto b = evalNode(n->operands[1], env);
    if (!a || !b || *b == 0)
      return std::nullopt;
    if (*a == std::numeric_limits<std::int64_t>::min() && *b == -1)
      return std::nullopt; // quotient unrepresentable; '/' would be UB
    if (*a % *b != 0)
      return std::nullopt; // closed form produced a non-integer: bug upstream
    return *a / *b;
  }
  case ExprKind::Mod: {
    auto a = evalNode(n->operands[0], env);
    auto b = evalNode(n->operands[1], env);
    if (!a || !b || *b == 0)
      return std::nullopt;
    return floorMod(*a, *b);
  }
  case ExprKind::Min: {
    auto a = evalNode(n->operands[0], env);
    auto b = evalNode(n->operands[1], env);
    if (!a || !b)
      return std::nullopt;
    return std::min(*a, *b);
  }
  case ExprKind::Max: {
    auto a = evalNode(n->operands[0], env);
    auto b = evalNode(n->operands[1], env);
    if (!a || !b)
      return std::nullopt;
    return std::max(*a, *b);
  }
  case ExprKind::Sum: {
    auto lo = evalNode(n->operands[0], env);
    auto hi = evalNode(n->operands[1], env);
    if (!lo || !hi)
      return std::nullopt;
    std::int64_t acc = 0;
    Env inner = env;
    for (std::int64_t v = *lo; v <= *hi; ++v) {
      inner[n->name] = v;
      auto b = evalNode(n->operands[2], inner);
      if (!b)
        return std::nullopt;
      acc = checkedAdd(acc, *b);
    }
    return acc;
  }
  }
  return std::nullopt;
}

enum class PrintStyle { Debug, Python };

std::string printNode(const ExprNodeRef &n, PrintStyle style);

std::string printJoin(const std::vector<ExprNodeRef> &ops, const char *sep,
                      PrintStyle style) {
  std::string out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i)
      out += sep;
    out += printNode(ops[i], style);
  }
  return out;
}

std::string printNode(const ExprNodeRef &n, PrintStyle style) {
  switch (n->kind) {
  case ExprKind::IntConst:
    return std::to_string(n->value);
  case ExprKind::Param:
    return n->name;
  case ExprKind::Add:
    return "(" + printJoin(n->operands, " + ", style) + ")";
  case ExprKind::Mul:
    return "(" + printJoin(n->operands, "*", style) + ")";
  case ExprKind::FloorDiv:
    return "(" + printNode(n->operands[0], style) +
           (style == PrintStyle::Python ? " // " : " fdiv ") +
           printNode(n->operands[1], style) + ")";
  case ExprKind::ExactDiv:
    return "(" + printNode(n->operands[0], style) +
           (style == PrintStyle::Python ? " // " : " / ") +
           printNode(n->operands[1], style) + ")";
  case ExprKind::Mod:
    return "(" + printNode(n->operands[0], style) + " % " +
           printNode(n->operands[1], style) + ")";
  case ExprKind::Min:
    return "min(" + printJoin(n->operands, ", ", style) + ")";
  case ExprKind::Max:
    return "max(" + printJoin(n->operands, ", ", style) + ")";
  case ExprKind::Sum:
    if (style == PrintStyle::Python)
      return "sum((" + printNode(n->operands[2], style) + ") for " + n->name +
             " in range(" + printNode(n->operands[0], style) + ", " +
             printNode(n->operands[1], style) + " + 1))";
    return "Sum(" + n->name + "=" + printNode(n->operands[0], style) + ".." +
           printNode(n->operands[1], style) + ", " +
           printNode(n->operands[2], style) + ")";
  }
  return "?";
}

} // namespace

std::optional<std::int64_t> Expr::evaluate(const Env &env) const {
  try {
    return evalNode(node_, env);
  } catch (const ArithmeticError &) {
    return std::nullopt;
  }
}

Expr Expr::substitute(const std::string &name, const Expr &replacement) const {
  std::function<Expr(const ExprNodeRef &)> walk =
      [&](const ExprNodeRef &n) -> Expr {
    switch (n->kind) {
    case ExprKind::IntConst:
      return Expr::intConst(n->value);
    case ExprKind::Param:
      return n->name == name ? replacement : Expr(Expr::param(n->name));
    case ExprKind::Add: {
      std::vector<Expr> ops;
      for (const auto &o : n->operands)
        ops.push_back(walk(o));
      return Expr::add(std::move(ops));
    }
    case ExprKind::Mul: {
      std::vector<Expr> ops;
      for (const auto &o : n->operands)
        ops.push_back(walk(o));
      return Expr::mul(std::move(ops));
    }
    case ExprKind::FloorDiv:
      return Expr::floorDiv(walk(n->operands[0]), walk(n->operands[1]));
    case ExprKind::ExactDiv:
      return Expr::exactDiv(walk(n->operands[0]), walk(n->operands[1]));
    case ExprKind::Mod:
      return Expr::mod(walk(n->operands[0]), walk(n->operands[1]));
    case ExprKind::Min:
      return Expr::min(walk(n->operands[0]), walk(n->operands[1]));
    case ExprKind::Max:
      return Expr::max(walk(n->operands[0]), walk(n->operands[1]));
    case ExprKind::Sum: {
      Expr lo = walk(n->operands[0]);
      Expr hi = walk(n->operands[1]);
      // The bound variable shadows same-named outer parameters.
      if (n->name == name)
        return Expr::sum(n->name, lo, hi, Expr(n->operands[2]));
      Expr body = Expr(n->operands[2]);
      std::string var = n->name;
      if (body.parameters().count(name) &&
          replacement.parameters().count(var)) {
        // The replacement references the bound variable: substituting
        // under this binder would capture it (N -> i under Sum(i, ...)
        // must not turn occurrences of N into the loop variable).
        // Alpha-rename the binder to a fresh name first; the rename is
        // itself a substitute() call, so a clashing inner binder gets
        // renamed recursively by this same rule.
        std::set<std::string> avoid = replacement.parameters();
        std::set<std::string> bodyParams = body.parameters();
        avoid.insert(bodyParams.begin(), bodyParams.end());
        avoid.insert(name);
        std::string fresh;
        for (std::uint64_t i = 1;; ++i) {
          fresh = var + "_" + std::to_string(i);
          if (!avoid.count(fresh))
            break;
        }
        body = body.substitute(var, Expr::param(fresh));
        var = fresh;
      }
      return Expr::sum(var, lo, hi, body.substitute(name, replacement));
    }
    }
    return Expr::intConst(0);
  };
  return walk(node_);
}

std::string Expr::str() const { return printNode(node_, PrintStyle::Debug); }

std::string Expr::toPython() const {
  return printNode(node_, PrintStyle::Python);
}

} // namespace mira::symbolic
