#include "symbolic/expr.h"

#include <algorithm>
#include <functional>

namespace mira::symbolic {

namespace {

ExprNodeRef makeConst(std::int64_t v) {
  auto n = std::make_shared<ExprNode>(ExprKind::IntConst);
  n->value = v;
  return n;
}

bool isConst(const ExprNodeRef &n, std::int64_t v) {
  return n->kind == ExprKind::IntConst && n->value == v;
}

/// Canonical ordering key used to sort commutative operand lists so that
/// structurally equal expressions compare equal.
std::string orderKey(const ExprNodeRef &n);

std::string orderKeyList(const std::vector<ExprNodeRef> &ops) {
  std::string s;
  for (const auto &o : ops) {
    s += orderKey(o);
    s += ',';
  }
  return s;
}

std::string orderKey(const ExprNodeRef &n) {
  switch (n->kind) {
  case ExprKind::IntConst:
    return "#" + std::to_string(n->value);
  case ExprKind::Param:
    return "p" + n->name;
  case ExprKind::Add:
    return "A(" + orderKeyList(n->operands) + ")";
  case ExprKind::Mul:
    return "M(" + orderKeyList(n->operands) + ")";
  case ExprKind::FloorDiv:
    return "F(" + orderKeyList(n->operands) + ")";
  case ExprKind::ExactDiv:
    return "E(" + orderKeyList(n->operands) + ")";
  case ExprKind::Mod:
    return "%(" + orderKeyList(n->operands) + ")";
  case ExprKind::Min:
    return "m(" + orderKeyList(n->operands) + ")";
  case ExprKind::Max:
    return "X(" + orderKeyList(n->operands) + ")";
  case ExprKind::Sum:
    return "S" + n->name + "(" + orderKeyList(n->operands) + ")";
  }
  return "?";
}

} // namespace

Expr::Expr() : node_(makeConst(0)) {}

Expr Expr::intConst(std::int64_t value) { return Expr(makeConst(value)); }

Expr Expr::param(std::string name) {
  auto n = std::make_shared<ExprNode>(ExprKind::Param);
  n->name = std::move(name);
  return Expr(n);
}

Expr Expr::add(std::vector<Expr> operands) {
  std::vector<ExprNodeRef> flat;
  std::int64_t constant = 0;
  std::function<void(const ExprNodeRef &)> absorb =
      [&](const ExprNodeRef &n) {
        if (n->kind == ExprKind::IntConst) {
          constant = checkedAdd(constant, n->value);
        } else if (n->kind == ExprKind::Add) {
          for (const auto &o : n->operands)
            absorb(o);
        } else {
          flat.push_back(n);
        }
      };
  for (const Expr &e : operands)
    absorb(e.node_);

  // Combine like terms: each term is (coeff, residual-key). Terms are
  // either Param/other nodes (coeff 1) or Mul nodes with a leading const.
  struct Term {
    std::int64_t coeff;
    std::vector<ExprNodeRef> factors; // non-const factors, sorted
    std::string key;
  };
  std::vector<Term> terms;
  for (const auto &n : flat) {
    Term t;
    t.coeff = 1;
    if (n->kind == ExprKind::Mul) {
      for (const auto &f : n->operands) {
        if (f->kind == ExprKind::IntConst)
          t.coeff = checkedMul(t.coeff, f->value);
        else
          t.factors.push_back(f);
      }
    } else {
      t.factors.push_back(n);
    }
    t.key = orderKeyList(t.factors);
    bool merged = false;
    for (Term &prev : terms) {
      if (prev.key == t.key) {
        prev.coeff = checkedAdd(prev.coeff, t.coeff);
        merged = true;
        break;
      }
    }
    if (!merged)
      terms.push_back(std::move(t));
  }

  std::vector<ExprNodeRef> result;
  for (Term &t : terms) {
    if (t.coeff == 0)
      continue;
    if (t.coeff == 1 && t.factors.size() == 1) {
      result.push_back(t.factors[0]);
    } else {
      std::vector<Expr> factors;
      if (t.coeff != 1)
        factors.push_back(Expr::intConst(t.coeff));
      for (auto &f : t.factors)
        factors.push_back(Expr(f));
      result.push_back(Expr::mul(std::move(factors)).node_);
    }
  }

  std::sort(result.begin(), result.end(),
            [](const ExprNodeRef &a, const ExprNodeRef &b) {
              return orderKey(a) < orderKey(b);
            });
  if (constant != 0 || result.empty())
    result.push_back(makeConst(constant));
  if (result.size() == 1)
    return Expr(result[0]);
  auto n = std::make_shared<ExprNode>(ExprKind::Add);
  n->operands = std::move(result);
  return Expr(n);
}

Expr Expr::mul(std::vector<Expr> operands) {
  std::vector<ExprNodeRef> flat;
  std::int64_t constant = 1;
  std::function<void(const ExprNodeRef &)> absorb =
      [&](const ExprNodeRef &n) {
        if (n->kind == ExprKind::IntConst) {
          constant = checkedMul(constant, n->value);
        } else if (n->kind == ExprKind::Mul) {
          for (const auto &o : n->operands)
            absorb(o);
        } else {
          flat.push_back(n);
        }
      };
  for (const Expr &e : operands)
    absorb(e.node_);

  if (constant == 0)
    return Expr::intConst(0);

  std::sort(flat.begin(), flat.end(),
            [](const ExprNodeRef &a, const ExprNodeRef &b) {
              return orderKey(a) < orderKey(b);
            });
  std::vector<ExprNodeRef> result;
  if (constant != 1 || flat.empty())
    result.push_back(makeConst(constant));
  result.insert(result.end(), flat.begin(), flat.end());
  if (result.size() == 1)
    return Expr(result[0]);
  auto n = std::make_shared<ExprNode>(ExprKind::Mul);
  n->operands = std::move(result);
  return Expr(n);
}

Expr Expr::floorDiv(Expr a, Expr b) {
  if (b.node_->kind == ExprKind::IntConst && a.node_->kind == ExprKind::IntConst)
    return Expr::intConst(mira::symbolic::floorDiv(a.node_->value, b.node_->value));
  if (isConst(b.node_, 1))
    return a;
  auto n = std::make_shared<ExprNode>(ExprKind::FloorDiv);
  n->operands = {a.node_, b.node_};
  return Expr(n);
}

Expr Expr::exactDiv(Expr a, Expr b) {
  if (b.node_->kind == ExprKind::IntConst &&
      a.node_->kind == ExprKind::IntConst && b.node_->value != 0 &&
      a.node_->value % b.node_->value == 0)
    return Expr::intConst(a.node_->value / b.node_->value);
  if (isConst(b.node_, 1))
    return a;
  auto n = std::make_shared<ExprNode>(ExprKind::ExactDiv);
  n->operands = {a.node_, b.node_};
  return Expr(n);
}

Expr Expr::mod(Expr a, Expr b) {
  if (a.node_->kind == ExprKind::IntConst && b.node_->kind == ExprKind::IntConst)
    return Expr::intConst(floorMod(a.node_->value, b.node_->value));
  auto n = std::make_shared<ExprNode>(ExprKind::Mod);
  n->operands = {a.node_, b.node_};
  return Expr(n);
}

Expr Expr::min(Expr a, Expr b) {
  if (a.equals(b))
    return a;
  if (a.node_->kind == ExprKind::IntConst && b.node_->kind == ExprKind::IntConst)
    return Expr::intConst(std::min(a.node_->value, b.node_->value));
  auto n = std::make_shared<ExprNode>(ExprKind::Min);
  n->operands = {a.node_, b.node_};
  return Expr(n);
}

Expr Expr::max(Expr a, Expr b) {
  if (a.equals(b))
    return a;
  if (a.node_->kind == ExprKind::IntConst && b.node_->kind == ExprKind::IntConst)
    return Expr::intConst(std::max(a.node_->value, b.node_->value));
  auto n = std::make_shared<ExprNode>(ExprKind::Max);
  n->operands = {a.node_, b.node_};
  return Expr(n);
}

Expr Expr::sum(std::string var, Expr lo, Expr hi, Expr body) {
  // Fully constant range with constant body folds immediately.
  if (lo.isIntConst() && hi.isIntConst()) {
    std::int64_t l = *lo.constValue();
    std::int64_t h = *hi.constValue();
    if (h < l)
      return Expr::intConst(0);
    if (body.isIntConst())
      return Expr::intConst(
          checkedMul(checkedAdd(checkedSub(h, l), 1), *body.constValue()));
  }
  auto n = std::make_shared<ExprNode>(ExprKind::Sum);
  n->name = std::move(var);
  n->operands = {lo.node_, hi.node_, body.node_};
  return Expr(n);
}

Expr Expr::fromNode(ExprNodeRef node) {
  if (!node)
    return Expr();
  return Expr(std::move(node));
}

Expr operator+(const Expr &a, const Expr &b) { return Expr::add({a, b}); }
Expr operator-(const Expr &a, const Expr &b) {
  return Expr::add({a, Expr::mul({Expr::intConst(-1), b})});
}
Expr operator*(const Expr &a, const Expr &b) { return Expr::mul({a, b}); }
Expr Expr::operator-() const {
  return Expr::mul({Expr::intConst(-1), *this});
}

ExprKind Expr::kind() const { return node_->kind; }

bool Expr::isIntConst() const { return node_->kind == ExprKind::IntConst; }

bool Expr::isIntConst(std::int64_t value) const {
  return isIntConst() && node_->value == value;
}

std::optional<std::int64_t> Expr::constValue() const {
  if (isIntConst())
    return node_->value;
  return std::nullopt;
}

std::set<std::string> Expr::parameters() const {
  std::set<std::string> out;
  std::function<void(const ExprNodeRef &, std::set<std::string> &)> walk =
      [&](const ExprNodeRef &n, std::set<std::string> &bound) {
        if (n->kind == ExprKind::Param) {
          if (!bound.count(n->name))
            out.insert(n->name);
          return;
        }
        if (n->kind == ExprKind::Sum) {
          // lo/hi are in the outer scope; the body binds n->name.
          walk(n->operands[0], bound);
          walk(n->operands[1], bound);
          std::set<std::string> inner = bound;
          inner.insert(n->name);
          walk(n->operands[2], inner);
          return;
        }
        for (const auto &o : n->operands)
          walk(o, bound);
      };
  std::set<std::string> bound;
  walk(node_, bound);
  return out;
}

bool Expr::equals(const Expr &other) const {
  return orderKey(node_) == orderKey(other.node_);
}

namespace {

std::optional<std::int64_t> evalNode(const ExprNodeRef &n, const Env &env) {
  switch (n->kind) {
  case ExprKind::IntConst:
    return n->value;
  case ExprKind::Param: {
    auto it = env.find(n->name);
    if (it == env.end())
      return std::nullopt;
    return it->second;
  }
  case ExprKind::Add: {
    std::int64_t acc = 0;
    for (const auto &o : n->operands) {
      auto v = evalNode(o, env);
      if (!v)
        return std::nullopt;
      acc = checkedAdd(acc, *v);
    }
    return acc;
  }
  case ExprKind::Mul: {
    std::int64_t acc = 1;
    for (const auto &o : n->operands) {
      auto v = evalNode(o, env);
      if (!v)
        return std::nullopt;
      acc = checkedMul(acc, *v);
    }
    return acc;
  }
  case ExprKind::FloorDiv: {
    auto a = evalNode(n->operands[0], env);
    auto b = evalNode(n->operands[1], env);
    if (!a || !b || *b == 0)
      return std::nullopt;
    return floorDiv(*a, *b);
  }
  case ExprKind::ExactDiv: {
    auto a = evalNode(n->operands[0], env);
    auto b = evalNode(n->operands[1], env);
    if (!a || !b || *b == 0)
      return std::nullopt;
    if (*a % *b != 0)
      return std::nullopt; // closed form produced a non-integer: bug upstream
    return *a / *b;
  }
  case ExprKind::Mod: {
    auto a = evalNode(n->operands[0], env);
    auto b = evalNode(n->operands[1], env);
    if (!a || !b || *b == 0)
      return std::nullopt;
    return floorMod(*a, *b);
  }
  case ExprKind::Min: {
    auto a = evalNode(n->operands[0], env);
    auto b = evalNode(n->operands[1], env);
    if (!a || !b)
      return std::nullopt;
    return std::min(*a, *b);
  }
  case ExprKind::Max: {
    auto a = evalNode(n->operands[0], env);
    auto b = evalNode(n->operands[1], env);
    if (!a || !b)
      return std::nullopt;
    return std::max(*a, *b);
  }
  case ExprKind::Sum: {
    auto lo = evalNode(n->operands[0], env);
    auto hi = evalNode(n->operands[1], env);
    if (!lo || !hi)
      return std::nullopt;
    std::int64_t acc = 0;
    Env inner = env;
    for (std::int64_t v = *lo; v <= *hi; ++v) {
      inner[n->name] = v;
      auto b = evalNode(n->operands[2], inner);
      if (!b)
        return std::nullopt;
      acc = checkedAdd(acc, *b);
    }
    return acc;
  }
  }
  return std::nullopt;
}

enum class PrintStyle { Debug, Python };

std::string printNode(const ExprNodeRef &n, PrintStyle style);

std::string printJoin(const std::vector<ExprNodeRef> &ops, const char *sep,
                      PrintStyle style) {
  std::string out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i)
      out += sep;
    out += printNode(ops[i], style);
  }
  return out;
}

std::string printNode(const ExprNodeRef &n, PrintStyle style) {
  switch (n->kind) {
  case ExprKind::IntConst:
    return std::to_string(n->value);
  case ExprKind::Param:
    return n->name;
  case ExprKind::Add:
    return "(" + printJoin(n->operands, " + ", style) + ")";
  case ExprKind::Mul:
    return "(" + printJoin(n->operands, "*", style) + ")";
  case ExprKind::FloorDiv:
    return "(" + printNode(n->operands[0], style) +
           (style == PrintStyle::Python ? " // " : " fdiv ") +
           printNode(n->operands[1], style) + ")";
  case ExprKind::ExactDiv:
    return "(" + printNode(n->operands[0], style) +
           (style == PrintStyle::Python ? " // " : " / ") +
           printNode(n->operands[1], style) + ")";
  case ExprKind::Mod:
    return "(" + printNode(n->operands[0], style) + " % " +
           printNode(n->operands[1], style) + ")";
  case ExprKind::Min:
    return "min(" + printJoin(n->operands, ", ", style) + ")";
  case ExprKind::Max:
    return "max(" + printJoin(n->operands, ", ", style) + ")";
  case ExprKind::Sum:
    if (style == PrintStyle::Python)
      return "sum((" + printNode(n->operands[2], style) + ") for " + n->name +
             " in range(" + printNode(n->operands[0], style) + ", " +
             printNode(n->operands[1], style) + " + 1))";
    return "Sum(" + n->name + "=" + printNode(n->operands[0], style) + ".." +
           printNode(n->operands[1], style) + ", " +
           printNode(n->operands[2], style) + ")";
  }
  return "?";
}

} // namespace

std::optional<std::int64_t> Expr::evaluate(const Env &env) const {
  try {
    return evalNode(node_, env);
  } catch (const ArithmeticError &) {
    return std::nullopt;
  }
}

Expr Expr::substitute(const std::string &name, const Expr &replacement) const {
  std::function<Expr(const ExprNodeRef &)> walk =
      [&](const ExprNodeRef &n) -> Expr {
    switch (n->kind) {
    case ExprKind::IntConst:
      return Expr::intConst(n->value);
    case ExprKind::Param:
      return n->name == name ? replacement : Expr(Expr::param(n->name));
    case ExprKind::Add: {
      std::vector<Expr> ops;
      for (const auto &o : n->operands)
        ops.push_back(walk(o));
      return Expr::add(std::move(ops));
    }
    case ExprKind::Mul: {
      std::vector<Expr> ops;
      for (const auto &o : n->operands)
        ops.push_back(walk(o));
      return Expr::mul(std::move(ops));
    }
    case ExprKind::FloorDiv:
      return Expr::floorDiv(walk(n->operands[0]), walk(n->operands[1]));
    case ExprKind::ExactDiv:
      return Expr::exactDiv(walk(n->operands[0]), walk(n->operands[1]));
    case ExprKind::Mod:
      return Expr::mod(walk(n->operands[0]), walk(n->operands[1]));
    case ExprKind::Min:
      return Expr::min(walk(n->operands[0]), walk(n->operands[1]));
    case ExprKind::Max:
      return Expr::max(walk(n->operands[0]), walk(n->operands[1]));
    case ExprKind::Sum: {
      Expr lo = walk(n->operands[0]);
      Expr hi = walk(n->operands[1]);
      // The bound variable shadows same-named outer parameters.
      Expr body = n->name == name ? Expr(n->operands[2])
                                  : Expr(n->operands[2]).substitute(name,
                                                                    replacement);
      return Expr::sum(n->name, lo, hi, body);
    }
    }
    return Expr::intConst(0);
  };
  return walk(node_);
}

std::string Expr::str() const { return printNode(node_, PrintStyle::Debug); }

std::string Expr::toPython() const {
  return printNode(node_, PrintStyle::Python);
}

} // namespace mira::symbolic
