// Exact rational arithmetic over 64-bit integers.
//
// Used for polynomial coefficients during Faulhaber summation (closed-form
// sums of integer polynomials have rational coefficients, e.g. n(n+1)/2).
// All operations normalize (reduced fraction, positive denominator) and
// check for overflow via __int128 intermediates.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mira::symbolic {

/// Thrown on arithmetic overflow or division by zero in exact arithmetic.
class ArithmeticError : public std::runtime_error {
public:
  explicit ArithmeticError(const std::string &what)
      : std::runtime_error(what) {}
};

/// Checked int64 helpers (throw ArithmeticError on overflow).
std::int64_t checkedAdd(std::int64_t a, std::int64_t b);
std::int64_t checkedSub(std::int64_t a, std::int64_t b);
std::int64_t checkedMul(std::int64_t a, std::int64_t b);

/// Mathematical floor division / modulus (sign of divisor-independent,
/// matches how loop-iteration counting needs them; C++ '/' truncates).
std::int64_t floorDiv(std::int64_t a, std::int64_t b);
std::int64_t floorMod(std::int64_t a, std::int64_t b);

std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// A reduced fraction num/den with den > 0.
class Rational {
public:
  constexpr Rational() = default;
  Rational(std::int64_t numerator) : num_(numerator), den_(1) {} // NOLINT
  Rational(std::int64_t numerator, std::int64_t denominator);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  bool isZero() const { return num_ == 0; }
  bool isInteger() const { return den_ == 1; }
  /// Requires isInteger().
  std::int64_t asInteger() const;

  Rational operator-() const;
  friend Rational operator+(const Rational &a, const Rational &b);
  friend Rational operator-(const Rational &a, const Rational &b);
  friend Rational operator*(const Rational &a, const Rational &b);
  friend Rational operator/(const Rational &a, const Rational &b);
  Rational &operator+=(const Rational &o) { return *this = *this + o; }
  Rational &operator-=(const Rational &o) { return *this = *this - o; }
  Rational &operator*=(const Rational &o) { return *this = *this * o; }
  Rational &operator/=(const Rational &o) { return *this = *this / o; }

  friend bool operator==(const Rational &a, const Rational &b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational &a, const Rational &b) {
    return !(a == b);
  }
  friend bool operator<(const Rational &a, const Rational &b);
  friend bool operator<=(const Rational &a, const Rational &b) {
    return a < b || a == b;
  }
  friend bool operator>(const Rational &a, const Rational &b) { return b < a; }
  friend bool operator>=(const Rational &a, const Rational &b) {
    return b <= a;
  }

  double toDouble() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  std::string str() const;

private:
  void normalize();

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

/// Binomial coefficient C(n, k) with overflow checking (n small).
std::int64_t binomial(int n, int k);

} // namespace mira::symbolic
