#include "symbolic/rational.h"

#include <limits>

namespace mira::symbolic {

namespace {
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

std::int64_t narrow(__int128 v, const char *op) {
  if (v > static_cast<__int128>(kMax) || v < static_cast<__int128>(kMin))
    throw ArithmeticError(std::string("int64 overflow in ") + op);
  return static_cast<std::int64_t>(v);
}
} // namespace

std::int64_t checkedAdd(std::int64_t a, std::int64_t b) {
  return narrow(static_cast<__int128>(a) + b, "add");
}
std::int64_t checkedSub(std::int64_t a, std::int64_t b) {
  return narrow(static_cast<__int128>(a) - b, "sub");
}
std::int64_t checkedMul(std::int64_t a, std::int64_t b) {
  return narrow(static_cast<__int128>(a) * b, "mul");
}

std::int64_t floorDiv(std::int64_t a, std::int64_t b) {
  if (b == 0)
    throw ArithmeticError("floorDiv by zero");
  // INT64_MIN / -1 is the one in-range division whose quotient is not
  // representable; the raw `/` below would be signed-overflow UB.
  if (a == kMin && b == -1)
    throw ArithmeticError("int64 overflow in floorDiv");
  std::int64_t q = a / b;
  std::int64_t r = a % b;
  if (r != 0 && ((r < 0) != (b < 0)))
    --q;
  return q;
}

std::int64_t floorMod(std::int64_t a, std::int64_t b) {
  return checkedSub(a, checkedMul(floorDiv(a, b), b));
}

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  if (a == kMin || b == kMin)
    throw ArithmeticError("gcd of INT64_MIN");
  if (a < 0)
    a = -a;
  if (b < 0)
    b = -b;
  while (b != 0) {
    std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

Rational::Rational(std::int64_t numerator, std::int64_t denominator)
    : num_(numerator), den_(denominator) {
  if (den_ == 0)
    throw ArithmeticError("rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = checkedSub(0, num_);
    den_ = checkedSub(0, den_);
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  std::int64_t g = gcd64(num_, den_);
  num_ /= g;
  den_ /= g;
}

std::int64_t Rational::asInteger() const {
  if (!isInteger())
    throw ArithmeticError("rational " + str() + " is not an integer");
  return num_;
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = checkedSub(0, num_);
  r.den_ = den_;
  return r;
}

Rational operator+(const Rational &a, const Rational &b) {
  std::int64_t g = gcd64(a.den_, b.den_);
  std::int64_t lhs = checkedMul(a.num_, b.den_ / g);
  std::int64_t rhs = checkedMul(b.num_, a.den_ / g);
  return Rational(checkedAdd(lhs, rhs), checkedMul(a.den_ / g, b.den_));
}

Rational operator-(const Rational &a, const Rational &b) { return a + (-b); }

Rational operator*(const Rational &a, const Rational &b) {
  // Cross-reduce before multiplying to avoid overflow.
  std::int64_t g1 = gcd64(a.num_, b.den_);
  std::int64_t g2 = gcd64(b.num_, a.den_);
  return Rational(checkedMul(a.num_ / g1, b.num_ / g2),
                  checkedMul(a.den_ / g2, b.den_ / g1));
}

Rational operator/(const Rational &a, const Rational &b) {
  if (b.isZero())
    throw ArithmeticError("rational division by zero");
  return a * Rational(b.den_, b.num_);
}

bool operator<(const Rational &a, const Rational &b) {
  return static_cast<__int128>(a.num_) * b.den_ <
         static_cast<__int128>(b.num_) * a.den_;
}

std::string Rational::str() const {
  if (den_ == 1)
    return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::int64_t binomial(int n, int k) {
  if (k < 0 || k > n)
    return 0;
  if (k > n - k)
    k = n - k;
  std::int64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    result = checkedMul(result, n - k + i);
    result /= i; // exact at every step
  }
  return result;
}

} // namespace mira::symbolic
