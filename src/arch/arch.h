// Architecture description files (paper Sec. III-B6).
//
// A user-editable text file carrying machine parameters (cores, cache
// line, vector width, clock, bandwidth) and the instruction-category
// scheme: 64 categories with per-opcode overrides. Mira evaluates models
// against a description to produce category counts (Table II), derived
// predictions such as instruction-based arithmetic intensity (Sec. IV-D2),
// and Roofline operands.
//
// Format ('#' comments, key = value, one optional [categories] section):
//   name = haswell
//   cores = 36
//   cache_line_bytes = 64
//   vector_width_doubles = 2
//   clock_ghz = 2.3
//   mem_bandwidth_gbs = 68
//   flops_per_cycle = 16
//   [categories]
//   lea = Integer miscellaneous instruction
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "isa/categories.h"
#include "isa/opcode.h"
#include "support/diagnostics.h"

namespace mira::arch {

class ArchDescription {
public:
  std::string name = "generic";
  int cores = 1;
  int cacheLineBytes = 64;
  int vectorWidthDoubles = 2; // SSE2
  double clockGHz = 2.0;
  double memBandwidthGBs = 50.0;
  double flopsPerCycle = 8.0;

  /// Category of an opcode: override if present, else Mira's default.
  isa::InstrCategory categoryOf(isa::Opcode op) const;
  void overrideCategory(isa::Opcode op, isa::InstrCategory category);
  const std::map<isa::Opcode, isa::InstrCategory> &overrides() const {
    return overrides_;
  }

  /// Aggregate an opcode histogram into the 64 categories.
  isa::CategoryArray<double>
  categorize(const std::map<isa::Opcode, double> &opcodeCounts) const;

  /// Instruction-based floating-point arithmetic intensity (paper
  /// Sec. IV-D2): SSE2 packed arithmetic / SSE2 data movement.
  static double arithmeticIntensity(const isa::CategoryArray<double> &counts);

  /// Roofline attainable performance for a given arithmetic intensity
  /// (GFLOP/s): min(peak, intensity * bandwidth).
  double rooflineAttainable(double flopsPerByte) const;
  double peakGFlops() const { return clockGHz * flopsPerCycle * cores; }

  /// Parse a description file body. Returns nullopt on malformed input.
  static std::optional<ArchDescription> parse(const std::string &text,
                                              DiagnosticEngine &diags);
  /// Serialize back to file form (round-trips through parse()).
  std::string str() const;

private:
  std::map<isa::Opcode, isa::InstrCategory> overrides_;
};

/// Built-in descriptions of the paper's two validation machines
/// (Sec. IV-A): Arya (Haswell) and Frankenstein (Nehalem).
const ArchDescription &haswellDescription();
const ArchDescription &nehalemDescription();

} // namespace mira::arch
