#include "arch/arch.h"

#include <algorithm>

#include "support/string_utils.h"

namespace mira::arch {

using isa::InstrCategory;
using isa::Opcode;

InstrCategory ArchDescription::categoryOf(Opcode op) const {
  auto it = overrides_.find(op);
  return it == overrides_.end() ? isa::defaultCategory(op) : it->second;
}

void ArchDescription::overrideCategory(Opcode op, InstrCategory category) {
  overrides_[op] = category;
}

isa::CategoryArray<double> ArchDescription::categorize(
    const std::map<Opcode, double> &opcodeCounts) const {
  isa::CategoryArray<double> out{};
  for (const auto &[op, count] : opcodeCounts)
    out[static_cast<std::size_t>(categoryOf(op))] += count;
  return out;
}

double ArchDescription::arithmeticIntensity(
    const isa::CategoryArray<double> &counts) {
  double arith =
      counts[static_cast<std::size_t>(InstrCategory::SSE2PackedArith)];
  double movement =
      counts[static_cast<std::size_t>(InstrCategory::SSE2DataMovement)];
  if (movement == 0)
    return 0;
  return arith / movement;
}

double ArchDescription::rooflineAttainable(double flopsPerByte) const {
  return std::min(peakGFlops(), flopsPerByte * memBandwidthGBs);
}

std::optional<ArchDescription> ArchDescription::parse(
    const std::string &text, DiagnosticEngine &diags) {
  ArchDescription desc;
  bool inCategories = false;
  std::uint32_t lineNo = 0;
  bool ok = true;
  for (const std::string &rawLine : splitString(text, '\n')) {
    ++lineNo;
    std::string_view line = trim(rawLine);
    if (line.empty() || line.front() == '#')
      continue;
    if (line == "[categories]") {
      inCategories = true;
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      diags.error({lineNo, 1}, "architecture description: expected "
                               "'key = value', got: " +
                                   std::string(line));
      ok = false;
      continue;
    }
    std::string key{trim(line.substr(0, eq))};
    std::string value{trim(line.substr(eq + 1))};
    if (inCategories) {
      auto op = isa::opcodeFromName(key);
      auto cat = isa::categoryFromName(value);
      if (!op) {
        diags.error({lineNo, 1}, "unknown opcode '" + key + "'");
        ok = false;
        continue;
      }
      if (!cat) {
        diags.error({lineNo, 1}, "unknown instruction category '" + value +
                                     "'");
        ok = false;
        continue;
      }
      desc.overrideCategory(*op, *cat);
      continue;
    }
    auto parseNum = [&](double &out) {
      char *end = nullptr;
      out = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size()) {
        diags.error({lineNo, 1},
                    "invalid numeric value for '" + key + "': " + value);
        ok = false;
      }
    };
    if (key == "name") {
      desc.name = value;
    } else if (key == "cores") {
      double v = 0;
      parseNum(v);
      desc.cores = static_cast<int>(v);
    } else if (key == "cache_line_bytes") {
      double v = 0;
      parseNum(v);
      desc.cacheLineBytes = static_cast<int>(v);
    } else if (key == "vector_width_doubles") {
      double v = 0;
      parseNum(v);
      desc.vectorWidthDoubles = static_cast<int>(v);
    } else if (key == "clock_ghz") {
      parseNum(desc.clockGHz);
    } else if (key == "mem_bandwidth_gbs") {
      parseNum(desc.memBandwidthGBs);
    } else if (key == "flops_per_cycle") {
      parseNum(desc.flopsPerCycle);
    } else {
      diags.warning({lineNo, 1},
                    "unknown architecture key '" + key + "' ignored");
    }
  }
  if (!ok)
    return std::nullopt;
  return desc;
}

std::string ArchDescription::str() const {
  std::string out;
  out += "name = " + name + "\n";
  out += "cores = " + std::to_string(cores) + "\n";
  out += "cache_line_bytes = " + std::to_string(cacheLineBytes) + "\n";
  out += "vector_width_doubles = " + std::to_string(vectorWidthDoubles) + "\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "clock_ghz = %g\n", clockGHz);
  out += buf;
  std::snprintf(buf, sizeof buf, "mem_bandwidth_gbs = %g\n", memBandwidthGBs);
  out += buf;
  std::snprintf(buf, sizeof buf, "flops_per_cycle = %g\n", flopsPerCycle);
  out += buf;
  if (!overrides_.empty()) {
    out += "[categories]\n";
    for (const auto &[op, cat] : overrides_)
      out += isa::opcodeName(op) + " = " + isa::categoryName(cat) + "\n";
  }
  return out;
}

const ArchDescription &haswellDescription() {
  static const ArchDescription desc = [] {
    ArchDescription d;
    // Arya: two Intel Xeon E5-2699v3 2.30GHz 18-core Haswell CPUs.
    d.name = "haswell-arya";
    d.cores = 36;
    d.cacheLineBytes = 64;
    d.vectorWidthDoubles = 2; // models are SSE2-based like the paper's
    d.clockGHz = 2.3;
    d.memBandwidthGBs = 68;
    d.flopsPerCycle = 16;
    return d;
  }();
  return desc;
}

const ArchDescription &nehalemDescription() {
  static const ArchDescription desc = [] {
    ArchDescription d;
    // Frankenstein: two Intel Xeon E5620 2.40GHz 4-core Nehalem CPUs.
    d.name = "nehalem-frankenstein";
    d.cores = 8;
    d.cacheLineBytes = 64;
    d.vectorWidthDoubles = 2;
    d.clockGHz = 2.4;
    d.memBandwidthGBs = 25;
    d.flopsPerCycle = 4;
    return d;
  }();
  return desc;
}

} // namespace mira::arch
