#include "mir/mir.h"

namespace mira::mir {

const char *toString(MirType type) {
  switch (type) {
  case MirType::I64:
    return "i64";
  case MirType::F64:
    return "f64";
  case MirType::F32:
    return "f32";
  case MirType::Ptr:
    return "ptr";
  case MirType::Void:
    return "void";
  }
  return "?";
}

std::size_t typeSize(MirType type) {
  switch (type) {
  case MirType::I64:
  case MirType::F64:
  case MirType::Ptr:
    return 8;
  case MirType::F32:
    return 4;
  case MirType::Void:
    return 0;
  }
  return 0;
}

const char *toString(MirCmp cmp) {
  switch (cmp) {
  case MirCmp::Lt:
    return "<";
  case MirCmp::Le:
    return "<=";
  case MirCmp::Gt:
    return ">";
  case MirCmp::Ge:
    return ">=";
  case MirCmp::Eq:
    return "==";
  case MirCmp::Ne:
    return "!=";
  }
  return "?";
}

MirCmp negateCmp(MirCmp cmp) {
  switch (cmp) {
  case MirCmp::Lt:
    return MirCmp::Ge;
  case MirCmp::Le:
    return MirCmp::Gt;
  case MirCmp::Gt:
    return MirCmp::Le;
  case MirCmp::Ge:
    return MirCmp::Lt;
  case MirCmp::Eq:
    return MirCmp::Ne;
  case MirCmp::Ne:
    return MirCmp::Eq;
  }
  return MirCmp::Eq;
}

const char *toString(MirOp op) {
  switch (op) {
  case MirOp::Nop:
    return "nop";
  case MirOp::ConstI:
    return "const.i";
  case MirOp::ConstF:
    return "const.f";
  case MirOp::Copy:
    return "copy";
  case MirOp::Add:
    return "add";
  case MirOp::Sub:
    return "sub";
  case MirOp::Mul:
    return "mul";
  case MirOp::Div:
    return "div";
  case MirOp::Rem:
    return "rem";
  case MirOp::Neg:
    return "neg";
  case MirOp::IMin:
    return "imin";
  case MirOp::IMax:
    return "imax";
  case MirOp::And:
    return "and";
  case MirOp::Or:
    return "or";
  case MirOp::Xor:
    return "xor";
  case MirOp::Not:
    return "not";
  case MirOp::Shl:
    return "shl";
  case MirOp::Shr:
    return "shr";
  case MirOp::ICmp:
    return "icmp";
  case MirOp::FCmp:
    return "fcmp";
  case MirOp::FAdd:
    return "fadd";
  case MirOp::FSub:
    return "fsub";
  case MirOp::FMul:
    return "fmul";
  case MirOp::FDiv:
    return "fdiv";
  case MirOp::FNeg:
    return "fneg";
  case MirOp::FSqrt:
    return "fsqrt";
  case MirOp::FAbs:
    return "fabs";
  case MirOp::FMin:
    return "fmin";
  case MirOp::FMax:
    return "fmax";
  case MirOp::FHAdd:
    return "fhadd";
  case MirOp::FSplat:
    return "fsplat";
  case MirOp::Load:
    return "load";
  case MirOp::Store:
    return "store";
  case MirOp::Lea:
    return "lea";
  case MirOp::Alloca:
    return "alloca";
  case MirOp::Cast:
    return "cast";
  case MirOp::Jump:
    return "jump";
  case MirOp::Branch:
    return "branch";
  case MirOp::Ret:
    return "ret";
  case MirOp::Call:
    return "call";
  }
  return "?";
}

std::vector<VReg> MirInst::uses() const {
  std::vector<VReg> out;
  auto push = [&](VReg r) {
    if (r != kNoVReg)
      out.push_back(r);
  };
  switch (op) {
  case MirOp::Load:
  case MirOp::Lea:
    push(base);
    push(index);
    break;
  case MirOp::Store:
    push(a);
    push(base);
    push(index);
    break;
  case MirOp::Call:
    for (VReg r : args)
      push(r);
    break;
  case MirOp::Alloca:
    push(a);
    break;
  default:
    push(a);
    push(b);
    break;
  }
  return out;
}

VReg MirInst::def() const {
  switch (op) {
  case MirOp::Store:
  case MirOp::Jump:
  case MirOp::Branch:
  case MirOp::Ret:
  case MirOp::Nop:
    return kNoVReg;
  case MirOp::Call:
    return dst; // may be kNoVReg for void calls
  default:
    return dst;
  }
}

namespace {
std::string vregStr(VReg r) {
  return r == kNoVReg ? "_" : "%" + std::to_string(r);
}
std::string addrStr(const MirInst &inst) {
  std::string s = "[" + vregStr(inst.base);
  if (inst.index != kNoVReg)
    s += " + " + vregStr(inst.index) + "*" + std::to_string(inst.scale);
  if (inst.disp)
    s += " + " + std::to_string(inst.disp);
  return s + "]";
}
} // namespace

std::string MirInst::str() const {
  std::string s;
  if (def() != kNoVReg)
    s += vregStr(dst) + " = ";
  s += toString(op);
  if (packed)
    s += ".packed";
  switch (op) {
  case MirOp::ConstI:
    s += " " + std::to_string(imm);
    break;
  case MirOp::ConstF:
    s += " " + std::to_string(fimm);
    break;
  case MirOp::ICmp:
  case MirOp::FCmp:
    s += " " + vregStr(a) + " " + toString(cmp) + " " + vregStr(b);
    break;
  case MirOp::Load:
  case MirOp::Lea:
    s += " " + addrStr(*this);
    break;
  case MirOp::Store:
    s += " " + addrStr(*this) + " <- " + vregStr(a);
    break;
  case MirOp::Alloca:
    s += " count=" + vregStr(a) + " elem=" + std::to_string(imm);
    break;
  case MirOp::Jump:
    s += " bb" + std::to_string(target);
    break;
  case MirOp::Branch:
    s += " " + vregStr(a) + " ? bb" + std::to_string(target) + " : bb" +
         std::to_string(targetFalse);
    break;
  case MirOp::Ret:
    if (a != kNoVReg)
      s += " " + vregStr(a);
    break;
  case MirOp::Call: {
    s += " " + callee + "(";
    for (std::size_t i = 0; i < args.size(); ++i)
      s += (i ? ", " : "") + vregStr(args[i]);
    s += ")";
    if (externCall)
      s += " [extern]";
    break;
  }
  default:
    if (a != kNoVReg)
      s += " " + vregStr(a);
    if (b != kNoVReg)
      s += ", " + vregStr(b);
    break;
  }
  if (line)
    s += "  ; line " + std::to_string(line);
  return s;
}

std::vector<std::uint32_t> MirBlock::successors() const {
  const MirInst *term = terminator();
  if (!term)
    return {};
  switch (term->op) {
  case MirOp::Jump:
    return {term->target};
  case MirOp::Branch:
    return {term->target, term->targetFalse};
  default:
    return {};
  }
}

std::string MirFunction::str() const {
  std::string s = "func " + name + "(";
  for (std::size_t i = 0; i < paramRegs.size(); ++i) {
    if (i)
      s += ", ";
    s += "%" + std::to_string(paramRegs[i]) + ":" +
         toString(paramTypes[i]);
  }
  s += ") -> " + std::string(toString(retType)) + "\n";
  for (const MirBlock &b : blocks) {
    s += "bb" + std::to_string(b.id) + ":\n";
    for (const MirInst &inst : b.insts)
      s += "  " + inst.str() + "\n";
  }
  return s;
}

MirFunction *MirModule::find(const std::string &name) {
  for (MirFunction &f : functions)
    if (f.name == name)
      return &f;
  return nullptr;
}

const MirFunction *MirModule::find(const std::string &name) const {
  for (const MirFunction &f : functions)
    if (f.name == name)
      return &f;
  return nullptr;
}

std::string MirModule::str() const {
  std::string s;
  for (const MirFunction &f : functions)
    s += f.str() + "\n";
  return s;
}

} // namespace mira::mir
