#include "mir/vectorize.h"

#include <algorithm>
#include <map>
#include <set>

namespace mira::mir {

namespace {

struct LoopRegion {
  std::set<std::uint32_t> blocks; // header + body + latch
  std::set<VReg> defs;
};

LoopRegion regionOf(const MirFunction &fn, const LoopDescriptor &loop) {
  LoopRegion r;
  r.blocks.insert(loop.header);
  r.blocks.insert(loop.latch);
  for (std::uint32_t b : loop.bodyBlocks)
    r.blocks.insert(b);
  for (std::uint32_t b : r.blocks)
    for (const MirInst &inst : fn.blocks[b].insts)
      if (inst.def() != kNoVReg)
        r.defs.insert(inst.def());
  return r;
}

bool isInnermost(const MirFunction &fn, const LoopDescriptor &loop) {
  for (const LoopDescriptor &other : fn.loops) {
    if (&other == &loop)
      continue;
    if (loop.bodyBlocks.count(other.header))
      return false;
  }
  return true;
}

struct Plan {
  std::vector<std::size_t> packedInsts; // indices into body insts
  VReg reductionAcc = kNoVReg;          // scalar accumulator (if any)
  std::size_t reductionAddIdx = 0;      // FAdd index in body
  std::size_t reductionCopyIdx = 0;     // Copy acc = t index in body
  std::set<VReg> invariantScalars;      // f64 invariants needing a splat
};

/// Check eligibility of the single body block and build the rewrite plan.
bool planLoop(const MirFunction &fn, const LoopDescriptor &loop,
              const LoopRegion &region, Plan &plan) {
  if (loop.step != 1 || loop.rel != MirCmp::Lt || loop.vectorized)
    return false;
  if (loop.bodyBlocks.size() != 1)
    return false;
  std::uint32_t bodyId = *loop.bodyBlocks.begin();
  const MirBlock &body = fn.blocks[bodyId];
  if (body.insts.empty())
    return false;

  auto isInvariant = [&](VReg r) { return !region.defs.count(r); };

  std::set<VReg> blockDefs;
  for (std::size_t i = 0; i < body.insts.size(); ++i) {
    const MirInst &inst = body.insts[i];
    if (inst.op == MirOp::Jump) {
      if (i + 1 != body.insts.size() || inst.target != loop.latch)
        return false;
      continue;
    }
    switch (inst.op) {
    case MirOp::Load:
      if (inst.type != MirType::F64 || inst.index != loop.induction ||
          inst.scale != 8 || !isInvariant(inst.base))
        return false;
      plan.packedInsts.push_back(i);
      break;
    case MirOp::Store:
      if (inst.type != MirType::F64 || inst.index != loop.induction ||
          inst.scale != 8 || !isInvariant(inst.base))
        return false;
      if (!blockDefs.count(inst.a)) {
        if (!(isInvariant(inst.a) && fn.typeOf(inst.a) == MirType::F64))
          return false;
        plan.invariantScalars.insert(inst.a);
      }
      plan.packedInsts.push_back(i);
      break;
    case MirOp::FAdd:
    case MirOp::FSub:
    case MirOp::FMul:
    case MirOp::FDiv:
    case MirOp::FMin:
    case MirOp::FMax:
    case MirOp::FNeg:
    case MirOp::Copy:
    case MirOp::ConstF: {
      if (inst.type != MirType::F64 || inst.packed)
        return false;
      for (VReg use : inst.uses()) {
        if (use == loop.induction)
          return false; // induction may appear only as an index
        if (!blockDefs.count(use)) {
          if (region.defs.count(use)) {
            // Loop-carried value: only allowed as the reduction, matched
            // below.
            continue;
          }
          if (fn.typeOf(use) != MirType::F64)
            return false;
          plan.invariantScalars.insert(use);
        }
      }
      plan.packedInsts.push_back(i);
      break;
    }
    default:
      return false; // integer ops, calls, branches: not vectorizable
    }
    if (inst.def() != kNoVReg)
      blockDefs.insert(inst.def());
  }

  // Loop-carried scalars: find registers defined both inside the body and
  // used before their in-body definition (classic reduction shape:
  //   t = fadd acc, x; ...; copy acc = t).
  std::set<VReg> carried;
  {
    std::set<VReg> defined;
    for (const MirInst &inst : body.insts) {
      for (VReg use : inst.uses())
        if (!defined.count(use) && blockDefs.count(use))
          carried.insert(use);
      if (inst.def() != kNoVReg)
        defined.insert(inst.def());
    }
  }
  if (carried.size() > 1)
    return false;
  if (carried.size() == 1) {
    VReg acc = *carried.begin();
    if (acc == loop.induction || fn.typeOf(acc) != MirType::F64)
      return false;
    // Match: exactly one FAdd using acc, and exactly one Copy acc = tmp
    // where tmp is that FAdd's result; acc has no other body uses/defs.
    int addIdx = -1, copyIdx = -1;
    for (std::size_t i = 0; i < body.insts.size(); ++i) {
      const MirInst &inst = body.insts[i];
      for (VReg use : inst.uses()) {
        if (use != acc)
          continue;
        if (inst.op == MirOp::FAdd && addIdx < 0 &&
            (inst.a == acc) != (inst.b == acc)) {
          addIdx = static_cast<int>(i);
        } else if (inst.op == MirOp::Copy) {
          return false; // acc copied elsewhere
        } else if (addIdx >= 0 && static_cast<int>(i) != addIdx) {
          return false; // second use
        } else if (addIdx < 0) {
          return false;
        }
      }
      if (inst.def() == acc) {
        if (inst.op != MirOp::Copy || copyIdx >= 0 || addIdx < 0 ||
            inst.a != body.insts[static_cast<std::size_t>(addIdx)].dst)
          return false;
        copyIdx = static_cast<int>(i);
      }
    }
    if (addIdx < 0 || copyIdx < 0)
      return false;
    plan.reductionAcc = acc;
    plan.reductionAddIdx = static_cast<std::size_t>(addIdx);
    plan.reductionCopyIdx = static_cast<std::size_t>(copyIdx);
  }
  return true;
}

} // namespace

std::size_t vectorizeLoops(MirFunction &fn) {
  std::size_t vectorizedCount = 0;
  std::size_t numLoops = fn.loops.size();
  for (std::size_t li = 0; li < numLoops; ++li) {
    // Copy the descriptor: we will append to fn.loops (invalidates refs).
    LoopDescriptor loop = fn.loops[li];
    if (!isInnermost(fn, loop))
      continue;
    LoopRegion region = regionOf(fn, loop);
    Plan plan;
    if (!planLoop(fn, loop, region, plan))
      continue;

    std::uint32_t bodyId = *loop.bodyBlocks.begin();
    std::uint32_t line = loop.sourceLine;

    // ---- 1. Clone the scalar loop as the remainder. ----
    std::uint32_t mainExit = fn.newBlock();
    std::uint32_t rHeader = fn.newBlock();
    std::uint32_t rBody = fn.newBlock();
    std::uint32_t rLatch = fn.newBlock();

    {
      MirBlock &hdr = fn.blocks[rHeader];
      MirInst cmpInst;
      cmpInst.op = MirOp::ICmp;
      cmpInst.type = MirType::I64;
      cmpInst.cmp = MirCmp::Lt;
      cmpInst.a = loop.induction;
      cmpInst.b = loop.limit;
      cmpInst.dst = fn.newVReg(MirType::I64);
      cmpInst.line = line;
      hdr.insts.push_back(cmpInst);
      MirInst br;
      br.op = MirOp::Branch;
      br.a = cmpInst.dst;
      br.target = rBody;
      br.targetFalse = loop.exit;
      br.line = line;
      hdr.insts.push_back(br);
    }
    {
      MirBlock &b = fn.blocks[rBody];
      b.insts = fn.blocks[bodyId].insts; // scalar clone, same registers
      if (!b.insts.empty() && b.insts.back().op == MirOp::Jump)
        b.insts.back().target = rLatch;
    }
    {
      MirBlock &l = fn.blocks[rLatch];
      MirInst one;
      one.op = MirOp::ConstI;
      one.type = MirType::I64;
      one.dst = fn.newVReg(MirType::I64);
      one.imm = 1;
      one.line = line;
      l.insts.push_back(one);
      MirInst add;
      add.op = MirOp::Add;
      add.type = MirType::I64;
      add.a = loop.induction;
      add.b = one.dst;
      add.dst = loop.induction;
      add.line = line;
      l.insts.push_back(add);
      MirInst back;
      back.op = MirOp::Jump;
      back.target = rHeader;
      back.line = line;
      l.insts.push_back(back);
    }

    // ---- 2. Preheader: vecEnd = limit - ((limit - ind) & 1); splats. ----
    std::map<VReg, VReg> splatOf;
    {
      MirBlock &pre = fn.blocks[loop.preheader];
      // Insert before the terminator.
      std::vector<MirInst> tail;
      if (!pre.insts.empty() && pre.insts.back().isTerminator()) {
        tail.push_back(pre.insts.back());
        pre.insts.pop_back();
      }
      MirInst cnt;
      cnt.op = MirOp::Sub;
      cnt.type = MirType::I64;
      cnt.a = loop.limit;
      cnt.b = loop.induction;
      cnt.dst = fn.newVReg(MirType::I64);
      cnt.line = line;
      pre.insts.push_back(cnt);
      MirInst oneC;
      oneC.op = MirOp::ConstI;
      oneC.type = MirType::I64;
      oneC.dst = fn.newVReg(MirType::I64);
      oneC.imm = 1;
      oneC.line = line;
      pre.insts.push_back(oneC);
      MirInst rem;
      rem.op = MirOp::And;
      rem.type = MirType::I64;
      rem.a = cnt.dst;
      rem.b = oneC.dst;
      rem.dst = fn.newVReg(MirType::I64);
      rem.line = line;
      pre.insts.push_back(rem);
      MirInst vecEnd;
      vecEnd.op = MirOp::Sub;
      vecEnd.type = MirType::I64;
      vecEnd.a = loop.limit;
      vecEnd.b = rem.dst;
      vecEnd.dst = fn.newVReg(MirType::I64);
      vecEnd.line = line;
      pre.insts.push_back(vecEnd);

      for (VReg inv : plan.invariantScalars) {
        MirInst splat;
        splat.op = MirOp::FSplat;
        splat.type = MirType::F64;
        splat.packed = true;
        splat.a = inv;
        splat.dst = fn.newVReg(MirType::F64);
        splat.line = line;
        pre.insts.push_back(splat);
        splatOf[inv] = splat.dst;
      }

      VReg vacc = kNoVReg;
      if (plan.reductionAcc != kNoVReg) {
        MirInst z;
        z.op = MirOp::ConstF;
        z.type = MirType::F64;
        z.packed = true;
        z.fimm = 0;
        z.dst = fn.newVReg(MirType::F64);
        z.line = line;
        pre.insts.push_back(z);
        vacc = z.dst;
      }
      for (MirInst &t : tail)
        pre.insts.push_back(std::move(t));

      // ---- 3. Rewrite the main loop. ----
      MirBlock &hdr = fn.blocks[loop.header];
      for (MirInst &inst : hdr.insts)
        if (inst.op == MirOp::ICmp && inst.a == loop.induction &&
            inst.b == loop.limit)
          inst.b = vecEnd.dst;
      // False edge of the main header goes to the epilogue, then the
      // remainder loop.
      for (MirInst &inst : hdr.insts)
        if (inst.op == MirOp::Branch && inst.targetFalse == loop.exit)
          inst.targetFalse = mainExit;

      MirBlock &latch = fn.blocks[loop.latch];
      for (MirInst &inst : latch.insts)
        if (inst.op == MirOp::ConstI && inst.imm == 1)
          inst.imm = 2;

      MirBlock &body = fn.blocks[bodyId];
      for (std::size_t idx : plan.packedInsts) {
        MirInst &inst = body.insts[idx];
        inst.packed = true;
        for (auto &[inv, splat] : splatOf) {
          if (inst.op == MirOp::Store && inst.a == inv)
            inst.a = splat;
          if (inst.op != MirOp::Load && inst.op != MirOp::Store) {
            if (inst.a == inv)
              inst.a = splat;
            if (inst.b == inv)
              inst.b = splat;
          }
        }
      }
      if (plan.reductionAcc != kNoVReg) {
        MirInst &add = body.insts[plan.reductionAddIdx];
        if (add.a == plan.reductionAcc)
          add.a = vacc;
        else
          add.b = vacc;
        MirInst &copy = body.insts[plan.reductionCopyIdx];
        copy.dst = vacc;
      }

      // ---- 4. Epilogue block. ----
      MirBlock &ep = fn.blocks[mainExit];
      if (plan.reductionAcc != kNoVReg) {
        MirInst h;
        h.op = MirOp::FHAdd;
        h.type = MirType::F64;
        h.a = vacc;
        h.dst = fn.newVReg(MirType::F64);
        h.line = line;
        ep.insts.push_back(h);
        MirInst addBack;
        addBack.op = MirOp::FAdd;
        addBack.type = MirType::F64;
        addBack.a = plan.reductionAcc;
        addBack.b = h.dst;
        addBack.dst = plan.reductionAcc;
        addBack.line = line;
        ep.insts.push_back(addBack);
      }
      MirInst j;
      j.op = MirOp::Jump;
      j.target = rHeader;
      j.line = line;
      ep.insts.push_back(j);

      // ---- 5. Update descriptors. ----
      LoopDescriptor remainder;
      remainder.preheader = mainExit;
      remainder.header = rHeader;
      remainder.latch = rLatch;
      remainder.exit = loop.exit;
      remainder.bodyBlocks = {rBody};
      remainder.induction = loop.induction;
      remainder.limit = loop.limit;
      remainder.rel = MirCmp::Lt;
      remainder.step = 1;
      remainder.sourceLine = loop.sourceLine;
      remainder.ffEligible = loop.ffEligible;

      loop.vectorized = true;
      loop.step = 2;
      loop.limit = vecEnd.dst;
      loop.exit = mainExit;
      loop.remainderLoop = static_cast<int>(fn.loops.size());
      fn.loops[li] = loop;
      fn.loops.push_back(std::move(remainder));
    }
    ++vectorizedCount;
  }
  return vectorizedCount;
}

} // namespace mira::mir
