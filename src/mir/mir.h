// MIR: the three-address mid-level IR of the embedded compiler.
//
// The AST is lowered to MIR, optimized (constant folding, copy
// propagation, DCE, bound hoisting, loop vectorization), then lowered to
// the synthetic machine ISA. The gap between source statements and the
// optimized binary is exactly what Mira exploits by analyzing both sides
// (paper Sec. I: "code transformations performed by optimizing compilers
// would cause non-negligible effects on the analysis accuracy").
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace mira::mir {

using VReg = std::uint32_t;
inline constexpr VReg kNoVReg = 0xFFFFFFFF;

enum class MirType : std::uint8_t { I64, F64, F32, Ptr, Void };

const char *toString(MirType type);
/// Byte size of a value of this type in simulator memory.
std::size_t typeSize(MirType type);

enum class MirCmp : std::uint8_t { Lt, Le, Gt, Ge, Eq, Ne };
const char *toString(MirCmp cmp);
MirCmp negateCmp(MirCmp cmp);

enum class MirOp : std::uint8_t {
  Nop,
  ConstI, // dst = imm
  ConstF, // dst = fimm
  Copy,   // dst = a
  // integer arithmetic (I64)
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Neg,
  IMin,
  IMax,
  // bitwise
  And,
  Or,
  Xor,
  Not,
  Shl,
  Shr,
  // comparisons: dst(I64) = a REL b
  ICmp,
  FCmp,
  // floating point (type F64 or F32; `packed` = 2-lane SSE2)
  FAdd,
  FSub,
  FMul,
  FDiv,
  FNeg,
  FSqrt,
  FAbs,
  FMin,
  FMax,
  FHAdd,  // dst = lane0(a) + lane1(a): reduces a packed accumulator
  FSplat, // dst(packed) = {a.lane0, a.lane0}: broadcast a scalar
  // memory: addr = base + index*scale + disp
  Load,  // dst = *(type*)addr
  Store, // *(type*)addr = a
  Lea,   // dst(Ptr) = addr
  Alloca, // dst(Ptr) = allocate a (count) * imm (element size) bytes
  // conversions
  Cast, // dst(type) = convert a (fromType)
  // control flow (block terminators)
  Jump,   // goto target
  Branch, // if (a != 0) goto target else goto targetFalse
  Ret,    // return a (or nothing when a == kNoVReg)
  // calls
  Call, // dst = callee(args...); externCall => opaque library function
};

const char *toString(MirOp op);

struct MirInst {
  MirOp op = MirOp::Nop;
  MirType type = MirType::I64;
  VReg dst = kNoVReg;
  VReg a = kNoVReg;
  VReg b = kNoVReg;
  std::int64_t imm = 0;
  double fimm = 0;
  MirCmp cmp = MirCmp::Lt;
  MirType fromType = MirType::I64; // Cast source type

  // addressing for Load/Store/Lea: base + index*scale + disp
  VReg base = kNoVReg;
  VReg index = kNoVReg;
  std::int32_t scale = 1;
  std::int32_t disp = 0;

  // control flow
  std::uint32_t target = 0;
  std::uint32_t targetFalse = 0;

  // calls
  std::string callee; // qualified name
  std::vector<VReg> args;
  bool externCall = false;

  /// SSE2 packed (two f64 lanes) — set by the vectorizer.
  bool packed = false;

  /// Source line for the DWARF-style line table.
  std::uint32_t line = 0;

  bool isTerminator() const {
    return op == MirOp::Jump || op == MirOp::Branch || op == MirOp::Ret;
  }
  /// Registers read by this instruction.
  std::vector<VReg> uses() const;
  /// Register written (kNoVReg if none).
  VReg def() const;
  bool hasSideEffects() const {
    return op == MirOp::Store || op == MirOp::Call || op == MirOp::Alloca ||
           isTerminator();
  }

  std::string str() const;
};

struct MirBlock {
  std::uint32_t id = 0;
  std::vector<MirInst> insts;

  const MirInst *terminator() const {
    return insts.empty() || !insts.back().isTerminator() ? nullptr
                                                         : &insts.back();
  }
  std::vector<std::uint32_t> successors() const;
};

/// A natural counted loop recognized at lowering time (from the source
/// SCoP) and updated by the vectorizer. Drives vectorization, invariant
/// hoisting, machine loop emission, and the simulator's fast-forward mode.
struct LoopDescriptor {
  std::uint32_t preheader = 0;
  std::uint32_t header = 0;     // contains ICmp + Branch only
  std::uint32_t latch = 0;      // induction += step; Jump header
  std::uint32_t exit = 0;
  std::set<std::uint32_t> bodyBlocks; // excludes header and latch
  VReg induction = kNoVReg;
  VReg limit = kNoVReg; // hoisted loop-invariant bound (in preheader)
  MirCmp rel = MirCmp::Lt; // induction REL limit continues the loop
  std::int64_t step = 1;
  std::uint32_t sourceLine = 0;
  /// '#pragma @Simulate {ff:yes}': the workload asserts that skipping this
  /// loop's memory side effects cannot change later control flow, enabling
  /// simulator fast-forward (validated against exact mode in tests).
  bool ffEligible = false;
  /// Set by the vectorizer on the main vector loop.
  bool vectorized = false;
  /// Index of the scalar remainder loop descriptor (or -1).
  int remainderLoop = -1;
};

struct MirFunction {
  std::string name; // qualified source name
  std::vector<VReg> paramRegs;
  std::vector<MirType> paramTypes;
  MirType retType = MirType::Void;
  std::vector<MirBlock> blocks; // blocks[0] is the entry
  std::vector<MirType> vregTypes;
  std::vector<LoopDescriptor> loops;

  VReg newVReg(MirType type) {
    vregTypes.push_back(type);
    return static_cast<VReg>(vregTypes.size() - 1);
  }
  MirType typeOf(VReg r) const { return vregTypes[r]; }
  std::uint32_t newBlock() {
    MirBlock b;
    b.id = static_cast<std::uint32_t>(blocks.size());
    blocks.push_back(std::move(b));
    return blocks.back().id;
  }

  std::string str() const;
};

struct MirModule {
  std::vector<MirFunction> functions;

  MirFunction *find(const std::string &name);
  const MirFunction *find(const std::string &name) const;
  std::string str() const;
};

} // namespace mira::mir
