#include "mir/passes.h"

#include <cmath>
#include <map>
#include <set>

namespace mira::mir {

namespace {

struct ConstValue {
  bool isFloat = false;
  std::int64_t i = 0;
  double f = 0;
};

bool evalICmp(MirCmp cmp, std::int64_t a, std::int64_t b) {
  switch (cmp) {
  case MirCmp::Lt:
    return a < b;
  case MirCmp::Le:
    return a <= b;
  case MirCmp::Gt:
    return a > b;
  case MirCmp::Ge:
    return a >= b;
  case MirCmp::Eq:
    return a == b;
  case MirCmp::Ne:
    return a != b;
  }
  return false;
}

bool evalFCmp(MirCmp cmp, double a, double b) {
  switch (cmp) {
  case MirCmp::Lt:
    return a < b;
  case MirCmp::Le:
    return a <= b;
  case MirCmp::Gt:
    return a > b;
  case MirCmp::Ge:
    return a >= b;
  case MirCmp::Eq:
    return a == b;
  case MirCmp::Ne:
    return a != b;
  }
  return false;
}

} // namespace

std::size_t foldConstants(MirFunction &fn) {
  std::size_t rewritten = 0;
  for (MirBlock &block : fn.blocks) {
    std::map<VReg, ConstValue> known;
    for (MirInst &inst : block.insts) {
      auto lookupI = [&](VReg r, std::int64_t &out) {
        auto it = known.find(r);
        if (it == known.end() || it->second.isFloat)
          return false;
        out = it->second.i;
        return true;
      };
      auto lookupF = [&](VReg r, double &out) {
        auto it = known.find(r);
        if (it == known.end() || !it->second.isFloat)
          return false;
        out = it->second.f;
        return true;
      };

      std::int64_t ia = 0, ib = 0;
      double fa = 0, fb = 0;
      bool replaced = false;

      switch (inst.op) {
      case MirOp::Add:
      case MirOp::Sub:
      case MirOp::Mul:
      case MirOp::Div:
      case MirOp::Rem:
      case MirOp::And:
      case MirOp::Or:
      case MirOp::Xor:
      case MirOp::Shl:
      case MirOp::Shr:
      case MirOp::IMin:
      case MirOp::IMax:
        if (lookupI(inst.a, ia) && lookupI(inst.b, ib)) {
          std::int64_t v = 0;
          bool ok = true;
          switch (inst.op) {
          case MirOp::Add:
            v = ia + ib;
            break;
          case MirOp::Sub:
            v = ia - ib;
            break;
          case MirOp::Mul:
            v = ia * ib;
            break;
          case MirOp::Div:
            ok = ib != 0;
            if (ok)
              v = ia / ib;
            break;
          case MirOp::Rem:
            ok = ib != 0;
            if (ok)
              v = ia % ib;
            break;
          case MirOp::And:
            v = ia & ib;
            break;
          case MirOp::Or:
            v = ia | ib;
            break;
          case MirOp::Xor:
            v = ia ^ ib;
            break;
          case MirOp::Shl:
            v = ia << ib;
            break;
          case MirOp::Shr:
            v = ia >> ib;
            break;
          case MirOp::IMin:
            v = std::min(ia, ib);
            break;
          case MirOp::IMax:
            v = std::max(ia, ib);
            break;
          default:
            ok = false;
          }
          if (ok) {
            VReg dst = inst.dst;
            std::uint32_t line = inst.line;
            inst = MirInst{};
            inst.op = MirOp::ConstI;
            inst.type = MirType::I64;
            inst.dst = dst;
            inst.imm = v;
            inst.line = line;
            replaced = true;
            ++rewritten;
          }
        }
        break;
      case MirOp::Neg:
        if (lookupI(inst.a, ia)) {
          VReg dst = inst.dst;
          std::uint32_t line = inst.line;
          inst = MirInst{};
          inst.op = MirOp::ConstI;
          inst.type = MirType::I64;
          inst.dst = dst;
          inst.imm = -ia;
          inst.line = line;
          replaced = true;
          ++rewritten;
        }
        break;
      case MirOp::FAdd:
      case MirOp::FSub:
      case MirOp::FMul:
      case MirOp::FDiv:
        if (!inst.packed && lookupF(inst.a, fa) && lookupF(inst.b, fb)) {
          double v = 0;
          switch (inst.op) {
          case MirOp::FAdd:
            v = fa + fb;
            break;
          case MirOp::FSub:
            v = fa - fb;
            break;
          case MirOp::FMul:
            v = fa * fb;
            break;
          case MirOp::FDiv:
            v = fa / fb;
            break;
          default:
            break;
          }
          MirType t = inst.type;
          VReg dst = inst.dst;
          std::uint32_t line = inst.line;
          inst = MirInst{};
          inst.op = MirOp::ConstF;
          inst.type = t;
          inst.dst = dst;
          inst.fimm = v;
          inst.line = line;
          replaced = true;
          ++rewritten;
        }
        break;
      case MirOp::ICmp:
        if (lookupI(inst.a, ia) && lookupI(inst.b, ib)) {
          VReg dst = inst.dst;
          std::uint32_t line = inst.line;
          bool v = evalICmp(inst.cmp, ia, ib);
          inst = MirInst{};
          inst.op = MirOp::ConstI;
          inst.type = MirType::I64;
          inst.dst = dst;
          inst.imm = v ? 1 : 0;
          inst.line = line;
          replaced = true;
          ++rewritten;
        }
        break;
      case MirOp::FCmp:
        if (lookupF(inst.a, fa) && lookupF(inst.b, fb)) {
          VReg dst = inst.dst;
          std::uint32_t line = inst.line;
          bool v = evalFCmp(inst.cmp, fa, fb);
          inst = MirInst{};
          inst.op = MirOp::ConstI;
          inst.type = MirType::I64;
          inst.dst = dst;
          inst.imm = v ? 1 : 0;
          inst.line = line;
          replaced = true;
          ++rewritten;
        }
        break;
      case MirOp::Copy: {
        auto it = known.find(inst.a);
        if (it != known.end()) {
          ConstValue cv = it->second;
          VReg dst = inst.dst;
          MirType t = inst.type;
          std::uint32_t line = inst.line;
          inst = MirInst{};
          inst.op = cv.isFloat ? MirOp::ConstF : MirOp::ConstI;
          inst.type = t;
          inst.dst = dst;
          inst.imm = cv.i;
          inst.fimm = cv.f;
          inst.line = line;
          replaced = true;
          ++rewritten;
        }
        break;
      }
      default:
        break;
      }

      // Update known-constants map.
      VReg def = inst.def();
      if (def != kNoVReg) {
        if (inst.op == MirOp::ConstI && !inst.packed) {
          known[def] = ConstValue{false, inst.imm, 0};
        } else if (inst.op == MirOp::ConstF && !inst.packed) {
          known[def] = ConstValue{true, 0, inst.fimm};
        } else {
          known.erase(def);
        }
      }
      (void)replaced;
    }
  }
  return rewritten;
}

std::size_t propagateCopies(MirFunction &fn) {
  std::size_t rewritten = 0;
  for (MirBlock &block : fn.blocks) {
    std::map<VReg, VReg> alias; // dst -> src
    for (MirInst &inst : block.insts) {
      // Rewrite uses through the alias map.
      auto rewrite = [&](VReg &r) {
        auto it = alias.find(r);
        if (it != alias.end()) {
          r = it->second;
          ++rewritten;
        }
      };
      switch (inst.op) {
      case MirOp::Load:
      case MirOp::Lea:
        rewrite(inst.base);
        if (inst.index != kNoVReg)
          rewrite(inst.index);
        break;
      case MirOp::Store:
        rewrite(inst.a);
        rewrite(inst.base);
        if (inst.index != kNoVReg)
          rewrite(inst.index);
        break;
      case MirOp::Call:
        for (VReg &r : inst.args)
          rewrite(r);
        break;
      default:
        if (inst.a != kNoVReg)
          rewrite(inst.a);
        if (inst.b != kNoVReg)
          rewrite(inst.b);
        break;
      }

      VReg def = inst.def();
      if (def != kNoVReg) {
        // Any alias pointing at the redefined register is invalid now, as
        // is an alias FOR the redefined register.
        for (auto it = alias.begin(); it != alias.end();) {
          if (it->second == def || it->first == def)
            it = alias.erase(it);
          else
            ++it;
        }
        if (inst.op == MirOp::Copy && !inst.packed && inst.a != def)
          alias[def] = inst.a;
      }
    }
  }
  return rewritten;
}

std::size_t removeUnreachableBlocks(MirFunction &fn) {
  if (fn.blocks.empty())
    return 0;
  std::set<std::uint32_t> reachable;
  std::vector<std::uint32_t> work{0};
  while (!work.empty()) {
    std::uint32_t b = work.back();
    work.pop_back();
    if (!reachable.insert(b).second)
      continue;
    for (std::uint32_t s : fn.blocks[b].successors())
      work.push_back(s);
  }
  std::size_t removed = 0;
  for (MirBlock &block : fn.blocks) {
    if (!reachable.count(block.id) && !block.insts.empty()) {
      removed += block.insts.size();
      block.insts.clear();
    }
  }
  return removed;
}

std::size_t eliminateDeadCode(MirFunction &fn) {
  std::size_t removedTotal = 0;
  // Registers that must be preserved regardless of use counts: loop
  // descriptor anchors (induction/limit feed the canonical loop shape).
  std::set<VReg> pinned;
  for (const LoopDescriptor &loop : fn.loops) {
    pinned.insert(loop.induction);
    pinned.insert(loop.limit);
  }
  for (VReg p : fn.paramRegs)
    pinned.insert(p);

  while (true) {
    std::set<VReg> used;
    for (const MirBlock &block : fn.blocks)
      for (const MirInst &inst : block.insts)
        for (VReg r : inst.uses())
          used.insert(r);

    std::size_t removed = 0;
    for (MirBlock &block : fn.blocks) {
      std::vector<MirInst> kept;
      kept.reserve(block.insts.size());
      for (MirInst &inst : block.insts) {
        VReg def = inst.def();
        bool dead = !inst.hasSideEffects() && def != kNoVReg &&
                    !used.count(def) && !pinned.count(def);
        if (dead)
          ++removed;
        else
          kept.push_back(std::move(inst));
      }
      block.insts = std::move(kept);
    }
    removedTotal += removed;
    if (removed == 0)
      break;
  }
  return removedTotal;
}

} // namespace mira::mir
