#include "mir/lowering.h"

#include <cassert>
#include <functional>
#include <map>
#include <set>

#include "mir/passes.h"
#include "mir/vectorize.h"
#include "sema/loop_analysis.h"
#include "sema/sema.h"

namespace mira::mir {

using frontend::AssignOp;
using frontend::BinaryOp;
using frontend::ClassDecl;
using frontend::ExprKind;
using frontend::Expression;
using frontend::FunctionDecl;
using frontend::ScalarType;
using frontend::Statement;
using frontend::StmtKind;
using frontend::TranslationUnit;
using frontend::Type;
using frontend::UnaryOp;

namespace {

MirType mirTypeOf(const Type &t) {
  if (t.isPointer())
    return MirType::Ptr;
  switch (t.scalar) {
  case ScalarType::Void:
    return MirType::Void;
  case ScalarType::Bool:
  case ScalarType::Int:
  case ScalarType::Long:
    return MirType::I64;
  case ScalarType::Float:
    return MirType::F32;
  case ScalarType::Double:
    return MirType::F64;
  case ScalarType::Class:
    return MirType::Ptr; // objects are handled via storage pointers
  }
  return MirType::I64;
}

MirCmp mirCmpOf(BinaryOp op) {
  switch (op) {
  case BinaryOp::Lt:
    return MirCmp::Lt;
  case BinaryOp::Le:
    return MirCmp::Le;
  case BinaryOp::Gt:
    return MirCmp::Gt;
  case BinaryOp::Ge:
    return MirCmp::Ge;
  case BinaryOp::Eq:
    return MirCmp::Eq;
  case BinaryOp::Ne:
    return MirCmp::Ne;
  default:
    return MirCmp::Eq;
  }
}

/// Per-variable lowering info.
struct VarSlot {
  VReg reg = kNoVReg;
  MirType type = MirType::I64;
  bool isClassObject = false;     // reg holds a pointer to object storage
  std::string className;
  std::vector<VReg> dims;         // array dimensions (evaluated at decl)
  MirType elemType = MirType::I64; // array/pointer element type
};

/// An lvalue: either a register or a memory address.
struct LValue {
  bool isReg = true;
  VReg reg = kNoVReg; // when isReg
  VReg base = kNoVReg;
  VReg index = kNoVReg;
  std::int32_t scale = 1;
  std::int32_t disp = 0;
  MirType type = MirType::I64;
};

class FunctionLowerer {
public:
  FunctionLowerer(const TranslationUnit &unit, const FunctionDecl &decl,
                  DiagnosticEngine &diags)
      : unit_(unit), decl_(decl), diags_(diags) {}

  MirFunction run() {
    fn_.name = decl_.qualifiedName();
    fn_.retType = mirTypeOf(decl_.returnType);
    cur_ = fn_.newBlock();

    scopes_.emplace_back();
    if (decl_.isMethod()) {
      thisReg_ = fn_.newVReg(MirType::Ptr);
      fn_.paramRegs.push_back(thisReg_);
      fn_.paramTypes.push_back(MirType::Ptr);
    }
    for (const auto &p : decl_.params) {
      VarSlot slot;
      slot.type = mirTypeOf(p.type);
      slot.reg = fn_.newVReg(slot.type);
      if (p.type.isPointer()) {
        Type elem = p.type;
        --elem.pointerDepth;
        slot.elemType = mirTypeOf(elem);
      }
      if (p.type.scalar == ScalarType::Class && !p.type.isPointer())
        slot.isClassObject = true, slot.className = p.type.className;
      fn_.paramRegs.push_back(slot.reg);
      fn_.paramTypes.push_back(slot.type);
      scopes_.back()[p.name] = slot;
    }

    lowerStmt(*decl_.bodyStmt);
    // Ensure a terminator on the last block.
    if (!fn_.blocks[cur_].terminator()) {
      MirInst ret;
      ret.op = MirOp::Ret;
      ret.a = kNoVReg;
      if (fn_.retType != MirType::Void) {
        // Missing return in a value function: return zero.
        VReg z = emitConstI(0, 0);
        ret.a = castTo(z, MirType::I64, fn_.retType, 0);
      }
      append(ret);
    }
    return std::move(fn_);
  }

private:
  // ---------------------------------------------------------- utilities

  MirInst &append(MirInst inst) {
    fn_.blocks[cur_].insts.push_back(std::move(inst));
    return fn_.blocks[cur_].insts.back();
  }

  VReg emitConstI(std::int64_t v, std::uint32_t line) {
    MirInst i;
    i.op = MirOp::ConstI;
    i.type = MirType::I64;
    i.dst = fn_.newVReg(MirType::I64);
    i.imm = v;
    i.line = line;
    append(i);
    return i.dst;
  }

  VReg emitConstF(double v, MirType type, std::uint32_t line) {
    MirInst i;
    i.op = MirOp::ConstF;
    i.type = type;
    i.dst = fn_.newVReg(type);
    i.fimm = v;
    i.line = line;
    append(i);
    return i.dst;
  }

  VReg castTo(VReg value, MirType from, MirType to, std::uint32_t line) {
    if (from == to || to == MirType::Void)
      return value;
    if (from == MirType::Ptr || to == MirType::Ptr)
      return value; // pointers are 64-bit; no conversion instruction
    MirInst i;
    i.op = MirOp::Cast;
    i.type = to;
    i.fromType = from;
    i.a = value;
    i.dst = fn_.newVReg(to);
    i.line = line;
    append(i);
    return i.dst;
  }

  const VarSlot *lookup(const std::string &name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end())
        return &found->second;
    }
    return nullptr;
  }

  /// Field lookup in the enclosing class (methods access fields directly).
  std::optional<std::pair<std::int32_t, MirType>>
  fieldOf(const std::string &className, const std::string &field) const {
    const ClassDecl *cls = unit_.findClass(className);
    if (!cls)
      return std::nullopt;
    std::int32_t offset = 0;
    for (const auto &f : cls->fields) {
      if (f.name == field)
        return std::make_pair(offset, mirTypeOf(f.type));
      offset += 8; // every field occupies one 8-byte slot
    }
    return std::nullopt;
  }

  std::int64_t classSize(const std::string &className) const {
    const ClassDecl *cls = unit_.findClass(className);
    return cls ? static_cast<std::int64_t>(cls->fields.size()) * 8 : 8;
  }

  // --------------------------------------------------------- statements

  void lowerStmt(const Statement &stmt) {
    switch (stmt.kind) {
    case StmtKind::Compound:
      scopes_.emplace_back();
      for (const auto &s : stmt.body)
        lowerStmt(*s);
      scopes_.pop_back();
      break;
    case StmtKind::Decl:
      lowerDecl(stmt);
      break;
    case StmtKind::ExprStmt:
      if (stmt.expr)
        lowerExpr(*stmt.expr);
      break;
    case StmtKind::For:
      lowerFor(stmt);
      break;
    case StmtKind::While:
      lowerWhile(stmt);
      break;
    case StmtKind::If:
      lowerIf(stmt);
      break;
    case StmtKind::Return: {
      MirInst ret;
      ret.op = MirOp::Ret;
      ret.line = stmt.range.begin.line;
      ret.a = kNoVReg;
      if (stmt.expr) {
        VReg v = lowerExpr(*stmt.expr);
        ret.a = castTo(v, mirTypeOf(stmt.expr->type), fn_.retType,
                       ret.line);
      }
      append(ret);
      cur_ = fn_.newBlock(); // unreachable continuation
      break;
    }
    case StmtKind::Empty:
      break;
    }
  }

  void lowerDecl(const Statement &stmt) {
    std::uint32_t line = stmt.range.begin.line;
    VarSlot slot;
    if (!stmt.arrayDims.empty()) {
      // Local array: allocate dims product * element size.
      slot.type = MirType::Ptr;
      slot.elemType = mirTypeOf(stmt.declType);
      VReg count = kNoVReg;
      for (const auto &dim : stmt.arrayDims) {
        VReg d = lowerExpr(*dim);
        d = castTo(d, mirTypeOf(dim->type), MirType::I64, line);
        slot.dims.push_back(d);
        if (count == kNoVReg) {
          count = d;
        } else {
          MirInst mul;
          mul.op = MirOp::Mul;
          mul.type = MirType::I64;
          mul.a = count;
          mul.b = d;
          mul.dst = fn_.newVReg(MirType::I64);
          mul.line = line;
          append(mul);
          count = mul.dst;
        }
      }
      MirInst alloc;
      alloc.op = MirOp::Alloca;
      alloc.type = MirType::Ptr;
      alloc.a = count;
      alloc.imm = static_cast<std::int64_t>(typeSize(slot.elemType));
      alloc.dst = fn_.newVReg(MirType::Ptr);
      alloc.line = line;
      append(alloc);
      slot.reg = alloc.dst;
    } else if (stmt.declType.scalar == ScalarType::Class &&
               !stmt.declType.isPointer()) {
      // Object: allocate field storage.
      slot.type = MirType::Ptr;
      slot.isClassObject = true;
      slot.className = stmt.declType.className;
      VReg one = emitConstI(1, line);
      MirInst alloc;
      alloc.op = MirOp::Alloca;
      alloc.type = MirType::Ptr;
      alloc.a = one;
      alloc.imm = classSize(slot.className);
      alloc.dst = fn_.newVReg(MirType::Ptr);
      alloc.line = line;
      append(alloc);
      slot.reg = alloc.dst;
    } else {
      slot.type = mirTypeOf(stmt.declType);
      if (stmt.declType.isPointer()) {
        Type elem = stmt.declType;
        --elem.pointerDepth;
        slot.elemType = mirTypeOf(elem);
      }
      slot.reg = fn_.newVReg(slot.type);
      if (stmt.declInit) {
        VReg v = lowerExpr(*stmt.declInit);
        v = castTo(v, mirTypeOf(stmt.declInit->type), slot.type, line);
        MirInst cp;
        cp.op = MirOp::Copy;
        cp.type = slot.type;
        cp.a = v;
        cp.dst = slot.reg;
        cp.line = line;
        append(cp);
      } else {
        // Zero-initialize so the simulator never reads indeterminate bits.
        MirInst cz;
        if (slot.type == MirType::F64 || slot.type == MirType::F32) {
          cz.op = MirOp::ConstF;
          cz.fimm = 0;
        } else {
          cz.op = MirOp::ConstI;
          cz.imm = 0;
        }
        cz.type = slot.type;
        cz.dst = slot.reg;
        cz.line = line;
        append(cz);
      }
    }
    scopes_.back()[stmt.declName] = slot;
  }

  void lowerIf(const Statement &stmt) {
    std::uint32_t line = stmt.range.begin.line;
    VReg cond = lowerCondition(*stmt.expr);
    std::uint32_t thenB = fn_.newBlock();
    std::uint32_t elseB = stmt.elseBranch ? fn_.newBlock() : 0;
    std::uint32_t merge = fn_.newBlock();
    if (!stmt.elseBranch)
      elseB = merge;

    MirInst br;
    br.op = MirOp::Branch;
    br.a = cond;
    br.target = thenB;
    br.targetFalse = elseB;
    br.line = line;
    append(br);

    cur_ = thenB;
    lowerStmt(*stmt.thenBranch);
    if (!fn_.blocks[cur_].terminator()) {
      MirInst j;
      j.op = MirOp::Jump;
      j.target = merge;
      j.line = line;
      append(j);
    }
    if (stmt.elseBranch) {
      cur_ = elseB;
      lowerStmt(*stmt.elseBranch);
      if (!fn_.blocks[cur_].terminator()) {
        MirInst j;
        j.op = MirOp::Jump;
        j.target = merge;
        j.line = line;
        append(j);
      }
    }
    cur_ = merge;
  }

  void lowerWhile(const Statement &stmt) {
    std::uint32_t header = fn_.newBlock();
    MirInst j;
    j.op = MirOp::Jump;
    j.target = header;
    j.line = stmt.range.begin.line;
    append(j);
    cur_ = header;
    VReg cond = lowerCondition(*stmt.forCond);
    std::uint32_t body = fn_.newBlock();
    std::uint32_t exit = fn_.newBlock();
    MirInst br;
    br.op = MirOp::Branch;
    br.a = cond;
    br.target = body;
    br.targetFalse = exit;
    br.line = stmt.range.begin.line;
    append(br);
    cur_ = body;
    lowerStmt(*stmt.loopBody);
    if (!fn_.blocks[cur_].terminator()) {
      MirInst back;
      back.op = MirOp::Jump;
      back.target = header;
      back.line = stmt.range.begin.line;
      append(back);
    }
    cur_ = exit;
  }

  /// Names assigned anywhere under `stmt` (for bound-invariance checking).
  static void collectAssignedVars(const Statement &stmt,
                                  std::set<std::string> &out) {
    std::function<void(const Expression &)> walkExpr =
        [&](const Expression &e) {
          if (e.kind == ExprKind::Assign &&
              e.children[0]->kind == ExprKind::VarRef)
            out.insert(e.children[0]->name);
          if (e.kind == ExprKind::Unary &&
              (e.unaryOp == UnaryOp::PreInc || e.unaryOp == UnaryOp::PostInc ||
               e.unaryOp == UnaryOp::PreDec ||
               e.unaryOp == UnaryOp::PostDec) &&
              e.children[0]->kind == ExprKind::VarRef)
            out.insert(e.children[0]->name);
          for (const auto &c : e.children)
            walkExpr(*c);
          if (e.receiver)
            walkExpr(*e.receiver);
        };
    std::function<void(const Statement &)> walk = [&](const Statement &s) {
      if (s.kind == StmtKind::Decl && !s.declName.empty())
        out.insert(s.declName); // shadowing: be conservative
      if (s.expr)
        walkExpr(*s.expr);
      if (s.declInit)
        walkExpr(*s.declInit);
      if (s.forCond)
        walkExpr(*s.forCond);
      if (s.forInc)
        walkExpr(*s.forInc);
      if (s.forInit)
        walk(*s.forInit);
      if (s.thenBranch)
        walk(*s.thenBranch);
      if (s.elseBranch)
        walk(*s.elseBranch);
      if (s.loopBody)
        walk(*s.loopBody);
      for (const auto &c : s.body)
        walk(*c);
    };
    walk(stmt);
  }

  static bool exprContainsCall(const Expression &e) {
    if (e.kind == ExprKind::Call)
      return true;
    for (const auto &c : e.children)
      if (exprContainsCall(*c))
        return true;
    return e.receiver && exprContainsCall(*e.receiver);
  }

  static bool exprContainsLoad(const Expression &e) {
    if (e.kind == ExprKind::Index || e.kind == ExprKind::Member)
      return true;
    for (const auto &c : e.children)
      if (exprContainsLoad(*c))
        return true;
    return false;
  }

  static void collectVarRefs(const Expression &e, std::set<std::string> &out) {
    if (e.kind == ExprKind::VarRef)
      out.insert(e.name);
    for (const auto &c : e.children)
      collectVarRefs(*c, out);
    if (e.receiver)
      collectVarRefs(*e.receiver, out);
  }

  /// Match 'var++ / ++var / var += c / var = var + c' -> step.
  static std::optional<std::int64_t> matchStep(const Expression &inc,
                                               const std::string &var) {
    if (inc.kind == ExprKind::Unary &&
        (inc.unaryOp == UnaryOp::PostInc || inc.unaryOp == UnaryOp::PreInc) &&
        inc.children[0]->kind == ExprKind::VarRef &&
        inc.children[0]->name == var)
      return 1;
    if (inc.kind == ExprKind::Assign && inc.assignOp == AssignOp::AddAssign &&
        inc.children[0]->kind == ExprKind::VarRef &&
        inc.children[0]->name == var &&
        inc.children[1]->kind == ExprKind::IntLiteral)
      return inc.children[1]->intValue;
    if (inc.kind == ExprKind::Assign && inc.assignOp == AssignOp::Assign &&
        inc.children[0]->kind == ExprKind::VarRef &&
        inc.children[0]->name == var &&
        inc.children[1]->kind == ExprKind::Binary &&
        inc.children[1]->binaryOp == BinaryOp::Add) {
      const Expression *a = inc.children[1]->children[0].get();
      const Expression *b = inc.children[1]->children[1].get();
      if (a->kind == ExprKind::VarRef && a->name == var &&
          b->kind == ExprKind::IntLiteral)
        return b->intValue;
      if (b->kind == ExprKind::VarRef && b->name == var &&
          a->kind == ExprKind::IntLiteral)
        return a->intValue;
    }
    return std::nullopt;
  }

  void lowerFor(const Statement &stmt) {
    std::uint32_t line = stmt.range.begin.line;

    // Try the canonical counted-loop shape.
    std::string var;
    const Expression *condRhs = nullptr;
    MirCmp rel = MirCmp::Lt;
    std::optional<std::int64_t> step;
    bool counted = false;

    if (stmt.forInit && stmt.forCond && stmt.forInc) {
      if (stmt.forInit->kind == StmtKind::Decl)
        var = stmt.forInit->declName;
      else if (stmt.forInit->kind == StmtKind::ExprStmt &&
               stmt.forInit->expr->kind == ExprKind::Assign &&
               stmt.forInit->expr->assignOp == AssignOp::Assign &&
               stmt.forInit->expr->children[0]->kind == ExprKind::VarRef)
        var = stmt.forInit->expr->children[0]->name;
      if (!var.empty() && stmt.forCond->kind == ExprKind::Binary) {
        const Expression *lhs = stmt.forCond->children[0].get();
        const Expression *rhs = stmt.forCond->children[1].get();
        BinaryOp bop = stmt.forCond->binaryOp;
        if (lhs->kind == ExprKind::VarRef && lhs->name == var &&
            (bop == BinaryOp::Lt || bop == BinaryOp::Le)) {
          condRhs = rhs;
          rel = mirCmpOf(bop);
        } else if (rhs->kind == ExprKind::VarRef && rhs->name == var &&
                   (bop == BinaryOp::Gt || bop == BinaryOp::Ge)) {
          condRhs = lhs;
          rel = bop == BinaryOp::Gt ? MirCmp::Lt : MirCmp::Le;
        }
        step = matchStep(*stmt.forInc, var);
      }
      if (condRhs && step && *step > 0) {
        // Bound must not reference the induction variable or anything the
        // body assigns; loads require the ff/hoist annotation; calls are
        // never hoistable.
        std::set<std::string> bodyAssigns;
        collectAssignedVars(*stmt.loopBody, bodyAssigns);
        std::set<std::string> boundVars;
        collectVarRefs(*condRhs, boundVars);
        bool invariantScalars = !boundVars.count(var);
        for (const std::string &v : boundVars)
          if (bodyAssigns.count(v))
            invariantScalars = false;
        bool hasCall = exprContainsCall(*condRhs);
        bool hasLoad = exprContainsLoad(*condRhs);
        bool ffAnnotated =
            stmt.annotation &&
            (stmt.annotation->get("sim_ff").value_or("") == "yes" ||
             stmt.annotation->get("sim_hoist").value_or("") == "yes");
        counted = invariantScalars && !hasCall && (!hasLoad || ffAnnotated);
      }
    }

    if (!counted) {
      lowerGenericFor(stmt);
      return;
    }

    // init
    lowerStmt(*stmt.forInit);
    const VarSlot *slot = lookup(var);
    assert(slot && "sema guarantees the induction variable exists");
    VReg ind = slot->reg;

    LoopDescriptor loop;
    loop.preheader = cur_;
    loop.induction = ind;
    loop.step = *step;
    loop.sourceLine = line;
    loop.ffEligible = stmt.annotation &&
                      stmt.annotation->get("sim_ff").value_or("") == "yes";

    // Hoisted bound. Normalize Le -> Lt by limit+1 so the vectorizer and
    // fast-forward deal with one relation.
    VReg limit = lowerExpr(*condRhs);
    limit = castTo(limit, mirTypeOf(condRhs->type), MirType::I64, line);
    if (rel == MirCmp::Le) {
      VReg one = emitConstI(1, line);
      MirInst add;
      add.op = MirOp::Add;
      add.type = MirType::I64;
      add.a = limit;
      add.b = one;
      add.dst = fn_.newVReg(MirType::I64);
      add.line = line;
      append(add);
      limit = add.dst;
      rel = MirCmp::Lt;
    }
    loop.limit = limit;
    loop.rel = rel;

    std::uint32_t header = fn_.newBlock();
    std::uint32_t body = fn_.newBlock();
    std::uint32_t latch = fn_.newBlock();
    std::uint32_t exit = fn_.newBlock();
    loop.header = header;
    loop.latch = latch;
    loop.exit = exit;
    loop.bodyBlocks.insert(body);

    MirInst toHeader;
    toHeader.op = MirOp::Jump;
    toHeader.target = header;
    toHeader.line = line;
    append(toHeader);

    cur_ = header;
    MirInst cmpInst;
    cmpInst.op = MirOp::ICmp;
    cmpInst.type = MirType::I64;
    cmpInst.cmp = rel;
    cmpInst.a = ind;
    cmpInst.b = limit;
    cmpInst.dst = fn_.newVReg(MirType::I64);
    cmpInst.line = line;
    append(cmpInst);
    MirInst br;
    br.op = MirOp::Branch;
    br.a = cmpInst.dst;
    br.target = body;
    br.targetFalse = exit;
    br.line = line;
    append(br);

    cur_ = body;
    lowerStmt(*stmt.loopBody);
    // Record every block created for the body.
    // (Blocks between `body` and `latch` ids belong to the body region.)
    if (!fn_.blocks[cur_].terminator()) {
      MirInst toLatch;
      toLatch.op = MirOp::Jump;
      toLatch.target = latch;
      toLatch.line = line;
      append(toLatch);
    }
    for (std::uint32_t b = body; b < latch; ++b)
      loop.bodyBlocks.insert(b);
    for (std::uint32_t b = latch + 1; b < fn_.blocks.size(); ++b)
      if (b != exit)
        loop.bodyBlocks.insert(b);

    cur_ = latch;
    VReg stepReg = emitConstI(*step, line);
    MirInst add;
    add.op = MirOp::Add;
    add.type = MirType::I64;
    add.a = ind;
    add.b = stepReg;
    add.dst = ind;
    add.line = line;
    append(add);
    MirInst back;
    back.op = MirOp::Jump;
    back.target = header;
    back.line = line;
    append(back);

    cur_ = exit;
    fn_.loops.push_back(std::move(loop));
  }

  void lowerGenericFor(const Statement &stmt) {
    if (stmt.forInit)
      lowerStmt(*stmt.forInit);
    std::uint32_t header = fn_.newBlock();
    MirInst j;
    j.op = MirOp::Jump;
    j.target = header;
    j.line = stmt.range.begin.line;
    append(j);
    cur_ = header;
    std::uint32_t body = fn_.newBlock();
    std::uint32_t exit = fn_.newBlock();
    if (stmt.forCond) {
      VReg cond = lowerCondition(*stmt.forCond);
      MirInst br;
      br.op = MirOp::Branch;
      br.a = cond;
      br.target = body;
      br.targetFalse = exit;
      br.line = stmt.range.begin.line;
      append(br);
    } else {
      MirInst jb;
      jb.op = MirOp::Jump;
      jb.target = body;
      jb.line = stmt.range.begin.line;
      append(jb);
    }
    cur_ = body;
    lowerStmt(*stmt.loopBody);
    if (stmt.forInc)
      lowerExpr(*stmt.forInc);
    if (!fn_.blocks[cur_].terminator()) {
      MirInst back;
      back.op = MirOp::Jump;
      back.target = header;
      back.line = stmt.range.begin.line;
      append(back);
    }
    cur_ = exit;
  }

  // -------------------------------------------------------- expressions

  /// Lower an expression used as a branch condition to an I64 0/1 value.
  VReg lowerCondition(const Expression &expr) {
    VReg v = lowerExpr(expr);
    MirType t = mirTypeOf(expr.type);
    if (t == MirType::I64)
      return v;
    // Compare against zero.
    std::uint32_t line = expr.range.begin.line;
    VReg zero = (t == MirType::F64 || t == MirType::F32)
                    ? emitConstF(0, t, line)
                    : emitConstI(0, line);
    MirInst cmpInst;
    cmpInst.op =
        (t == MirType::F64 || t == MirType::F32) ? MirOp::FCmp : MirOp::ICmp;
    cmpInst.type = t;
    cmpInst.cmp = MirCmp::Ne;
    cmpInst.a = v;
    cmpInst.b = zero;
    cmpInst.dst = fn_.newVReg(MirType::I64);
    cmpInst.line = line;
    append(cmpInst);
    return cmpInst.dst;
  }

  LValue lowerLValue(const Expression &expr) {
    std::uint32_t line = expr.range.begin.line;
    LValue lv;
    switch (expr.kind) {
    case ExprKind::VarRef: {
      const VarSlot *slot = lookup(expr.name);
      if (!slot) {
        // A method-scope field reference.
        if (decl_.isMethod()) {
          if (auto field = fieldOf(decl_.className, expr.name)) {
            lv.isReg = false;
            lv.base = thisReg_;
            lv.disp = field->first;
            lv.type = field->second;
            return lv;
          }
        }
        diags_.error(expr.range.begin,
                     "lowering: unknown variable '" + expr.name + "'");
        lv.reg = fn_.newVReg(MirType::I64);
        return lv;
      }
      lv.isReg = true;
      lv.reg = slot->reg;
      lv.type = slot->type;
      return lv;
    }
    case ExprKind::Index: {
      // Collect the full index chain a[i][j]... down to the base VarRef.
      std::vector<const Expression *> indices;
      const Expression *base = &expr;
      while (base->kind == ExprKind::Index) {
        indices.push_back(base->children[1].get());
        base = base->children[0].get();
      }
      std::reverse(indices.begin(), indices.end());

      VReg baseReg;
      MirType elemType;
      std::vector<VReg> dims;
      if (base->kind == ExprKind::VarRef) {
        const VarSlot *slot = lookup(base->name);
        if (slot) {
          baseReg = slot->reg;
          elemType = slot->elemType;
          dims = slot->dims;
        } else {
          // pointer field used directly inside a method
          LValue fieldLv = lowerLValue(*base);
          baseReg = loadLValue(fieldLv, line);
          Type t = base->type;
          --t.pointerDepth;
          elemType = mirTypeOf(t);
        }
      } else {
        // e.g. member pointer: obj.data[i]
        VReg ptr = lowerExpr(*base);
        baseReg = ptr;
        Type t = base->type;
        --t.pointerDepth;
        elemType = mirTypeOf(t);
      }

      // Linearize: ((i0*d1 + i1)*d2 + i2)...
      VReg linear = kNoVReg;
      for (std::size_t k = 0; k < indices.size(); ++k) {
        VReg idx = lowerExpr(*indices[k]);
        idx = castTo(idx, mirTypeOf(indices[k]->type), MirType::I64, line);
        if (linear == kNoVReg) {
          linear = idx;
        } else {
          // linear = linear * dims[k] + idx (dims available for declared
          // arrays; pointer-typed bases must be indexed linearly).
          if (k < dims.size() || !dims.empty()) {
            VReg d = dims.size() > k ? dims[k] : dims.back();
            MirInst mul;
            mul.op = MirOp::Mul;
            mul.type = MirType::I64;
            mul.a = linear;
            mul.b = d;
            mul.dst = fn_.newVReg(MirType::I64);
            mul.line = line;
            append(mul);
            linear = mul.dst;
          } else {
            diags_.error(expr.range.begin,
                         "multi-dimensional indexing requires a declared "
                         "array (pointers are linear)");
          }
          MirInst add;
          add.op = MirOp::Add;
          add.type = MirType::I64;
          add.a = linear;
          add.b = idx;
          add.dst = fn_.newVReg(MirType::I64);
          add.line = line;
          append(add);
          linear = add.dst;
        }
      }
      lv.isReg = false;
      lv.base = baseReg;
      lv.index = linear;
      lv.scale = static_cast<std::int32_t>(typeSize(elemType));
      lv.disp = 0;
      lv.type = elemType;
      return lv;
    }
    case ExprKind::Member: {
      const Expression &obj = *expr.children[0];
      VReg objPtr;
      std::string className = obj.type.className;
      if (obj.kind == ExprKind::VarRef) {
        const VarSlot *slot = lookup(obj.name);
        if (slot && slot->isClassObject) {
          objPtr = slot->reg;
          className = slot->className;
        } else {
          objPtr = lowerExpr(obj);
        }
      } else {
        objPtr = lowerExpr(obj);
      }
      auto field = fieldOf(className, expr.name);
      if (!field) {
        diags_.error(expr.range.begin, "lowering: unknown field '" +
                                           expr.name + "' of class '" +
                                           className + "'");
        lv.reg = fn_.newVReg(MirType::I64);
        return lv;
      }
      lv.isReg = false;
      lv.base = objPtr;
      lv.disp = field->first;
      lv.type = field->second;
      return lv;
    }
    default:
      diags_.error(expr.range.begin, "expression is not an lvalue");
      lv.reg = fn_.newVReg(MirType::I64);
      return lv;
    }
  }

  VReg loadLValue(const LValue &lv, std::uint32_t line) {
    if (lv.isReg)
      return lv.reg;
    MirInst load;
    load.op = MirOp::Load;
    load.type = lv.type;
    load.base = lv.base;
    load.index = lv.index;
    load.scale = lv.scale;
    load.disp = lv.disp;
    load.dst = fn_.newVReg(lv.type);
    load.line = line;
    append(load);
    return load.dst;
  }

  void storeLValue(const LValue &lv, VReg value, std::uint32_t line) {
    if (lv.isReg) {
      MirInst cp;
      cp.op = MirOp::Copy;
      cp.type = lv.type;
      cp.a = value;
      cp.dst = lv.reg;
      cp.line = line;
      append(cp);
      return;
    }
    MirInst store;
    store.op = MirOp::Store;
    store.type = lv.type;
    store.a = value;
    store.base = lv.base;
    store.index = lv.index;
    store.scale = lv.scale;
    store.disp = lv.disp;
    store.line = line;
    append(store);
  }

  VReg lowerExpr(const Expression &expr) {
    std::uint32_t line = expr.range.begin.line;
    switch (expr.kind) {
    case ExprKind::IntLiteral:
      return emitConstI(expr.intValue, line);
    case ExprKind::FloatLiteral:
      return emitConstF(expr.floatValue, mirTypeOf(expr.type), line);
    case ExprKind::BoolLiteral:
      return emitConstI(expr.boolValue ? 1 : 0, line);
    case ExprKind::VarRef:
    case ExprKind::Index:
    case ExprKind::Member: {
      LValue lv = lowerLValue(expr);
      return loadLValue(lv, line);
    }
    case ExprKind::Binary:
      return lowerBinary(expr);
    case ExprKind::Unary:
      return lowerUnary(expr);
    case ExprKind::Assign: {
      const Expression &target = *expr.children[0];
      const Expression &value = *expr.children[1];
      LValue lv = lowerLValue(target);
      VReg rhs = lowerExpr(value);
      rhs = castTo(rhs, mirTypeOf(value.type), lv.type, line);
      if (expr.assignOp != AssignOp::Assign) {
        VReg old = loadLValue(lv, line);
        MirInst op;
        bool isFP = lv.type == MirType::F64 || lv.type == MirType::F32;
        switch (expr.assignOp) {
        case AssignOp::AddAssign:
          op.op = isFP ? MirOp::FAdd : MirOp::Add;
          break;
        case AssignOp::SubAssign:
          op.op = isFP ? MirOp::FSub : MirOp::Sub;
          break;
        case AssignOp::MulAssign:
          op.op = isFP ? MirOp::FMul : MirOp::Mul;
          break;
        case AssignOp::DivAssign:
          op.op = isFP ? MirOp::FDiv : MirOp::Div;
          break;
        default:
          op.op = MirOp::Copy;
          break;
        }
        op.type = lv.type;
        op.a = old;
        op.b = rhs;
        op.dst = fn_.newVReg(lv.type);
        op.line = line;
        append(op);
        rhs = op.dst;
      }
      storeLValue(lv, rhs, line);
      return rhs;
    }
    case ExprKind::Call:
      return lowerCall(expr);
    }
    return emitConstI(0, line);
  }

  VReg lowerBinary(const Expression &expr) {
    std::uint32_t line = expr.range.begin.line;
    BinaryOp bop = expr.binaryOp;

    if (bop == BinaryOp::LAnd || bop == BinaryOp::LOr) {
      // Short-circuit lowering with a result register.
      VReg result = fn_.newVReg(MirType::I64);
      VReg lhs = lowerCondition(*expr.children[0]);
      MirInst cpL;
      cpL.op = MirOp::Copy;
      cpL.type = MirType::I64;
      cpL.a = lhs;
      cpL.dst = result;
      cpL.line = line;
      append(cpL);
      std::uint32_t evalRhs = fn_.newBlock();
      std::uint32_t done = fn_.newBlock();
      MirInst br;
      br.op = MirOp::Branch;
      br.a = result;
      br.line = line;
      if (bop == BinaryOp::LAnd) {
        br.target = evalRhs; // true: result depends on rhs
        br.targetFalse = done;
      } else {
        br.target = done; // true: already 1
        br.targetFalse = evalRhs;
      }
      append(br);
      cur_ = evalRhs;
      VReg rhs = lowerCondition(*expr.children[1]);
      MirInst cpR;
      cpR.op = MirOp::Copy;
      cpR.type = MirType::I64;
      cpR.a = rhs;
      cpR.dst = result;
      cpR.line = line;
      append(cpR);
      MirInst j;
      j.op = MirOp::Jump;
      j.target = done;
      j.line = line;
      append(j);
      cur_ = done;
      return result;
    }

    VReg lhs = lowerExpr(*expr.children[0]);
    VReg rhs = lowerExpr(*expr.children[1]);
    MirType lt = mirTypeOf(expr.children[0]->type);
    MirType rt = mirTypeOf(expr.children[1]->type);

    switch (bop) {
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      MirType common = (lt == MirType::F64 || rt == MirType::F64)
                           ? MirType::F64
                       : (lt == MirType::F32 || rt == MirType::F32)
                           ? MirType::F32
                           : MirType::I64;
      lhs = castTo(lhs, lt, common, line);
      rhs = castTo(rhs, rt, common, line);
      MirInst cmpInst;
      cmpInst.op = (common == MirType::I64 || common == MirType::Ptr)
                       ? MirOp::ICmp
                       : MirOp::FCmp;
      cmpInst.type = common;
      cmpInst.cmp = mirCmpOf(bop);
      cmpInst.a = lhs;
      cmpInst.b = rhs;
      cmpInst.dst = fn_.newVReg(MirType::I64);
      cmpInst.line = line;
      append(cmpInst);
      return cmpInst.dst;
    }
    default:
      break;
    }

    MirType common = mirTypeOf(expr.type);
    lhs = castTo(lhs, lt, common, line);
    rhs = castTo(rhs, rt, common, line);
    bool isFP = common == MirType::F64 || common == MirType::F32;
    MirInst op;
    switch (bop) {
    case BinaryOp::Add:
      op.op = isFP ? MirOp::FAdd : MirOp::Add;
      break;
    case BinaryOp::Sub:
      op.op = isFP ? MirOp::FSub : MirOp::Sub;
      break;
    case BinaryOp::Mul:
      op.op = isFP ? MirOp::FMul : MirOp::Mul;
      break;
    case BinaryOp::Div:
      op.op = isFP ? MirOp::FDiv : MirOp::Div;
      break;
    case BinaryOp::Mod:
      op.op = MirOp::Rem;
      break;
    default:
      op.op = MirOp::Copy;
      break;
    }
    op.type = common;
    op.a = lhs;
    op.b = rhs;
    op.dst = fn_.newVReg(common);
    op.line = line;
    append(op);
    return op.dst;
  }

  VReg lowerUnary(const Expression &expr) {
    std::uint32_t line = expr.range.begin.line;
    const Expression &operand = *expr.children[0];
    switch (expr.unaryOp) {
    case UnaryOp::Neg: {
      VReg v = lowerExpr(operand);
      MirType t = mirTypeOf(expr.type);
      v = castTo(v, mirTypeOf(operand.type), t, line);
      MirInst op;
      op.op = (t == MirType::F64 || t == MirType::F32) ? MirOp::FNeg
                                                       : MirOp::Neg;
      op.type = t;
      op.a = v;
      op.dst = fn_.newVReg(t);
      op.line = line;
      append(op);
      return op.dst;
    }
    case UnaryOp::Not: {
      VReg v = lowerCondition(operand);
      VReg zero = emitConstI(0, line);
      MirInst cmpInst;
      cmpInst.op = MirOp::ICmp;
      cmpInst.type = MirType::I64;
      cmpInst.cmp = MirCmp::Eq;
      cmpInst.a = v;
      cmpInst.b = zero;
      cmpInst.dst = fn_.newVReg(MirType::I64);
      cmpInst.line = line;
      append(cmpInst);
      return cmpInst.dst;
    }
    case UnaryOp::PreInc:
    case UnaryOp::PostInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostDec: {
      LValue lv = lowerLValue(operand);
      VReg old = loadLValue(lv, line);
      bool post = expr.unaryOp == UnaryOp::PostInc ||
                  expr.unaryOp == UnaryOp::PostDec;
      VReg result = old;
      if (post) {
        MirInst cp;
        cp.op = MirOp::Copy;
        cp.type = lv.type;
        cp.a = old;
        cp.dst = fn_.newVReg(lv.type);
        cp.line = line;
        append(cp);
        result = cp.dst;
      }
      VReg one = emitConstI(1, line);
      MirInst op;
      bool inc = expr.unaryOp == UnaryOp::PreInc ||
                 expr.unaryOp == UnaryOp::PostInc;
      op.op = inc ? MirOp::Add : MirOp::Sub;
      op.type = MirType::I64;
      op.a = old;
      op.b = one;
      op.dst = fn_.newVReg(MirType::I64);
      op.line = line;
      append(op);
      storeLValue(lv, op.dst, line);
      return post ? result : op.dst;
    }
    }
    return emitConstI(0, line);
  }

  VReg lowerCall(const Expression &expr) {
    std::uint32_t line = expr.range.begin.line;

    // Builtins lower to single instructions.
    if (expr.isBuiltin) {
      auto unaryFP = [&](MirOp op) {
        VReg v = lowerExpr(*expr.children[0]);
        v = castTo(v, mirTypeOf(expr.children[0]->type), MirType::F64, line);
        MirInst i;
        i.op = op;
        i.type = MirType::F64;
        i.a = v;
        i.dst = fn_.newVReg(MirType::F64);
        i.line = line;
        append(i);
        return i.dst;
      };
      auto binFP = [&](MirOp op) {
        VReg a = lowerExpr(*expr.children[0]);
        a = castTo(a, mirTypeOf(expr.children[0]->type), MirType::F64, line);
        VReg b = lowerExpr(*expr.children[1]);
        b = castTo(b, mirTypeOf(expr.children[1]->type), MirType::F64, line);
        MirInst i;
        i.op = op;
        i.type = MirType::F64;
        i.a = a;
        i.b = b;
        i.dst = fn_.newVReg(MirType::F64);
        i.line = line;
        append(i);
        return i.dst;
      };
      auto binInt = [&](MirOp op) {
        VReg a = lowerExpr(*expr.children[0]);
        VReg b = lowerExpr(*expr.children[1]);
        MirInst i;
        i.op = op;
        i.type = MirType::I64;
        i.a = a;
        i.b = b;
        i.dst = fn_.newVReg(MirType::I64);
        i.line = line;
        append(i);
        return i.dst;
      };
      if (expr.name == "sqrt")
        return unaryFP(MirOp::FSqrt);
      if (expr.name == "fabs")
        return unaryFP(MirOp::FAbs);
      if (expr.name == "fmin")
        return binFP(MirOp::FMin);
      if (expr.name == "fmax")
        return binFP(MirOp::FMax);
      if (expr.name == "min")
        return binInt(MirOp::IMin);
      if (expr.name == "max")
        return binInt(MirOp::IMax);
    }

    MirInst call;
    call.op = MirOp::Call;
    call.callee = expr.resolvedCallee;
    call.externCall = expr.isExtern;
    call.line = line;

    if (expr.receiver) {
      // Pass the object storage pointer as the implicit first argument.
      VReg objPtr;
      if (expr.receiver->kind == ExprKind::VarRef) {
        const VarSlot *slot = lookup(expr.receiver->name);
        if (slot && slot->isClassObject) {
          objPtr = slot->reg;
        } else {
          objPtr = lowerExpr(*expr.receiver);
        }
      } else {
        objPtr = lowerExpr(*expr.receiver);
      }
      call.args.push_back(objPtr);
    }

    const FunctionDecl *callee =
        expr.isExtern || expr.isBuiltin
            ? nullptr
            : unit_.findFunction(expr.resolvedCallee);
    for (std::size_t i = 0; i < expr.children.size(); ++i) {
      VReg v = lowerExpr(*expr.children[i]);
      MirType argType = mirTypeOf(expr.children[i]->type);
      if (callee && i < callee->params.size()) {
        MirType want = mirTypeOf(callee->params[i].type);
        v = castTo(v, argType, want, line);
      }
      call.args.push_back(v);
    }

    MirType ret = mirTypeOf(expr.type);
    call.type = ret;
    call.dst = ret == MirType::Void ? kNoVReg : fn_.newVReg(ret);
    append(call);
    return call.dst == kNoVReg ? emitConstI(0, line) : call.dst;
  }

  const TranslationUnit &unit_;
  const FunctionDecl &decl_;
  DiagnosticEngine &diags_;
  MirFunction fn_;
  std::uint32_t cur_ = 0;
  VReg thisReg_ = kNoVReg;
  std::vector<std::map<std::string, VarSlot>> scopes_;
};

} // namespace

MirModule lowerToMir(const TranslationUnit &unit,
                     const CompilerOptions &options, DiagnosticEngine &diags) {
  MirModule module;
  for (const FunctionDecl *decl : unit.allFunctions()) {
    FunctionLowerer lowerer(unit, *decl, diags);
    module.functions.push_back(lowerer.run());
  }
  if (options.optimize) {
    for (MirFunction &fn : module.functions) {
      foldConstants(fn);
      propagateCopies(fn);
      eliminateDeadCode(fn);
      removeUnreachableBlocks(fn);
    }
  }
  if (options.vectorize) {
    for (MirFunction &fn : module.functions)
      vectorizeLoops(fn);
  }
  return module;
}

} // namespace mira::mir
