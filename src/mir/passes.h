// MIR optimization passes.
//
// Deliberately simple (block-local value tracking, conservative global
// DCE) but real: they change the instruction stream the binary carries,
// which is why Mira analyzes the binary rather than trusting the source
// (PBound's weakness, paper Sec. V).
#pragma once

#include "mir/mir.h"

namespace mira::mir {

/// Block-local constant folding: ConstI/ConstF values are propagated
/// through arithmetic, comparisons and copies. Returns #instructions
/// rewritten.
std::size_t foldConstants(MirFunction &fn);

/// Block-local copy propagation (uses of `dst` after `dst = copy src` are
/// rewritten to `src` until either register is redefined).
std::size_t propagateCopies(MirFunction &fn);

/// Remove side-effect-free instructions whose results are never used
/// (iterates to a fixpoint). Returns #instructions removed.
std::size_t eliminateDeadCode(MirFunction &fn);

/// Empty out blocks unreachable from the entry (they would otherwise be
/// encoded into the binary and mis-attributed by static counting). Block
/// ids are preserved; only the instruction lists are cleared.
std::size_t removeUnreachableBlocks(MirFunction &fn);

} // namespace mira::mir
