// AST -> MIR lowering.
//
// Lowers each MiniC function to a CFG of MIR instructions. Counted loops
// (recognized via the same SCoP matching Mira's metric generator uses) are
// lowered to the canonical shape
//     preheader:  limit = <hoisted bound>; jump header
//     header:     t = icmp ind REL limit; branch t, body, exit
//     body:       ...
//     latch:      ind += step; jump header
// and recorded as LoopDescriptors, which later drive vectorization,
// machine-loop emission, and simulator fast-forward.
//
// Bound hoisting: bounds made of loop-invariant scalars are always
// hoisted. Bounds containing loads (e.g. CSR row_ptr[i+1]) are hoisted
// only when the loop carries '#pragma @Simulate {ff:yes}' — the workload's
// assertion that the loop does not write its own bound, mirroring what a
// production compiler proves with alias analysis.
#pragma once

#include "frontend/ast.h"
#include "mir/mir.h"
#include "support/diagnostics.h"

namespace mira::mir {

struct CompilerOptions {
  bool optimize = true;  // constant folding, copy propagation, DCE
  bool vectorize = true; // SSE2 2-lane vectorization of eligible loops
};

/// Lower a semantically-checked translation unit. Returns a module with
/// one MirFunction per source function (methods get an implicit 'this').
MirModule lowerToMir(const frontend::TranslationUnit &unit,
                     const CompilerOptions &options, DiagnosticEngine &diags);

} // namespace mira::mir
