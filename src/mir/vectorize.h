// SSE2 loop vectorizer (2 x f64 lanes).
//
// Transforms eligible innermost counted loops into a packed main loop of
// step 2 plus a scalar remainder loop, exactly the shape an optimizing
// compiler emits and exactly what Mira must recover from the binary: one
// source loop maps to two machine loops with different steps (paper
// Sec. I / III — the motivation for binary-side analysis).
//
// Eligibility (checked, conservative):
//   * innermost counted loop, step 1, single straight-line body block;
//   * every instruction is f64 arithmetic, f64 loads/stores addressed as
//     base[induction] with loop-invariant base, constants, or copies;
//   * the only loop-carried scalar is at most one additive reduction
//     (acc += expr), which is rewritten to a packed accumulator with a
//     horizontal-add epilogue;
//   * the induction variable is used only as the addressing index.
// Memory disjointness of the arrays is assumed (MiniC kernels pass
// distinct buffers; a production compiler would check aliasing).
#pragma once

#include "mir/mir.h"

namespace mira::mir {

/// Vectorize all eligible loops in `fn`; returns the number transformed.
std::size_t vectorizeLoops(MirFunction &fn);

} // namespace mira::mir
