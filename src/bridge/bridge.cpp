#include "bridge/bridge.h"

#include <algorithm>
#include <set>

namespace mira::bridge {

using binast::AsmFunction;
using binast::BinaryLoop;

FunctionBridge::FunctionBridge(const frontend::FunctionDecl &source,
                               const binast::AsmFunction &binary)
    : source_(&source), binary_(&binary) {
  instrLoop_.assign(binary.instructions.size(), -1);
  for (std::size_t b = 0; b < binary.blocks.size(); ++b) {
    int loop = binary.innermostLoopOf(static_cast<std::uint32_t>(b));
    for (std::uint32_t idx : binary.blocks[b].instrIndices)
      instrLoop_[idx] = loop;
  }
}

LoopBinding FunctionBridge::loopsAtLine(std::uint32_t line) const {
  LoopBinding binding;
  for (const BinaryLoop &loop : binary_->loops)
    if (loop.sourceLine == line)
      binding.loops.push_back(&loop);
  std::sort(binding.loops.begin(), binding.loops.end(),
            [](const BinaryLoop *a, const BinaryLoop *b) {
              return a->step > b->step;
            });
  return binding;
}

std::size_t FunctionBridge::bodyInstrsAtLine(const BinaryLoop &loop,
                                             std::uint32_t line) const {
  auto it = loop.bodyLineCounts.find(line);
  return it == loop.bodyLineCounts.end() ? 0 : it->second;
}

std::size_t FunctionBridge::instrsOutsideLoopsAtLine(
    std::uint32_t line) const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < binary_->instructions.size(); ++i)
    if (instrLoop_[i] < 0 && binary_->instructions[i].line == line)
      ++count;
  return count;
}

std::vector<std::uint32_t> FunctionBridge::coveredLines() const {
  std::set<std::uint32_t> lines;
  for (const auto &ai : binary_->instructions)
    lines.insert(ai.line);
  return {lines.begin(), lines.end()};
}

std::map<isa::Opcode, std::size_t>
FunctionBridge::opcodesAtLine(std::uint32_t line,
                              const BinaryLoop *loop) const {
  std::map<isa::Opcode, std::size_t> out;
  for (std::size_t i = 0; i < binary_->instructions.size(); ++i) {
    if (binary_->instructions[i].line != line)
      continue;
    int li = instrLoop_[i];
    if (!loop) {
      if (li >= 0)
        continue;
    } else {
      if (li < 0)
        continue;
      const BinaryLoop &enclosing = binary_->loops[static_cast<std::size_t>(li)];
      if (&enclosing != loop)
        continue;
      // Exclude the header block: counted separately as (trips+1).
      bool inHeader = false;
      for (std::uint32_t idx :
           binary_->blocks[loop->headerBlock].instrIndices)
        if (idx == i)
          inHeader = true;
      if (inHeader)
        continue;
    }
    ++out[binary_->instructions[i].inst.opcode];
  }
  return out;
}

std::map<isa::Opcode, std::size_t>
FunctionBridge::headerOpcodes(const BinaryLoop &loop) const {
  std::map<isa::Opcode, std::size_t> out;
  for (std::uint32_t idx : binary_->blocks[loop.headerBlock].instrIndices)
    ++out[binary_->instructions[idx].inst.opcode];
  return out;
}

std::map<isa::Opcode, std::size_t> FunctionBridge::prologueOpcodes() const {
  std::map<isa::Opcode, std::size_t> out;
  for (std::size_t i = 0; i < binary_->instructions.size(); ++i)
    if (instrLoop_[i] < 0 && binary_->instructions[i].line == 0)
      ++out[binary_->instructions[i].inst.opcode];
  return out;
}

bool FunctionBridge::instrInsideLoop(std::uint32_t instrIdx,
                                     const BinaryLoop *&loop) const {
  int li = instrLoop_[instrIdx];
  if (li < 0)
    return false;
  loop = &binary_->loops[static_cast<std::size_t>(li)];
  return true;
}

ProgramBridge::ProgramBridge(const frontend::TranslationUnit &unit,
                             const binast::BinaryAst &binary) {
  for (const frontend::FunctionDecl *fn : unit.allFunctions()) {
    const AsmFunction *bin = binary.find(fn->qualifiedName());
    if (bin)
      bridges_.emplace(fn->qualifiedName(), FunctionBridge(*fn, *bin));
  }
}

const FunctionBridge *ProgramBridge::of(
    const std::string &qualifiedName) const {
  auto it = bridges_.find(qualifiedName);
  return it == bridges_.end() ? nullptr : &it->second;
}

} // namespace mira::bridge
