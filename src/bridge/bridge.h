// The source<->binary bridge (paper Sec. III-A2).
//
// Associates each source function with its disassembled AsmFunction and
// provides the line-number queries the metric generator uses: which
// machine instructions a statement's lines produced, which binary loops
// implement a source loop (one scalar loop, or a vectorized main loop
// plus scalar remainder), and which instructions at a line live outside
// any loop (prologue/epilogue/hoisted code).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "binast/binast.h"
#include "frontend/ast.h"

namespace mira::bridge {

/// Machine loops implementing one source for statement, sorted by step
/// descending (vectorized main loop first, scalar remainder last).
struct LoopBinding {
  std::vector<const binast::BinaryLoop *> loops;

  bool isVectorized() const {
    return loops.size() >= 2 && loops.front()->step > 1;
  }
  const binast::BinaryLoop *mainLoop() const {
    return loops.empty() ? nullptr : loops.front();
  }
  const binast::BinaryLoop *remainderLoop() const {
    return loops.size() >= 2 ? loops.back() : nullptr;
  }
};

class FunctionBridge {
public:
  FunctionBridge(const frontend::FunctionDecl &source,
                 const binast::AsmFunction &binary);

  const frontend::FunctionDecl &source() const { return *source_; }
  const binast::AsmFunction &binary() const { return *binary_; }

  /// Binary loops whose header compare carries this source line (the
  /// for-statement line), i.e. the machine loops compiled from it.
  LoopBinding loopsAtLine(std::uint32_t line) const;

  /// Instruction count at `line` restricted to blocks inside `loop`
  /// excluding its header block.
  std::size_t bodyInstrsAtLine(const binast::BinaryLoop &loop,
                               std::uint32_t line) const;

  /// Instructions at `line` not inside any binary loop (loop prologues,
  /// hoisted bound computation, epilogues).
  std::size_t instrsOutsideLoopsAtLine(std::uint32_t line) const;

  /// All distinct lines with at least one machine instruction.
  std::vector<std::uint32_t> coveredLines() const;

  /// Opcode histogram of instructions at `line` within `loop` bodies
  /// (nullptr loop = outside all loops).
  std::map<isa::Opcode, std::size_t>
  opcodesAtLine(std::uint32_t line, const binast::BinaryLoop *loop) const;

  /// Opcode histogram of a loop's header block.
  std::map<isa::Opcode, std::size_t>
  headerOpcodes(const binast::BinaryLoop &loop) const;

  /// Opcode histogram of the function prologue (line 0 instructions
  /// outside loops).
  std::map<isa::Opcode, std::size_t> prologueOpcodes() const;

private:
  bool instrInsideLoop(std::uint32_t instrIdx,
                       const binast::BinaryLoop *&loop) const;

  const frontend::FunctionDecl *source_;
  const binast::AsmFunction *binary_;
  // instruction index -> enclosing innermost loop (index into
  // binary().loops) or -1
  std::vector<int> instrLoop_;
};

/// All function bridges of a translation unit against a binary AST.
class ProgramBridge {
public:
  ProgramBridge(const frontend::TranslationUnit &unit,
                const binast::BinaryAst &binary);

  /// nullptr when the function has no binary counterpart.
  const FunctionBridge *of(const std::string &qualifiedName) const;

private:
  std::map<std::string, FunctionBridge> bridges_;
};

} // namespace mira::bridge
