// PBound-style source-only estimator (paper Sec. V, reference [1]).
//
// The comparison baseline: counts operations from the source AST alone
// with polyhedral loop counts, mapping each source-level operation to one
// "expected" machine instruction (FP op -> scalar SSE2 arithmetic, array
// access -> MOVSD, integer op -> ALU instruction). Because it never looks
// at the binary, it misses what the compiler did — vectorization halves
// the retired FP instruction count on eligible loops, constant folding
// and copy propagation remove work, register allocation adds moves — so
// its estimates diverge from measured counts exactly as the paper argues
// (Sec. I: PBound "cannot capture compiler optimizations and hence
// produces less accurate estimates").
#pragma once

#include "frontend/ast.h"
#include "model/model.h"
#include "sema/sema.h"
#include "support/diagnostics.h"

namespace mira::baseline {

/// Generate a source-only model with the same evaluation interface as
/// Mira's (so the ablation bench can swap them).
model::PerformanceModel generateSourceOnlyModel(
    const frontend::TranslationUnit &unit, const sema::CallGraph &callGraph,
    DiagnosticEngine &diags);

} // namespace mira::baseline
