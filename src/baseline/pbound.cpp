#include "baseline/pbound.h"

#include <algorithm>

#include "polyhedral/counting.h"
#include "sema/loop_analysis.h"
#include "support/string_utils.h"

namespace mira::baseline {

using frontend::AssignOp;
using frontend::BinaryOp;
using frontend::ExprKind;
using frontend::Expression;
using frontend::FunctionDecl;
using frontend::ScalarType;
using frontend::Statement;
using frontend::StmtKind;
using model::CallStep;
using model::CountStep;
using model::FunctionModel;
using polyhedral::IterationDomain;
using polyhedral::LoopLevel;
using symbolic::Expr;

namespace {

/// Source-level operation tallies of one statement.
struct OpTally {
  std::int64_t fpAdd = 0, fpMul = 0, fpDiv = 0, fpOther = 0;
  std::int64_t loads = 0, stores = 0;
  std::int64_t intOps = 0, comparisons = 0;

  bool empty() const {
    return fpAdd + fpMul + fpDiv + fpOther + loads + stores + intOps +
               comparisons ==
           0;
  }

  std::map<isa::Opcode, std::int64_t> toOpcodes() const {
    std::map<isa::Opcode, std::int64_t> out;
    auto put = [&](isa::Opcode op, std::int64_t n) {
      if (n)
        out[op] += n;
    };
    // One source FP op = one scalar SSE2 arithmetic instruction: the
    // source-only assumption that breaks on vectorized binaries.
    put(isa::Opcode::ADDSD, fpAdd);
    put(isa::Opcode::MULSD, fpMul);
    put(isa::Opcode::DIVSD, fpDiv);
    put(isa::Opcode::SQRTSD, fpOther);
    put(isa::Opcode::MOVSD_RM, loads);
    put(isa::Opcode::MOVSD_MR, stores);
    put(isa::Opcode::ADD, intOps);
    put(isa::Opcode::CMP, comparisons);
    return out;
  }
};

void tallyExpr(const Expression &expr, OpTally &tally, bool asLValue) {
  switch (expr.kind) {
  case ExprKind::IntLiteral:
  case ExprKind::FloatLiteral:
  case ExprKind::BoolLiteral:
  case ExprKind::VarRef:
    break;
  case ExprKind::Binary: {
    bool fp = expr.type.isFloatingPoint();
    switch (expr.binaryOp) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
      (fp ? tally.fpAdd : tally.intOps) += 1;
      break;
    case BinaryOp::Mul:
      (fp ? tally.fpMul : tally.intOps) += 1;
      break;
    case BinaryOp::Div:
      (fp ? tally.fpDiv : tally.intOps) += 1;
      break;
    case BinaryOp::Mod:
      tally.intOps += 1;
      break;
    case BinaryOp::LAnd:
    case BinaryOp::LOr:
      tally.intOps += 1;
      break;
    default:
      tally.comparisons += 1;
      break;
    }
    tallyExpr(*expr.children[0], tally, false);
    tallyExpr(*expr.children[1], tally, false);
    break;
  }
  case ExprKind::Unary:
    if (expr.unaryOp == frontend::UnaryOp::Neg &&
        expr.type.isFloatingPoint())
      tally.fpOther += 1;
    else
      tally.intOps += 1;
    tallyExpr(*expr.children[0], tally,
              expr.unaryOp != frontend::UnaryOp::Neg &&
                  expr.unaryOp != frontend::UnaryOp::Not);
    break;
  case ExprKind::Assign: {
    if (expr.assignOp != AssignOp::Assign) {
      bool fp = expr.type.isFloatingPoint();
      if (expr.assignOp == AssignOp::MulAssign)
        (fp ? tally.fpMul : tally.intOps) += 1;
      else if (expr.assignOp == AssignOp::DivAssign)
        (fp ? tally.fpDiv : tally.intOps) += 1;
      else
        (fp ? tally.fpAdd : tally.intOps) += 1;
      // compound assignment also reads the target
      tallyExpr(*expr.children[0], tally, false);
    }
    tallyExpr(*expr.children[0], tally, true);
    tallyExpr(*expr.children[1], tally, false);
    break;
  }
  case ExprKind::Call: {
    if (expr.isBuiltin) {
      if (expr.name == "sqrt")
        tally.fpOther += 1;
      else if (expr.name == "fmin" || expr.name == "fmax" ||
               expr.name == "fabs")
        tally.fpOther += 1;
      else
        tally.intOps += 1;
    }
    for (const auto &arg : expr.children)
      tallyExpr(*arg, tally, false);
    if (expr.receiver)
      tallyExpr(*expr.receiver, tally, false);
    break;
  }
  case ExprKind::Index:
    (asLValue ? tally.stores : tally.loads) += 1;
    tally.intOps += 1; // index arithmetic
    tallyExpr(*expr.children[0], tally, false);
    tallyExpr(*expr.children[1], tally, false);
    break;
  case ExprKind::Member:
    (asLValue ? tally.stores : tally.loads) += 1;
    tallyExpr(*expr.children[0], tally, false);
    break;
  }
}

void collectCalls(const Expression &expr, const Expr &multiplier,
                  const frontend::TranslationUnit &unit,
                  FunctionModel &model) {
  if (expr.kind == ExprKind::Call && !expr.isBuiltin && !expr.isExtern &&
      !expr.resolvedCallee.empty()) {
    CallStep step;
    step.multiplier = multiplier;
    step.callee = expr.resolvedCallee;
    step.line = expr.range.begin.line;
    if (const FunctionDecl *callee = unit.findFunction(expr.resolvedCallee)) {
      for (std::size_t i = 0;
           i < callee->params.size() && i < expr.children.size(); ++i) {
        if (!callee->params[i].type.isInteger())
          continue;
        if (auto affine = sema::exprToAffine(*expr.children[i]))
          step.argBindings[callee->params[i].name] = affine->toExpr();
        else
          step.argBindings[callee->params[i].name] = Expr::param(
              callee->params[i].name + "_" + std::to_string(step.line));
      }
    }
    model.calls.push_back(std::move(step));
  }
  for (const auto &child : expr.children)
    collectCalls(*child, multiplier, unit, model);
  if (expr.receiver)
    collectCalls(*expr.receiver, multiplier, unit, model);
}

struct Walker {
  const frontend::TranslationUnit &unit;
  FunctionModel &model;

  void walk(const Statement &stmt, const IterationDomain &domain,
            const Expr &extra) {
    Expr count = countOf(domain, extra);
    switch (stmt.kind) {
    case StmtKind::Compound:
      for (const auto &s : stmt.body)
        walk(*s, domain, extra);
      break;
    case StmtKind::Decl: {
      OpTally tally;
      if (stmt.declInit) {
        tallyExpr(*stmt.declInit, tally, false);
        collectCalls(*stmt.declInit, count, unit, model);
      }
      emit(tally, count, stmt.range.begin.line);
      break;
    }
    case StmtKind::ExprStmt:
    case StmtKind::Return: {
      OpTally tally;
      if (stmt.expr) {
        tallyExpr(*stmt.expr, tally, false);
        collectCalls(*stmt.expr, count, unit, model);
      }
      emit(tally, count, stmt.range.begin.line);
      break;
    }
    case StmtKind::If: {
      OpTally condTally;
      tallyExpr(*stmt.expr, condTally, false);
      emit(condTally, count, stmt.range.begin.line);
      // Source-only baseline: both branches assumed taken (PBound
      // computes upper bounds).
      if (stmt.thenBranch)
        walk(*stmt.thenBranch, domain, extra);
      if (stmt.elseBranch)
        walk(*stmt.elseBranch, domain, extra);
      break;
    }
    case StmtKind::For: {
      sema::LoopInfo info = sema::analyzeForLoop(stmt);
      // Loop-control overhead per iteration.
      OpTally header;
      header.comparisons = 1;
      header.intOps = 1;
      if (info.recognized) {
        IterationDomain inner = domain;
        LoopLevel level;
        level.var = info.var;
        level.lowerBounds.push_back(info.lowerBound);
        level.upperBounds.push_back(info.upperBound);
        level.step = info.step;
        inner.levels.push_back(level);
        auto res = polyhedral::countIterations(inner);
        if (!res.requiresAnnotation) {
          emit(header, countOf(inner, extra), stmt.range.begin.line);
          if (stmt.loopBody)
            walk(*stmt.loopBody, inner, extra);
          break;
        }
      }
      model.exact = false;
      model.notes.push_back("source-only: loop at line " +
                            std::to_string(stmt.range.begin.line) +
                            " counted via parameter");
      Expr per = Expr::param("iters_" + std::to_string(stmt.range.begin.line));
      emit(header, count * per, stmt.range.begin.line);
      if (stmt.loopBody)
        walk(*stmt.loopBody, domain, extra * per);
      break;
    }
    case StmtKind::While: {
      model.exact = false;
      Expr per = Expr::param("iters_" + std::to_string(stmt.range.begin.line));
      OpTally header;
      tallyExpr(*stmt.forCond, header, false);
      emit(header, count * per, stmt.range.begin.line);
      if (stmt.loopBody)
        walk(*stmt.loopBody, domain, extra * per);
      break;
    }
    case StmtKind::Empty:
      break;
    }
  }

  Expr countOf(const IterationDomain &domain, const Expr &extra) {
    auto res = polyhedral::countIterations(domain);
    return res.count * extra;
  }

  void emit(const OpTally &tally, const Expr &count, std::uint32_t line) {
    if (tally.empty())
      return;
    CountStep step;
    step.multiplier = count;
    step.opcodes = tally.toOpcodes();
    step.comment = "source ops at line " + std::to_string(line);
    model.counts.push_back(std::move(step));
  }
};

} // namespace

model::PerformanceModel generateSourceOnlyModel(
    const frontend::TranslationUnit &unit, const sema::CallGraph &callGraph,
    DiagnosticEngine &diags) {
  (void)diags;
  model::PerformanceModel out;
  out.sourceFile = unit.fileName + " (source-only baseline)";

  bool hasCycle = false;
  std::vector<std::string> order = callGraph.topologicalOrder(hasCycle);
  std::vector<const FunctionDecl *> decls;
  for (const std::string &name : order)
    if (const FunctionDecl *fn = unit.findFunction(name))
      decls.push_back(fn);
  for (const FunctionDecl *fn : unit.allFunctions())
    if (std::find(decls.begin(), decls.end(), fn) == decls.end())
      decls.push_back(fn);

  for (const FunctionDecl *fn : decls) {
    FunctionModel fm;
    fm.sourceName = fn->qualifiedName();
    fm.modelName = fn->modelName() + "_srconly";
    for (const auto &p : fn->params)
      fm.paramNames.push_back(p.name);
    Walker walker{unit, fm};
    walker.walk(*fn->bodyStmt, IterationDomain{}, Expr::intConst(1));
    out.functions.push_back(std::move(fm));
  }
  return out;
}

} // namespace mira::baseline
