#include "fleet/coordinator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

#include "corpus/manifest.h"
#include "server/client.h"

namespace mira::fleet {

namespace {

/// One shard's place in the lease state machine.
enum class ShardPhase { pending, leased, done };

struct ShardState {
  ShardPhase phase = ShardPhase::pending;
  /// Epoch of the current (or most recently issued) lease. Bumped on
  /// every issue *and* on every expiry/failure repool, so a reply from
  /// a superseded lease can never match and exactly one reply per
  /// shard is accepted.
  std::uint64_t epoch = 0;
  std::size_t attempts = 0;
  /// Workers that have ever held a lease on this shard. Re-issues
  /// prefer workers outside this set so a re-run lands on a cold cache
  /// and reproduces the canonical cold-run report bytes.
  std::set<std::size_t> attemptedBy;
  std::string reportBytes; ///< accepted reply; meaningful when done
};

/// The lease a worker thread currently holds. `lastBeatMillis` is the
/// heartbeat cell the progress callback bumps from the worker thread
/// while the monitor reads it — atomic, everything else under the
/// fleet mutex.
struct LeaseSlot {
  bool active = false;
  std::size_t shard = 0;
  std::uint64_t epoch = 0;
  std::atomic<std::int64_t> lastBeatMillis{0};
};

struct FleetMetrics {
  core::MetricsRegistry::Counter &issued;
  core::MetricsRegistry::Counter &reissued;
  core::MetricsRegistry::Counter &expired;
  core::MetricsRegistry::Counter &fenced;
  core::MetricsRegistry::Counter &workerFailures;
  core::MetricsRegistry::Counter &shardsCompleted;
  core::MetricsRegistry::Gauge &workersAlive;
  core::MetricsRegistry::Gauge &shardsPending;

  explicit FleetMetrics(core::MetricsRegistry &registry)
      : issued(registry.counter("fleet_leases_issued_total")),
        reissued(registry.counter("fleet_leases_reissued_total")),
        expired(registry.counter("fleet_leases_expired_total")),
        fenced(registry.counter("fleet_leases_fenced_total")),
        workerFailures(registry.counter("fleet_worker_failures_total")),
        shardsCompleted(registry.counter("fleet_shards_completed_total")),
        workersAlive(registry.gauge("fleet_workers_alive")),
        shardsPending(registry.gauge("fleet_shards_pending")) {}
};

/// Shared run state. The mutex guards everything except the heartbeat
/// cells; the cv wakes idle workers when a shard becomes available and
/// the main thread when the run resolves.
struct FleetState {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<ShardState> shards;
  std::vector<LeaseSlot> slots; // one per worker; never resized
  std::size_t shardsRemaining = 0;
  std::size_t workersAlive = 0;
  std::uint64_t nextEpoch = 1;
  bool anyWorkerConnected = false;
  bool failed = false;
  CoordinatorStatus failStatus = CoordinatorStatus::transportFailed;
  std::string failError;
  bool stopMonitor = false;
};

class Coordinator {
public:
  Coordinator(const CoordinatorOptions &options,
              core::MetricsRegistry &registry)
      : options_(options), registry_(registry), metrics_(registry),
        started_(std::chrono::steady_clock::now()) {}

  CoordinatorResult run();

private:
  std::int64_t nowMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - started_)
        .count();
  }

  void event(const std::string &line) const {
    if (options_.onEvent)
      options_.onEvent(line);
  }

  void refreshGauges() {
    metrics_.workersAlive.set(state_.workersAlive);
    metrics_.shardsPending.set(state_.shardsRemaining);
  }

  /// Atomically (re)write options_.metricsFile; no-op when unset.
  void writeMetricsFile() const {
    if (options_.metricsFile.empty())
      return;
    const std::string tmp = options_.metricsFile + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out)
        return;
      out << registry_.renderText();
      if (!out)
        return;
    }
    ::rename(tmp.c_str(), options_.metricsFile.c_str());
  }

  /// Is shard `i` leasable by worker `w` right now? Prefer workers that
  /// never attempted it; once every live worker has (approximated by
  /// comparing set size against the alive count), anyone may retry —
  /// a documented degradation that favors progress over placement.
  bool eligible(std::size_t i, std::size_t w) const {
    const ShardState &shard = state_.shards[i];
    if (shard.phase != ShardPhase::pending)
      return false;
    return shard.attemptedBy.count(w) == 0 ||
           shard.attemptedBy.size() >= state_.workersAlive;
  }

  bool anyEligible(std::size_t w) const {
    for (std::size_t i = 0; i < state_.shards.size(); ++i)
      if (eligible(i, w))
        return true;
    return false;
  }

  /// Declare worker `w` dead (under the lock). When the last worker
  /// dies with shards outstanding the whole run fails.
  void workerDied(std::size_t w, const std::string &why) {
    metrics_.workerFailures.increment();
    --state_.workersAlive;
    refreshGauges();
    event("worker " + workerName(w) + " dead: " + why);
    if (state_.workersAlive == 0 && state_.shardsRemaining > 0 &&
        !state_.failed) {
      state_.failed = true;
      state_.failStatus = state_.anyWorkerConnected
                              ? CoordinatorStatus::transportFailed
                              : CoordinatorStatus::connectFailed;
      state_.failError = "all workers failed with " +
                         std::to_string(state_.shardsRemaining) +
                         " shard(s) outstanding (last: " + why + ")";
    }
    // Eligibility depends on the alive count; re-check waiters either way.
    state_.cv.notify_all();
  }

  /// Return a failed/expired shard to the pool under a bumped epoch, or
  /// fail the run when its attempt budget is spent.
  void repoolShard(std::size_t i, server::Client::ErrorKind kind,
                   const std::string &why) {
    ShardState &shard = state_.shards[i];
    if (shard.attempts >= options_.maxAttemptsPerShard) {
      if (!state_.failed) {
        state_.failed = true;
        state_.failStatus = kind == server::Client::ErrorKind::daemon
                                ? CoordinatorStatus::daemonFailed
                                : CoordinatorStatus::transportFailed;
        state_.failError = "shard " + std::to_string(i + 1) + "/" +
                           std::to_string(state_.shards.size()) +
                           " gave up after " +
                           std::to_string(shard.attempts) +
                           " lease(s): " + why;
      }
    } else {
      shard.phase = ShardPhase::pending;
      shard.epoch = state_.nextEpoch++; // fence the superseded lease
    }
    state_.cv.notify_all();
  }

  std::string workerName(std::size_t w) const {
    const WorkerEndpoint &endpoint = options_.workers[w];
    return endpoint.host + ":" + std::to_string(endpoint.port);
  }

  void workerLoop(std::size_t w);
  void monitorLoop();

  const CoordinatorOptions &options_;
  core::MetricsRegistry &registry_;
  FleetMetrics metrics_;
  const std::chrono::steady_clock::time_point started_;
  std::size_t shardCount_ = 0;
  FleetState state_;
};

void Coordinator::workerLoop(std::size_t w) {
  server::Client client;
  client.setConnectTimeoutMillis(options_.connectTimeoutMillis);
  // Backstop well past the lease timeout: a reply from a stalled daemon
  // should be *received* and fenced (proving the epoch check), not
  // dropped on a tight read timeout; only a truly hung daemon trips it.
  client.setReadTimeoutMillis(
      static_cast<int>(options_.leaseTimeoutMillis) * 10);
  client.setSecret(options_.secret);
  const WorkerEndpoint &endpoint = options_.workers[w];
  LeaseSlot &slot = state_.slots[w];
  std::size_t consecutiveConnectFailures = 0;

  for (;;) {
    if (!client.connected()) {
      if (!client.connectTcp(endpoint.host, endpoint.port)) {
        ++consecutiveConnectFailures;
        std::unique_lock<std::mutex> lock(state_.mutex);
        if (state_.failed || state_.shardsRemaining == 0)
          return;
        if (consecutiveConnectFailures >= options_.maxConnectFailures) {
          workerDied(w, client.lastError());
          return;
        }
        lock.unlock();
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        continue;
      }
      consecutiveConnectFailures = 0;
      std::lock_guard<std::mutex> lock(state_.mutex);
      state_.anyWorkerConnected = true;
    }

    // Acquire a lease (or learn the run is over).
    std::size_t shardIndex = 0;
    std::uint64_t epoch = 0;
    {
      std::unique_lock<std::mutex> lock(state_.mutex);
      state_.cv.wait(lock, [&] {
        return state_.failed || state_.shardsRemaining == 0 || anyEligible(w);
      });
      if (state_.failed || state_.shardsRemaining == 0)
        return;
      // Lowest-index eligible shard, un-attempted ones first.
      std::size_t pick = state_.shards.size();
      for (std::size_t i = 0; i < state_.shards.size(); ++i) {
        if (!eligible(i, w))
          continue;
        if (state_.shards[i].attemptedBy.count(w) == 0) {
          pick = i;
          break;
        }
        if (pick == state_.shards.size())
          pick = i;
      }
      ShardState &shard = state_.shards[pick];
      shard.phase = ShardPhase::leased;
      shard.epoch = state_.nextEpoch++;
      shard.attempts++;
      shard.attemptedBy.insert(w);
      shardIndex = pick;
      epoch = shard.epoch;
      slot.active = true;
      slot.shard = pick;
      slot.epoch = epoch;
      slot.lastBeatMillis.store(nowMillis(), std::memory_order_relaxed);
      metrics_.issued.increment();
      if (shard.attempts > 1)
        metrics_.reissued.increment();
      event("lease: shard " + std::to_string(pick + 1) + "/" +
            std::to_string(shardCount_) + " epoch " + std::to_string(epoch) +
            " -> worker " + workerName(w) + " (attempt " +
            std::to_string(shard.attempts) + ")");
    }

    // Execute the lease: the shard travels as an ordinary ManifestBatch
    // request; its progress frames double as the lease heartbeat.
    driver::ShardSpec spec;
    spec.index = shardIndex;
    spec.count = shardCount_;
    std::string reportBytes;
    const bool ok = client.manifestBatch(
        options_.manifestBytes, options_.sinceBytes, options_.root, spec,
        options_.options,
        [&](const server::BatchProgress &) {
          slot.lastBeatMillis.store(nowMillis(), std::memory_order_relaxed);
        },
        reportBytes);

    // Resolve it under the lock: the epoch decides whether this reply
    // is current or a fenced straggler from a superseded lease.
    {
      std::lock_guard<std::mutex> lock(state_.mutex);
      slot.active = false;
      ShardState &shard = state_.shards[shardIndex];
      const bool current =
          shard.phase == ShardPhase::leased && shard.epoch == epoch;
      if (!current) {
        metrics_.fenced.increment();
        event("fenced: shard " + std::to_string(shardIndex + 1) + " epoch " +
              std::to_string(epoch) + " superseded; reply from worker " +
              workerName(w) + " discarded");
      } else if (ok) {
        shard.phase = ShardPhase::done;
        shard.reportBytes = std::move(reportBytes);
        --state_.shardsRemaining;
        metrics_.shardsCompleted.increment();
        refreshGauges();
        event("done: shard " + std::to_string(shardIndex + 1) + "/" +
              std::to_string(shardCount_) + " epoch " +
              std::to_string(epoch) + " from worker " + workerName(w));
        if (state_.shardsRemaining == 0)
          state_.cv.notify_all();
      } else {
        event("failed: shard " + std::to_string(shardIndex + 1) + " epoch " +
              std::to_string(epoch) + " on worker " + workerName(w) + ": " +
              client.lastError());
        repoolShard(shardIndex, client.lastErrorKind(), client.lastError());
      }
      if (state_.failed || state_.shardsRemaining == 0)
        return;
    }
    if (!ok) {
      // The connection is suspect (EOF, timeout, or the daemon closed
      // after an Error); start the next lease on a fresh one.
      client.disconnect();
    }
  }
}

void Coordinator::monitorLoop() {
  const auto tick = std::chrono::milliseconds(
      std::max<std::uint32_t>(50, options_.leaseTimeoutMillis / 4));
  std::unique_lock<std::mutex> lock(state_.mutex);
  for (;;) {
    state_.cv.wait_for(lock, tick, [&] { return state_.stopMonitor; });
    if (state_.stopMonitor)
      return;
    const std::int64_t now = nowMillis();
    for (std::size_t w = 0; w < state_.slots.size(); ++w) {
      LeaseSlot &slot = state_.slots[w];
      if (!slot.active)
        continue;
      const std::int64_t beat =
          slot.lastBeatMillis.load(std::memory_order_relaxed);
      if (now - beat <= static_cast<std::int64_t>(options_.leaseTimeoutMillis))
        continue;
      ShardState &shard = state_.shards[slot.shard];
      if (shard.phase == ShardPhase::leased && shard.epoch == slot.epoch) {
        metrics_.expired.increment();
        event("expired: shard " + std::to_string(slot.shard + 1) +
              " epoch " + std::to_string(slot.epoch) + " on worker " +
              workerName(w) + " (no heartbeat for " +
              std::to_string(now - beat) + " ms)");
        repoolShard(slot.shard, server::Client::ErrorKind::transport,
                    "lease heartbeat timed out");
      }
      slot.active = false; // its worker thread will fence its own reply
    }
    refreshGauges();
    writeMetricsFile();
  }
}

CoordinatorResult Coordinator::run() {
  CoordinatorResult result;
  if (options_.workers.empty()) {
    result.status = CoordinatorStatus::connectFailed;
    result.error = "no workers configured";
    return result;
  }
  // Validate the manifest blobs locally before shipping them N times; a
  // corrupt manifest is the coordinator's own input error, not a worker
  // problem, and retrying it elsewhere could never succeed.
  corpus::Manifest manifest;
  std::string manifestError;
  if (!corpus::deserializeManifest(options_.manifestBytes, manifest,
                                   manifestError)) {
    result.status = CoordinatorStatus::daemonFailed;
    result.error = "invalid manifest: " + manifestError;
    return result;
  }
  if (!options_.sinceBytes.empty()) {
    corpus::Manifest since;
    if (!corpus::deserializeManifest(options_.sinceBytes, since,
                                     manifestError)) {
      result.status = CoordinatorStatus::daemonFailed;
      result.error = "invalid --since manifest: " + manifestError;
      return result;
    }
  }

  shardCount_ = options_.shardCount ? options_.shardCount
                                    : options_.workers.size();
  state_.shards = std::vector<ShardState>(shardCount_);
  state_.slots = std::vector<LeaseSlot>(options_.workers.size());
  state_.shardsRemaining = shardCount_;
  state_.workersAlive = options_.workers.size();
  refreshGauges();
  writeMetricsFile();
  event("fleet: " + std::to_string(options_.workers.size()) + " worker(s), " +
        std::to_string(shardCount_) + " shard(s), lease timeout " +
        std::to_string(options_.leaseTimeoutMillis) + " ms");

  std::vector<std::thread> workers;
  workers.reserve(options_.workers.size());
  for (std::size_t w = 0; w < options_.workers.size(); ++w)
    workers.emplace_back([this, w] { workerLoop(w); });
  std::thread monitor([this] { monitorLoop(); });

  for (std::thread &thread : workers)
    thread.join();
  {
    std::lock_guard<std::mutex> lock(state_.mutex);
    state_.stopMonitor = true;
    state_.cv.notify_all();
  }
  monitor.join();

  if (state_.failed) {
    result.status = state_.failStatus;
    result.error = state_.failError;
    writeMetricsFile();
    return result;
  }

  // Merge the per-shard reports exactly as `mira-cli manifest merge`
  // would: deserialize, fold, re-serialize — byte-identical to the
  // 1-process local run by the shard-disjointness + merge contract.
  std::vector<driver::BatchReport> parts;
  parts.reserve(shardCount_);
  for (std::size_t i = 0; i < shardCount_; ++i) {
    driver::BatchReport part;
    std::string error;
    if (!driver::deserializeBatchReport(state_.shards[i].reportBytes, part,
                                        error)) {
      result.status = CoordinatorStatus::transportFailed;
      result.error =
          "shard " + std::to_string(i + 1) + " report corrupt: " + error;
      writeMetricsFile();
      return result;
    }
    parts.push_back(std::move(part));
  }
  result.report = driver::mergeBatchReports(parts);
  result.reportBytes = driver::serializeBatchReport(result.report);
  result.status = CoordinatorStatus::ok;
  writeMetricsFile();
  return result;
}

} // namespace

CoordinatorResult runCoordinator(const CoordinatorOptions &options,
                                 core::MetricsRegistry &metrics) {
  Coordinator coordinator(options, metrics);
  return coordinator.run();
}

bool parseWorkerList(const std::string &spec,
                     std::vector<WorkerEndpoint> &workers,
                     std::string &error) {
  workers.clear();
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos)
      end = spec.size();
    const std::string part = spec.substr(begin, end - begin);
    if (!part.empty()) {
      WorkerEndpoint endpoint;
      if (!net::parseHostPort(part, endpoint.host, endpoint.port, error))
        return false;
      if (endpoint.port == 0) {
        error = "worker endpoint '" + part + "' needs an explicit port";
        return false;
      }
      workers.push_back(std::move(endpoint));
    }
    begin = end + 1;
  }
  if (workers.empty()) {
    error = "no worker endpoints in '" + spec + "'";
    return false;
  }
  return true;
}

} // namespace mira::fleet
