/// \file
/// Fleet coordinator: drive a corpus manifest across worker daemons
/// over TCP, with shard leases, epoch fencing, and failover.
///
/// The coordinator is the distribution layer the manifest machinery was
/// built for: shard assignment is a pure function of (cache key, shard
/// count) (driver::keyInShard), every worker executes its shard through
/// the same ManifestBatch request a local client would send, and
/// per-shard BatchReports merge associatively (driver::mergeBatchReports)
/// — so the merged report is byte-identical to a 1-process local
/// `mira-cli batch --manifest` run, even when workers die or stall
/// mid-shard and their leases are re-issued elsewhere.
///
/// Fault model (docs/FLEET.md): each shard is handed out as a *lease*
/// stamped with a monotonically increasing epoch. BatchProgress frames
/// streamed by the worker double as heartbeats; a lease whose heartbeat
/// goes quiet past the lease timeout is expired — the shard returns to
/// the pending pool under a bumped epoch and the next free worker picks
/// it up. A late reply from a superseded lease is *fenced*: its epoch
/// no longer matches the shard's, so the bytes are discarded (exactly
/// one reply per shard is ever accepted). Re-issues prefer workers that
/// have not attempted the shard before, so a re-run lands on a cold
/// cache and reproduces the canonical cold-run report bytes.
///
/// Everything observable (leases issued/re-issued/expired/fenced,
/// worker health, shard completion) is exported through the same
/// core::MetricsRegistry / --metrics-file path the daemon uses.
/// tests/fleet_test.cpp pins the chaos/failover behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/metrics_registry.h"
#include "core/mira.h"
#include "driver/batch.h"

namespace mira::fleet {

/// One worker daemon's TCP endpoint.
struct WorkerEndpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Why a coordinator run ended; maps onto the client CLI exit contract
/// (docs/CLI.md): ok -> 0, daemonFailed -> 1, connectFailed -> 3,
/// transportFailed -> 4. Usage errors never reach the coordinator.
enum class CoordinatorStatus {
  ok,              ///< every shard completed and the reports merged
  connectFailed,   ///< no worker ever accepted a connection + handshake
  transportFailed, ///< a shard exhausted its attempts on transport-class
                   ///< failures (workers dying/vanishing mid-shard)
  daemonFailed,    ///< a worker daemon rejected the work itself (Error
                   ///< reply), which retrying elsewhere cannot fix
};

/// Coordinator configuration. The manifest travels as raw
/// corpus::serializeManifest bytes — exactly what each worker's
/// ManifestBatch request carries — so the coordinator never needs the
/// workload tree on its own filesystem.
struct CoordinatorOptions {
  std::string manifestBytes;           ///< corpus::serializeManifest bytes
  std::string sinceBytes;              ///< optional baseline; empty = full
  std::string root;                    ///< resolve override; empty = manifest's
  core::MiraOptions options;           ///< analysis options for every entry
  std::vector<WorkerEndpoint> workers; ///< at least one
  /// Shards to partition the manifest into; 0 = one per worker.
  std::size_t shardCount = 0;
  /// A leased shard whose heartbeat is older than this is expired and
  /// re-issued under a bumped epoch.
  std::uint32_t leaseTimeoutMillis = 10000;
  /// Bound on establishing each worker TCP connection.
  int connectTimeoutMillis = 5000;
  /// A shard failing this many leases gives up and fails the run (a
  /// backstop against a poisoned shard consuming the fleet forever).
  std::size_t maxAttemptsPerShard = 5;
  /// Consecutive failed connects after which a worker is declared dead.
  std::size_t maxConnectFailures = 2;
  /// Shared secret for workers started with --secret; empty = none.
  std::string secret;
  /// When non-empty, rewritten (write-temp-then-rename) on every
  /// monitor tick and once at start/end with the registry's Prometheus
  /// text dump — same contract as the daemon's --metrics-file.
  std::string metricsFile;
  /// Optional human-readable event stream (lease grants, expiries,
  /// fences, worker deaths); the CLI points this at stderr.
  std::function<void(const std::string &)> onEvent;
};

/// Outcome of a coordinator run.
struct CoordinatorResult {
  CoordinatorStatus status = CoordinatorStatus::transportFailed;
  /// Merged driver::serializeBatchReport bytes; byte-identical to a
  /// 1-process local run of the same manifest + options against a cold
  /// cache. Only meaningful when status == ok.
  std::string reportBytes;
  /// The decoded merged report (entry outcomes + summed stats).
  driver::BatchReport report;
  std::string error; ///< description when status != ok
};

/// Run a manifest across the fleet: lease shards to workers, heartbeat,
/// expire, fence, retry, merge. Blocks until every shard completed or
/// the run failed. Coordinator state is exported through `metrics`
/// under `fleet_*` names (and options.metricsFile when set).
CoordinatorResult runCoordinator(const CoordinatorOptions &options,
                                 core::MetricsRegistry &metrics);

/// Parse a comma-separated `host:port,host:port,...` worker list.
/// False with a description on an empty list or a malformed endpoint.
bool parseWorkerList(const std::string &spec,
                     std::vector<WorkerEndpoint> &workers,
                     std::string &error);

} // namespace mira::fleet
