#include "support/cache_store.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#else
#include <process.h>
#endif

#include "support/binary_io.h"
#include "support/fault_injection.h"
#include "support/hash.h"

namespace mira {

namespace fs = std::filesystem;

namespace {

// Entry layout: [magic u32][version u32][payloadSize u64][payloadHash u64]
// followed by payloadSize payload bytes. All integers little-endian
// (written/read on the same architecture; the cache is host-local).
constexpr std::uint32_t kCacheMagic = 0x4172694d; // "MirA"
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 8;
constexpr const char *kEntrySuffix = ".mira";

std::string keyFileName(std::uint64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx%s",
                static_cast<unsigned long long>(key), kEntrySuffix);
  return buf;
}

bool isEntryName(const std::string &name) {
  const std::size_t suffixLen = std::strlen(kEntrySuffix);
  if (name.size() != 16 + suffixLen)
    return false;
  if (name.compare(16, suffixLen, kEntrySuffix) != 0)
    return false;
  return name.find_first_not_of("0123456789abcdef") == 16;
}

/// An in-flight (or orphaned) temporary from the write protocol below.
bool isTempName(const std::string &name) {
  return name.size() > 5 && name.front() == '.' &&
         name.compare(name.size() - 4, 4, ".tmp") == 0;
}

/// Unique-per-writer temporary name in the cache directory, so concurrent
/// stores (threads or processes) never scribble on each other's
/// half-written files; the final rename is what publishes an entry.
std::string tempFileName(std::uint64_t key) {
  static std::atomic<std::uint64_t> counter{0};
#ifndef _WIN32
  const unsigned long pid = static_cast<unsigned long>(::getpid());
#else
  const unsigned long pid = static_cast<unsigned long>(::_getpid());
#endif
  char buf[96];
  std::snprintf(buf, sizeof(buf), ".%016llx.%lu.%llu.tmp",
                static_cast<unsigned long long>(key), pid,
                static_cast<unsigned long long>(
                    counter.fetch_add(1, std::memory_order_relaxed)));
  return buf;
}

} // namespace

CacheStore::CacheStore(std::string directory, std::uint64_t bytesLimit)
    : directory_(std::move(directory)), bytes_limit_(bytesLimit) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  usable_ = !directory_.empty() && fs::is_directory(directory_, ec);
  // approx_bytes_ only feeds the over-limit check, so an uncapped store
  // skips the seed scan (which on a large long-lived directory is the
  // whole construction cost).
  if (usable_ && bytes_limit_ != 0)
    approx_bytes_ = totalBytes(); // one scan; stores update incrementally
}

std::string CacheStore::pathForKey(std::uint64_t key) const {
  return (fs::path(directory_) / keyFileName(key)).string();
}

std::optional<std::string> CacheStore::load(std::uint64_t key) {
  std::uint32_t version = 0;
  return loadRange(key, kCacheSchemaVersion, version, /*touch=*/true);
}

std::optional<std::string> CacheStore::load(std::uint64_t key,
                                            std::uint32_t &version) {
  return loadRange(key, kCacheSchemaVersionMin, version, /*touch=*/true);
}

std::optional<std::string> CacheStore::peek(std::uint64_t key,
                                            std::uint32_t &version) {
  return loadRange(key, kCacheSchemaVersionMin, version, /*touch=*/false);
}

std::optional<std::string> CacheStore::loadRange(std::uint64_t key,
                                                 std::uint32_t minVersion,
                                                 std::uint32_t &version,
                                                 bool touch) {
  const auto miss = [&]() -> std::optional<std::string> {
    if (!touch)
      return std::nullopt;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    return std::nullopt;
  };
  if (!usable_)
    return miss();
  const std::string path = pathForKey(key);
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return miss();
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // Every rejection below is some flavor of corruption (truncation, a
  // foreign file, a different schema, a torn payload): unlink the entry
  // so it cannot waste a validation pass on every future lookup. A
  // peek (touch == false) must stay side-effect free even here — the
  // next real load will do the unlinking.
  const auto reject = [&]() -> std::optional<std::string> {
    if (!touch)
      return std::nullopt;
    std::error_code ec;
    fs::remove(path, ec);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corrupt;
    ++stats_.misses;
    approx_bytes_ -= std::min<std::uint64_t>(approx_bytes_, bytes.size());
    return std::nullopt;
  };

  bio::Reader header{bytes, 0};
  std::uint32_t magic = 0;
  std::uint64_t payloadSize = 0, payloadHash = 0;
  if (!header.u32(magic) || !header.u32(version) ||
      !header.u64(payloadSize) || !header.u64(payloadHash))
    return reject();
  if (magic != kCacheMagic)
    return reject();
  if (version < minVersion || version > kCacheSchemaVersion) {
    // A well-formed entry from another schema version is not corrupt —
    // unlinking it would let two binary versions sharing one directory
    // destroy each other's caches. Miss; our own store() will replace
    // it with this version's result.
    if (touch) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
    }
    return std::nullopt;
  }
  if (bytes.size() != kHeaderSize + payloadSize)
    return reject();
  std::string payload = bytes.substr(kHeaderSize);
  if (fnv1a(payload) != payloadHash)
    return reject();

  if (touch) {
    // Touch the entry so mtime approximates recency for LRU eviction.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
  }
  return payload;
}

std::optional<std::uint32_t>
CacheStore::entryVersion(std::uint64_t key) const {
  if (!usable_)
    return std::nullopt;
  std::ifstream in(pathForKey(key), std::ios::binary);
  if (!in)
    return std::nullopt;
  char header[8];
  in.read(header, sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header)))
    return std::nullopt;
  const std::string prefix(header, sizeof(header));
  bio::Reader r{prefix, 0};
  std::uint32_t magic = 0, version = 0;
  if (!r.u32(magic) || !r.u32(version) || magic != kCacheMagic)
    return std::nullopt;
  return version;
}

std::vector<std::uint64_t> CacheStore::keys() const {
  std::vector<std::uint64_t> out;
  std::error_code ec;
  for (const auto &it : fs::directory_iterator(directory_, ec)) {
    const std::string name = it.path().filename().string();
    if (!isEntryName(name))
      continue;
    out.push_back(std::strtoull(name.substr(0, 16).c_str(), nullptr, 16));
  }
  return out;
}

std::size_t CacheStore::clearVersion(std::uint32_t version) {
  std::size_t removed = 0;
  for (std::uint64_t key : keys()) {
    const auto entry = entryVersion(key);
    if (!entry || *entry != version)
      continue;
    std::error_code ec;
    if (fs::remove(pathForKey(key), ec))
      ++removed;
  }
  if (removed != 0) {
    // Resync the running byte estimate (it only feeds the over-limit
    // check) after a bulk purge.
    const std::uint64_t measured = totalBytes();
    std::lock_guard<std::mutex> lock(mutex_);
    approx_bytes_ = measured;
  }
  return removed;
}

bool CacheStore::remove(std::uint64_t key) {
  if (!usable_)
    return false;
  const std::string path = pathForKey(key);
  std::error_code sizeEc;
  const std::uint64_t size = fs::file_size(path, sizeEc);
  std::error_code ec;
  if (!fs::remove(path, ec) || ec)
    return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!sizeEc)
    approx_bytes_ -= std::min(approx_bytes_, size);
  return true;
}

bool CacheStore::store(std::uint64_t key, const std::string &payload) {
  if (!usable_)
    return false;
  // Injection point: a failed store means "not cached" and callers
  // degrade to recompute, exactly like a full disk or unwritable dir.
  if (fault::shouldFail("cache-write"))
    return false;

  std::string bytes;
  bytes.reserve(kHeaderSize + payload.size());
  bio::putU32(bytes, kCacheMagic);
  bio::putU32(bytes, kCacheSchemaVersion);
  bio::putU64(bytes, payload.size());
  bio::putU64(bytes, fnv1a(payload));
  bytes += payload;

  const fs::path dir(directory_);
  const fs::path tmp = dir / tempFileName(key);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  const fs::path target = dir / keyFileName(key);
  std::error_code sizeEc;
  const std::uint64_t replacedSize = fs::file_size(target, sizeEc);
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  bool overLimit = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.stores;
    if (!sizeEc)
      approx_bytes_ -= std::min(approx_bytes_, replacedSize);
    approx_bytes_ += bytes.size();
    overLimit = bytes_limit_ != 0 && approx_bytes_ > bytes_limit_;
  }
  if (overLimit)
    evictToFit(key);
  return true;
}

void CacheStore::evictToFit(std::uint64_t protectedKey) {
  // One evictor at a time; loads and stores keep flowing meanwhile. The
  // scan below measures the real total, which also resynchronizes the
  // incremental approx_bytes_ estimate after any concurrent-replace
  // drift.
  std::lock_guard<std::mutex> evictLock(evict_mutex_);
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t size;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  // Temp files older than this are orphans of a crashed writer (live
  // writes last milliseconds); the eviction pass reclaims them so
  // repeated crashes cannot grow the directory without bound.
  const auto staleTempCutoff =
      fs::file_time_type::clock::now() - std::chrono::hours(1);
  for (const auto &it : fs::directory_iterator(directory_, ec)) {
    const std::string name = it.path().filename().string();
    if (!isEntryName(name)) {
      if (isTempName(name)) {
        std::error_code fec;
        const auto mtime = fs::last_write_time(it.path(), fec);
        if (!fec && mtime < staleTempCutoff)
          fs::remove(it.path(), fec);
      }
      continue;
    }
    std::error_code fec;
    const std::uint64_t size = it.file_size(fec);
    const auto mtime = fs::last_write_time(it.path(), fec);
    if (fec)
      continue; // raced with a concurrent remove; skip
    entries.push_back({it.path(), mtime, size});
    total += size;
  }
  std::size_t evicted = 0;
  if (total > bytes_limit_) {
    std::sort(entries.begin(), entries.end(), [](const Entry &a,
                                                 const Entry &b) {
      return a.mtime < b.mtime;
    });
    const std::string keep = keyFileName(protectedKey);
    for (const Entry &entry : entries) {
      if (total <= bytes_limit_)
        break;
      if (entry.path.filename().string() == keep)
        continue;
      std::error_code rec;
      if (fs::remove(entry.path, rec)) {
        total -= entry.size;
        ++evicted;
      }
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.evictions += evicted;
  approx_bytes_ = total;
}

void CacheStore::clear() {
  if (!usable_)
    return;
  std::error_code ec;
  for (const auto &it : fs::directory_iterator(directory_, ec)) {
    const std::string name = it.path().filename().string();
    // Entries and write-protocol temp files (including orphans from
    // crashed writers) both go; a concurrent writer whose temp vanishes
    // sees a failed rename, i.e. "not cached" — clear is destructive by
    // intent. Anything else in the directory is foreign and kept.
    if (!isEntryName(name) && !isTempName(name))
      continue;
    std::error_code rec;
    fs::remove(it.path(), rec);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  approx_bytes_ = 0;
}

CacheStoreStats CacheStore::statsSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t CacheStore::entryCount() const {
  std::size_t count = 0;
  std::error_code ec;
  for (const auto &it : fs::directory_iterator(directory_, ec))
    if (isEntryName(it.path().filename().string()))
      ++count;
  return count;
}

std::uint64_t CacheStore::totalBytes() const {
  std::size_t entries = 0;
  std::uint64_t total = 0;
  usage(entries, total);
  return total;
}

void CacheStore::usage(std::size_t &entries, std::uint64_t &bytes) const {
  entries = 0;
  bytes = 0;
  std::error_code ec;
  for (const auto &it : fs::directory_iterator(directory_, ec)) {
    if (!isEntryName(it.path().filename().string()))
      continue;
    ++entries;
    std::error_code fec;
    const std::uint64_t size = it.file_size(fec);
    if (!fec)
      bytes += size;
  }
}

} // namespace mira
