#include "support/fault_injection.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <unistd.h>

namespace mira::fault {
namespace {

enum class RuleAction { fail, crash, stall };

struct Rule {
  std::string site;
  RuleAction action = RuleAction::fail;
  std::uint64_t ordinal = 1; ///< 1-based hit that triggers
  bool sticky = false;       ///< trailing '+': ordinal-th and later hits
  std::uint64_t durationMs = 2000;
  std::atomic<std::uint64_t> hits{0};
};

// Parsed once per process; rules never change afterwards, so hit() can
// walk the container lock-free. A deque because Rule's atomic counter
// makes it immovable.
std::deque<Rule> *g_rules = nullptr;
std::atomic<bool> g_armed{false};
std::once_flag g_once;

std::vector<std::string> split(const std::string &text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

void parseSpec(const char *spec) {
  auto rules = new std::deque<Rule>();
  for (const std::string &clause : split(spec, ',')) {
    if (clause.empty())
      continue;
    std::vector<std::string> fields = split(clause, ':');
    if (fields.size() < 3 || fields[0].empty())
      continue; // malformed clauses are ignored, never fatal
    Rule rule;
    rule.site = fields[0];
    if (fields[1] == "fail")
      rule.action = RuleAction::fail;
    else if (fields[1] == "crash")
      rule.action = RuleAction::crash;
    else if (fields[1] == "stall")
      rule.action = RuleAction::stall;
    else
      continue;
    std::string ordinal = fields[2];
    if (!ordinal.empty() && ordinal.back() == '+') {
      rule.sticky = true;
      ordinal.pop_back();
    }
    char *end = nullptr;
    unsigned long long value = std::strtoull(ordinal.c_str(), &end, 10);
    if (ordinal.empty() || (end && *end != '\0') || value == 0)
      continue;
    rule.ordinal = value;
    if (fields.size() >= 4) {
      unsigned long long duration = std::strtoull(fields[3].c_str(), &end, 10);
      if (!fields[3].empty() && end && *end == '\0')
        rule.durationMs = duration;
    }
    rules->emplace_back();
    Rule &stored = rules->back();
    stored.site = rule.site;
    stored.action = rule.action;
    stored.ordinal = rule.ordinal;
    stored.sticky = rule.sticky;
    stored.durationMs = rule.durationMs;
  }
  if (!rules->empty()) {
    g_rules = rules;
    g_armed.store(true, std::memory_order_release);
  } else {
    delete rules;
  }
}

void initOnce() {
  std::call_once(g_once, [] {
    if (const char *spec = std::getenv("MIRA_FAULT"))
      parseSpec(spec);
  });
}

} // namespace

bool armed() {
  initOnce();
  return g_armed.load(std::memory_order_acquire);
}

Action hit(const char *site) {
  if (!armed())
    return Action::none;
  for (Rule &rule : *g_rules) {
    if (rule.site != site)
      continue;
    const std::uint64_t count =
        rule.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    const bool triggered =
        rule.sticky ? count >= rule.ordinal : count == rule.ordinal;
    if (!triggered)
      continue;
    switch (rule.action) {
    case RuleAction::fail:
      return Action::fail;
    case RuleAction::crash:
      // Simulate kill -9 / power loss at exactly this point: no atexit
      // handlers, no stack unwinding, no buffered-IO flush.
      ::kill(::getpid(), SIGKILL);
      ::pause(); // unreachable; SIGKILL cannot be handled
      break;
    case RuleAction::stall:
      std::this_thread::sleep_for(std::chrono::milliseconds(rule.durationMs));
      return Action::none;
    }
  }
  return Action::none;
}

} // namespace mira::fault
