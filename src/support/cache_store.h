/// \file
/// Persistent on-disk cache: one file per 64-bit key, atomic writes,
/// versioned headers, LRU size-capped eviction.
///
/// CacheStore is payload-agnostic (it stores byte strings); the driver
/// layers the AnalysisOutcome serializer (model/serialize.h) on top of
/// it to get cross-run reuse of analysis results. The store is
/// deliberately paranoid: every read validates a magic number, a schema
/// version, the payload length, and an FNV-1a payload checksum, and
/// anything that fails validation is treated as a miss (and unlinked)
/// instead of an error, so a corrupted or torn cache can never fail a
/// batch — the worst case is recomputation. See docs/CACHING.md for the
/// format.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace mira {

/// On-disk format version. Bump whenever the serialized payload layout
/// (model/serialize.h) or the header itself changes; readers treat any
/// other version as a miss, so stale caches age out instead of breaking.
inline constexpr std::uint32_t kCacheSchemaVersion = 1;

/// Process-lifetime counters of one CacheStore (all operations since
/// construction; not persisted).
struct CacheStoreStats {
  std::size_t hits = 0;      ///< load() calls that returned a payload
  std::size_t misses = 0;    ///< load() calls with no (valid) entry
  std::size_t corrupt = 0;   ///< entries rejected by validation
  std::size_t stores = 0;    ///< successful store() calls
  std::size_t evictions = 0; ///< entries removed to satisfy the byte cap
};

/// A directory of cache entries keyed by 64-bit fingerprints.
///
/// Concurrency: safe for concurrent use from multiple threads of one
/// process and tolerant of concurrent writers across processes — writes
/// go to a unique temporary file in the same directory and are
/// published with an atomic rename(2), so readers see either the old
/// entry, the new entry, or no entry, never a torn file. File I/O runs
/// without any lock (the rename protocol is what makes it safe); the
/// internal mutex guards only the counters, so parallel warm-run loads
/// proceed concurrently.
///
/// Eviction: when `bytesLimit` is non-zero, store() evicts
/// least-recently-used entries (by file modification time; load() bumps
/// it) until the directory fits the cap. The newly stored entry itself is
/// never evicted by its own store() call.
class CacheStore {
public:
  /// Opens (and creates, if needed) the cache directory. `bytesLimit` of
  /// 0 means unlimited. A directory that cannot be created disables the
  /// store: loads miss and stores fail, but nothing throws.
  explicit CacheStore(std::string directory, std::uint64_t bytesLimit = 0);

  /// Fetch the payload stored under `key`; nullopt when absent or when
  /// the entry fails validation (which also deletes the bad file).
  std::optional<std::string> load(std::uint64_t key);

  /// Persist `payload` under `key`, replacing any existing entry, then
  /// enforce the byte cap. Returns false on I/O failure (disk full,
  /// unwritable directory); the cache is a best-effort layer, so callers
  /// should treat a failed store as "not cached", not as an error.
  bool store(std::uint64_t key, const std::string &payload);

  /// Remove every cache entry and write-protocol temp file (including
  /// orphans left by crashed writers); foreign files in the directory
  /// are left alone.
  void clear();

  /// Number of valid-looking entries currently on disk.
  std::size_t entryCount() const;

  /// Total on-disk bytes of all entries (headers included).
  std::uint64_t totalBytes() const;

  /// entryCount() and totalBytes() in one directory scan — what pollers
  /// (the daemon's cache-stats endpoint, `mira-cli cache stats`) should
  /// use instead of two walks.
  void usage(std::size_t &entries, std::uint64_t &bytes) const;

  /// Counters since this CacheStore was constructed. The reference is
  /// unsynchronized — fine after the store has quiesced (tests, end of a
  /// run); concurrent readers (the serving daemon's stats endpoint) use
  /// statsSnapshot() instead.
  const CacheStoreStats &stats() const { return stats_; }

  /// Locked copy of the counters, safe while other threads are actively
  /// hitting the store.
  CacheStoreStats statsSnapshot() const;

  const std::string &directory() const { return directory_; }
  std::uint64_t bytesLimit() const { return bytes_limit_; }

  /// True when the cache directory exists and is usable.
  bool usable() const { return usable_; }

private:
  std::string pathForKey(std::uint64_t key) const;
  void evictToFit(std::uint64_t protectedKey);

  std::string directory_;
  std::uint64_t bytes_limit_ = 0;
  bool usable_ = false;
  /// Guards stats_ and approx_bytes_ only — never held across file I/O.
  mutable std::mutex mutex_;
  CacheStoreStats stats_;
  /// Running estimate of on-disk bytes, maintained incrementally so
  /// store() does not rescan the directory per call. Concurrent
  /// replacements can make it drift; each eviction pass resynchronizes
  /// it to the measured total.
  std::uint64_t approx_bytes_ = 0;
  /// Serializes eviction passes (the only directory-scanning writers).
  std::mutex evict_mutex_;
};

} // namespace mira
