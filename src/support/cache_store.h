/// \file
/// Persistent on-disk cache: one file per 64-bit key, atomic writes,
/// versioned headers, LRU size-capped eviction.
///
/// CacheStore is payload-agnostic (it stores byte strings); the driver
/// layers the AnalysisOutcome serializer (model/serialize.h) on top of
/// it to get cross-run reuse of analysis results. The store is
/// deliberately paranoid: every read validates a magic number, a schema
/// version, the payload length, and an FNV-1a payload checksum, and
/// anything that fails validation is treated as a miss (and unlinked)
/// instead of an error, so a corrupted or torn cache can never fail a
/// batch — the worst case is recomputation. See docs/CACHING.md for the
/// format.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace mira {

/// On-disk format version written by store(). Bump whenever the
/// serialized payload layout (driver/batch.h artifact payload,
/// model/serialize.h) or the header itself changes.
///
/// Version history:
///   1 — PR 2: `[ok][producerName][diagnostics][model]` outcome payload.
///   2 — artifact payload: a loop-coverage summary rides alongside the
///       model so coverage can be served without the compiled program.
inline constexpr std::uint32_t kCacheSchemaVersion = 2;

/// Oldest schema version load(key, version) still accepts. v1 payloads
/// lack the coverage summary; the driver degrades them to
/// recompile-on-demand (docs/CACHING.md, "Schema migration").
inline constexpr std::uint32_t kCacheSchemaVersionMin = 1;

/// Process-lifetime counters of one CacheStore (all operations since
/// construction; not persisted).
struct CacheStoreStats {
  std::size_t hits = 0;      ///< load() calls that returned a payload
  std::size_t misses = 0;    ///< load() calls with no (valid) entry
  std::size_t corrupt = 0;   ///< entries rejected by validation
  std::size_t stores = 0;    ///< successful store() calls
  std::size_t evictions = 0; ///< entries removed to satisfy the byte cap
};

/// A directory of cache entries keyed by 64-bit fingerprints.
///
/// Concurrency: safe for concurrent use from multiple threads of one
/// process and tolerant of concurrent writers across processes — writes
/// go to a unique temporary file in the same directory and are
/// published with an atomic rename(2), so readers see either the old
/// entry, the new entry, or no entry, never a torn file. File I/O runs
/// without any lock (the rename protocol is what makes it safe); the
/// internal mutex guards only the counters, so parallel warm-run loads
/// proceed concurrently.
///
/// Eviction: when `bytesLimit` is non-zero, store() evicts
/// least-recently-used entries (by file modification time; load() bumps
/// it) until the directory fits the cap. The newly stored entry itself is
/// never evicted by its own store() call.
class CacheStore {
public:
  /// Opens (and creates, if needed) the cache directory. `bytesLimit` of
  /// 0 means unlimited. A directory that cannot be created disables the
  /// store: loads miss and stores fail, but nothing throws.
  explicit CacheStore(std::string directory, std::uint64_t bytesLimit = 0);

  /// Fetch the payload stored under `key`; nullopt when absent or when
  /// the entry fails validation (which also deletes the bad file). Only
  /// current-schema entries are served; older (still-supported) versions
  /// go through the two-argument overload.
  std::optional<std::string> load(std::uint64_t key);

  /// Like load(), but also accepts entries of any supported schema
  /// version (`kCacheSchemaVersionMin`..`kCacheSchemaVersion`) and
  /// reports which version the payload was written under, so the caller
  /// can pick the matching payload codec. Entries outside the supported
  /// range miss without being deleted (another binary's valid cache).
  std::optional<std::string> load(std::uint64_t key, std::uint32_t &version);

  /// Validated read without side effects: like the two-argument load()
  /// but bumps neither the LRU recency nor any counter, and never
  /// unlinks a corrupt entry (that is left to the next real load), so
  /// inspection commands (`cache stats`) cannot perturb the store.
  std::optional<std::string> peek(std::uint64_t key, std::uint32_t &version);

  /// Header schema version of the entry stored under `key`, or nullopt
  /// when there is no well-formed entry. Does not validate the payload
  /// checksum and does not bump LRU recency.
  std::optional<std::uint32_t> entryVersion(std::uint64_t key) const;

  /// Every key with a well-formed entry file name, in no particular
  /// order. `mira-cli cache stats` walks this to break byte totals down
  /// per artifact.
  std::vector<std::uint64_t> keys() const;

  /// Remove every entry written under schema `version` (the
  /// `cache clear --schema vN` migration path); returns how many were
  /// removed. Temp files and other versions are untouched.
  std::size_t clearVersion(std::uint32_t version);

  /// Unlink the entry stored under `key`, if any; true when a file was
  /// removed. The corpus-manifest prune path (`mira-cli cache prune`)
  /// walks keys() and removes entries no manifest still references.
  bool remove(std::uint64_t key);

  /// Persist `payload` under `key`, replacing any existing entry, then
  /// enforce the byte cap. Returns false on I/O failure (disk full,
  /// unwritable directory); the cache is a best-effort layer, so callers
  /// should treat a failed store as "not cached", not as an error.
  bool store(std::uint64_t key, const std::string &payload);

  /// Remove every cache entry and write-protocol temp file (including
  /// orphans left by crashed writers); foreign files in the directory
  /// are left alone.
  void clear();

  /// Number of valid-looking entries currently on disk.
  std::size_t entryCount() const;

  /// Total on-disk bytes of all entries (headers included).
  std::uint64_t totalBytes() const;

  /// entryCount() and totalBytes() in one directory scan — what pollers
  /// (the daemon's cache-stats endpoint, `mira-cli cache stats`) should
  /// use instead of two walks.
  void usage(std::size_t &entries, std::uint64_t &bytes) const;

  /// Counters since this CacheStore was constructed. The reference is
  /// unsynchronized — fine after the store has quiesced (tests, end of a
  /// run); concurrent readers (the serving daemon's stats endpoint) use
  /// statsSnapshot() instead.
  const CacheStoreStats &stats() const { return stats_; }

  /// Locked copy of the counters, safe while other threads are actively
  /// hitting the store.
  CacheStoreStats statsSnapshot() const;

  const std::string &directory() const { return directory_; }
  std::uint64_t bytesLimit() const { return bytes_limit_; }

  /// True when the cache directory exists and is usable.
  bool usable() const { return usable_; }

private:
  std::string pathForKey(std::uint64_t key) const;
  std::optional<std::string> loadRange(std::uint64_t key,
                                       std::uint32_t minVersion,
                                       std::uint32_t &version, bool touch);
  void evictToFit(std::uint64_t protectedKey);

  std::string directory_;
  std::uint64_t bytes_limit_ = 0;
  bool usable_ = false;
  /// Guards stats_ and approx_bytes_ only — never held across file I/O.
  mutable std::mutex mutex_;
  CacheStoreStats stats_;
  /// Running estimate of on-disk bytes, maintained incrementally so
  /// store() does not rescan the directory per call. Concurrent
  /// replacements can make it drift; each eviction pass resynchronizes
  /// it to the measured total.
  std::uint64_t approx_bytes_ = 0;
  /// Serializes eviction passes (the only directory-scanning writers).
  std::mutex evict_mutex_;
};

} // namespace mira
