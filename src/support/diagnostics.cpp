#include "support/diagnostics.h"

namespace mira {

const char *toString(DiagSeverity severity) {
  switch (severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string out;
  if (location.isValid()) {
    out += location.str();
    out += ": ";
  }
  out += toString(severity);
  out += ": ";
  out += message;
  return out;
}

void DiagnosticEngine::report(DiagSeverity severity, SourceLocation loc,
                              std::string message) {
  if (severity == DiagSeverity::Error)
    ++error_count_;
  else if (severity == DiagSeverity::Warning)
    ++warning_count_;
  diagnostics_.push_back(Diagnostic{severity, loc, std::move(message)});
}

void DiagnosticEngine::append(const DiagnosticEngine &other) {
  for (const Diagnostic &d : other.diagnostics_)
    report(d.severity, d.location, d.message);
}

bool DiagnosticEngine::containsMessage(const std::string &substring) const {
  for (const Diagnostic &d : diagnostics_)
    if (d.message.find(substring) != std::string::npos)
      return true;
  return false;
}

std::string DiagnosticEngine::str() const {
  std::string out;
  for (const Diagnostic &d : diagnostics_) {
    out += d.str();
    out += '\n';
  }
  return out;
}

void DiagnosticEngine::clear() {
  diagnostics_.clear();
  error_count_ = 0;
  warning_count_ = 0;
}

} // namespace mira
