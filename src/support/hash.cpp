#include "support/hash.h"

namespace mira {

std::uint64_t fnv1a(const void *data, std::size_t size, std::uint64_t seed) {
  const auto *bytes = static_cast<const unsigned char *>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t fnv1a(const std::string &text, std::uint64_t seed) {
  return fnv1a(text.data(), text.size(), seed);
}

std::uint64_t hashCombine(std::uint64_t seed, std::uint64_t value) {
  return fnv1a(&value, sizeof(value), seed);
}

} // namespace mira
