#include "support/string_utils.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mira {

std::vector<std::string> splitString(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  while (b < text.size() && std::isspace(static_cast<unsigned char>(text[b])))
    ++b;
  std::size_t e = text.size();
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])))
    --e;
  return text.substr(b, e - b);
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool parseInt64(std::string_view text, std::int64_t &out) {
  text = trim(text);
  if (text.empty())
    return false;
  std::string buf(text);
  errno = 0;
  char *end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size())
    return false;
  out = v;
  return true;
}

std::string formatCount(double value) {
  if (value == 0)
    return "0";
  double mag = std::fabs(value);
  char buf[64];
  if (mag >= 1e5) {
    int exp = static_cast<int>(std::floor(std::log10(mag)));
    double mant = value / std::pow(10.0, exp);
    // Trim to at most 4 significant digits in the mantissa, like the paper
    // (e.g. 8.239E7, 1.0125E9).
    std::snprintf(buf, sizeof buf, "%.4gE%d", mant, exp);
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", value);
  }
  return buf;
}

std::string formatPercent(double fraction) {
  char buf[64];
  double pct = fraction * 100.0;
  if (std::fabs(pct) < 0.01 && pct != 0)
    std::snprintf(buf, sizeof buf, "%.4f%%", pct);
  else
    std::snprintf(buf, sizeof buf, "%.2f%%", pct);
  return buf;
}

std::string formatBytes(std::uint64_t bytes) {
  static const char *const kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB",
                                       "PiB", "EiB"};
  if (bytes < 1024)
    return std::to_string(bytes) + " B";
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f %s", value, kUnits[unit]);
  return buf;
}

std::string padRight(std::string text, std::size_t width) {
  if (text.size() < width)
    text.append(width - text.size(), ' ');
  return text;
}

std::string padLeft(std::string text, std::size_t width) {
  if (text.size() < width)
    text.insert(text.begin(), width - text.size(), ' ');
  return text;
}

} // namespace mira
