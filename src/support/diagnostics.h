// Diagnostic engine: collects errors/warnings/notes with source locations.
//
// Every pipeline stage reports through a DiagnosticEngine instead of
// throwing or printing. Callers decide whether to abort (hasErrors()) and
// tests assert on specific diagnostics. Malformed input must surface as
// diagnostics, never as crashes (DESIGN.md Sec. 5, failure injection).
#pragma once

#include <string>
#include <vector>

#include "support/source_location.h"

namespace mira {

enum class DiagSeverity { Note, Warning, Error };

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::Error;
  SourceLocation location;
  std::string message;

  std::string str() const;
};

const char *toString(DiagSeverity severity);

/// Accumulates diagnostics for one compilation/analysis.
class DiagnosticEngine {
public:
  void report(DiagSeverity severity, SourceLocation loc, std::string message);

  void error(SourceLocation loc, std::string message) {
    report(DiagSeverity::Error, loc, std::move(message));
  }
  void warning(SourceLocation loc, std::string message) {
    report(DiagSeverity::Warning, loc, std::move(message));
  }
  void note(SourceLocation loc, std::string message) {
    report(DiagSeverity::Note, loc, std::move(message));
  }

  bool hasErrors() const { return error_count_ > 0; }
  std::size_t errorCount() const { return error_count_; }
  std::size_t warningCount() const { return warning_count_; }
  const std::vector<Diagnostic> &all() const { return diagnostics_; }

  /// Append every diagnostic of `other` in order, keeping the counts in
  /// sync. Used to merge per-function engines back into the request's
  /// engine after parallel model generation, in deterministic
  /// function-declaration order.
  void append(const DiagnosticEngine &other);

  /// True if any diagnostic message contains `substring` (test helper).
  bool containsMessage(const std::string &substring) const;

  /// Concatenated human-readable dump of all diagnostics.
  std::string str() const;

  void clear();

private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
  std::size_t warning_count_ = 0;
};

} // namespace mira
