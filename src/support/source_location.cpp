#include "support/source_location.h"

namespace mira {

std::string SourceLocation::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(line) + ":" + std::to_string(column);
}

std::string SourceRange::str() const {
  if (!isValid())
    return "<unknown>";
  return begin.str() + "-" + end.str();
}

} // namespace mira
