/// \file
/// Environment-driven fault injection for crash/fault-tolerance tests.
///
/// Production code marks a handful of interesting failure sites with a
/// named hook (`fault::hit("cache-write")`). When the MIRA_FAULT
/// environment variable is unset — always, outside the test harness —
/// a hook is one relaxed atomic load. When set, it arms specific sites
/// to fail, crash (SIGKILL self), or stall on their Nth execution, so
/// tests/fault_injection_test.cpp can deterministically kill a daemon
/// mid-batch, fail the Nth cache write, or freeze a frame write without
/// sleeping and hoping.
///
/// Spec grammar (comma-separated rules):
///
///     MIRA_FAULT=site:action:N[+][:durationMs][,site:action:N...]
///
///   - `site`   — the hook name. Current sites: `cache-write`
///                (CacheStore::store), `compute`
///                (BatchAnalyzer::computeValue), `frame-write`
///                (net::writeFrame).
///   - `action` — `fail` (hook reports failure to its caller), `crash`
///                (raise SIGKILL, simulating kill -9 / power loss at
///                exactly that point), `stall` (sleep durationMs, then
///                proceed normally — default 2000).
///   - `N`      — 1-based hit ordinal that triggers the action. A
///                trailing `+` arms the Nth and every later hit.
///
/// Example: `MIRA_FAULT=cache-write:fail:2+` fails every cache write
/// from the second on; `MIRA_FAULT=compute:crash:3` SIGKILLs the
/// process the third time a value is computed. Counters are process-
/// global and thread-safe; the spec is parsed once per process, so a
/// forked daemon inherits its faults through the environment.
#pragma once

namespace mira::fault {

/// What a triggered injection point asks of its caller.
enum class Action {
  none, ///< not armed (or a stall that already slept): proceed normally
  fail, ///< caller should take its failure path (e.g. return false)
};

/// Count one execution of injection point `site` and return the action
/// the caller must take. `crash` rules never return; `stall` rules
/// sleep here and then return Action::none.
Action hit(const char *site);

/// Convenience for boolean failure sites: true when this hit of `site`
/// should fail.
inline bool shouldFail(const char *site) { return hit(site) == Action::fail; }

/// True when MIRA_FAULT armed at least one rule for this process (used
/// by hot paths that want to skip even the site-name comparison).
bool armed();

} // namespace mira::fault
