// Little-endian byte-buffer writers and a bounds-checked reader.
//
// Shared by the on-disk cache header (support/cache_store.cpp), the
// model serializer (model/serialize.cpp), and the driver's cached-value
// codec (driver/batch.cpp) so all on-disk bytes use one encoding:
// fixed-width little-endian integers and u32-length-prefixed strings.
// The Reader never trusts input: every accessor returns false instead of
// reading past the buffer, which is what makes truncated cache entries a
// recoverable miss rather than UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace mira::bio {

inline void putU8(std::string &out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void putU32(std::string &out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void putU64(std::string &out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void putI64(std::string &out, std::int64_t v) {
  putU64(out, static_cast<std::uint64_t>(v));
}

inline void putString(std::string &out, const std::string &s) {
  putU32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

/// Cursor over a byte buffer; every read is bounds-checked and fails
/// (returns false) instead of running off the end.
struct Reader {
  const std::string &bytes;
  std::size_t offset = 0;

  std::size_t remaining() const { return bytes.size() - offset; }

  bool u8(std::uint8_t &v) {
    if (remaining() < 1)
      return false;
    v = static_cast<std::uint8_t>(bytes[offset++]);
    return true;
  }

  bool u32(std::uint32_t &v) {
    if (remaining() < 4)
      return false;
    v = 0;
    for (int i = 3; i >= 0; --i)
      v = (v << 8) | static_cast<std::uint8_t>(bytes[offset + i]);
    offset += 4;
    return true;
  }

  bool u64(std::uint64_t &v) {
    if (remaining() < 8)
      return false;
    v = 0;
    for (int i = 7; i >= 0; --i)
      v = (v << 8) | static_cast<std::uint8_t>(bytes[offset + i]);
    offset += 8;
    return true;
  }

  bool i64(std::int64_t &v) {
    std::uint64_t u = 0;
    if (!u64(u))
      return false;
    std::memcpy(&v, &u, sizeof(v));
    return true;
  }

  bool str(std::string &s) {
    std::uint32_t len = 0;
    if (!u32(len) || remaining() < len)
      return false;
    s.assign(bytes, offset, len);
    offset += len;
    return true;
  }
};

} // namespace mira::bio
