// Source locations and ranges shared by every front-end and analysis layer.
//
// Mira's central trick (paper Sec. III-A2) is associating source-AST nodes
// with binary-AST nodes through line numbers, mirroring what debuggers do
// with DWARF .debug_line. Locations therefore flow through the whole
// pipeline: lexer -> AST -> MIR -> machine code -> object line table ->
// binary AST -> bridge.
#pragma once

#include <cstdint>
#include <string>

namespace mira {

/// A position in a source file. Lines and columns are 1-based; 0 means
/// "unknown" (synthesized nodes, compiler-generated code).
struct SourceLocation {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  constexpr bool isValid() const { return line != 0; }

  friend constexpr bool operator==(SourceLocation a, SourceLocation b) {
    return a.line == b.line && a.column == b.column;
  }
  friend constexpr bool operator!=(SourceLocation a, SourceLocation b) {
    return !(a == b);
  }
  friend constexpr bool operator<(SourceLocation a, SourceLocation b) {
    return a.line != b.line ? a.line < b.line : a.column < b.column;
  }

  std::string str() const;
};

/// A half-open range [begin, end) in one file.
struct SourceRange {
  SourceLocation begin;
  SourceLocation end;

  constexpr bool isValid() const { return begin.isValid(); }
  /// True if `loc` falls inside the range (line-granular comparison).
  bool containsLine(std::uint32_t line) const {
    return begin.line <= line && (end.line == 0 || line <= end.line);
  }

  std::string str() const;
};

} // namespace mira
