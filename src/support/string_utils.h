// Small string helpers used across modules (no external dependencies).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mira {

/// Split `text` on `sep`, keeping empty pieces.
std::vector<std::string> splitString(std::string_view text, char sep);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text);

bool startsWith(std::string_view text, std::string_view prefix);
bool endsWith(std::string_view text, std::string_view suffix);

/// Parse a signed integer; returns false on malformed input or overflow.
bool parseInt64(std::string_view text, std::int64_t &out);

/// Format `value` with thousands separators and scientific shorthand,
/// e.g. 2.05E10 — matches how the paper prints instruction counts.
std::string formatCount(double value);

/// Format `value` as a percentage with two decimals, e.g. "3.08%".
std::string formatPercent(double fraction);

/// Format a byte count with a binary-unit suffix, one decimal:
/// 512 -> "512 B", 18841 -> "18.4 KiB", 73400320 -> "70.0 MiB".
std::string formatBytes(std::uint64_t bytes);

/// Left/right pad `text` to `width` with spaces.
std::string padRight(std::string text, std::size_t width);
std::string padLeft(std::string text, std::size_t width);

} // namespace mira
