#include "support/socket.h"

#include <cerrno>
#include <cstring>

#include "support/fault_injection.h"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

namespace mira::net {

namespace {

std::string errnoString(const std::string &what) {
  return what + ": " + std::strerror(errno);
}

/// Fill a sockaddr_un; false when `path` does not fit sun_path (the
/// kernel limit is ~108 bytes and silently truncating would bind a
/// different path than the one the operator asked for).
bool makeAddress(const std::string &path, sockaddr_un &addr,
                 std::string &error) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    error = "socket path '" + path + "' is empty or longer than " +
            std::to_string(sizeof(addr.sun_path) - 1) + " bytes";
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

} // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket &Socket::operator=(Socket &&other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdownRead() {
  if (fd_ >= 0)
    ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdownBoth() {
  if (fd_ >= 0)
    ::shutdown(fd_, SHUT_RDWR);
}

Socket listenUnix(const std::string &path, std::string &error) {
  sockaddr_un addr;
  if (!makeAddress(path, addr, error))
    return Socket();

  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) {
    error = errnoString("socket");
    return Socket();
  }
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
             sizeof(addr)) != 0) {
    if (errno != EADDRINUSE) {
      error = errnoString("bind");
      return Socket();
    }
    // The path exists. Only ever reclaim an actual socket: a typo'd
    // --socket pointing at a regular file must fail loudly, not delete
    // the user's data.
    struct stat st;
    if (::lstat(path.c_str(), &st) != 0 || !S_ISSOCK(st.st_mode)) {
      error = "path '" + path + "' exists and is not a socket";
      return Socket();
    }
    // A live daemon answers a connect; a stale socket left by a crashed
    // daemon refuses it and is safe to reclaim.
    std::string probeError;
    Socket probe = connectUnix(path, probeError);
    if (probe.valid()) {
      error = "another daemon is already listening on '" + path + "'";
      return Socket();
    }
    if (::unlink(path.c_str()) != 0) {
      error = errnoString("unlink stale socket");
      return Socket();
    }
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
      error = errnoString("bind");
      return Socket();
    }
  }
  if (::listen(sock.fd(), 64) != 0) {
    error = errnoString("listen");
    ::unlink(path.c_str());
    return Socket();
  }
  return sock;
}

Socket connectUnix(const std::string &path, std::string &error) {
  sockaddr_un addr;
  if (!makeAddress(path, addr, error))
    return Socket();
  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) {
    error = errnoString("socket");
    return Socket();
  }
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
                sizeof(addr)) != 0) {
    error = errnoString("connect to '" + path + "'");
    return Socket();
  }
  return sock;
}

Socket acceptConnection(const Socket &listener) {
  for (;;) {
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0)
      return Socket(fd);
    if (errno == EINTR)
      continue;
    return Socket();
  }
}

namespace {

bool sendAll(int fd, const char *data, std::size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as a
    // failed send, not a process-killing SIGPIPE.
    ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

/// Read exactly `size` bytes. `sawAnyByte` distinguishes clean EOF (peer
/// closed between frames) from truncation (closed mid-frame).
FrameStatus recvAll(int fd, char *data, std::size_t size, bool &sawAnyByte) {
  while (size > 0) {
    ssize_t got = ::recv(fd, data, size, 0);
    if (got < 0) {
      if (errno == EINTR)
        continue;
      return FrameStatus::ioError;
    }
    if (got == 0)
      return sawAnyByte ? FrameStatus::truncated : FrameStatus::closed;
    sawAnyByte = true;
    data += got;
    size -= static_cast<std::size_t>(got);
  }
  return FrameStatus::ok;
}

} // namespace

bool writeFrame(int fd, const std::string &payload) {
  // Injection point: a failing/stalling frame write models a wedged or
  // vanished peer at an arbitrary point in the reply stream.
  if (fault::shouldFail("frame-write"))
    return false;
  char header[4];
  const auto size = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    header[i] = static_cast<char>((size >> (8 * i)) & 0xff);
  return sendAll(fd, header, sizeof(header)) &&
         sendAll(fd, payload.data(), payload.size());
}

FrameStatus readFrame(int fd, std::string &payload, std::uint32_t maxBytes) {
  payload.clear();
  char header[4];
  bool sawAnyByte = false;
  FrameStatus status = recvAll(fd, header, sizeof(header), sawAnyByte);
  if (status != FrameStatus::ok)
    return status;
  std::uint32_t size = 0;
  for (int i = 3; i >= 0; --i)
    size = (size << 8) | static_cast<std::uint8_t>(header[i]);
  if (size > maxBytes)
    return FrameStatus::oversized;
  std::string body(size, '\0');
  if (size > 0) {
    status = recvAll(fd, body.data(), size, sawAnyByte);
    if (status == FrameStatus::closed)
      status = FrameStatus::truncated; // header arrived, body did not
    if (status != FrameStatus::ok)
      return status;
  }
  payload = std::move(body);
  return FrameStatus::ok;
}

} // namespace mira::net
