#include "support/socket.h"

#include <cerrno>
#include <cstring>

#include "support/fault_injection.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace mira::net {

namespace {

std::string errnoString(const std::string &what) {
  return what + ": " + std::strerror(errno);
}

/// Fill a sockaddr_un; false when `path` does not fit sun_path (the
/// kernel limit is ~108 bytes and silently truncating would bind a
/// different path than the one the operator asked for).
bool makeAddress(const std::string &path, sockaddr_un &addr,
                 std::string &error) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    error = "socket path '" + path + "' is empty or longer than " +
            std::to_string(sizeof(addr.sun_path) - 1) + " bytes";
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

} // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket &Socket::operator=(Socket &&other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdownRead() {
  if (fd_ >= 0)
    ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdownBoth() {
  if (fd_ >= 0)
    ::shutdown(fd_, SHUT_RDWR);
}

Socket listenUnix(const std::string &path, std::string &error) {
  sockaddr_un addr;
  if (!makeAddress(path, addr, error))
    return Socket();

  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) {
    error = errnoString("socket");
    return Socket();
  }
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
             sizeof(addr)) != 0) {
    if (errno != EADDRINUSE) {
      error = errnoString("bind");
      return Socket();
    }
    // The path exists. Only ever reclaim an actual socket: a typo'd
    // --socket pointing at a regular file must fail loudly, not delete
    // the user's data.
    struct stat st;
    if (::lstat(path.c_str(), &st) != 0 || !S_ISSOCK(st.st_mode)) {
      error = "path '" + path + "' exists and is not a socket";
      return Socket();
    }
    // A live daemon answers a connect; a stale socket left by a crashed
    // daemon refuses it and is safe to reclaim.
    std::string probeError;
    Socket probe = connectUnix(path, probeError);
    if (probe.valid()) {
      error = "another daemon is already listening on '" + path + "'";
      return Socket();
    }
    if (::unlink(path.c_str()) != 0) {
      error = errnoString("unlink stale socket");
      return Socket();
    }
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
      error = errnoString("bind");
      return Socket();
    }
  }
  if (::listen(sock.fd(), 64) != 0) {
    error = errnoString("listen");
    ::unlink(path.c_str());
    return Socket();
  }
  return sock;
}

Socket connectUnix(const std::string &path, std::string &error) {
  sockaddr_un addr;
  if (!makeAddress(path, addr, error))
    return Socket();
  Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) {
    error = errnoString("socket");
    return Socket();
  }
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
                sizeof(addr)) != 0) {
    error = errnoString("connect to '" + path + "'");
    return Socket();
  }
  return sock;
}

Socket acceptConnection(const Socket &listener) {
  for (;;) {
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      // Frames are request/reply units; on TCP connections Nagle
      // batching only adds latency. Harmlessly ENOTSUP on AF_UNIX.
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR)
      continue;
    return Socket();
  }
}

bool parseHostPort(const std::string &spec, std::string &host,
                   std::uint16_t &port, std::string &error) {
  // Split on the *last* colon so IPv6 literals ("::1:9000",
  // "[::1]:9000") keep their internal colons in the host part.
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    error = "endpoint '" + spec + "' is not HOST:PORT";
    return false;
  }
  std::string hostPart = spec.substr(0, colon);
  if (hostPart.size() >= 2 && hostPart.front() == '[' &&
      hostPart.back() == ']')
    hostPart = hostPart.substr(1, hostPart.size() - 2);
  const std::string portPart = spec.substr(colon + 1);
  if (portPart.empty() ||
      portPart.find_first_not_of("0123456789") != std::string::npos) {
    error = "endpoint '" + spec + "' has a non-numeric port";
    return false;
  }
  unsigned long value = 0;
  try {
    value = std::stoul(portPart);
  } catch (const std::exception &) {
    value = 65536; // overflow: fall through to the range check
  }
  if (value > 65535) {
    error = "endpoint '" + spec + "' port is out of range";
    return false;
  }
  host = hostPart;
  port = static_cast<std::uint16_t>(value);
  return true;
}

namespace {

/// getaddrinfo wrapper; the caller owns the returned list via
/// freeaddrinfo. `passive` selects listener semantics (wildcard bind
/// when host is empty).
addrinfo *resolve(const std::string &host, std::uint16_t port, bool passive,
                  std::string &error) {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  addrinfo *result = nullptr;
  const std::string portStr = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               portStr.c_str(), &hints, &result);
  if (rc != 0) {
    error = "resolve '" + host + "': " + ::gai_strerror(rc);
    return nullptr;
  }
  return result;
}

void setNoDelay(int fd) {
  // Frames are request/reply units; Nagle batching only adds latency.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

Socket listenTcp(const std::string &host, std::uint16_t port,
                 std::string &error) {
  addrinfo *list = resolve(host, port, /*passive=*/true, error);
  if (!list)
    return Socket();
  Socket sock;
  for (addrinfo *ai = list; ai; ai = ai->ai_next) {
    Socket candidate(
        ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) {
      error = errnoString("socket");
      continue;
    }
    int one = 1;
    ::setsockopt(candidate.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(candidate.fd(), ai->ai_addr, ai->ai_addrlen) != 0) {
      error = errnoString("bind " + host + ":" + std::to_string(port));
      continue;
    }
    if (::listen(candidate.fd(), 64) != 0) {
      error = errnoString("listen");
      continue;
    }
    sock = std::move(candidate);
    break;
  }
  ::freeaddrinfo(list);
  return sock;
}

Socket connectTcp(const std::string &host, std::uint16_t port,
                  int timeoutMillis, std::string &error) {
  addrinfo *list = resolve(host, port, /*passive=*/false, error);
  if (!list)
    return Socket();
  Socket sock;
  for (addrinfo *ai = list; ai; ai = ai->ai_next) {
    Socket candidate(
        ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) {
      error = errnoString("socket");
      continue;
    }
    if (timeoutMillis <= 0) {
      if (::connect(candidate.fd(), ai->ai_addr, ai->ai_addrlen) != 0) {
        error = errnoString("connect to " + host + ":" + std::to_string(port));
        continue;
      }
      sock = std::move(candidate);
      break;
    }
    // Bounded connect: go non-blocking, start the connect, poll for
    // writability, then check SO_ERROR for the real outcome.
    const int flags = ::fcntl(candidate.fd(), F_GETFL, 0);
    ::fcntl(candidate.fd(), F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(candidate.fd(), ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno != EINPROGRESS) {
      error = errnoString("connect to " + host + ":" + std::to_string(port));
      continue;
    }
    if (rc != 0) {
      pollfd pfd = {candidate.fd(), POLLOUT, 0};
      int ready;
      do {
        ready = ::poll(&pfd, 1, timeoutMillis);
      } while (ready < 0 && errno == EINTR);
      if (ready <= 0) {
        error = ready == 0 ? "connect to " + host + ":" +
                                 std::to_string(port) + ": timed out"
                           : errnoString("poll");
        continue;
      }
      int soError = 0;
      socklen_t len = sizeof(soError);
      ::getsockopt(candidate.fd(), SOL_SOCKET, SO_ERROR, &soError, &len);
      if (soError != 0) {
        error = "connect to " + host + ":" + std::to_string(port) + ": " +
                std::strerror(soError);
        continue;
      }
    }
    ::fcntl(candidate.fd(), F_SETFL, flags);
    sock = std::move(candidate);
    break;
  }
  ::freeaddrinfo(list);
  if (sock.valid())
    setNoDelay(sock.fd());
  return sock;
}

std::uint16_t boundPort(const Socket &sock) {
  if (!sock.valid())
    return 0;
  sockaddr_storage addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr *>(&addr), &len) != 0)
    return 0;
  if (addr.ss_family == AF_INET)
    return ntohs(reinterpret_cast<const sockaddr_in *>(&addr)->sin_port);
  if (addr.ss_family == AF_INET6)
    return ntohs(reinterpret_cast<const sockaddr_in6 *>(&addr)->sin6_port);
  return 0;
}

bool setReadTimeout(int fd, int millis) {
  timeval tv;
  tv.tv_sec = millis > 0 ? millis / 1000 : 0;
  tv.tv_usec = millis > 0 ? (millis % 1000) * 1000 : 0;
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

namespace {

bool sendAll(int fd, const char *data, std::size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as a
    // failed send, not a process-killing SIGPIPE.
    ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

/// Read exactly `size` bytes. `sawAnyByte` distinguishes clean EOF (peer
/// closed between frames) from truncation (closed mid-frame).
FrameStatus recvAll(int fd, char *data, std::size_t size, bool &sawAnyByte) {
  while (size > 0) {
    ssize_t got = ::recv(fd, data, size, 0);
    if (got < 0) {
      if (errno == EINTR)
        continue;
      return FrameStatus::ioError;
    }
    if (got == 0)
      return sawAnyByte ? FrameStatus::truncated : FrameStatus::closed;
    sawAnyByte = true;
    data += got;
    size -= static_cast<std::size_t>(got);
  }
  return FrameStatus::ok;
}

} // namespace

bool writeFrame(int fd, const std::string &payload) {
  // Injection point: a failing/stalling frame write models a wedged or
  // vanished peer at an arbitrary point in the reply stream.
  if (fault::shouldFail("frame-write"))
    return false;
  char header[4];
  const auto size = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    header[i] = static_cast<char>((size >> (8 * i)) & 0xff);
  return sendAll(fd, header, sizeof(header)) &&
         sendAll(fd, payload.data(), payload.size());
}

FrameStatus readFrame(int fd, std::string &payload, std::uint32_t maxBytes) {
  payload.clear();
  char header[4];
  bool sawAnyByte = false;
  FrameStatus status = recvAll(fd, header, sizeof(header), sawAnyByte);
  if (status != FrameStatus::ok)
    return status;
  std::uint32_t size = 0;
  for (int i = 3; i >= 0; --i)
    size = (size << 8) | static_cast<std::uint8_t>(header[i]);
  if (size > maxBytes)
    return FrameStatus::oversized;
  std::string body(size, '\0');
  if (size > 0) {
    status = recvAll(fd, body.data(), size, sawAnyByte);
    if (status == FrameStatus::closed)
      status = FrameStatus::truncated; // header arrived, body did not
    if (status != FrameStatus::ok)
      return status;
  }
  payload = std::move(body);
  return FrameStatus::ok;
}

} // namespace mira::net
