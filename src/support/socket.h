/// \file
/// Stream-socket transports and length-prefixed frame I/O.
///
/// The serving subsystem (server/) moves protocol messages as frames: a
/// little-endian u32 byte count followed by that many payload bytes
/// (the count excludes itself). This header owns the two halves every
/// peer needs — RAII file descriptors with listen/connect/accept on
/// AF_UNIX and TCP (AF_INET/AF_INET6) stream sockets, and
/// readFrame/writeFrame built on loop-until-done send/recv — so the
/// daemon, the client library, the fleet coordinator, and the protocol
/// tests all share one framing implementation regardless of transport.
/// Frame reads never trust the wire: the declared length is capped by
/// the caller, and short reads surface as distinct FrameStatus values
/// (docs/PROTOCOL.md specifies the behavior peers may rely on).
#pragma once

#include <cstdint>
#include <string>

namespace mira::net {

/// Owning wrapper around a POSIX file descriptor. Move-only; closes on
/// destruction. An fd of -1 means "no socket" (failed open, moved-from).
class Socket {
public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket &&other) noexcept;
  Socket &operator=(Socket &&other) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Close now (idempotent); valid() is false afterwards.
  void close();

  /// shutdown(2) the read half. A peer blocked in recv on the other end
  /// of this fd sees EOF; pending writes are unaffected. Used by the
  /// server to unblock idle connection readers at shutdown.
  void shutdownRead();

  /// shutdown(2) both halves. Our own blocked reads *and* writes return
  /// immediately. Used by the server to force-close connections that
  /// outlive the graceful-drain deadline.
  void shutdownBoth();

private:
  int fd_ = -1;
};

/// Bind and listen on a Unix-domain stream socket at `path`.
///
/// A stale socket file (left by a crashed daemon) is detected by
/// attempting to connect: connection-refused means no live listener, so
/// the file is unlinked and the path reused. If a listener answers, the
/// bind fails — two daemons must not fight over one path. On any
/// failure returns an invalid Socket and sets `error` to a description.
Socket listenUnix(const std::string &path, std::string &error);

/// Connect to a listening Unix-domain socket at `path`. Returns an
/// invalid Socket and sets `error` on failure.
Socket connectUnix(const std::string &path, std::string &error);

/// Accept one connection; blocks. Returns an invalid Socket when the
/// listening socket is closed or on error.
Socket acceptConnection(const Socket &listener);

/// Split a `HOST:PORT` endpoint spec on its *last* colon (so bracketed
/// or bare IPv6 literals keep their internal colons). Port 0 is allowed
/// for listeners (kernel-assigned port); empty host means "all
/// interfaces" for listeners. Returns false and sets `error` when the
/// spec has no colon or the port is not a number in [0, 65535].
bool parseHostPort(const std::string &spec, std::string &host,
                   std::uint16_t &port, std::string &error);

/// Bind and listen on a TCP stream socket at `host:port`.
///
/// `host` is resolved with getaddrinfo (numeric literals and names both
/// work; empty binds the wildcard address). `port` 0 asks the kernel
/// for an ephemeral port — read it back with boundPort(). SO_REUSEADDR
/// is set so restarts don't trip over TIME_WAIT. On any failure returns
/// an invalid Socket and sets `error` to a description.
Socket listenTcp(const std::string &host, std::uint16_t port,
                 std::string &error);

/// Connect to a TCP listener at `host:port`, failing after
/// `timeoutMillis` (<= 0 means block indefinitely). The connect runs
/// non-blocking under poll(2) so an unreachable host errors out in
/// bounded time; the returned socket is blocking with TCP_NODELAY set
/// (frames are latency-sensitive request/reply units). Returns an
/// invalid Socket and sets `error` on failure.
Socket connectTcp(const std::string &host, std::uint16_t port,
                  int timeoutMillis, std::string &error);

/// The locally bound port of a socket (listener or connection). Returns
/// 0 when the fd is invalid or not an inet socket — Unix-domain sockets
/// have no port. Lets callers pass port 0 to listenTcp and discover the
/// kernel-assigned port.
std::uint16_t boundPort(const Socket &sock);

/// Arm SO_RCVTIMEO so blocked recv calls fail with EAGAIN after
/// `millis` (<= 0 disables the timeout). Frame reads then surface as
/// FrameStatus::ioError instead of hanging forever on a stalled peer.
bool setReadTimeout(int fd, int millis);

/// Outcome of readFrame, in decreasing order of normality.
enum class FrameStatus {
  ok,        ///< a complete frame was read
  closed,    ///< clean EOF before any byte of this frame
  truncated, ///< peer closed (or errored) mid-frame
  oversized, ///< declared length exceeds the caller's cap
  ioError,   ///< recv failed outright
};

/// Write `payload.size()` as little-endian u32, then the payload bytes.
/// Loops over partial sends; false on any send failure.
bool writeFrame(int fd, const std::string &payload);

/// Read one frame into `payload`. `maxBytes` caps the declared length;
/// an oversized declaration is reported *without* reading the body, so
/// the caller can answer with an error before closing. Anything but
/// FrameStatus::ok leaves `payload` empty.
FrameStatus readFrame(int fd, std::string &payload, std::uint32_t maxBytes);

} // namespace mira::net
