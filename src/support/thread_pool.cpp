#include "support/thread_pool.h"

namespace mira {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
    stop_ = true;
  }
  wake_.notify_all();
  for (auto &worker : workers_)
    worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::setExceptionHandler(std::function<void()> handler) {
  onTaskException_ = std::move(handler);
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

std::size_t ThreadPool::defaultThreadCount() {
  std::size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 4 : n;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty())
        return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    try {
      task();
    } catch (...) {
      // Contain at the pool boundary: an exception escaping here would
      // unwind the worker's top frame and std::terminate the process
      // (in the daemon: one bad request killing the server). The task's
      // submitter observes failure through whatever the capture carries
      // (a promise, an error slot); the pool just counts and reports.
      exceptions_.fetch_add(1, std::memory_order_relaxed);
      if (onTaskException_)
        onTaskException_();
    }
    // Destroy captured state before reporting idle: waitIdle() returning
    // must mean no task-owned object (sessions, sockets, promises) is
    // still alive on a worker, or callers could tear down shared state
    // the capture's destructor touches.
    task = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0)
        idle_.notify_all();
    }
  }
}

} // namespace mira
