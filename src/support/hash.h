/// \file
/// FNV-1a hashing for cache keys.
///
/// The batch driver keys its analysis cache on (source bytes, options)
/// fingerprints (driver::requestKey). FNV-1a is deterministic across
/// platforms and processes, unlike std::hash, so cache keys can be
/// logged, compared between runs, and used in on-disk formats — the
/// persistent cache (support/cache_store.h) names its entry files after
/// these keys and checksums payloads with the same function.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace mira {

/// FNV-1a 64-bit offset basis (the hash of the empty input).
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
/// FNV-1a 64-bit prime.
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// FNV-1a over a byte range, continuing from `seed`.
std::uint64_t fnv1a(const void *data, std::size_t size,
                    std::uint64_t seed = kFnvOffsetBasis);

/// FNV-1a of a string's bytes.
std::uint64_t fnv1a(const std::string &text,
                    std::uint64_t seed = kFnvOffsetBasis);

/// Mix an already-computed hash into `seed` (order-sensitive).
std::uint64_t hashCombine(std::uint64_t seed, std::uint64_t value);

} // namespace mira
