/// \file
/// Fixed-size worker pool with a shared task queue.
///
/// The batch driver fans analysis requests across this pool, and
/// metric generation fans per-function modeling across a second one
/// (metrics::generateModel); anything else that needs coarse-grained
/// parallelism (workload sweeps, future pass pipelines) should reuse it
/// instead of spawning ad-hoc threads. Tasks are plain
/// std::function<void()>; results travel through whatever the caller
/// captured (promises, pre-sized output slots).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mira {

/// Fixed pool of worker threads draining one FIFO task queue.
///
/// Nested-pool etiquette: a task running on pool A may submit to and
/// block on futures from pool B, but must never block on work queued to
/// its own pool — if every A-worker did so, the queued tasks could
/// never start. This is why BatchAnalyzer keeps a separate model pool
/// for within-request parallelism.
class ThreadPool {
public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue: blocks until every submitted task has run.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueue a task. Safe from any thread, including worker threads
  /// (tasks may submit follow-up tasks). An exception escaping a task is
  /// contained at the pool boundary: the worker swallows it, bumps
  /// taskExceptions(), invokes the exception handler (if set), and keeps
  /// serving the queue — it never reaches the worker thread's top frame,
  /// which would std::terminate the whole process. Tasks that need the
  /// error itself must still transport it (promise, captured slot); the
  /// pool can only tell callers THAT a task threw, not what.
  void submit(std::function<void()> task);

  /// Callback run on the worker thread each time a task throws, after
  /// the internal counter is bumped (e.g. to feed a metrics registry).
  /// Must not throw. Not synchronized with submit: install it before the
  /// first task is submitted and leave it in place.
  void setExceptionHandler(std::function<void()> handler);

  /// Number of tasks whose exceptions the pool has contained.
  std::uint64_t taskExceptions() const {
    return exceptions_.load(std::memory_order_relaxed);
  }

  /// Block until the queue is empty and no task is executing. Only
  /// meaningful when this caller is the sole submitter; a task waiting
  /// for specific results should wait on its own future instead.
  void waitIdle();

  /// Number of worker threads (fixed at construction).
  std::size_t threadCount() const { return workers_.size(); }

  /// std::thread::hardware_concurrency with a sane fallback of 4.
  static std::size_t defaultThreadCount();

private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;   // workers wait for tasks / stop
  std::condition_variable idle_;   // waitIdle/destructor wait for drain
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::function<void()> onTaskException_; // see setExceptionHandler
  std::atomic<std::uint64_t> exceptions_{0};
  std::size_t running_ = 0; // tasks currently executing
  bool stop_ = false;
};

} // namespace mira
