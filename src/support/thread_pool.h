/// \file
/// Fixed-size worker pool with a shared task queue.
///
/// The batch driver fans analysis requests across this pool, and
/// metric generation fans per-function modeling across a second one
/// (metrics::generateModel); anything else that needs coarse-grained
/// parallelism (workload sweeps, future pass pipelines) should reuse it
/// instead of spawning ad-hoc threads. Tasks are plain
/// std::function<void()>; results travel through whatever the caller
/// captured (promises, pre-sized output slots).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mira {

/// Fixed pool of worker threads draining one FIFO task queue.
///
/// Nested-pool etiquette: a task running on pool A may submit to and
/// block on futures from pool B, but must never block on work queued to
/// its own pool — if every A-worker did so, the queued tasks could
/// never start. This is why BatchAnalyzer keeps a separate model pool
/// for within-request parallelism.
class ThreadPool {
public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue: blocks until every submitted task has run.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueue a task. Safe from any thread, including worker threads
  /// (tasks may submit follow-up tasks). Tasks must not throw: an
  /// escaping exception would reach the worker thread and terminate the
  /// process, so callers (e.g. BatchAnalyzer) catch at the task boundary.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and no task is executing. Only
  /// meaningful when this caller is the sole submitter; a task waiting
  /// for specific results should wait on its own future instead.
  void waitIdle();

  /// Number of worker threads (fixed at construction).
  std::size_t threadCount() const { return workers_.size(); }

  /// std::thread::hardware_concurrency with a sane fallback of 4.
  static std::size_t defaultThreadCount();

private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;   // workers wait for tasks / stop
  std::condition_variable idle_;   // waitIdle/destructor wait for drain
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t running_ = 0; // tasks currently executing
  bool stop_ = false;
};

} // namespace mira
